# Convenience targets for the DX100 reproduction.

PYTHON ?= python
# `python -m repro` targets need the package importable without an install.
RUN_REPRO = PYTHONPATH=src $(PYTHON) -m repro

.PHONY: install test audit bench bench-quick figures examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/
	$(RUN_REPRO) run IS PR --quick --audit

# Replay the quick benchmark suite under every configuration with the
# JEDEC command-stream auditor attached; fails on any timing violation.
audit:
	$(RUN_REPRO) run --all --quick --audit --configs baseline dmp dx100

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_QUICK=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures: bench
	@echo "figure tables written to results/"

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_analytics.py
	$(PYTHON) examples/database_join.py
	$(PYTHON) examples/compiler_demo.py
	$(PYTHON) examples/mesh_gradient.py

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

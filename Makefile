# Convenience targets for the DX100 reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick figures examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_QUICK=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures: bench
	@echo "figure tables written to results/"

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_analytics.py
	$(PYTHON) examples/database_join.py
	$(PYTHON) examples/compiler_demo.py
	$(PYTHON) examples/mesh_gradient.py

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the DX100 reproduction.

PYTHON ?= python
JOBS ?=
# `python -m repro` targets need the package importable without an install.
RUN_REPRO = PYTHONPATH=src $(PYTHON) -m repro
SWEEP_JOBS = $(if $(JOBS),--jobs $(JOBS),)

.PHONY: install test audit sweep sweep-quick campaign campaign-smoke \
        golden-check golden-update memtech remote-smoke profile timeline \
        trace-smoke bench bench-quick figures examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/
	$(RUN_REPRO) run IS PR --quick --audit

# Replay the quick benchmark suite under every configuration with the
# JEDEC command-stream auditor attached; fails on any timing violation.
audit:
	$(RUN_REPRO) run --all --quick --audit --configs baseline dmp dx100

# Parallel, content-addressed-cached benchmark x configuration grid
# (results/sweep.json + BENCH_mainsweep.json).  JOBS=N to pin workers.
sweep:
	$(RUN_REPRO) sweep $(SWEEP_JOBS)

sweep-quick:
	$(RUN_REPRO) sweep --quick $(SWEEP_JOBS)

# Resumable multi-worker campaign from a declarative spec (state persists
# in results/.campaigns/<id>; re-run the same target to resume).  E.g.
# make campaign SPEC='benchmarks=IS,CG dram=ddr4,ddr5' WORKERS=4
SPEC ?=
WORKERS ?= 1
campaign:
	$(RUN_REPRO) campaign '$(SPEC)' --workers $(WORKERS)

# The CI fabric smoke: a tiny 2-worker campaign with one injected task
# failure — the retry must succeed and the manifest must end fully done.
campaign-smoke:
	rm -rf results/.campaigns/smoke
	REPRO_FABRIC_INJECT_FAIL="IS.quick.dx100:1" $(RUN_REPRO) campaign \
		'benchmarks=IS,CG scale=quick' --id smoke --workers 2 \
		--no-cache --no-bench
	grep -q "retried tasks that eventually succeeded: 1" \
		results/.campaigns/smoke/summary.md
	test -z "$$(find results/.campaigns/smoke/queue \
		results/.campaigns/smoke/failed -type f 2>/dev/null)"

# Golden-metrics regression harness (tests/golden/quick_suite.json).
golden-check:
	$(RUN_REPRO) sweep --check-golden $(SWEEP_JOBS)

golden-update:
	$(RUN_REPRO) sweep --update-golden $(SWEEP_JOBS)

# Regenerate the memory-technology comparison table + latency sweep
# (results/memory_technology.{txt,json}): local DDR4/DDR5 vs the modeled
# CXL far-memory link, with the monotone speedup-vs-latency assertions.
memtech:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_memory_technology.py --benchmark-only

# The CI far-memory smoke: a tiny cxl run end to end through the CLI,
# then the memory-technology golden grid replayed on the scalar DRAM
# oracle — both engines must reproduce the committed file bitwise.
remote-smoke:
	$(RUN_REPRO) run IS --quick --dram cxl --configs baseline dx100
	PYTHONPATH=src $(PYTHON) -m repro.sim.memtech --check
	PYTHONPATH=src $(PYTHON) -m repro.sim.memtech --check --engine scalar

# Where does the wall-clock go?  cProfile hotspots + per-component
# attribution + stage timers for one run (PROFILE_ARGS to customize, e.g.
# PROFILE_ARGS="PR --mode dx100 --json results/profile.json").
PROFILE_ARGS ?= IS --quick
profile:
	$(RUN_REPRO) profile $(PROFILE_ARGS)

# Observability: ASCII timeline of one run (TIMELINE_ARGS to customize,
# e.g. TIMELINE_ARGS="PR --mode baseline --sample-every 500").
TIMELINE_ARGS ?= IS --quick
timeline:
	$(RUN_REPRO) timeline $(TIMELINE_ARGS)

# The CI trace smoke check: record Chrome traces for two quick benchmarks
# and validate that every file is Perfetto-loadable.
trace-smoke:
	$(RUN_REPRO) run IS PR --quick --configs baseline dx100 \
		--trace results/trace.json --sample-every 1000
	PYTHONPATH=src $(PYTHON) -m repro.obs.validate results/trace-*.json

# Figure benches consume the same sweep executor via benchmarks/mainsweep.py,
# so they inherit the worker pool and the run cache (REPRO_JOBS,
# REPRO_NO_CACHE, REPRO_CACHE_DIR).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_QUICK=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures: bench
	@echo "figure tables written to results/"

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/graph_analytics.py
	$(PYTHON) examples/database_join.py
	$(PYTHON) examples/compiler_demo.py
	$(PYTHON) examples/mesh_gradient.py

clean:
	rm -rf results .pytest_cache .benchmarks BENCH_mainsweep.json
	find . -name __pycache__ -type d -exec rm -rf {} +

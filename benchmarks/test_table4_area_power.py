"""Table 4: DX100 area and power.

Paper result: 4.061 mm^2 / 777 mW at 28 nm, dominated by the 2 MB
scratchpad; ~1.5 mm^2 at 14 nm = 3.7% of a 4-core Skylake processor.
"""

import pytest

from repro.common import DX100Config
from repro.dx100 import area_power, llc_equivalent_mb

from mainsweep import record


def test_table4_area_power(benchmark):
    report = benchmark.pedantic(lambda: area_power(), rounds=3, iterations=1)
    lines = [f"{'module':<16s} {'area mm2':>9s} {'power mW':>9s}"]
    for name, (area, power) in report.modules.items():
        lines.append(f"{name:<16s} {area:9.3f} {power:9.2f}")
    lines.append(f"{'TOTAL (28nm)':<16s} {report.total_area_mm2:9.3f} "
                 f"{report.total_power_mw:9.2f}")
    lines.append(f"14nm area: {report.area_14nm_mm2:.2f} mm2 "
                 f"(paper ~1.5); overhead {report.overhead_percent:.1f}% "
                 f"(paper 3.7%)")
    lines.append(f"LLC-equivalent area: {llc_equivalent_mb():.2f} MB")
    record("table4_area_power", lines)

    assert report.total_area_mm2 == pytest.approx(4.06, abs=0.02)
    assert report.total_power_mw == pytest.approx(777.2, abs=1.0)
    assert report.overhead_percent == pytest.approx(3.7, abs=0.2)


def test_table4_tile_size_area_scaling(benchmark):
    def sweep():
        return {t: area_power(DX100Config(tile_elems=t)).total_area_mm2
                for t in (1024, 16384, 32768)}

    areas = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert areas[1024] < areas[16384] < areas[32768]
    # The scratchpad dominates, so area roughly doubles from 16K to 32K.
    assert areas[32768] / areas[16384] > 1.6

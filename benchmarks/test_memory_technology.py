"""Memory-technology sensitivity (extension).

The paper's motivation cites DoE ATS-5's "overcoming the memory wall"
goal; this bench asks how DX100's advantage moves when the DDR4-3200
system is swapped for an approximate DDR5-6400 one (2x bandwidth, 2x bank
groups, four subchannels).  More bank-level parallelism helps the baseline
absorb random traffic, but DX100's reordering exploits the extra channels
and bank groups too — the advantage persists.
"""

from dataclasses import replace

import pytest

from repro.common import SystemConfig, geomean
from repro.common.config import ddr5_6400
from repro.sim import run_baseline, run_dx100
from repro.workloads import IntegerSort, SpatterXRAGE

from mainsweep import record

SUBSET = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 15),
}


def _with_dram(cfg: SystemConfig, dram) -> SystemConfig:
    return replace(cfg, dram=dram)


def _sweep():
    out = {}
    for tech, dram in [("ddr4", None), ("ddr5", ddr5_6400())]:
        speedups = []
        dx_bw = []
        for name, factory in SUBSET.items():
            base_cfg = SystemConfig.baseline_scaled()
            dx_cfg = SystemConfig.dx100_scaled()
            if dram is not None:
                base_cfg = _with_dram(base_cfg, dram)
                dx_cfg = _with_dram(dx_cfg, dram)
            base = run_baseline(factory(), base_cfg, warm=False)
            dx = run_dx100(factory(), dx_cfg, warm=False)
            speedups.append(base.cycles / dx.cycles)
            dx_bw.append(dx.bandwidth_utilization)
        out[tech] = (geomean(speedups), sum(dx_bw) / len(dx_bw))
    return out


def test_memory_technology_sensitivity(benchmark):
    out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'tech':6s} {'geomean speedup':>16s} {'dx BW util':>11s}"]
    for tech, (speedup, bw) in out.items():
        lines.append(f"{tech:6s} {speedup:15.2f}x {bw:10.2f}")
    record("memory_technology", lines)
    # DX100 still wins on DDR5; absolute utilization may drop with the
    # larger peak, but the advantage does not collapse.
    assert out["ddr5"][0] > 1.5
    assert out["ddr4"][0] > 1.5

"""Memory-technology sensitivity (extension).

The paper's motivation cites DoE ATS-5's "overcoming the memory wall"
goal; this bench asks how DX100's advantage moves as the memory system
changes underneath it, across two axes:

* **technology rows** — local DDR4-3200, approximate DDR5-6400 (2x
  bandwidth, 2x bank groups), an all-far CXL pool behind the modeled
  link (:mod:`repro.dram.remote`), and a mixed placement with half the
  lines far.  More bank-level parallelism helps the baseline absorb
  random traffic; a far link hurts it far more than DX100, whose tile
  drains pipeline bursts through the link while the baseline's
  MSHR-bounded misses pay per-miss round trips.
* **link-latency sweep** — the Tiara-thesis figure: as one-way link
  latency grows geometrically, baseline throughput collapses roughly
  linearly while DX100 amortizes the latency once per drain, so the
  DX100 speedup *increases monotonically* with latency.  Both claims
  are asserted, not just recorded.
"""

from dataclasses import replace

from repro.common import SystemConfig, geomean
from repro.common.config import RemoteLinkConfig, cxl_remote, ddr5_6400
from repro.sim import run_baseline, run_dx100
from repro.workloads import IntegerSort, SpatterXRAGE

from mainsweep import record

SUBSET = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 15),
}

TECHS = {
    "ddr4": lambda: None,
    "ddr5": ddr5_6400,
    "cxl": cxl_remote,
    "mixed": lambda: replace(cxl_remote(), remote=RemoteLinkConfig(
        enabled=True, placement="hash", far_fraction=0.5)),
}

#: One-way link latencies (CPU cycles) for the Tiara sweep: geometric 4x
#: steps, ~40 ns to ~640 ns at 3.2 GHz — the CXL/far-memory regime.  At
#: microsecond-scale latencies DX100 becomes link-latency-bound too and
#: the ratio rolls off; the monotone-growth claim is about this regime.
LINK_LATENCIES = (128, 512, 2048)


def _pair(factory, dram):
    base_cfg = SystemConfig.baseline_scaled()
    dx_cfg = SystemConfig.dx100_scaled()
    if dram is not None:
        base_cfg = replace(base_cfg, dram=dram)
        dx_cfg = replace(dx_cfg, dram=dram)
    base = run_baseline(factory(), base_cfg, warm=False)
    dx = run_dx100(factory(), dx_cfg, warm=False)
    return base, dx


def _sweep():
    techs = {}
    for tech, make in TECHS.items():
        dram = make()
        speedups, dx_bw, base_cycles = [], [], []
        for factory in SUBSET.values():
            base, dx = _pair(factory, dram)
            speedups.append(base.cycles / dx.cycles)
            dx_bw.append(dx.bandwidth_utilization)
            base_cycles.append(base.cycles)
        techs[tech] = (geomean(speedups), sum(dx_bw) / len(dx_bw),
                       sum(base_cycles))
    latencies = {}
    for latency in LINK_LATENCIES:
        dram = cxl_remote(latency=latency)
        speedups, base_cycles, dx_cycles = [], [], []
        for factory in SUBSET.values():
            base, dx = _pair(factory, dram)
            speedups.append(base.cycles / dx.cycles)
            base_cycles.append(base.cycles)
            dx_cycles.append(dx.cycles)
        latencies[latency] = (geomean(speedups), sum(base_cycles),
                              sum(dx_cycles))
    return {"techs": techs, "latencies": latencies}


def test_memory_technology_sensitivity(benchmark):
    out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    techs, latencies = out["techs"], out["latencies"]
    lines = [f"{'tech':6s} {'geomean speedup':>16s} {'dx BW util':>11s}"]
    for tech, (speedup, bw, _) in techs.items():
        lines.append(f"{tech:6s} {speedup:15.2f}x {bw:10.2f}")
    lines.append("")
    lines.append(f"{'link latency':>12s} {'geomean speedup':>16s} "
                 f"{'baseline cy':>12s} {'dx100 cy':>10s}")
    for latency, (speedup, base_cy, dx_cy) in latencies.items():
        lines.append(f"{latency:12d} {speedup:15.2f}x "
                     f"{base_cy:12d} {dx_cy:10d}")
    record("memory_technology", lines,
           data={"techs": {t: {"speedup": s, "dx_bw": bw}
                           for t, (s, bw, _) in techs.items()},
                 "link_latency": {str(k): {"speedup": s,
                                           "baseline_cycles": b,
                                           "dx100_cycles": d}
                                  for k, (s, b, d) in latencies.items()}})

    # DX100 wins on every technology row.
    for tech, (speedup, _, _) in techs.items():
        assert speedup > 1.5, tech
    # The far tier hurts the baseline much more than DX100: the advantage
    # GROWS behind a link.
    assert techs["cxl"][0] > techs["ddr4"][0]
    assert techs["cxl"][2] > 2 * techs["ddr4"][2]   # baseline collapses

    # Tiara thesis: DX100 speedup increases monotonically with link
    # latency while baseline throughput degrades monotonically.
    sweep = [latencies[lat] for lat in LINK_LATENCIES]
    for (s_lo, base_lo, _), (s_hi, base_hi, _) in zip(sweep, sweep[1:]):
        assert s_hi > s_lo, "speedup must grow with link latency"
        assert base_hi > base_lo, "baseline must degrade with latency"

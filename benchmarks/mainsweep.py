"""Shared main-evaluation sweep for the Figure 9-12 benchmarks.

Runs the 12 paper benchmarks under the baseline, DMP, and DX100
configurations (scaled presets, see DESIGN.md) exactly once per pytest
session and caches the results for every figure's bench to consume.

Set ``REPRO_QUICK=1`` to use the reduced QUICK_BENCHMARKS sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.common import SystemConfig
from repro.sim import RunResult, run_baseline, run_dx100
from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_cache: dict[str, dict[str, RunResult]] | None = None


def benchmark_set():
    if os.environ.get("REPRO_QUICK"):
        return QUICK_BENCHMARKS
    return MAIN_BENCHMARKS


def get_results() -> dict[str, dict[str, RunResult]]:
    """name -> {"baseline": ..., "dmp": ..., "dx100": ...}."""
    global _cache
    if _cache is None:
        _cache = {}
        for name, factory in benchmark_set().items():
            runs = {
                "baseline": run_baseline(
                    factory(), SystemConfig.baseline_scaled(), warm=False),
                "dmp": run_baseline(
                    factory(), SystemConfig.dmp_scaled(), warm=False),
                "dx100": run_dx100(
                    factory(), SystemConfig.dx100_scaled(), warm=False),
            }
            _cache[name] = runs
    return _cache


def record(name: str, lines: list[str]) -> None:
    """Write a figure's table to results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===")
    print(text)

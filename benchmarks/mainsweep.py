"""Shared main-evaluation sweep for the Figure 9-12 benchmarks.

Runs the 12 paper benchmarks under the baseline, DMP, and DX100
configurations (scaled presets, see DESIGN.md) exactly once per pytest
session and caches the results for every figure's bench to consume.

The heavy lifting lives in :mod:`repro.sim.sweep`: runs fan out over
``multiprocessing`` workers and land in a content-addressed on-disk cache
(``results/.runcache``), so an unchanged model re-runs nothing and every
figure bench inherits parallelism and caching for free.  Each sweep also
writes ``results/sweep.json`` and the ``BENCH_mainsweep.json``
perf-trajectory record.

Environment knobs:

* ``REPRO_QUICK=1``    — use the reduced QUICK_BENCHMARKS sizes;
* ``REPRO_JOBS=N``     — worker processes (default: CPU count);
* ``REPRO_NO_CACHE=1`` — always re-simulate (skip the run cache);
* ``REPRO_CACHE_DIR``  — override the cache location.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.sim import RunResult
from repro.sim.sweep import run_main_sweep, write_sweep_records
from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_cache: dict[str, dict[str, RunResult]] | None = None


def benchmark_set():
    if os.environ.get("REPRO_QUICK"):
        return QUICK_BENCHMARKS
    return MAIN_BENCHMARKS


def get_results() -> dict[str, dict[str, RunResult]]:
    """name -> {"baseline": ..., "dmp": ..., "dx100": ...}."""
    global _cache
    if _cache is None:
        outcome = run_main_sweep(
            quick=bool(os.environ.get("REPRO_QUICK")),
            cache=not os.environ.get("REPRO_NO_CACHE"),
        )
        write_sweep_records(outcome, RESULTS_DIR)
        _cache = outcome.nested()
    return _cache


def record(name: str, lines: list[str], data: dict | None = None) -> None:
    """Write a figure's table to results/<name>.txt (plus a machine-readable
    results/<name>.json) and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    payload = {"figure": name, "lines": lines}
    if data is not None:
        payload["data"] = data
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n=== {name} ===")
    print(text)

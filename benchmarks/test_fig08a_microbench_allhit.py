"""Figure 8(a): all-hit microbenchmarks.

Paper results (4-core baseline, warm caches, streaming indices):
Gather-SPD 1.2x, Gather-Full 3.2x, RMW vs atomic 17.8x, RMW vs
non-atomic 3.7x, Scatter 6.6x (single-core baseline).
"""

import pytest

from repro.common import geomean
from repro.sim import run_baseline, run_dx100
from repro.workloads import (
    GatherFull, GatherSPD, RMWAtomic, RMWNoAtom, Scatter,
)

from mainsweep import record

# Scales amortize per-tile pipeline fill/drain tails over several tiles
# (the paper uses 64K elements).
N_GATHER = 32768
N_RMW = 65536

CASES = [
    ("Gather-SPD", GatherSPD, N_GATHER, 1.2),
    ("Gather-Full", GatherFull, N_GATHER, 3.2),
    ("RMW-Atomic", RMWAtomic, N_RMW, 17.8),
    ("RMW-NoAtom", RMWNoAtom, N_RMW, 3.7),
    ("Scatter", Scatter, N_RMW, 6.6),
]


def _sweep():
    rows = []
    for label, cls, n, paper in CASES:
        base = run_baseline(cls(n))
        dx = run_dx100(cls(n))
        rows.append((label, base.cycles / dx.cycles, paper))
    return rows


def test_fig08a_allhit_microbenchmarks(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'kernel':12s} {'measured':>9s} {'paper':>7s}"]
    for label, speedup, paper in rows:
        lines.append(f"{label:12s} {speedup:8.2f}x {paper:6.1f}x")
    record("fig08a_microbench_allhit", lines)

    by_name = {label: speedup for label, speedup, _ in rows}
    # Shape assertions: orderings the paper establishes.
    assert by_name["Gather-Full"] > by_name["Gather-SPD"] > 1.0
    assert by_name["RMW-Atomic"] > 2 * by_name["RMW-NoAtom"]
    assert by_name["Scatter"] > 1.5
    # The atomic-vs-plain baseline penalty itself (the paper cites ~4.8x).
    atomic = run_baseline(RMWAtomic(N_RMW))
    plain = run_baseline(RMWNoAtom(N_RMW))
    assert 3.0 < atomic.cycles / plain.cycles < 8.0


def test_fig08a_instruction_reduction(benchmark):
    def measure():
        base = run_baseline(GatherFull(N_GATHER))
        dx = run_dx100(GatherFull(N_GATHER))
        return base, dx

    base, dx = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Gather-Full reduces the core instruction footprint dramatically
    # (870K -> 273 in the paper); with the non-ROI floor the ratio is
    # bounded but must still be large.
    assert base.instructions > 3 * dx.instructions

"""Energy comparison (extension of the paper's Section 6.2 energy claim).

The paper argues the 3.6x instruction reduction improves core energy;
this bench composes the Table 4 accelerator power with a first-order
core/DRAM energy model and reports baseline-vs-DX100 energy on an
indirect-heavy subset.
"""

import pytest

from repro.common import SystemConfig, geomean
from repro.dx100 import energy_estimate, energy_ratio
from repro.sim import run_baseline, run_dx100
from repro.workloads import GZZ, IntegerSort, SpatterXRAGE

from mainsweep import record

SUBSET = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "GZZ": lambda: GZZ(scale=1 << 16),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 15),
}


def _sweep():
    rows = []
    for name, factory in SUBSET.items():
        base = run_baseline(factory(), SystemConfig.baseline_scaled(),
                            warm=False)
        dx = run_dx100(factory(), SystemConfig.dx100_scaled(), warm=False)
        rows.append((name, base, dx, energy_ratio(base, dx)))
    return rows


def test_energy_savings(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'bench':6s} {'base mJ':>9s} {'dx mJ':>8s} {'ratio':>6s}"]
    ratios = []
    for name, base, dx, ratio in rows:
        b = energy_estimate(base)
        from repro.common import DX100Config
        d = energy_estimate(dx, dx100_config=DX100Config())
        ratios.append(ratio)
        lines.append(f"{name:6s} {b.total_mj:8.3f} {d.total_mj:7.3f} "
                     f"{ratio:5.1f}x")
    lines.append(f"geomean energy saving: {geomean(ratios):.1f}x")
    record("energy_estimate", lines)
    # Offloading saves energy on every indirect-heavy kernel despite the
    # accelerator's 777 mW draw, because runtime and instructions both drop.
    assert all(r > 1.0 for r in ratios)

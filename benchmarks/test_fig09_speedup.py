"""Figure 9: DX100 speedup over the 4-core baseline, 12 benchmarks.

Paper result: geometric-mean speedup of 2.6x, with every benchmark
improved.  Our scaled reproduction overshoots on the RMW-atomic-bound UME
kernels (see EXPERIMENTS.md) but preserves "DX100 wins everywhere" and the
relative ordering of kernel families.
"""

import pytest

from repro.common import geomean

from mainsweep import get_results, record


def test_fig09_speedup_over_baseline(benchmark):
    from repro.sim.report import bar_chart

    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    speedups = {}
    for name, runs in results.items():
        speedups[name] = runs["dx100"].speedup_over(runs["baseline"])
    gm = geomean(list(speedups.values()))
    lines = bar_chart(speedups).splitlines()
    lines.append(f"{'geomean':>10s} | {gm:.2f}x   (paper: 2.6x)")
    record("fig09_speedup", lines,
           data={"speedups": speedups, "geomean": gm, "paper_geomean": 2.6})

    # DX100 wins on every benchmark.
    assert all(s > 1.0 for s in speedups.values()), speedups
    # Headline factor in the right band (paper 2.6x; scaled model higher).
    assert 2.0 < gm < 10.0

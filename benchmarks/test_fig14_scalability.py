"""Figure 14: scalability with core count and DX100 instances.

Paper result: scaling from 4 cores / 2 channels to 8 cores / 4 channels
(with doubled datasets), DX100's geomean advantage holds — 2.6x at 4
cores, 2.5x at 8 cores with one instance, and 2.7x with two instances
(core multiplexing + region coherence).
"""

import pytest

from repro.common import SystemConfig, geomean
from repro.sim import run_baseline, run_dx100
from repro.sim.scale import run_dx100_multi
from repro.workloads import GZZ, IntegerSort, PageRank

from mainsweep import record

# RMW (order-independent) subset, required for multi-instance legality.
SMALL = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "PR": lambda: PageRank(scale=1 << 12, nodes=1 << 17),
    "GZZ": lambda: GZZ(scale=1 << 16),
}
BIG = {  # doubled datasets for the 8-core system, as in the paper
    "IS": lambda: IntegerSort(scale=1 << 16),
    "PR": lambda: PageRank(scale=1 << 13, nodes=1 << 18),
    "GZZ": lambda: GZZ(scale=1 << 17),
}


def _sweep():
    out = {}
    base4 = {n: run_baseline(f(), SystemConfig.baseline_scaled(4),
                             warm=False) for n, f in SMALL.items()}
    dx4 = {n: run_dx100(f(), SystemConfig.dx100_scaled(4), warm=False)
           for n, f in SMALL.items()}
    out["4c/1x"] = geomean([base4[n].cycles / dx4[n].cycles for n in SMALL])

    base8 = {n: run_baseline(f(), SystemConfig.baseline_scaled(8),
                             warm=False) for n, f in BIG.items()}
    dx8 = {n: run_dx100(f(), SystemConfig.dx100_scaled(8), warm=False)
           for n, f in BIG.items()}
    out["8c/1x"] = geomean([base8[n].cycles / dx8[n].cycles for n in BIG])

    dx8x2 = {n: run_dx100_multi(f(), cores=8, instances=2)
             for n, f in BIG.items()}
    out["8c/2x"] = geomean([base8[n].cycles / dx8x2[n].cycles for n in BIG])
    out["transfers"] = sum(r.extra["ownership_transfers"]
                           for r in dx8x2.values())
    return out


def test_fig14_scalability(benchmark):
    out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        f"4 cores, 1 instance : {out['4c/1x']:5.2f}x  (paper 2.6x)",
        f"8 cores, 1 instance : {out['8c/1x']:5.2f}x  (paper 2.5x)",
        f"8 cores, 2 instances: {out['8c/2x']:5.2f}x  (paper 2.7x)",
        f"region ownership transfers: {out['transfers']:.0f}",
    ]
    record("fig14_scalability", lines)

    # The advantage survives the scale-up (stays within ~40% of 4-core),
    # and two instances do at least as well as one.
    assert out["8c/1x"] > 0.6 * out["4c/1x"]
    assert out["8c/2x"] > 0.9 * out["8c/1x"]
    assert all(out[k] > 1.5 for k in ("4c/1x", "8c/1x", "8c/2x"))

"""Figure 13: performance sensitivity to the tile size.

Paper result: growing the tile from 1K to 32K elements raises the geomean
speedup from 1.7x to 2.9x, cuts memory accesses by 1.4x (more coalescing),
and raises bandwidth ~25% via a 27% higher row-buffer hit rate.
"""

import pytest

from repro.common import SystemConfig, geomean
from repro.sim import run_baseline, run_dx100
from repro.workloads import GZZ, IntegerSort, SpatterXRAGE

from mainsweep import record

TILES = [1024, 4096, 16384, 32768]
# An indirect-heavy subset keeps the sweep tractable.
SUBSET = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "GZZ": lambda: GZZ(scale=1 << 16),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 15),
}


def _sweep():
    baselines = {name: run_baseline(f(), SystemConfig.baseline_scaled(),
                                    warm=False)
                 for name, f in SUBSET.items()}
    table = {}
    for tile in TILES:
        cfg = SystemConfig.dx100_scaled(tile_elems=tile)
        runs = {name: run_dx100(f(), cfg, warm=False)
                for name, f in SUBSET.items()}
        table[tile] = runs
    return baselines, table


def test_fig13_tile_size_sensitivity(benchmark):
    baselines, table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'tile':>6s} {'geomean':>8s} {'coalesce':>9s} "
             f"{'dram reqs':>10s} {'dx BW':>6s}"]
    speedups, coalescing, reqs, bw = {}, {}, {}, {}
    for tile, runs in table.items():
        speedups[tile] = geomean([
            baselines[n].cycles / runs[n].cycles for n in runs])
        coalescing[tile] = sum(r.extra["coalescing"]
                               for r in runs.values()) / len(runs)
        reqs[tile] = sum(r.dram_requests for r in runs.values())
        bw[tile] = sum(r.bandwidth_utilization
                       for r in runs.values()) / len(runs)
        lines.append(f"{tile:6d} {speedups[tile]:7.2f}x "
                     f"{coalescing[tile]:8.2f} {reqs[tile]:10.0f} "
                     f"{bw[tile]:5.2f}")
    lines.append("paper: 1K 1.7x -> 32K 2.9x; 1.4x fewer accesses at 32K")
    record("fig13_tile_sweep", lines)

    # Larger tiles help: speedup grows monotonically-ish 1K -> 32K.
    assert speedups[32768] > speedups[1024] * 1.15
    # Coalescing improves with tile size, reducing DRAM requests.
    assert coalescing[32768] > coalescing[1024]
    assert reqs[32768] < reqs[1024]

"""Ablations of DX100's three bandwidth mechanisms (DESIGN.md §1).

Not a paper figure — these isolate each mechanism's contribution, using
the configuration knobs the implementation exposes:

* **reordering** — shrink the Row Table to 1 BCAM entry per slice, so the
  table drains after almost every insert and same-row grouping disappears;
* **FR-FCFS** — run the baseline memory controller with strict FCFS;
* **coalescing** — measured directly as the duplicate-line factor on a
  workload with repeated indices.
"""

from dataclasses import replace

import pytest

from repro.common import DX100Config, SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads import GatherAllMiss, IntegerSort

from mainsweep import record


def _dx_config(**kw) -> SystemConfig:
    cfg = SystemConfig.dx100_system()
    return replace(cfg, dx100=replace(cfg.dx100, **kw))


def test_ablation_row_table_reordering(benchmark):
    """A 1-entry Row Table destroys the reordering benefit."""
    def measure():
        wl = lambda: GatherAllMiss(rbh=0.0, chi=True, bgi=True)
        full = run_dx100(wl(), _dx_config())
        tiny = run_dx100(wl(), _dx_config(row_table_rows=1))
        return full, tiny

    full, tiny = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"row table 64x8: cycles {full.cycles}, RBH "
        f"{full.row_buffer_hit_rate:.2f}, BW {full.bandwidth_utilization:.2f}",
        f"row table  1x8: cycles {tiny.cycles}, RBH "
        f"{tiny.row_buffer_hit_rate:.2f}, BW {tiny.bandwidth_utilization:.2f}",
    ]
    record("ablation_row_table", lines)
    assert full.row_buffer_hit_rate > tiny.row_buffer_hit_rate + 0.2
    assert full.cycles < tiny.cycles


def test_ablation_frfcfs_vs_fcfs(benchmark):
    """Controller scheduling matters little either way — which is the
    paper's core argument from the other direction.  For the *baseline*,
    FR-FCFS's 32-request window can't find row pairs in random indirect
    traffic; for *DX100*, the requests arrive already row-sorted and
    interleaved, so even strict FCFS keeps the row hits."""
    def measure():
        def fcfs(cfg):
            return replace(cfg, dram=replace(cfg.dram, scheduler="fcfs"))
        wl = lambda: IntegerSort(scale=1 << 14)
        base_fr = run_baseline(wl(), SystemConfig.baseline_scaled(),
                               warm=False)
        base_fc = run_baseline(wl(), fcfs(SystemConfig.baseline_scaled()),
                               warm=False)
        dx_fr = run_dx100(wl(), SystemConfig.dx100_scaled(), warm=False)
        dx_fc = run_dx100(wl(), fcfs(SystemConfig.dx100_scaled()),
                          warm=False)
        return base_fr, base_fc, dx_fr, dx_fc

    base_fr, base_fc, dx_fr, dx_fc = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    lines = [
        f"baseline FR-FCFS: cycles {base_fr.cycles}, "
        f"RBH {base_fr.row_buffer_hit_rate:.2f}",
        f"baseline FCFS:    cycles {base_fc.cycles}, "
        f"RBH {base_fc.row_buffer_hit_rate:.2f}",
        f"dx100    FR-FCFS: cycles {dx_fr.cycles}, "
        f"RBH {dx_fr.row_buffer_hit_rate:.2f}",
        f"dx100    FCFS:    cycles {dx_fc.cycles}, "
        f"RBH {dx_fc.row_buffer_hit_rate:.2f}",
    ]
    record("ablation_scheduler", lines)
    # DX100's pre-sorted request stream keeps its row hits under FCFS.
    assert dx_fc.row_buffer_hit_rate > 0.5
    assert dx_fc.cycles < 1.4 * dx_fr.cycles


def test_ablation_coalescing(benchmark):
    """Duplicate indices coalesce into single line fetches."""
    def measure():
        # IS keys over a *small* bucket space repeat lines heavily.
        dense = run_dx100(IntegerSort(scale=1 << 14, bucket_space=1 << 14),
                          SystemConfig.dx100_scaled(), warm=False)
        sparse = run_dx100(IntegerSort(scale=1 << 14, bucket_space=1 << 22),
                           SystemConfig.dx100_scaled(), warm=False)
        return dense, sparse

    dense, sparse = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"dense buckets : coalescing {dense.extra['coalescing']:.2f}, "
        f"dram requests {dense.dram_requests:.0f}",
        f"sparse buckets: coalescing {sparse.extra['coalescing']:.2f}, "
        f"dram requests {sparse.dram_requests:.0f}",
    ]
    record("ablation_coalescing", lines)
    assert dense.extra["coalescing"] > 2 * sparse.extra["coalescing"]
    assert dense.dram_requests < sparse.dram_requests


def test_ablation_double_buffering(benchmark):
    """Software-pipelined schedules (gather tile k+1 while cores consume
    tile k) vs. the serial per-chunk order."""
    from repro.sim.runner import run_dx100 as _run
    from repro.workloads import GZZ, ConjugateGradient

    def measure():
        out = {}
        for name, factory in [("CG", lambda: ConjugateGradient(scale=1 << 11)),
                              ("GZZ", lambda: GZZ(scale=1 << 16))]:
            cfg = SystemConfig.dx100_scaled(tile_elems=4096)
            serial = _run(factory(), cfg, warm=False)
            piped = _run(factory(), cfg, warm=False, pipelined=True)
            out[name] = (serial.cycles, piped.cycles)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'bench':5s} {'serial':>9s} {'pipelined':>10s} {'gain':>6s}"]
    for name, (serial, piped) in out.items():
        lines.append(f"{name:5s} {serial:9d} {piped:10d} "
                     f"{serial / piped:5.2f}x")
    record("ablation_double_buffering", lines)
    for serial, piped in out.values():
        assert piped <= serial * 1.02

"""Figure 12: DX100 vs. the DMP indirect prefetcher.

Paper results: DX100 outperforms DMP by 2.0x geomean with 3.3x higher
bandwidth utilization; DMP improves latency (hit rate) but does not
reorder, so its bandwidth stays near baseline.
"""

import pytest

from repro.common import geomean

from mainsweep import get_results, record


def test_fig12a_speedup_over_dmp(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'dmp/base':>9s} {'dx100/dmp':>10s}"]
    dx_over_dmp = {}
    dmp_over_base = {}
    for name, runs in results.items():
        dmp_over_base[name] = runs["dmp"].speedup_over(runs["baseline"])
        dx_over_dmp[name] = runs["dx100"].speedup_over(runs["dmp"])
        lines.append(f"{name:8s} {dmp_over_base[name]:8.2f}x "
                     f"{dx_over_dmp[name]:9.2f}x")
    gm = geomean(list(dx_over_dmp.values()))
    lines.append(f"{'geomean':8s} {'':>9s} {gm:9.2f}x  (paper: 2.0x)")
    record("fig12a_dmp_speedup", lines)
    # DMP helps the baseline somewhat; DX100 beats DMP everywhere.
    assert geomean(list(dmp_over_base.values())) > 1.0
    assert all(s > 1.0 for s in dx_over_dmp.values())
    assert gm > 1.5


def test_fig12b_bandwidth_over_dmp(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'dmpBW':>6s} {'dxBW':>6s}"]
    ratios = []
    for name, runs in results.items():
        dmp_bw = runs["dmp"].bandwidth_utilization
        dx_bw = runs["dx100"].bandwidth_utilization
        ratios.append(dx_bw / max(dmp_bw, 1e-9))
        lines.append(f"{name:8s} {dmp_bw:5.2f} {dx_bw:5.2f}")
    lines.append(f"mean ratio {sum(ratios) / len(ratios):.1f}x "
                 f"(paper: 3.3x)")
    record("fig12b_dmp_bandwidth", lines)
    assert sum(ratios) / len(ratios) > 2.0

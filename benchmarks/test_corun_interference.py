"""Inter-workload interference (extension of the paper's Section 1
motivation).

Two indirect workloads co-running on disjoint cores of one system thrash
each other's DRAM rows and shared LLC; offloading to DX100 removes the
interference channel because the accelerator re-derives its own row-sorted
order per tile regardless of what else is in the buffer.
"""

import pytest

from repro.common import SystemConfig
from repro.sim import run_dx100
from repro.sim.corun import run_corun
from repro.workloads import IntegerSort, SpatterXRAGE

from mainsweep import record

FACTORIES = [
    lambda: IntegerSort(scale=1 << 14, bucket_space=1 << 20),
    lambda: SpatterXRAGE(scale=1 << 14, region=1 << 19),
]


def _sweep():
    config = SystemConfig.baseline_scaled()
    corun = run_corun(FACTORIES, config, tenants=True)
    legacy = run_corun(FACTORIES, config)
    dx = [run_dx100(f(), SystemConfig.dx100_scaled(), warm=False)
          for f in FACTORIES]
    return corun, legacy, dx


def test_corun_interference(benchmark):
    corun, legacy, dx = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'workload':8s} {'solo':>9s} {'co-run':>9s} "
             f"{'slowdown':>9s} {'dx100':>9s} {'dram.serviced':>13s}"]
    for i, name in enumerate(corun.names):
        lines.append(
            f"{name:8s} {corun.solo_cycles[i]:9d} "
            f"{corun.corun_cycles[i]:9d} {corun.slowdown(i):8.2f}x "
            f"{dx[i].cycles:9d} {corun.tenant_dram[i]['serviced']:13d}"
        )
    record("corun_interference", lines)
    # The tenant-tagged path reports exactly the legacy runner's numbers:
    # tags feed per-workload DRAM attribution, never scheduling.
    assert corun.solo_cycles == legacy.solo_cycles
    assert corun.corun_cycles == legacy.corun_cycles
    # Both workloads suffer (or at best break even) when sharing the
    # memory system, and DX100 beats even the solo baselines.
    assert all(corun.slowdown(i) > 0.95 for i in range(2))
    for i in range(2):
        assert dx[i].cycles < corun.corun_cycles[i]
        assert corun.tenant_dram[i]["serviced"] > 0

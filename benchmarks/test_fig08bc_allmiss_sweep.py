"""Figure 8(b, c): all-miss gather sweep over synthesized index orders.

Paper results: DX100 speedup 9.9x at the worst ordering shrinking toward
1.7x at the best; DX100 bandwidth flat at 82-85% regardless of order; the
baseline's bandwidth tracks RBH/CHI/BGI (best ~65%, no-BGI 46%, no-CHI
27%).
"""

import pytest

from repro.sim import run_baseline, run_dx100
from repro.workloads import GatherAllMiss

from mainsweep import record

# (label, rbh, chi, bgi, paper_baseline_bw_hint)
POINTS = [
    ("rbh=0   no-chi no-bgi", 0.0, False, False, 0.085),
    ("rbh=0   chi    bgi   ", 0.0, True, True, 0.10),
    ("rbh=0.5 chi    bgi   ", 0.5, True, True, 0.15),
    ("rbh=1   no-chi no-bgi", 1.0, False, False, 0.27),
    ("rbh=1   chi    no-bgi", 1.0, True, False, 0.46),
    ("rbh=1   chi    bgi   ", 1.0, True, True, 0.65),
]


def _sweep():
    rows = []
    for label, rbh, chi, bgi, hint in POINTS:
        base = run_baseline(GatherAllMiss(rbh=rbh, chi=chi, bgi=bgi))
        dx = run_dx100(GatherAllMiss(rbh=rbh, chi=chi, bgi=bgi))
        rows.append((label, base, dx, hint))
    return rows


def test_fig08bc_allmiss_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'index order':24s} {'speedup':>8s} {'baseBW':>7s} "
             f"{'dxBW':>6s} {'baseRBH':>8s} {'occ b/dx':>10s}"]
    for label, base, dx, hint in rows:
        lines.append(
            f"{label:24s} {base.cycles / dx.cycles:7.2f}x "
            f"{base.bandwidth_utilization:6.2f} "
            f"{dx.bandwidth_utilization:5.2f} "
            f"{base.row_buffer_hit_rate:7.2f} "
            f"{base.request_buffer_occupancy:4.1f}/{dx.request_buffer_occupancy:4.1f}"
        )
    record("fig08bc_allmiss_sweep", lines)

    speedups = [base.cycles / dx.cycles for _, base, dx, _ in rows]
    base_bw = [base.bandwidth_utilization for _, base, _, _ in rows]
    dx_bw = [dx.bandwidth_utilization for _, _, dx, _ in rows]
    # Monotone shape: speedup falls as the baseline's ordering improves.
    assert speedups[0] > 5.0
    assert speedups[0] > speedups[2] > speedups[-1]
    # Baseline bandwidth rises monotonically left to right.
    assert all(a <= b + 0.02 for a, b in zip(base_bw, base_bw[1:]))
    # DX100 bandwidth is flat and high regardless of index order.
    assert min(dx_bw) > 0.8
    assert max(dx_bw) - min(dx_bw) < 0.1


def test_fig10c_style_occupancy_gap(benchmark):
    """DX100's bulk issue keeps the request buffer nearly full while the
    baseline's limited MLP leaves it nearly empty (the paper's 12.1x)."""
    def measure():
        base = run_baseline(GatherAllMiss(rbh=0.0, chi=True, bgi=True))
        dx = run_dx100(GatherAllMiss(rbh=0.0, chi=True, bgi=True))
        return base, dx

    base, dx = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert dx.request_buffer_occupancy > 5 * base.request_buffer_occupancy
    assert dx.request_buffer_occupancy > 24

"""Figure 11: core-instruction reduction and cache MPKI reduction.

Paper results: 3.6x geomean instruction reduction (BFS slightly *up* due
to spin locks — a known non-reproduced detail, see EXPERIMENTS.md);
6.1x mean LLC MPKI reduction.
"""

import pytest

from repro.common import geomean

from mainsweep import get_results, record


def test_fig11a_instruction_reduction(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'reduction':>10s}"]
    reductions = {}
    for name, runs in results.items():
        r = runs["baseline"].instructions / runs["dx100"].instructions
        reductions[name] = r
        lines.append(f"{name:8s} {r:9.2f}x")
    gm = geomean(list(reductions.values()))
    lines.append(f"{'geomean':8s} {gm:9.2f}x  (paper: 3.6x)")
    record("fig11a_instructions", lines)
    assert all(r > 1.0 for r in reductions.values())
    assert 2.0 < gm < 12.0


def test_fig11b_mpki_reduction(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'baseline':>9s} {'dx100':>7s} {'gain':>6s}"]
    gains = []
    for name, runs in results.items():
        b = runs["baseline"].llc_mpki
        d = runs["dx100"].llc_mpki
        gain = b / max(d, 1e-3)
        gains.append(gain)
        lines.append(f"{name:8s} {b:8.1f} {d:6.1f} {gain:5.1f}x")
    lines.append(f"mean gain {sum(gains) / len(gains):.1f}x (paper: 6.1x)")
    record("fig11b_mpki", lines)
    # Indirect traffic leaves the cache hierarchy under DX100.
    assert sum(gains) / len(gains) > 2.0

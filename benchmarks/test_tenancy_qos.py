"""Tenant-count x interference sweep over the serving layer.

Runs the canonical tenancy scenarios (the same grid the golden file pins):
one tenant (degenerate), two symmetric tenants, two tenants with an
admission-boosted aggressor, and four tenants — and reports each tenant's
p50/p99 tile latency, throughput, and the run's Jain fairness index.

The sweep is golden-pinned: any drift from ``tests/golden/tenancy_quick.json``
fails the bench, the same contract as the quick-suite metrics.
"""

import pytest

from repro.serve import tenancy_scenarios
from repro.serve.golden import (diff_tenancy_golden, load_tenancy_golden,
                                tenancy_snapshot)

from mainsweep import record


def test_tenancy_qos_sweep(benchmark):
    scenarios = benchmark.pedantic(tenancy_scenarios, rounds=1, iterations=1)
    lines = [f"{'scenario':>12s} {'tenant':>6s} {'tiles':>5s} {'lines':>5s} "
             f"{'p50':>7s} {'p99':>7s} {'adm.max':>7s} "
             f"{'tput(l/kc)':>10s} {'jain':>6s}"]
    for name, report in scenarios.items():
        for t in report.tenants:
            lines.append(
                f"{name:>12s} {t.tenant_id:>6d} {t.tiles:>5d} {t.lines:>5d} "
                f"{t.p50:>7d} {t.p99:>7d} {t.max_admission_delay:>7d} "
                f"{1000.0 * t.throughput:>10.2f} {report.jain:>6.4f}")
    record("tenancy_qos", lines)

    # Interference facts the model must reproduce: the aggressor's
    # locality-free flood inflates the victim's tail latency vs the
    # symmetric co-run — while the fairness layer keeps Jain high, so the
    # interference lands in latency, not in starved throughput.
    symmetric, aggressed = scenarios["t2"], scenarios["t2_aggressor"]
    assert aggressed.tenants[0].p99 > symmetric.tenants[0].p99
    assert aggressed.jain >= 0.95
    # More tenants sharing the same DRAM stretch everyone's tail latency
    # past the solo run's.
    solo_p99 = scenarios["t1"].tenants[0].p99
    assert all(t.p99 >= solo_p99 for t in scenarios["t4"].tenants)

    # Golden pin: the sweep must reproduce the committed numbers exactly.
    problems = diff_tenancy_golden(tenancy_snapshot(scenarios),
                                   load_tenancy_golden())
    assert not problems, "\n".join(problems)

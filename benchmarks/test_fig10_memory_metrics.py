"""Figure 10: bandwidth utilization, row-buffer hit rate, and request-buffer
occupancy, baseline vs. DX100.

Paper results: 3.9x mean bandwidth-utilization gain, 2.7x mean RBH gain
(UME kernels 15% -> 91%), 12.1x request-buffer-occupancy gain (baseline
averages ~2 of 32 entries).
"""

import pytest

from repro.common import geomean

from mainsweep import get_results, record


def test_fig10a_bandwidth_utilization(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'baseline':>9s} {'dx100':>7s} {'gain':>6s}"]
    gains = []
    for name, runs in results.items():
        b = runs["baseline"].bandwidth_utilization
        d = runs["dx100"].bandwidth_utilization
        gains.append(d / max(b, 1e-9))
        lines.append(f"{name:8s} {b:8.2f} {d:6.2f} {d / max(b, 1e-9):5.1f}x")
    lines.append(f"mean gain {sum(gains) / len(gains):.1f}x  (paper: 3.9x)")
    record("fig10a_bandwidth", lines)
    assert all(g > 1.5 for g in gains)
    assert sum(gains) / len(gains) > 3.0


def test_fig10b_row_buffer_hit_rate(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'baseline':>9s} {'dx100':>7s}"]
    gains = []
    ume_base, ume_dx = [], []
    for name, runs in results.items():
        b = runs["baseline"].row_buffer_hit_rate
        d = runs["dx100"].row_buffer_hit_rate
        gains.append(d / max(b, 1e-2))
        if name in ("GZZ", "GZZI", "GZP", "GZPI"):
            ume_base.append(b)
            ume_dx.append(d)
        lines.append(f"{name:8s} {b:8.2f} {d:6.2f}")
    ume_b = sum(ume_base) / len(ume_base)
    ume_d = sum(ume_dx) / len(ume_dx)
    lines.append(f"UME mean: {ume_b:.2f} -> {ume_d:.2f}  "
                 f"(paper: 0.15 -> 0.91)")
    record("fig10b_row_buffer_hits", lines)
    # Reordering lifts RBH on every benchmark; UME lands near the paper's.
    assert all(g >= 1.0 for g in gains)
    assert ume_b < 0.45 and ume_d > 0.85


def test_fig10c_request_buffer_occupancy(benchmark):
    results = benchmark.pedantic(get_results, rounds=1, iterations=1)
    lines = [f"{'benchmark':8s} {'baseline':>9s} {'dx100':>7s}"]
    ratios = []
    for name, runs in results.items():
        b = runs["baseline"].request_buffer_occupancy
        d = runs["dx100"].request_buffer_occupancy
        ratios.append(d / max(b, 0.1))
        lines.append(f"{name:8s} {b:8.1f} {d:6.1f}")
    lines.append(f"mean ratio {sum(ratios) / len(ratios):.1f}x "
                 f"(paper: 12.1x; baseline ~2/32)")
    record("fig10c_occupancy", lines)
    base_occ = [runs["baseline"].request_buffer_occupancy
                for runs in results.values()]
    dx_occ = [runs["dx100"].request_buffer_occupancy
              for runs in results.values()]
    # Baseline visibility is tiny; DX100 keeps the buffer nearly full.
    assert sum(base_occ) / len(base_occ) < 8
    assert sum(dx_occ) / len(dx_occ) > 20

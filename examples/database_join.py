#!/usr/bin/env python3
"""In-memory database joins on DX100: the Hash-Join partition kernels.

PRH computes the radix function ``(key & MASK) >> SHIFT`` on DX100's ALU
unit, accumulates the histogram with IRMW, and scatters tuples with IST.
PRO probes array-based bucket chains — a 4-deep ILD chain
(head -> payload/next -> payload) that the paper highlights as the bulk
linked-list traversal case.

Run:  python examples/database_join.py
"""

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads import RadixJoinChaining, RadixJoinHistogram


def show(title, factory) -> None:
    base = run_baseline(factory(), SystemConfig.baseline_scaled(),
                        warm=False)
    dx = run_dx100(factory(), SystemConfig.dx100_scaled(), warm=False)
    print(f"{title}")
    print(f"  baseline: {base.cycles:9d} cycles  "
          f"BW {base.bandwidth_utilization:4.2f}  "
          f"RBH {base.row_buffer_hit_rate:4.2f}")
    print(f"  dx100:    {dx.cycles:9d} cycles  "
          f"BW {dx.bandwidth_utilization:4.2f}  "
          f"RBH {dx.row_buffer_hit_rate:4.2f}  "
          f"coalescing {dx.extra['coalescing']:.2f} words/line")
    print(f"  speedup {base.cycles / dx.cycles:.2f}x, result validated\n")


def main() -> None:
    tuples = 1 << 15
    print(f"Parallel radix join partitioning, {tuples} tuples\n")
    show("PRH (histogram-based, Kim et al.)",
         lambda: RadixJoinHistogram(scale=tuples))
    show("PRO (bucket-chaining probe, Manegold et al.)",
         lambda: RadixJoinChaining(scale=tuples))


if __name__ == "__main__":
    main()

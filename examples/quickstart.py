#!/usr/bin/env python3
"""Quickstart: offload a gather kernel to DX100 (the paper's Figure 7).

Builds the simulated system, writes a DX100 program for ``C[i] = A[B[i]]``
with the programming API, runs it on the timing model, validates the result
against NumPy, and prints the paper's headline metrics next to a multicore
baseline run of the same kernel.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.common import DType, SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.sim.system import SimSystem
from repro.dx100 import ProgramBuilder
from repro.workloads import GatherFull


def manual_program_demo() -> None:
    """Drive the accelerator directly through the API."""
    print("== Driving DX100 through the programming API ==")
    config = SystemConfig.dx100_system(tile_elems=4096)
    system = SimSystem(config)
    dx = system.dx100

    # Place the arrays in simulated physical memory.
    n = 4096
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1000, 16384).astype(np.uint32)
    b = rng.integers(0, len(a), n).astype(np.uint32)
    a_base = system.hostmem.place("A", a)
    b_base = system.hostmem.place("B", b)
    c_base = system.hostmem.alloc("C", n, DType.U32)
    dx.preload_pages(system.hostmem.base,
                     system.hostmem.base + system.hostmem.size)

    # The offloaded kernel: stream B, gather A[B[i]], stream-store to C.
    pb = ProgramBuilder(config.dx100)
    t_b = pb.sld(DType.U32, b_base, 0, n)       # B[i] tile
    t_c = pb.ild(DType.U32, a_base, t_b)        # A[B[i]] tile
    pb.sst(DType.U32, c_base, t_c, 0, n)        # C[i] = packed values
    pb.wait(t_c)

    finish = dx.run_program(pb.build())
    assert np.array_equal(system.hostmem.view("C"), a[b])
    print(f"  gather of {n} elements finished at cycle {finish}")
    from repro.dx100.disasm import format_timeline
    print(format_timeline(dx.records))
    print("  result validated against NumPy reference\n")


def baseline_vs_dx100_demo() -> None:
    """The packaged comparison the benchmark harness uses."""
    print("== Baseline vs DX100 on the Gather-Full microbenchmark ==")
    base = run_baseline(GatherFull(8192))
    dx = run_dx100(GatherFull(8192))
    print(f"  baseline cycles: {base.cycles:8d}  "
          f"instructions: {base.instructions:9.0f}")
    print(f"  DX100 cycles:    {dx.cycles:8d}  "
          f"instructions: {dx.instructions:9.0f}")
    print(f"  speedup: {base.cycles / dx.cycles:.2f}x  "
          f"(paper's all-hit Gather-Full: 3.2x)")


if __name__ == "__main__":
    manual_program_demo()
    baseline_vs_dx100_demo()

#!/usr/bin/env python3
"""The DX100 compiler pipeline on a legacy kernel (the paper's Section 4).

Builds the GZP-style kernel ``if (D[i] >= 50) A[B[i]] += C[i]`` in the loop
IR, then walks the three passes — tiling, indirect-access detection with
legality analysis, hoisting/sinking into packed ops — and lowers the plan
to DX100 API calls, which run on the functional simulator and are checked
against the reference interpreter.  Also shows the Gauss-Seidel kernel the
legality analysis must (and does) reject.

Run:  python examples/compiler_demo.py
"""

import numpy as np

from repro.common import AluOp, DType, DX100Config
from repro.compiler import (
    ArrayDecl, BinOp, Const, Function, If, Load, Loop, Store, Var,
    bind_arrays, find_indirect_accesses, hoist, innermost, is_legal,
    offload_kernel, reference_run, tile_loop,
)
from repro.dx100 import FunctionalDX100, HostMemory
from repro.dx100.isa import Instr


def build_kernel(n: int, m: int) -> Function:
    return Function(
        "gzp",
        arrays={
            "A": ArrayDecl("A", DType.I64, m),
            "B": ArrayDecl("B", DType.I64, n),
            "C": ArrayDecl("C", DType.I64, n),
            "D": ArrayDecl("D", DType.I64, n),
        },
        body=[Loop("i", Const(0), Const(n), [
            If(BinOp(AluOp.GE, Load("D", Var("i")), Const(50)), [
                Store("A", Load("B", Var("i")), Load("C", Var("i")),
                      accum=AluOp.ADD),
            ]),
        ])],
    )


def main() -> None:
    n, m = 2048, 1024
    fn = build_kernel(n, m)
    rng = np.random.default_rng(7)
    arrays = {
        "A": np.zeros(m, dtype=np.int64),
        "B": rng.integers(0, m, n).astype(np.int64),
        "C": rng.integers(1, 100, n).astype(np.int64),
        "D": rng.integers(0, 100, n).astype(np.int64),
    }

    print("== pass 1: tiling ==")
    tiled = tile_loop(fn.body[0], tile=512)
    inner = innermost(tiled)
    print(f"  outer loop '{tiled.var}' step {tiled.step}; "
          f"inner loop '{inner.var}'")

    print("== pass 2: detection + legality ==")
    accesses = find_indirect_accesses(inner)
    for acc in accesses:
        print(f"  {acc.kind:5s} {acc.array}[...] depth={acc.depth} "
              f"cond={'yes' if acc.cond is not None else 'no'} "
              f"legal={is_legal(inner, acc)}")

    print("== pass 3: hoist/sink into packed ops ==")
    plan = hoist(inner)
    print(f"  packed loads: {len(plan.packed_loads)}, "
          f"packed stores: {len(plan.packed_stores)}, "
          f"residual stmts: {len(plan.residual)} "
          f"(full offload: {plan.full_offload})")

    print("== code generation -> DX100 program ==")
    config = DX100Config(tile_elems=512)
    mem = HostMemory(1 << 22)
    bindings = bind_arrays(fn, mem, arrays)
    kernel = offload_kernel(fn, bindings, config, tile=512)
    n_instrs = sum(isinstance(x, Instr) for x in kernel.program)
    print(f"  {len(kernel.chunks)} tile chunks, "
          f"{n_instrs} DX100 instructions total")

    FunctionalDX100(config, mem).run(kernel.program)
    expect = reference_run(fn, arrays)
    assert np.array_equal(mem.view("A"), expect["A"])
    print("  DX100 result == reference interpreter result\n")

    print("== the Gauss-Seidel exclusion (Section 4.2) ==")
    gauss = Function(
        "gauss_seidel",
        arrays={"A": ArrayDecl("A", DType.I64, n),
                "B": ArrayDecl("B", DType.I64, n)},
        body=[Loop("i", Const(0), Const(n), [
            Store("A", Var("i"),
                  BinOp(AluOp.ADD, Load("A", Load("B", Var("i"))),
                        Const(1))),
        ])],
    )
    loop = gauss.body[0]
    for acc in find_indirect_accesses(loop):
        print(f"  load of {acc.array} through B: "
              f"legal={is_legal(loop, acc)} (aliases the store target)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A complete BFS application on DX100 (multi-level, validated).

The packaged BFS workload simulates one frontier expansion; this example
runs breadth-first search *to convergence* on a Kronecker graph, building
one DX100 program per level:

  per level:  SLD frontier -> ILD H[K]/H[K+1] -> RNG (fuse neighbour
  ranges) -> ILD adj -> ILD dist -> ALUS EQ INF (condition) -> IST dist

The host manages the frontier between levels (reading the updated distance
array), which is exactly the paper's programming model: >99% of nodes are
processed through DX100, the control loop stays on the cores.  The final
distance array is validated against networkx.

Run:  python examples/bfs_full.py
"""

import numpy as np
import networkx as nx

from repro.common import AluOp, DType, SystemConfig
from repro.dx100 import ProgramBuilder
from repro.dx100.range_fuser import plan_range_chunks
from repro.sim.system import SimSystem
from repro.workloads.gap import make_kron_csr

INF = (1 << 31) - 1


def bfs_on_dx100(system: SimSystem, h, adj, source: int) -> np.ndarray:
    config = system.config.dx100
    mem, dx = system.hostmem, system.dx100
    nodes = len(h) - 1

    h_base = mem.place("H", h)
    adj_base = mem.place("adj", adj)
    dist0 = np.full(nodes, INF, dtype=np.int64)
    dist0[source] = 0
    dist_base = mem.place("dist", dist0)
    # Level values scattered into dist; one constant array per level.
    level_base = mem.alloc("levels", nodes, DType.I64)

    dx.preload_pages(mem.base, mem.base + mem.size)
    frontier = np.array([source], dtype=np.int64)
    t = 0
    level = 0
    total_edges = 0
    while len(frontier):
        level += 1
        mem.view("levels")[:] = level
        k_name = f"K{level}"
        k_base = mem.place(k_name, np.sort(frontier))
        lows, highs = h[frontier], h[frontier + 1]
        for f0, f1 in plan_range_chunks(lows, highs, config.tile_elems):
            if (highs[f0:f1] - lows[f0:f1]).sum() == 0:
                continue
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, k_base, f0, f1)
            t_hlo = pb.ild(DType.I64, h_base, t_k)
            t_k1 = pb.alus(DType.I64, AluOp.ADD, t_k, 1)
            t_hhi = pb.ild(DType.I64, h_base, t_k1)
            t_outer, t_inner = pb.rng(t_hlo, t_hhi, outer_base=f0)
            t_adj = pb.ild(DType.I64, adj_base, t_inner)
            t_dist = pb.ild(DType.I64, dist_base, t_adj)
            t_cond = pb.alus(DType.I64, AluOp.EQ, t_dist, INF)
            t_lvl = pb.ild(DType.I64, level_base, t_adj)  # splat of `level`
            pb.ist(DType.I64, dist_base, t_adj, t_lvl, tc=t_cond)
            pb.wait(t_adj)
            t = dx.run_program(pb.build(), t)
            total_edges += int((highs[f0:f1] - lows[f0:f1]).sum())
        dist = mem.view("dist")
        frontier = np.nonzero(dist == level)[0].astype(np.int64)
        print(f"  level {level}: frontier {len(frontier):6d} nodes, "
              f"cumulative edges {total_edges:8d}, cycle {t}")
    return mem.view("dist").copy()


def main() -> None:
    scale, edge_factor = 12, 8
    rng = np.random.default_rng(42)
    h, adj = make_kron_csr(scale, edge_factor, rng)
    nodes = 1 << scale
    source = int(np.argmax(np.diff(h)))  # highest-degree node

    print(f"BFS to convergence on a Kronecker graph "
          f"(2^{scale} nodes, {len(adj)} edges), source {source}\n")
    system = SimSystem(SystemConfig.dx100_scaled(tile_elems=4096),
                       mem_bytes=1 << 24)
    dist = bfs_on_dx100(system, h, adj, source)

    # Validate against networkx on the same digraph.
    g = nx.DiGraph()
    g.add_nodes_from(range(nodes))
    for u in range(nodes):
        for j in range(int(h[u]), int(h[u + 1])):
            g.add_edge(u, int(adj[j]))
    expect = nx.single_source_shortest_path_length(g, source)
    ok = all(
        (dist[v] == expect.get(v, INF)) or (dist[v] == INF and v not in expect)
        for v in range(nodes)
    )
    reached = int((dist != INF).sum())
    print(f"\nreached {reached}/{nodes} nodes; "
          f"distances match networkx: {ok}")
    assert ok


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Unstructured-mesh gradients (UME) with the range-loop compiler.

Two parts:

1. The packaged UME kernels (GZZ conditional accumulate, GZZI two-level
   conditional gather over indirect range loops), run under baseline and
   DX100 with the paper's Figure 10-style metrics — including the
   row-buffer hit-rate jump the paper highlights (15% -> 91% on UME).

2. A CSR-style range kernel (``for i: for j in H[i]..H[i+1]``) compiled
   *automatically* by ``offload_range_kernel`` through the Range Fuser and
   validated against the reference interpreter.

Run:  python examples/mesh_gradient.py
"""

import numpy as np

from repro.common import AluOp, DType, DX100Config, SystemConfig
from repro.compiler import (
    ArrayDecl, BinOp, Const, Function, Load, Loop, Store, Var, bind_arrays,
    offload_range_kernel, reference_run,
)
from repro.dx100 import FunctionalDX100, HostMemory
from repro.sim import run_baseline, run_dx100
from repro.workloads import GZZ, GZZI


def packaged_kernels() -> None:
    print("== UME kernels: baseline vs DX100 ==")
    for title, factory in [
        ("GZZ  (RMW A[B[i]] if D[i]>=F)", lambda: GZZ(scale=1 << 15)),
        ("GZZI (LD A[B[C[j]]] over fused ranges)",
         lambda: GZZI(scale=1 << 11, zones=1 << 15)),
    ]:
        base = run_baseline(factory(), SystemConfig.baseline_scaled(),
                            warm=False)
        dx = run_dx100(factory(), SystemConfig.dx100_scaled(), warm=False)
        print(f"  {title}")
        print(f"    RBH {base.row_buffer_hit_rate:.2f} -> "
              f"{dx.row_buffer_hit_rate:.2f}   "
              f"(paper UME: 0.15 -> 0.91)")
        print(f"    BW  {base.bandwidth_utilization:.2f} -> "
              f"{dx.bandwidth_utilization:.2f},  speedup "
              f"{base.cycles / dx.cycles:.2f}x\n")


def compiled_range_kernel() -> None:
    print("== compiling a range kernel through the Range Fuser ==")
    zones, corners, points = 512, 6, 2048
    rng = np.random.default_rng(3)
    degrees = rng.integers(corners - 2, corners + 3, zones)
    h = np.zeros(zones + 1, dtype=np.int64)
    h[1:] = np.cumsum(degrees)
    nnz = int(h[-1])
    arrays = {
        "H": h,
        "corner2pt": rng.integers(0, points, nnz).astype(np.int64),
        "field": rng.integers(0, 1 << 16, points).astype(np.int64),
        "grad": np.zeros(nnz, dtype=np.int64),
    }
    # for z in zones: for j in H[z]..H[z+1]: grad[j] = field[corner2pt[j]]
    fn = Function(
        "gradient_gather",
        arrays={name: ArrayDecl(name, DType.I64, len(arr))
                for name, arr in arrays.items()},
        body=[Loop("z", Const(0), Const(zones), [
            Loop("j", Load("H", Var("z")),
                 Load("H", BinOp(AluOp.ADD, Var("z"), Const(1))), [
                     Store("grad", Var("j"),
                           Load("field", Load("corner2pt", Var("j")))),
                 ]),
        ])],
    )
    expect = reference_run(fn, arrays)

    config = DX100Config(tile_elems=1024)
    mem = HostMemory(1 << 22)
    bindings = bind_arrays(fn, mem, arrays)
    kernel = offload_range_kernel(fn, bindings, h, config, tile=1024)
    FunctionalDX100(config, mem).run(kernel.program)
    ok = np.array_equal(mem.view("grad"), expect["grad"])
    print(f"  {zones} zones, {nnz} corners fused into "
          f"{len(kernel.chunks)} tile chunks")
    print(f"  compiled result == interpreter result: {ok}")
    assert ok


if __name__ == "__main__":
    packaged_kernels()
    compiled_range_kernel()

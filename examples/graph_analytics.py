#!/usr/bin/env python3
"""Graph analytics on DX100: one PageRank iteration, three ways.

Shows the paper's GAP workload flow end to end:

1. the multicore baseline (atomic scatter-add over edges),
2. the DMP indirect-prefetcher system,
3. the DX100-offloaded version (range fuser + indirect RMW),

and prints the Figure 9/10/12-style metrics for each, including the
row-buffer hit rate the Row Table's reordering buys.

Run:  python examples/graph_analytics.py
"""

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads import PageRank


def main() -> None:
    make = lambda: PageRank(scale=1 << 12, nodes=1 << 17)

    print("PageRank iteration: uniform graph, "
          f"{1 << 17} nodes, slice of {1 << 12} source nodes\n")
    rows = {
        "baseline": run_baseline(make(), SystemConfig.baseline_scaled(),
                                 warm=False),
        "dmp": run_baseline(make(), SystemConfig.dmp_scaled(), warm=False),
        "dx100": run_dx100(make(), SystemConfig.dx100_scaled(), warm=False),
    }

    header = (f"{'config':9s} {'cycles':>10s} {'BW util':>8s} "
              f"{'RBH':>6s} {'occupancy':>10s} {'instructions':>13s}")
    print(header)
    for name, r in rows.items():
        print(f"{name:9s} {r.cycles:10d} {r.bandwidth_utilization:7.2f} "
              f"{r.row_buffer_hit_rate:5.2f} "
              f"{r.request_buffer_occupancy:9.1f} {r.instructions:13.0f}")

    base = rows["baseline"]
    print()
    print(f"DX100 speedup over baseline: "
          f"{base.cycles / rows['dx100'].cycles:.2f}x")
    print(f"DX100 speedup over DMP:      "
          f"{rows['dmp'].cycles / rows['dx100'].cycles:.2f}x "
          f"(paper geomean: 2.0x)")
    print(f"The scatter-add result was validated against NumPy inside "
          f"run_dx100().")


if __name__ == "__main__":
    main()

"""End-to-end DRAM system behaviour: bandwidth and hit-rate shapes."""

import random

import pytest

from repro.common import DRAMConfig, DRAMRequest
from repro.dram import DRAMSystem


def _run_pattern(addresses, arrivals=None):
    system = DRAMSystem(DRAMConfig())
    reqs = []
    for i, addr in enumerate(addresses):
        arrival = 0 if arrivals is None else arrivals[i]
        reqs.append(system.access(addr, is_write=False, arrival=arrival))
    system.drain()
    return system, reqs


def test_streaming_reads_approach_peak_bandwidth():
    # 4096 consecutive cache lines, all visible at once.
    system, reqs = _run_pattern([i * 64 for i in range(4096)])
    elapsed = system.last_finish()
    util = system.bandwidth_utilization(elapsed)
    assert util > 0.85
    assert system.row_buffer_hit_rate() > 0.95


def test_random_reads_have_low_row_hit_rate():
    rng = random.Random(7)
    addrs = [rng.randrange(0, 1 << 28) & ~63 for _ in range(4096)]
    system, _ = _run_pattern(addrs)
    assert system.row_buffer_hit_rate() < 0.35


def test_random_bandwidth_below_streaming():
    rng = random.Random(3)
    random_addrs = [rng.randrange(0, 1 << 28) & ~63 for _ in range(2048)]
    stream_addrs = [i * 64 for i in range(2048)]
    rnd, _ = _run_pattern(random_addrs)
    stream, _ = _run_pattern(stream_addrs)
    rnd_util = rnd.bandwidth_utilization(rnd.last_finish())
    stream_util = stream.bandwidth_utilization(stream.last_finish())
    assert stream_util > 1.8 * rnd_util


def test_row_sorted_random_indices_recover_hit_rate():
    # The DX100 mechanism in miniature: the same random lines, presented
    # sorted by (bank, row), produce long same-row runs.
    # 2048 lines over a 4 MiB footprint: ~4 lines per DRAM row, so sorting
    # can recover row hits (the paper's UME case groups 7.6 columns/row).
    rng = random.Random(11)
    addrs = [rng.randrange(0, 1 << 22) & ~63 for _ in range(2048)]
    shuffled, _ = _run_pattern(addrs)
    system = DRAMSystem(DRAMConfig())
    keyed = sorted(addrs, key=lambda a: (system.mapper.map(a).flat_bank,
                                         system.mapper.map(a).row))
    sorted_sys, _ = _run_pattern(keyed)
    assert sorted_sys.row_buffer_hit_rate() > shuffled.row_buffer_hit_rate() + 0.3


def test_single_channel_halves_peak():
    one = DRAMConfig(channels=1)
    assert one.peak_bw_gbps == pytest.approx(25.6, rel=1e-3)


def test_complete_services_on_demand():
    system = DRAMSystem(DRAMConfig())
    r1 = system.access(0, False, arrival=0)
    r2 = system.access(64 * 9, False, arrival=0)
    finish = system.complete(r2)
    assert r2.done and finish == r2.finish
    system.complete(r1)
    assert r1.done


def test_merged_stats_sum_channels():
    system, _ = _run_pattern([i * 64 for i in range(64)])
    stats = system.merged_stats()
    assert stats.get("serviced") == 64
    assert stats.get("bytes") == 64 * 64


def test_mean_occupancy_nonzero_under_load():
    system, _ = _run_pattern([i * 64 for i in range(512)])
    assert system.mean_occupancy() > 1.0

"""The command-stream auditor itself: wiring, reporting, and detection.

Legality of the *real* controller is covered by
``test_timing_legality.py``; these tests make sure the auditor is not
vacuous — that it attaches through the observer hook, reports violations
with command context, and *detects* seeded protocol bugs (mutation-style:
a controller with a constraint deliberately dropped must fail loudly).
"""

import pytest

from repro.common import DDR4Timing, DRAMConfig, DRAMRequest
from repro.common.config import ddr5_6400
from repro.dram import (AddressMapper, CommandAuditor, DRAMSystem,
                        MemoryController, TimingViolationError, audit_log)
from repro.dram.bank import BankState

T = DDR4Timing()
BANK = (0, 0, 0, 0)


def _drive(ctrl, n=64, stride=4096, write_every=2):
    for i in range(n):
        ctrl.enqueue(DRAMRequest((i * stride) & ~63,
                                 write_every and i % write_every == 1,
                                 arrival=i))
    ctrl.drain()


# ---------------------------------------------------------------- wiring

def test_auditor_attaches_via_observer_hook():
    cfg = DRAMConfig(channels=1)
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    auditor = CommandAuditor().attach(ctrl)
    assert auditor.observe in ctrl.command_observers
    assert auditor.timing is ctrl.timing  # adopted from the controller
    _drive(ctrl)
    assert auditor.commands_seen > 0
    assert auditor.ok
    auditor.assert_clean()  # no-op on a clean stream


def test_observer_and_log_recorder_coexist():
    cfg = DRAMConfig(channels=1)
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    ctrl.record_commands = True
    auditor = CommandAuditor(cfg.timing).attach(ctrl)
    _drive(ctrl, n=16)
    assert auditor.commands_seen == len(ctrl.command_log)
    # Replaying the recorded log reproduces the streaming verdict.
    assert audit_log(ctrl.command_log, cfg.timing) == []


def test_dram_system_audit_knob():
    from dataclasses import replace
    system = DRAMSystem(replace(DRAMConfig(), audit=True))
    assert system.auditor is not None
    for i in range(128):
        system.access(i * 64, False, arrival=i)
    system.drain()
    assert system.auditor.commands_seen > 0
    assert system.audit_violations() == []
    system.assert_audit_clean()


def test_dram_system_audit_off_by_default():
    system = DRAMSystem(DRAMConfig())
    assert system.auditor is None
    assert system.audit_violations() == []
    system.assert_audit_clean()  # no-op


def test_sim_system_audit_passthrough():
    from repro.common import SystemConfig
    from repro.sim.system import SimSystem
    system = SimSystem(SystemConfig.baseline_scaled(), audit=True)
    assert system.dram.auditor is not None


def test_ddr5_closed_page_audits_clean():
    from dataclasses import replace
    cfg = replace(ddr5_6400(), page_policy="closed", audit=True)
    system = DRAMSystem(cfg)
    for i in range(512):
        system.access(i * 64, i % 3 == 1, arrival=i)
    system.drain()
    system.assert_audit_clean()


# ------------------------------------------------------------- detection

def seeded_log_trwr_violation():
    """A WR followed by a PRE inside the write-recovery window.

    PRE at tRAS satisfies the ACT->PRE constraint but lands only
    tRAS - tRCD = 64 cycles after the WR, inside the 88-cycle
    tCWL+tBL+tWR recovery window."""
    return [
        ("ACT", 0, BANK, 7),
        ("WR", T.tRCD, BANK, 7),
        ("PRE", T.tRAS, BANK, 7),   # tRAS ok, tWR violated
    ]


def test_auditor_detects_seeded_twr_violation():
    violations = audit_log(seeded_log_trwr_violation(), T)
    assert [v.rule for v in violations] == ["tWR"]
    v = violations[0]
    assert v.command.kind == "PRE"
    assert v.required == T.tCWL + T.tBL + T.tWR
    assert v.slack > 0
    # The report carries command context, not a bare assert.
    text = str(v)
    assert "PRE" in text and "tWR" in text and "cycles after" in text


def test_strict_auditor_raises_with_context():
    auditor = CommandAuditor(T, strict=True)
    with pytest.raises(TimingViolationError) as exc:
        auditor.check_log(seeded_log_trwr_violation())
    assert exc.value.violation.rule == "tWR"


def test_mutated_controller_ignoring_twr_fails_audit(monkeypatch):
    """Mutation test: drop the tWR update (the exact shape of the fixed
    closed-page bug) and the auditor must fail loudly."""
    monkeypatch.setattr(BankState, "column_write",
                        lambda self, t_col, timing: None)
    cfg = DRAMConfig(channels=1, page_policy="closed")
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    auditor = CommandAuditor(cfg.timing).attach(ctrl)
    _drive(ctrl, n=8)
    assert not auditor.ok
    assert any(v.rule == "tWR" for v in auditor.violations)
    with pytest.raises(TimingViolationError):
        auditor.assert_clean()


def test_mutated_controller_ignoring_bus_fails_audit(monkeypatch):
    """Drop the channel bus serialization; a row-hit stream then issues
    back-to-back columns and must trip the tCCD / data-bus checks."""
    from repro.dram.bank import ChannelBusState
    monkeypatch.setattr(ChannelBusState, "earliest_col",
                        lambda self, bankgroup, is_write, timing: 0)
    cfg = DRAMConfig(channels=1)
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    auditor = CommandAuditor(cfg.timing).attach(ctrl)
    _drive(ctrl, n=64, stride=64, write_every=0)
    rules = {v.rule for v in auditor.violations}
    assert rules & {"tCCD_S", "tCCD_L", "data-bus-overlap"}


def test_auditor_detects_protocol_inconsistencies():
    aud = CommandAuditor(T)
    aud.check_log([
        ("ACT", 0, BANK, 1),
        ("RD", T.tRCD, BANK, 2),              # wrong row
        ("PRE", T.tRAS + T.tRTP + T.tRCD, BANK, 1),
        ("RD", T.tRAS + T.tRTP + T.tRCD + 1, BANK, 1),  # bank closed
    ])
    rules = [v.rule for v in aud.violations]
    assert "row-mismatch" in rules
    assert "col-on-closed-bank" in rules


def test_auditor_detects_data_bus_overlap():
    # Two reads tCCD_L apart are bus-legal; closer bursts are not.
    bank2 = (0, 0, 1, 0)
    aud = CommandAuditor(T)
    aud.check_log([
        ("ACT", 0, BANK, 0),
        ("ACT", T.tRRD_S, bank2, 0),
        ("RD", T.tRCD, BANK, 0),
        ("RD", T.tRCD + T.tCCD_S - 2, bank2, 0),  # violates tCCD_S too
    ])
    rules = {v.rule for v in aud.violations}
    assert "tCCD_S" in rules
    assert "data-bus-overlap" in rules


# ---------------------------------------------------------- rank scoping

def test_trrd_tfaw_scoped_per_rank_not_per_channel():
    """Back-to-back ACTs in *different ranks* of one channel are legal at
    any spacing; the old channel-scoped checker flagged these."""
    rank0 = (0, 0, 0, 0)
    rank1 = (0, 1, 0, 0)
    log = [("ACT", 0, rank0, 0), ("ACT", 1, rank1, 0)]
    assert audit_log(log, T) == []
    # Same rank at the same spacing *is* a violation.
    bank_b = (0, 0, 1, 0)   # other bank group, same rank
    log = [("ACT", 0, rank0, 0), ("ACT", 1, bank_b, 0)]
    assert [v.rule for v in audit_log(log, T)] == ["tRRD_S"]


def test_tfaw_counts_four_activates_within_one_rank():
    T4 = T
    banks_r0 = [(0, 0, bg, 0) for bg in range(4)] + [(0, 0, 0, 1)]
    t = 0
    log = []
    for bank in banks_r0[:4]:
        log.append(("ACT", t, bank, 0))
        t += T4.tRRD_S
    # Fifth ACT in the same rank, inside the tFAW window of the first.
    log.append(("ACT", log[0][1] + T4.tFAW - 1, banks_r0[4], 0))
    assert any(v.rule == "tFAW" for v in audit_log(log, T4))
    # The same fifth ACT in another rank is unconstrained.
    legal = log[:4] + [("ACT", log[0][1] + T4.tFAW - 1, (0, 1, 0, 0), 0)]
    assert audit_log(legal, T4) == []


# ------------------------------------------------------------- reporting

def test_report_and_recording_cap():
    aud = CommandAuditor(T, max_recorded=2)
    bad = []
    for i in range(5):
        bank = (0, 0, 0, i % 4)
        # Widely spaced so each RD trips *only* col-on-closed-bank.
        bad.append(("RD", i * 1000, bank, 0))
    aud.check_log(bad)
    assert aud.violation_count == 5
    assert len(aud.violations) == 2  # capped, count is not
    text = aud.report(limit=1)
    assert "5 violation(s)" in text
    assert "more" in text

"""Address mapper: bijectivity and interleaving properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DRAMConfig
from repro.dram import AddressMapper


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(DRAMConfig())


def test_sequential_lines_interleave_channels(mapper):
    coords = [mapper.map(i * 64) for i in range(8)]
    assert [c.channel for c in coords] == [0, 1] * 4


def test_sequential_lines_interleave_bankgroups(mapper):
    # Within one channel, consecutive lines walk the four bank groups.
    coords = [mapper.map(i * 64) for i in range(0, 16, 2)]
    assert [c.bankgroup for c in coords] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_row_locality_within_channel_group(mapper):
    # Lines 0 and 8 share (channel, bankgroup, bank, row): column differs.
    a, b = mapper.map(0), mapper.map(8 * 64)
    assert a.flat_bank == b.flat_bank
    assert a.row == b.row
    assert b.column == a.column + 1


def test_compose_round_trip(mapper):
    addr = mapper.compose(channel=1, bankgroup=2, bank=3, row=77, column=5)
    c = mapper.map(addr)
    assert (c.channel, c.bankgroup, c.bank, c.row, c.column) == (1, 2, 3, 77, 5)


def test_bad_field_order_rejected():
    with pytest.raises(ValueError):
        AddressMapper(DRAMConfig(), order=("channel", "row"))


def test_compose_rejects_overflow(mapper):
    with pytest.raises(ValueError):
        mapper.compose(channel=2)  # only 1 channel bit


@settings(max_examples=200)
@given(st.integers(min_value=0, max_value=(1 << 30) - 1))
def test_map_unmap_is_identity_on_line_addresses(line_index):
    mapper = AddressMapper(DRAMConfig())
    addr = line_index * 64 % (1 << mapper.total_bits)
    assert mapper.unmap(mapper.map(addr)) == mapper.line_addr(addr)


@settings(max_examples=100)
@given(st.permutations(["channel", "bankgroup", "column", "bank", "rank", "row"]))
def test_any_field_order_is_bijective(order):
    mapper = AddressMapper(DRAMConfig(), order=tuple(order))
    for line in (0, 1, 12345, 999_999):
        addr = line * 64 % (1 << mapper.total_bits)
        assert mapper.unmap(mapper.map(addr)) == addr


def test_coords_within_geometry(mapper):
    cfg = DRAMConfig()
    for line in range(0, 4096, 7):
        c = mapper.map(line * 64)
        assert 0 <= c.channel < cfg.channels
        assert 0 <= c.bankgroup < cfg.bankgroups
        assert 0 <= c.bank < cfg.banks_per_group
        assert 0 <= c.column < cfg.columns
        assert 0 <= c.row < cfg.rows


# ----------------------------------------- map_arrays (tile-granular decode)

def _check_against_scalar(mapper, addrs):
    """Every map_arrays field must equal the per-address map() decode."""
    out = mapper.map_arrays(addrs)
    cfg = mapper.config
    for i, addr in enumerate(addrs):
        c = mapper.map(int(addr))
        assert out["channel"][i] == c.channel
        assert out["rank"][i] == c.rank
        assert out["bankgroup"][i] == c.bankgroup
        assert out["bank"][i] == c.bank
        assert out["row"][i] == c.row
        assert out["column"][i] == c.column
        flat = (((c.rank * cfg.bankgroups + c.bankgroup)
                 * cfg.banks_per_group + c.bank) * cfg.channels + c.channel)
        assert out["flat_bank"][i] == flat
        assert out["line"][i] == mapper.line_addr(int(addr))


def test_map_arrays_empty_tile(mapper):
    out = mapper.map_arrays([])
    for field in ("channel", "rank", "bankgroup", "bank", "row", "column",
                  "flat_bank", "line"):
        assert len(out[field]) == 0


def test_map_arrays_single_line(mapper):
    addr = mapper.compose(channel=1, bankgroup=2, bank=3, row=77, column=5)
    _check_against_scalar(mapper, [addr, addr + 63])  # both byte offsets
    out = mapper.map_arrays([addr + 63])
    assert out["line"][0] == addr  # offset bits stripped


def test_map_arrays_channel_boundary_straddle(mapper):
    """Consecutive lines across the channel-interleave boundary: the tile
    decode must split them exactly where the scalar decode does (line i
    and line i+1 land on different channels, same row)."""
    base = mapper.compose(row=9, column=mapper.config.columns - 1)
    addrs = [base + k * 64 for k in range(-2, 3)]
    _check_against_scalar(mapper, addrs)
    out = mapper.map_arrays(addrs)
    assert len(set(int(c) for c in out["channel"][:2])) == 2


def test_map_arrays_flat_bank_consistent_with_coord_key(mapper):
    """The integer flat_bank is injective over DRAMCoord's (channel, rank,
    bankgroup, bank) tuple — the tile sort key and the controller's
    bank-state key partition addresses identically."""
    addrs = [i * 64 * 13 for i in range(128)]
    out = mapper.map_arrays(addrs)
    by_int: dict[int, tuple] = {}
    for i, addr in enumerate(addrs):
        key = int(out["flat_bank"][i])
        coord_key = mapper.map(addr).flat_bank
        assert by_int.setdefault(key, coord_key) == coord_key
    assert len(by_int) == len({mapper.map(a).flat_bank for a in addrs})


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1),
                min_size=0, max_size=40),
       st.permutations(["channel", "bankgroup", "column", "bank", "rank",
                        "row"]))
def test_map_arrays_equals_scalar_map_any_order(line_indices, order):
    mapper = AddressMapper(DRAMConfig(), order=tuple(order))
    addrs = [li * 64 % (1 << mapper.total_bits) for li in line_indices]
    _check_against_scalar(mapper, addrs)

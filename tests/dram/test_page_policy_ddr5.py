"""Closed-page policy and the DDR5 sensitivity preset."""

import pytest

from repro.common import DRAMConfig, DRAMRequest
from repro.common.config import ddr5_6400
from repro.dram import AddressMapper, DRAMSystem, MemoryController


def _run(cfg, addrs):
    mapper = AddressMapper(cfg)
    ctrl = MemoryController(0, cfg, mapper)
    ctrl.record_commands = True
    for i, a in enumerate(addrs):
        ctrl.enqueue(DRAMRequest(a & ~63, False, arrival=i))
    ctrl.drain()
    return ctrl


def test_closed_page_precharges_after_every_access():
    cfg = DRAMConfig(channels=1, page_policy="closed")
    ctrl = _run(cfg, [i * 64 for i in range(64)])
    kinds = [k for k, *_ in ctrl.command_log]
    assert kinds.count("PRE") == kinds.count("RD")
    # Closed page: no row hits even on a perfect stream.
    assert ctrl.stats.get("row_hits") == 0


def test_open_page_beats_closed_on_streams():
    stream = [i * 64 for i in range(512)]
    open_ctrl = _run(DRAMConfig(channels=1), stream)
    closed_ctrl = _run(DRAMConfig(channels=1, page_policy="closed"), stream)
    assert open_ctrl.stats.get("last_finish") < \
        closed_ctrl.stats.get("last_finish")


def test_closed_page_schedule_is_legal():
    from tests.dram.test_timing_legality import check_legality
    cfg = DRAMConfig(channels=1, page_policy="closed")
    ctrl = _run(cfg, [i * 4096 for i in range(128)])
    check_legality(ctrl.command_log)


def test_ddr5_preset_geometry():
    cfg = ddr5_6400()
    assert cfg.channels == 4
    assert cfg.bankgroups == 8
    assert cfg.peak_bw_gbps == pytest.approx(102.4, rel=1e-3)
    assert cfg.timing.tCK == 1


def test_ddr5_system_services_requests():
    system = DRAMSystem(ddr5_6400())
    reqs = [system.access(i * 64, False, arrival=0) for i in range(4096)]
    system.drain()
    assert all(r.done for r in reqs)
    util = system.bandwidth_utilization(system.last_finish())
    assert util > 0.7  # streams come close to the wider system's peak
    assert system.row_buffer_hit_rate() > 0.9

"""JEDEC timing-legality audit of the controller's command schedule.

Property-based: random request mixes are serviced with the streaming
:class:`~repro.dram.audit.CommandAuditor` attached, and the resulting
ACT/PRE/RD/WR schedule is checked against every constraint the model
claims to honour.  This is the request-granular model's substitute for a
cycle-accurate simulator's assertion machinery.

The legality rules live in ``repro.dram.audit`` (tRRD/tFAW correctly
scoped per rank, not per channel); :func:`check_legality` remains as a
thin wrapper over the auditor for recorded logs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DDR4Timing, DRAMConfig, DRAMRequest
from repro.dram import AddressMapper, CommandAuditor, MemoryController

T = DDR4Timing()


def run_commands(addr_writes, buffer=32, **cfg_kwargs):
    cfg = DRAMConfig(channels=1, request_buffer=buffer, **cfg_kwargs)
    mapper = AddressMapper(cfg)
    ctrl = MemoryController(0, cfg, mapper)
    ctrl.record_commands = True
    for i, (addr, is_write) in enumerate(addr_writes):
        ctrl.enqueue(DRAMRequest(addr & ~63, is_write, arrival=i))
    ctrl.drain()
    return ctrl.command_log


def check_legality(log, timing=None):
    """Assert every JEDEC constraint on a command log (auditor-backed)."""
    auditor = CommandAuditor(timing or T)
    auditor.check_log(log)
    auditor.assert_clean()


def test_streaming_schedule_is_legal():
    log = run_commands([(i * 64, False) for i in range(512)])
    check_legality(log)


def test_random_read_schedule_is_legal():
    rng = random.Random(0)
    log = run_commands([(rng.randrange(0, 1 << 24), False)
                        for _ in range(512)])
    check_legality(log)


def test_mixed_read_write_schedule_is_legal():
    rng = random.Random(1)
    log = run_commands([(rng.randrange(0, 1 << 22), rng.random() < 0.4)
                        for _ in range(512)])
    check_legality(log)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, (1 << 22) - 1), st.booleans()),
                min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_any_schedule_is_legal(reqs, buffer):
    log = run_commands([(a, w) for a, w in reqs], buffer=buffer)
    check_legality(log)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, (1 << 22) - 1), st.booleans()),
                min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_closed_page_schedule_is_legal(reqs, buffer):
    """The closed-page auto-precharge path honours tRTP/tWR recovery.

    Regression cover for the bug where the auto-precharge read
    ``pre_ready`` *before* the column command updated it, issuing PRE in
    violation of tWR on every write."""
    log = run_commands([(a, w) for a, w in reqs], buffer=buffer,
                       page_policy="closed")
    check_legality(log)


def test_closed_page_write_recovery_regression():
    """8 alternating R/W to distinct rows: the seed model issued 4 PREs
    inside the tWR window here."""
    log = run_commands([(i * 4096, i % 2 == 1) for i in range(8)],
                       page_policy="closed")
    check_legality(log)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, (1 << 24) - 1), st.booleans()),
                min_size=1, max_size=200),
       st.sampled_from(["open", "closed"]))
def test_multirank_schedule_is_legal(reqs, page_policy):
    """tRRD/tFAW are per rank; a two-rank channel must still be legal
    (and is *allowed* to activate faster across ranks)."""
    log = run_commands([(a, w) for a, w in reqs], ranks=2,
                       page_policy=page_policy)
    check_legality(log)


def test_command_log_off_by_default():
    cfg = DRAMConfig(channels=1)
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    ctrl.enqueue(DRAMRequest(0, False, arrival=0))
    ctrl.drain()
    assert ctrl.command_log == []

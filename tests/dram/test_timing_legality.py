"""JEDEC timing-legality audit of the controller's command schedule.

Property-based: random request mixes are serviced with command recording
on, and the resulting ACT/PRE/RD/WR schedule is checked against every
constraint the model claims to honour.  This is the request-granular
model's substitute for a cycle-accurate simulator's assertion machinery.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DDR4Timing, DRAMConfig, DRAMRequest
from repro.dram import AddressMapper, MemoryController

T = DDR4Timing()


def run_commands(addr_writes, buffer=32):
    cfg = DRAMConfig(channels=1, request_buffer=buffer)
    mapper = AddressMapper(cfg)
    ctrl = MemoryController(0, cfg, mapper)
    ctrl.record_commands = True
    for i, (addr, is_write) in enumerate(addr_writes):
        ctrl.enqueue(DRAMRequest(addr & ~63, is_write, arrival=i))
    ctrl.drain()
    return ctrl.command_log


def check_legality(log):
    """Assert every pairwise JEDEC constraint on a command log."""
    per_bank: dict = {}
    acts = []
    cols = []
    for kind, t, bank, row in log:
        state = per_bank.setdefault(bank, {"act": None, "pre": None,
                                           "cols": [], "open": None})
        if kind == "ACT":
            if state["act"] is not None:
                assert t - state["act"] >= T.tRC, "tRC violated"
            if state["pre"] is not None:
                assert t - state["pre"] >= T.tRP, "tRP violated"
            state["act"] = t
            state["open"] = row
            acts.append((t, bank))
        elif kind == "PRE":
            assert state["act"] is not None, "PRE before any ACT"
            assert t - state["act"] >= T.tRAS, "tRAS violated"
            for col_t, col_kind in state["cols"]:
                if col_kind == "RD":
                    assert t - col_t >= T.tRTP, "tRTP violated"
                else:
                    assert t - col_t >= T.tCWL + T.tBL + T.tWR, \
                        "tWR violated"
            state["pre"] = t
            state["cols"] = []
            state["open"] = None
        else:  # RD / WR
            assert state["open"] == row, "column to a closed/wrong row"
            assert t - state["act"] >= T.tRCD, "tRCD violated"
            state["cols"].append((t, kind))
            cols.append((t, bank, kind))
    # Channel-level column-to-column spacing.
    cols.sort()
    for (t1, b1, k1), (t2, b2, k2) in zip(cols, cols[1:]):
        bg1, bg2 = b1[2], b2[2]
        need = T.tCCD_L if bg1 == bg2 else T.tCCD_S
        assert t2 - t1 >= need, "tCCD violated"
    # Rank-level activate pacing.
    acts.sort()
    for (t1, b1), (t2, b2) in zip(acts, acts[1:]):
        need = T.tRRD_L if b1[2] == b2[2] else T.tRRD_S
        assert t2 - t1 >= need, "tRRD violated"
    for i in range(len(acts) - 4):
        assert acts[i + 4][0] - acts[i][0] >= T.tFAW, "tFAW violated"


def test_streaming_schedule_is_legal():
    log = run_commands([(i * 64, False) for i in range(512)])
    check_legality(log)


def test_random_read_schedule_is_legal():
    rng = random.Random(0)
    log = run_commands([(rng.randrange(0, 1 << 24), False)
                        for _ in range(512)])
    check_legality(log)


def test_mixed_read_write_schedule_is_legal():
    rng = random.Random(1)
    log = run_commands([(rng.randrange(0, 1 << 22), rng.random() < 0.4)
                        for _ in range(512)])
    check_legality(log)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, (1 << 22) - 1), st.booleans()),
                min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_any_schedule_is_legal(reqs, buffer):
    log = run_commands([(a, w) for a, w in reqs], buffer=buffer)
    check_legality(log)


def test_command_log_off_by_default():
    cfg = DRAMConfig(channels=1)
    ctrl = MemoryController(0, cfg, AddressMapper(cfg))
    ctrl.enqueue(DRAMRequest(0, False, arrival=0))
    ctrl.drain()
    assert ctrl.command_log == []

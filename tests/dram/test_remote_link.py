"""Unit tests for the far-memory link model (:mod:`repro.dram.remote`).

Pin the link's cycle-level semantics in isolation — outbound
serialization, the return channel, the queue-depth ring, congestion —
plus the two system-level contracts that ride on it: a disabled link is
bitwise absent, and :meth:`DRAMSystem.bandwidth_utilization` always
normalizes by the *active* config's peak bandwidth when technologies are
swapped mid-suite.
"""

from dataclasses import replace

import pytest

from repro.common.config import (
    CPU_GHZ, DRAMConfig, RemoteLinkConfig, cxl_remote, dram_preset,
    ddr5_6400,
)
from repro.dram import DRAMSystem
from repro.dram.remote import RemoteLink


def _link(**kwargs) -> RemoteLink:
    return RemoteLink(RemoteLinkConfig(enabled=True, **kwargs),
                      line_bytes=64)


# ------------------------------------------------------------- validation

@pytest.mark.parametrize("kwargs", [
    {"placement": "striped"},
    {"latency": -1},
    {"gbps": 0.0},
    {"gbps": -2.5},
    {"queue_depth": 0},
])
def test_invalid_link_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        _link(**kwargs)


# -------------------------------------------------------------- placement

def test_placement_all_and_range():
    assert _link(placement="all").is_far(0)
    ranged = _link(placement="range", far_base=1 << 20)
    assert not ranged.is_far((1 << 20) - 64)
    assert ranged.is_far(1 << 20)


def test_placement_hash_is_deterministic_and_line_granular():
    link = _link(placement="hash", far_fraction=0.5)
    picks = [link.is_far(i * 64) for i in range(4096)]
    assert picks == [link.is_far(i * 64) for i in range(4096)]
    far = sum(picks)
    assert 1000 < far < 3100, "hash split should be near the fraction"
    # Same line, any byte: placement is line-granular.
    assert link.is_far(640) == link.is_far(640 + 63)
    assert all(_link(placement="hash", far_fraction=1.0).is_far(i * 64)
               for i in range(64))
    assert not any(_link(placement="hash", far_fraction=0.0).is_far(i * 64)
                   for i in range(64))


# ------------------------------------------------------------- traversal

def test_inject_adds_latency_and_serializes_the_request_channel():
    link = _link(latency=400)
    # First read departs immediately: arrival + latency.
    assert link.inject(100, is_write=False) == 500
    # A read header occupies 1 cycle, so a simultaneous second read
    # departs one cycle later.
    assert link.inject(100, is_write=False) == 501
    counters = link.stats.counters
    assert counters["far_reads"] == 2
    assert counters["link_out_wait"] == 1
    assert counters["far_bytes"] == 128


def test_inject_writes_serialize_the_payload():
    link = _link(latency=0, gbps=32.0)
    data = link.data_cycles
    assert data == -(-int(64 * CPU_GHZ * 1000) // int(32.0 * 1000))
    assert link.inject(0, is_write=True) == 0
    # The payload held the channel for data_cycles.
    assert link.inject(0, is_write=True) == data
    assert link.stats.counters["far_writes"] == 2


def test_deliver_adds_latency_and_serializes_the_return_channel():
    link = _link(latency=400, queue_depth=64)
    data = link.data_cycles
    # First response: payload + propagation.
    assert link.deliver(1000, is_write=False) == 1000 + data + 400
    # Second response finishing at the same cycle queues behind it.
    assert link.deliver(1000, is_write=False) == 1000 + 2 * data + 400
    assert link.stats.counters["far_serviced"] == 2
    assert link.stats.counters["link_ret_wait"] == data
    assert link.transfers == 2
    assert link.mean_return_wait() == data / 2


def test_deliver_queue_depth_ring_bounds_inflight_transfers():
    """With a Q-deep ring, delivery k must wait for delivery k-Q to land:
    a burst of far completions drains at one payload per slot, and the
    (Q+1)-th waits for the first's full round trip."""
    latency, q = 1000, 2
    link = _link(latency=latency, queue_depth=q)
    data = link.data_cycles
    deliveries = [link.deliver(0, is_write=False) for _ in range(4)]
    # First two pipeline on the return channel alone.
    assert deliveries[0] == data + latency
    assert deliveries[1] == 2 * data + latency
    # Third grants only once the first lands (ring slot reuse).
    assert deliveries[2] == deliveries[0] + data + latency
    assert deliveries[3] == deliveries[1] + data + latency
    # A deep ring with the same traffic never hits the bound.
    wide = _link(latency=latency, queue_depth=64)
    free = [wide.deliver(0, is_write=False) for _ in range(4)]
    assert free == [(i + 1) * data + latency for i in range(4)]


def test_congestion_model_adds_occupancy_proportional_delay():
    base = _link(latency=500, queue_depth=4)
    congested = _link(latency=500, queue_depth=4, congestion=True)
    plain = [base.deliver(0, is_write=False) for _ in range(8)]
    slow = [congested.deliver(0, is_write=False) for _ in range(8)]
    assert slow[0] == plain[0]          # empty link: no extra delay
    assert slow[-1] > plain[-1]         # standing queue costs extra
    assert all(s >= p for s, p in zip(slow, plain))


def test_write_acks_are_header_sized():
    link = _link(latency=100)
    data = link.data_cycles
    # A write's ack holds the return channel for 1 cycle, not data_cycles.
    assert link.deliver(0, is_write=True) == 1 + 100
    assert link.deliver(0, is_write=False) == 1 + data + 100


# ---------------------------------------------------------- system contracts

def test_disabled_link_leaves_system_untouched():
    system = DRAMSystem(DRAMConfig(channels=1))
    assert system.remote is None
    assert all(ctrl.remote is None for ctrl in system.controllers)
    req = system.access(4096, False, 0)
    system.drain()
    assert not req.far
    assert "far_serviced" not in system.merged_stats().counters


def test_enabled_link_shifts_far_completions():
    local = DRAMSystem(DRAMConfig(channels=1))
    far = DRAMSystem(replace(cxl_remote(), channels=1))
    assert far.remote is not None
    assert all(ctrl.remote is far.remote for ctrl in far.controllers)
    r_local = local.access(4096, False, 0)
    r_far = far.access(4096, False, 0)
    local.drain()
    far.drain()
    assert r_far.far and not r_local.far
    # Two one-way traversals plus at least one payload serialization.
    min_extra = 2 * far.remote.latency + far.remote.data_cycles
    assert r_far.finish >= r_local.finish + min_extra
    assert far.merged_stats().counters["far_serviced"] == 1


def test_bandwidth_utilization_tracks_the_active_config():
    """Swapping memory technologies mid-suite must swap the utilization
    denominator: identical traffic over identical elapsed cycles yields
    utilizations in exact inverse ratio of the peak bandwidths."""
    results = {}
    for name in ("ddr4", "ddr5"):
        cfg = dram_preset(name)
        system = DRAMSystem(cfg)
        for i in range(64):
            system.access(i * 64, False, 0)
        system.drain()
        results[name] = (system.bandwidth_utilization(10_000),
                         cfg.peak_bw_gbps, system.total_bytes())
    (u4, peak4, bytes4), (u5, peak5, bytes5) = \
        results["ddr4"], results["ddr5"]
    assert bytes4 == bytes5
    assert peak5 > peak4
    assert u4 == pytest.approx(u5 * peak5 / peak4)
    # And the DDR5 run's own denominator really is the DDR5 peak.
    seconds = 10_000 * (1.0 / CPU_GHZ) * 1e-9
    assert u5 == pytest.approx(bytes5 / seconds / 1e9 / peak5)
    # Guard the preset ordering assumption explicitly too.
    assert ddr5_6400().peak_bw_gbps == peak5

"""Differential tests: indexed schedulers vs the linear-scan oracles.

The indexed ``FRFCFS`` / ``FCFS`` must reproduce the pick order of
``ReferenceFRFCFS`` / ``ReferenceFCFS`` *exactly* — including the age-cap
override and the tie-break on equal arrivals (earlier buffer insertion
wins).  Two layers of checking:

* property tests drive random operation programs (insert / take /
  activate / precharge, with time advancing and out-of-order arrivals)
  through the index and the oracle side by side, asserting the identical
  request object is chosen every time;
* an end-to-end test runs two full :class:`MemoryController` instances —
  one indexed, one oracle — over the same request stream and asserts
  identical per-request service times and identical counters.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DRAMConfig, DRAMRequest
from repro.common.types import DRAMCoord
from repro.dram import AddressMapper, MemoryController
from repro.dram.bank import BankState
from repro.dram.scheduler import (
    FCFS, FRFCFS, ReferenceFCFS, ReferenceFRFCFS,
)

AGE_CAP = 100

# One differential step: add a request, take one, or flip bank state.
_op = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 3), st.integers(0, 3),
              st.booleans(), st.integers(0, 3 * AGE_CAP)),
    st.tuples(st.just("take")),
    st.tuples(st.just("act"), st.integers(0, 3), st.integers(0, 3)),
    st.tuples(st.just("pre"), st.integers(0, 3)),
    st.tuples(st.just("tick"), st.integers(1, AGE_CAP)),
)


def _coord(bank: int, row: int) -> DRAMCoord:
    return DRAMCoord(channel=0, rank=0, bankgroup=0, bank=bank,
                     row=row, column=0)


def _run_differential(ops, indexed, reference) -> None:
    """Replay ``ops`` against the index and the oracle simultaneously."""
    buffer: list[tuple[DRAMRequest, DRAMCoord]] = []
    banks: dict[tuple, BankState] = {}
    now = 0
    last_was_write = False
    addr = 0
    for op in ops:
        kind = op[0]
        if kind == "add":
            _, bank, row, is_write, age = op
            req = DRAMRequest(addr, is_write, arrival=max(0, now - age))
            addr += 64
            item = (req, _coord(bank, row))
            buffer.append(item)
            indexed.insert(item)
        elif kind == "take":
            if not buffer:
                continue
            idx = reference.pick(buffer, banks, last_was_write, now)
            expected = buffer[idx]
            got = indexed.take(last_was_write, now)
            assert got is expected, (
                f"index took {got[0].addr:#x} but oracle picked "
                f"{expected[0].addr:#x} at t={now}")
            buffer.pop(idx)
            last_was_write = expected[0].is_write
        elif kind == "act":
            _, bank, row = op
            fb = _coord(bank, row).flat_bank
            banks.setdefault(fb, BankState()).open_row = row
            indexed.notify_activate(fb, row)
        elif kind == "pre":
            fb = _coord(op[1], 0).flat_bank
            if fb in banks:
                banks[fb].open_row = None
            indexed.notify_precharge(fb)
        else:  # tick
            now += op[1]
    # Drain whatever is left so every buffered request gets compared.
    while buffer:
        idx = reference.pick(buffer, banks, last_was_write, now)
        expected = buffer[idx]
        got = indexed.take(last_was_write, now)
        assert got is expected
        buffer.pop(idx)
        last_was_write = expected[0].is_write
        now += 1


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=120))
def test_frfcfs_matches_reference(ops):
    _run_differential(ops, FRFCFS(age_cap=AGE_CAP),
                      ReferenceFRFCFS(age_cap=AGE_CAP))


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, max_size=120))
def test_fcfs_matches_reference(ops):
    # FCFS ignores bank state; the act/pre ops still exercise that the
    # indexed variant tolerates (and ignores) missing notifications.
    indexed = FCFS()
    reference = ReferenceFCFS()
    buffer: list[tuple[DRAMRequest, DRAMCoord]] = []
    now = 0
    addr = 0
    for op in ops:
        if op[0] == "add":
            _, bank, row, is_write, age = op
            req = DRAMRequest(addr, is_write, arrival=max(0, now - age))
            addr += 64
            item = (req, _coord(bank, row))
            buffer.append(item)
            indexed.insert(item)
        elif op[0] == "take":
            if not buffer:
                continue
            idx = reference.pick(buffer, {}, False, now)
            expected = buffer.pop(idx)
            assert indexed.take(False, now) is expected
        elif op[0] == "tick":
            now += op[1]
    while buffer:
        idx = reference.pick(buffer, {}, False, now)
        expected = buffer.pop(idx)
        assert indexed.take(False, now) is expected


def test_compaction_reclaims_dead_entries():
    """Deliberately starve one bank's heap so lazy deletion accumulates
    dead entries past the compaction threshold, then verify the index
    still answers correctly afterwards."""
    sched = FRFCFS(age_cap=1 << 30)   # never age-override
    ref = ReferenceFRFCFS(age_cap=1 << 30)
    buffer: list[tuple[DRAMRequest, DRAMCoord]] = []
    banks: dict[tuple, BankState] = {}
    hot = _coord(0, 5)
    banks[hot.flat_bank] = BankState()
    banks[hot.flat_bank].open_row = 5
    sched.notify_activate(hot.flat_bank, 5)
    # 300 row hits inserted young + 300 misses inserted old: every take
    # chooses a hit, leaving the misses' heap entries untouched (alive)
    # while the hits' _any entries go dead — exercising both lazy pops
    # and the wholesale _compact() path.
    for i in range(300):
        old = (DRAMRequest(i * 64, False, arrival=0), _coord(1, 9))
        young = (DRAMRequest((1000 + i) * 64, False, arrival=i + 1), hot)
        for item in (old, young):
            buffer.append(item)
            sched.insert(item)
    for _ in range(600):
        idx = ref.pick(buffer, banks, False, 2000)
        expected = buffer.pop(idx)
        assert sched.take(False, 2000) is expected


def test_controller_differential_end_to_end():
    """Two controllers, one indexed and one oracle, must service an
    identical request stream with identical timing and counters."""
    rng = random.Random(1234)
    stream = []
    t = 0
    for _ in range(600):
        t += rng.randrange(0, 8)
        stream.append((rng.randrange(0, 1 << 22) * 64,
                       rng.random() < 0.3, t))

    def run(scheduler):
        config = DRAMConfig(channels=1)
        ctrl = MemoryController(0, config, AddressMapper(config),
                                scheduler=scheduler)
        reqs = [DRAMRequest(addr, wr, arrival=arr)
                for addr, wr, arr in stream]
        for req in reqs:
            ctrl.enqueue(req)
        ctrl.drain()
        return ([(r.start, r.finish, r.row_hit) for r in reqs],
                dict(ctrl.stats.counters), ctrl.time)

    for fast, oracle in ((FRFCFS(), ReferenceFRFCFS()),
                         (FCFS(), ReferenceFCFS())):
        got = run(fast)
        want = run(oracle)
        assert got == want, f"{type(fast).__name__} diverged from oracle"


def test_reference_schedulers_constructible_by_name():
    from repro.dram.scheduler import make_scheduler
    assert isinstance(make_scheduler("ref-frfcfs"), ReferenceFRFCFS)
    assert not isinstance(make_scheduler("ref-frfcfs"), FRFCFS)
    assert isinstance(make_scheduler("ref-fcfs"), ReferenceFCFS)
    assert not isinstance(make_scheduler("ref-fcfs"), FCFS)
    with pytest.raises(ValueError):
        make_scheduler("sjf")

"""Replay the CI mypy check locally when mypy is installed.

The Scheduler protocol's signatures are what keep the controller's
indexed fast path honest (``insert``/``take`` vs the stateless ``pick``),
and the batched engine must keep presenting the scalar oracle's interface,
so ``repro/dram`` plus the sweep executor (``repro/sim``), the shared
value types (``repro/common``), the tenancy QoS layer (``repro/serve``),
and — since the front-end split — the cache hierarchy and core models
(``repro/cache``, ``repro/core``, whose batched twins mirror the scalar
signatures) are type-checked in CI.  Environments without mypy skip this
test rather than fail — the CI job is the enforcement point.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _have_mypy() -> bool:
    try:
        import mypy  # noqa: F401
        return True
    except ImportError:
        return shutil.which("mypy") is not None


@pytest.mark.skipif(not _have_mypy(), reason="mypy not installed")
def test_checked_packages_typecheck():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/dram", "src/repro/sim", "src/repro/common",
         "src/repro/serve", "src/repro/cache", "src/repro/core"],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

"""Scheduler policies: direction grouping, aging, FCFS fallback."""

import pytest

from repro.common import DRAMConfig, DRAMRequest
from repro.dram import AddressMapper, FRFCFS, FCFS, MemoryController, make_scheduler
from repro.dram.bank import BankState


def _entry(mapper, row, col, arrival, is_write=False):
    addr = mapper.compose(row=row, column=col)
    req = DRAMRequest(addr, is_write, arrival=arrival)
    return req, mapper.map(addr)


@pytest.fixture()
def mapper():
    return AddressMapper(DRAMConfig(channels=1))


def _open_bank(coord):
    bank = BankState()
    bank.activate(coord.row, 0, DRAMConfig().timing)
    return {coord.flat_bank: bank}


def test_frfcfs_prefers_row_hit(mapper):
    sched = FRFCFS()
    miss = _entry(mapper, row=9, col=0, arrival=0)
    hit = _entry(mapper, row=1, col=1, arrival=5)
    banks = _open_bank(hit[1])
    assert sched.pick([miss, hit], banks) == 1


def test_frfcfs_groups_by_direction(mapper):
    sched = FRFCFS()
    read_hit = _entry(mapper, row=1, col=0, arrival=0, is_write=False)
    write_hit = _entry(mapper, row=1, col=1, arrival=1, is_write=True)
    banks = _open_bank(read_hit[1])
    # Bus last did writes: the (younger) write hit is preferred.
    assert sched.pick([read_hit, write_hit], banks,
                      last_was_write=True) == 1
    assert sched.pick([read_hit, write_hit], banks,
                      last_was_write=False) == 0


def test_frfcfs_ages_starved_requests(mapper):
    sched = FRFCFS(age_cap=100)
    old_miss = _entry(mapper, row=9, col=0, arrival=0)
    young_hit = _entry(mapper, row=1, col=1, arrival=500)
    banks = _open_bank(young_hit[1])
    # Young hit preferred while the miss is fresh...
    assert sched.pick([old_miss, young_hit], banks, now=50) == 1
    # ...but the starved miss wins past the age cap.
    assert sched.pick([old_miss, young_hit], banks, now=500) == 0


def test_fcfs_ignores_row_state(mapper):
    sched = FCFS()
    hit = _entry(mapper, row=1, col=1, arrival=5)
    miss = _entry(mapper, row=9, col=0, arrival=0)
    banks = _open_bank(hit[1])
    assert sched.pick([hit, miss], banks) == 1  # strictly oldest


def test_make_scheduler():
    assert isinstance(make_scheduler("frfcfs"), FRFCFS)
    assert isinstance(make_scheduler("fcfs"), FCFS)
    with pytest.raises(ValueError):
        make_scheduler("magic")

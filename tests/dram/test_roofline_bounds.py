"""Analytical lower bounds: the simulator must never beat physics.

Each test computes a closed-form minimum service time for a request
pattern from the JEDEC constraints, then asserts the simulated schedule
respects it (and stays within a sane constant factor of it for the
patterns where the model should be near-optimal).
"""

import random

import pytest

from repro.common import DDR4Timing, DRAMConfig, DRAMRequest
from repro.dram import AddressMapper, DRAMSystem, MemoryController

T = DDR4Timing()


def _service(addrs, channels=2):
    system = DRAMSystem(DRAMConfig(channels=channels))
    reqs = [system.access(a & ~63, False, arrival=0) for a in addrs]
    system.drain()
    return system, max(r.finish for r in reqs)


def test_data_bus_lower_bound_on_streams():
    """N bursts need at least N*tBL/channels cycles of bus time."""
    n = 2048
    system, finish = _service([i * 64 for i in range(n)])
    bound = n * T.tBL / 2
    assert finish >= bound
    # Stream scheduling should be close to the bound.
    assert finish < 1.35 * bound + 500


def test_tccd_l_lower_bound_same_bankgroup():
    """All accesses in one bank group: spaced by tCCD_L, not tBL."""
    cfg = DRAMConfig(channels=1)
    mapper = AddressMapper(cfg)
    addrs = [mapper.compose(row=1, column=c) for c in range(64)]
    system = DRAMSystem(cfg, mapper)
    reqs = [system.access(a, False, arrival=0) for a in addrs]
    system.drain()
    finish = max(r.finish for r in reqs)
    assert finish >= 64 * T.tCCD_L
    assert finish < 64 * T.tCCD_L + 300


def test_trc_lower_bound_single_bank_row_conflicts():
    """Alternating rows in one bank serialize on tRC."""
    cfg = DRAMConfig(channels=1)
    mapper = AddressMapper(cfg)
    addrs = [mapper.compose(row=1 + (i % 2) * 7, column=i // 2)
             for i in range(32)]
    system = DRAMSystem(cfg, mapper)
    reqs = []
    t = 0
    for a in addrs:  # serial issue to prevent the scheduler batching rows
        r = system.access(a, False, arrival=t)
        t = system.complete(r)
        reqs.append(r)
    finish = max(r.finish for r in reqs)
    # 31 row switches, each at least tRC apart at the ACT level.
    assert finish >= 31 * T.tRC


def test_tfaw_lower_bound_random_single_access_rows():
    """One access per row across many banks: ACT rate capped by tFAW."""
    cfg = DRAMConfig(channels=1)
    mapper = AddressMapper(cfg)
    # 256 distinct rows, single access each, spread over all banks.
    addrs = [mapper.compose(bankgroup=i % 4, bank=(i // 4) % 4,
                            row=100 + i, column=0) for i in range(256)]
    system = DRAMSystem(cfg, mapper)
    reqs = [system.access(a, False, arrival=0) for a in addrs]
    system.drain()
    finish = max(r.finish for r in reqs)
    # 256 activates in one rank: at most 4 per tFAW window.
    assert finish >= (256 / 4 - 1) * T.tFAW


def test_random_traffic_never_beats_bus_bound():
    rng = random.Random(5)
    n = 1024
    addrs = [rng.randrange(0, 1 << 26) for _ in range(n)]
    system, finish = _service(addrs)
    lines = len({a & ~63 for a in addrs})
    assert finish >= lines * T.tBL / 2

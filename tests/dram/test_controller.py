"""Memory controller scheduling, reordering window, and statistics."""

import pytest

from repro.common import DRAMConfig, DRAMRequest
from repro.dram import AddressMapper, DRAMSystem, MemoryController


@pytest.fixture()
def single_channel():
    cfg = DRAMConfig(channels=1)
    mapper = AddressMapper(cfg)
    return cfg, mapper, MemoryController(0, cfg, mapper)


def _addr(mapper, **kw):
    return mapper.compose(**kw)


def test_requests_complete_in_row_hit_order(single_channel):
    cfg, mapper, ctrl = single_channel
    # Two rows in the same bank, interleaved arrival order A B A B.
    a0 = _addr(mapper, row=1, column=0)
    b0 = _addr(mapper, row=2, column=0)
    a1 = _addr(mapper, row=1, column=1)
    b1 = _addr(mapper, row=2, column=1)
    reqs = [DRAMRequest(x, False, arrival=i) for i, x in enumerate([a0, b0, a1, b1])]
    for r in reqs:
        ctrl.enqueue(r)
    order = []
    while (done := ctrl.service_one()) is not None:
        order.append(done.addr)
    # FR-FCFS services a0 then the row-hit a1 before switching to row 2.
    assert order == [a0, a1, b0, b1]
    assert ctrl.stats.get("row_hits") == 2


def test_fcfs_does_not_reorder(single_channel):
    cfg, mapper, _ = single_channel
    cfg_fcfs = DRAMConfig(channels=1, scheduler="fcfs")
    ctrl = MemoryController(0, cfg_fcfs, AddressMapper(cfg_fcfs))
    addrs = [_addr(AddressMapper(cfg_fcfs), row=r, column=0) for r in (1, 2, 1, 2)]
    reqs = [DRAMRequest(a, False, arrival=i) for i, a in enumerate(addrs)]
    for r in reqs:
        ctrl.enqueue(r)
    order = []
    while (done := ctrl.service_one()) is not None:
        order.append(done.addr)
    assert order == addrs
    assert ctrl.stats.get("row_hits") == 0


def test_row_hit_is_faster_than_conflict(single_channel):
    cfg, mapper, ctrl = single_channel
    t = cfg.timing
    first = DRAMRequest(_addr(mapper, row=1, column=0), False, arrival=0)
    hit = DRAMRequest(_addr(mapper, row=1, column=1), False, arrival=0)
    ctrl.enqueue(first)
    ctrl.enqueue(hit)
    ctrl.drain()
    assert hit.start - first.start == t.tCCD_L  # same bankgroup back-to-back
    # A conflict to another row pays PRE + ACT + RCD.
    ctrl2 = MemoryController(0, cfg, mapper)
    first2 = DRAMRequest(_addr(mapper, row=1, column=0), False, arrival=0)
    conflict = DRAMRequest(_addr(mapper, row=2, column=0), False, arrival=0)
    ctrl2.enqueue(first2)
    ctrl2.enqueue(conflict)
    ctrl2.drain()
    assert conflict.start - first2.start >= t.tRTP + t.tRP + t.tRCD


def test_reordering_window_is_bounded(single_channel):
    cfg, mapper, ctrl = single_channel
    # 33 requests to row 2 arrive before 1 request to row 1; with a 32-entry
    # buffer the row-1 request enters the window only after a slot frees.
    far = [DRAMRequest(_addr(mapper, row=2, column=c), False, arrival=0)
           for c in range(33)]
    near = DRAMRequest(_addr(mapper, row=1, column=0), False, arrival=0)
    for r in far:
        ctrl.enqueue(r)
    ctrl.enqueue(near)
    ctrl.drain()
    assert near.finish > far[0].finish


def test_service_until_done_and_errors(single_channel):
    cfg, mapper, ctrl = single_channel
    req = DRAMRequest(_addr(mapper, row=3, column=3), False, arrival=5)
    ctrl.enqueue(req)
    ctrl.service_until_done(req)
    assert req.done and req.finish > req.arrival
    stray = DRAMRequest(_addr(mapper, row=4, column=0), False, arrival=0)
    with pytest.raises(RuntimeError):
        ctrl.service_until_done(stray)


def test_wrong_channel_rejected():
    cfg = DRAMConfig()  # 2 channels
    mapper = AddressMapper(cfg)
    ctrl = MemoryController(0, cfg, mapper)
    ch1_addr = mapper.compose(channel=1, row=1)
    with pytest.raises(ValueError):
        ctrl.enqueue(DRAMRequest(ch1_addr, False, arrival=0))


def test_occupancy_statistic_tracks_buffer(single_channel):
    cfg, mapper, ctrl = single_channel
    for c in range(16):
        ctrl.enqueue(DRAMRequest(_addr(mapper, row=1, column=c), False, 0))
    ctrl.drain()
    occ = ctrl.mean_occupancy()
    assert 0 < occ <= cfg.request_buffer


def test_idle_gap_advances_time(single_channel):
    cfg, mapper, ctrl = single_channel
    early = DRAMRequest(_addr(mapper, row=1, column=0), False, arrival=0)
    late = DRAMRequest(_addr(mapper, row=1, column=1), False, arrival=100_000)
    ctrl.enqueue(early)
    ctrl.enqueue(late)
    ctrl.drain()
    assert late.start >= 100_000
    assert early.finish < 100_000


def test_writes_update_write_stats(single_channel):
    cfg, mapper, ctrl = single_channel
    ctrl.enqueue(DRAMRequest(_addr(mapper, row=1, column=0), True, arrival=0))
    ctrl.drain()
    assert ctrl.stats.get("writes") == 1
    assert ctrl.stats.get("bytes") == 64


def test_command_log_limit_bounds_growth():
    cfg = DRAMConfig(channels=1)
    mapper = AddressMapper(cfg)
    ctrl = MemoryController(0, cfg, mapper, command_log_limit=10)
    ctrl.record_commands = True
    for c in range(64):
        ctrl.enqueue(DRAMRequest(_addr(mapper, row=c % 4, column=c),
                                 False, arrival=0))
    ctrl.drain()
    assert len(ctrl.command_log) == 10
    assert ctrl.stats.get("command_log_dropped") > 0
    # The retained prefix is still in issue order (a replayable stream).
    cycles = [cycle for _, cycle, _, _ in ctrl.command_log]
    assert cycles == sorted(cycles)


def test_command_log_unlimited_by_default(single_channel):
    cfg, mapper, ctrl = single_channel
    ctrl.record_commands = True
    for c in range(64):
        ctrl.enqueue(DRAMRequest(_addr(mapper, row=c % 4, column=c),
                                 False, arrival=0))
    ctrl.drain()
    assert len(ctrl.command_log) >= 64        # RD per request + ACT/PREs
    assert ctrl.stats.get("command_log_dropped") == 0

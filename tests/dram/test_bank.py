"""Bank / rank / bus timing state machines honour the JEDEC constraints."""

from repro.common import DDR4Timing
from repro.dram import BankState, ChannelBusState, RankState

T = DDR4Timing()


def test_activate_sets_column_and_precharge_windows():
    bank = BankState()
    bank.activate(row=5, t_act=100, timing=T)
    assert bank.open_row == 5
    assert bank.col_ready == 100 + T.tRCD
    assert bank.pre_ready == 100 + T.tRAS
    assert bank.act_ready == 100 + T.tRC


def test_precharge_closes_row_and_spaces_next_act():
    bank = BankState()
    bank.activate(row=5, t_act=0, timing=T)
    bank.precharge(t_pre=T.tRAS, timing=T)
    assert bank.open_row is None
    assert bank.act_ready >= T.tRAS + T.tRP


def test_read_to_precharge_spacing():
    bank = BankState()
    bank.activate(row=1, t_act=0, timing=T)
    bank.column_read(t_col=T.tRCD, timing=T)
    assert bank.pre_ready >= T.tRCD + T.tRTP


def test_write_recovery_pushes_precharge_later_than_read():
    read_bank, write_bank = BankState(), BankState()
    read_bank.activate(1, 0, T)
    write_bank.activate(1, 0, T)
    read_bank.column_read(T.tRCD, T)
    write_bank.column_write(T.tRCD, T)
    assert write_bank.pre_ready > read_bank.pre_ready


def test_rank_trrd_short_vs_long():
    rank = RankState()
    rank.record_act(bankgroup=0, t_act=100)
    assert rank.earliest_act(bankgroup=0, timing=T) == 100 + T.tRRD_L
    assert rank.earliest_act(bankgroup=1, timing=T) == 100 + T.tRRD_S


def test_rank_tfaw_limits_four_activates():
    rank = RankState()
    for i in range(4):
        rank.record_act(bankgroup=i, t_act=i * T.tRRD_S)
    # Fifth ACT must wait for the tFAW window from the first.
    assert rank.earliest_act(bankgroup=0, timing=T) >= 0 + T.tFAW


def test_bus_bankgroup_interleaving_halves_spacing():
    bus = ChannelBusState()
    bus.record_col(bankgroup=0, t_col=1000, is_write=False, timing=T)
    same = bus.earliest_col(bankgroup=0, is_write=False, timing=T)
    other = bus.earliest_col(bankgroup=1, is_write=False, timing=T)
    assert same == 1000 + T.tCCD_L
    assert other == 1000 + T.tCCD_S
    assert T.tCCD_L == 2 * T.tCCD_S


def test_bus_read_write_turnaround():
    bus = ChannelBusState()
    bus.record_col(bankgroup=0, t_col=0, is_write=False, timing=T)
    # Switching to a write to another bank group still pays turnaround.
    assert bus.earliest_col(bankgroup=1, is_write=True, timing=T) >= T.tCCD_L


def test_data_bus_backpressure():
    bus = ChannelBusState()
    bus.record_col(bankgroup=0, t_col=0, is_write=False, timing=T)
    assert bus.data_free == T.tCL + T.tBL

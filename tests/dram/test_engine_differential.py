"""Differential tests: the batched array-kernel engine vs the scalar oracle.

:class:`~repro.dram.batched.BatchedController` must be *bitwise identical*
to :class:`~repro.dram.MemoryController` — same command stream (kind,
cycle, bank, row, in order), same per-request start/finish/row-hit, same
counters and final time — across every configuration both support.  Two
layers:

* hypothesis property tests drive randomized request programs (mixed
  reads/writes, bursty and sparse arrivals, open and closed page, one and
  two ranks, DDR4 and DDR5) through both engines side by side;
* seeded long-run tests cross several tREFI refresh intervals and check
  the refresh machinery (REF/PRE emission, tRFC blocking) agrees command
  for command, plus system-level equivalence through
  :class:`~repro.dram.DRAMSystem`'s engine knob.

The auditor's refresh rules get mutation coverage here too: streams with
REF removed, REF landing on an open bank, or an ACT inside tRFC must be
flagged — proving the new rules are not vacuous.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DDR4Timing, DRAMConfig, DRAMRequest
from repro.common.config import RemoteLinkConfig, ddr5_6400
from repro.dram import (AddressMapper, CommandAuditor, DRAMSystem,
                        MemoryController)
from repro.dram.batched import BatchedController

T = DDR4Timing()


# ------------------------------------------------------------- harness

def _pair(cfg: DRAMConfig):
    """One scalar oracle + one batched engine on the same channel-0
    config, each with a command-stream recorder attached."""
    mapper = AddressMapper(cfg)
    scalar = MemoryController(0, cfg, mapper)
    batched = BatchedController(0, cfg, mapper)
    slog: list[tuple] = []
    blog: list[tuple] = []
    scalar.command_observers.append(
        lambda kind, cycle, bank, row: slog.append((kind, cycle, bank, row)))
    batched.command_observers.append(
        lambda kind, cycle, bank, row: blog.append((kind, cycle, bank, row)))
    return scalar, batched, slog, blog


def _requests(cfg: DRAMConfig, program: list[tuple]):
    """Materialize the (line, is_write, gap[, tenant]) program twice —
    controllers mutate their requests, so each engine needs its own
    objects.  The optional fourth element is a tenant tag (-1 = untagged),
    which must never change scheduling."""
    mapper = AddressMapper(cfg)
    line = cfg.line_bytes
    limit = cfg.capacity_bytes
    out: list[tuple[int, bool, int, int]] = []
    t = 0
    for entry in program:
        line_no, is_write, gap = entry[:3]
        tenant = entry[3] if len(entry) > 3 else -1
        addr = (line_no * line) % limit
        if mapper.map(addr).channel != 0:
            addr = (addr + line * cfg.channels) % limit
            if mapper.map(addr).channel != 0:   # pragma: no cover
                continue
        t += gap
        out.append((addr, is_write, t, tenant))
    return (
        [DRAMRequest(a, w, arrival=t, tenant=tn) for a, w, t, tn in out],
        [DRAMRequest(a, w, arrival=t, tenant=tn) for a, w, t, tn in out],
    )


def _assert_equivalent(cfg: DRAMConfig,
                       program: list[tuple[int, bool, int]]) -> None:
    scalar, batched, slog, blog = _pair(cfg)
    reqs_s, reqs_b = _requests(cfg, program)
    for rs, rb in zip(reqs_s, reqs_b):
        scalar.enqueue(rs)
        batched.enqueue(rb)
    scalar.drain()
    batched.drain()
    assert slog == blog
    for rs, rb in zip(reqs_s, reqs_b):
        assert (rs.start, rs.finish, rs.row_hit) == \
            (rb.start, rb.finish, rb.row_hit)
    assert scalar.time == batched.time
    assert dict(scalar.stats.counters) == dict(batched.stats.counters)
    assert scalar.stats.mins == batched.stats.mins
    assert scalar.stats.maxs == batched.stats.maxs
    assert scalar.mean_occupancy() == batched.mean_occupancy()


# ------------------------------------------------- property: random programs

_program = st.lists(
    st.tuples(
        st.integers(0, 1 << 14),          # line number (folds into capacity)
        st.booleans(),                    # write?
        st.integers(0, 400),              # arrival gap (bursts and idle)
    ),
    min_size=1, max_size=120,
)

_CONFIGS = {
    "ddr4-open": DRAMConfig(channels=1),
    "ddr4-closed": DRAMConfig(channels=1, page_policy="closed"),
    "ddr4-2rank": DRAMConfig(channels=1, ranks=2),
    "ddr4-fcfs": DRAMConfig(channels=1, scheduler="fcfs"),
    "ddr4-tiny-buffer": DRAMConfig(channels=1, request_buffer=4),
    "ddr4-no-refresh": DRAMConfig(channels=1, refresh=False),
    "ddr5-closed": replace(ddr5_6400(), channels=1),
}


@pytest.mark.parametrize("name", sorted(_CONFIGS))
@settings(max_examples=40, deadline=None)
@given(program=_program)
def test_batched_matches_scalar_randomized(name, program):
    _assert_equivalent(_CONFIGS[name], program)


_tenant_program = st.lists(
    st.tuples(
        st.integers(0, 1 << 14),          # line number
        st.booleans(),                    # write?
        st.integers(0, 400),              # arrival gap
        st.integers(-1, 3),               # tenant tag (-1 = untagged)
    ),
    min_size=1, max_size=120,
)


@pytest.mark.parametrize("name", ["ddr4-open", "ddr4-tiny-buffer"])
@settings(max_examples=40, deadline=None)
@given(program=_tenant_program)
def test_batched_matches_scalar_with_tenant_tags(name, program):
    """Tenant-tagged programs: the tag feeds per-tenant counters in both
    engines but never the schedule, so the command streams stay identical
    and the counter dicts (tenant ones included) agree exactly.  The
    tiny-buffer config keeps the partitioned-buffer pressure path hot."""
    cfg = _CONFIGS[name]
    _assert_equivalent(cfg, program)
    # Tagged counters must partition the totals: anything serviced for
    # tenant t shows up in tenant{t}_* and in the global counters alike.
    scalar, batched, _, _ = _pair(cfg)
    reqs_s, reqs_b = _requests(cfg, program)
    for rs, rb in zip(reqs_s, reqs_b):
        scalar.enqueue(rs)
        batched.enqueue(rb)
    scalar.drain()
    batched.drain()
    for ctrl in (scalar, batched):
        counters = ctrl.stats.counters
        tagged = sum(v for k, v in counters.items()
                     if k.startswith("tenant") and k.endswith("_serviced"))
        untagged = sum(1 for r in reqs_s if r.tenant < 0)
        assert tagged + untagged == counters["serviced"]


def test_tenant_tags_never_change_the_schedule():
    """The same program with and without tags produces byte-identical
    command streams and per-request timings — the degeneracy guarantee
    the serving layer's golden tests rely on."""
    cfg = DRAMConfig(channels=1, request_buffer=8)
    base = _long_program(seed=23, n=250, max_gap=200)
    tagged_prog = [(ln, w, g, i % 3) for i, (ln, w, g) in enumerate(base)]
    for make in (MemoryController,
                 lambda c, cfg, m: BatchedController(c, cfg, m)):
        logs = []
        finishes = []
        for prog in (base, tagged_prog):
            mapper = AddressMapper(cfg)
            ctrl = make(0, cfg, mapper)
            log: list[tuple] = []
            ctrl.command_observers.append(
                lambda kind, cycle, bank, row, _l=log:
                _l.append((kind, cycle, bank, row)))
            reqs, _ = _requests(cfg, prog)
            for r in reqs:
                ctrl.enqueue(r)
            ctrl.drain()
            logs.append(log)
            finishes.append([(r.start, r.finish, r.row_hit) for r in reqs])
        assert logs[0] == logs[1]
        assert finishes[0] == finishes[1]


# ------------------------------------------------------ seeded long runs

def _long_program(seed: int, n: int, max_gap: int):
    import random
    rng = random.Random(seed)
    return [(rng.randrange(1 << 14), rng.random() < 0.4,
             rng.randrange(max_gap)) for _ in range(n)]


@pytest.mark.parametrize("ranks", [1, 2])
def test_refresh_crossing_runs_agree(ranks):
    """Sparse arrivals spanning several tREFI intervals: the dense bank
    walk in the batched refresh catch-up must emit the same PRE/REF
    commands, at the same cycles, as the oracle's sorted-dict walk."""
    cfg = DRAMConfig(channels=1, ranks=ranks)
    program = _long_program(seed=ranks, n=300, max_gap=600)
    scalar, batched, slog, blog = _pair(cfg)
    reqs_s, reqs_b = _requests(cfg, program)
    for rs, rb in zip(reqs_s, reqs_b):
        scalar.enqueue(rs)
        batched.enqueue(rb)
    scalar.drain()
    batched.drain()
    refs = [c for c in slog if c[0] == "REF"]
    assert len(refs) >= ranks * 2, "program must actually cross tREFI"
    assert slog == blog
    assert scalar.time == batched.time
    assert dict(scalar.stats.counters) == dict(batched.stats.counters)


def test_incremental_service_interleaves_identically():
    """service_one step by step (not drain) — the paths the core model and
    the system's next-event drain actually take."""
    cfg = DRAMConfig(channels=1)
    scalar, batched, slog, blog = _pair(cfg)
    reqs_s, reqs_b = _requests(cfg, _long_program(seed=7, n=80, max_gap=150))
    for rs, rb in zip(reqs_s, reqs_b):
        scalar.enqueue(rs)
        batched.enqueue(rb)
    while True:
        a = scalar.service_one()
        b = batched.service_one()
        assert (a is None) == (b is None)
        if a is None:
            break
        assert (a.addr, a.start, a.finish, a.row_hit) == \
            (b.addr, b.start, b.finish, b.row_hit)
        assert scalar.next_event() == batched.next_event()
    assert slog == blog


def test_dram_system_engine_knob_is_bitwise_equivalent():
    """Two-channel DRAMSystem, engine='scalar' vs 'batched': per-channel
    command logs and merged metrics agree exactly."""
    program = _long_program(seed=11, n=400, max_gap=120)
    logs: dict[str, list[list[tuple]]] = {}
    stats: dict[str, dict] = {}
    finishes: dict[str, int] = {}
    for engine in ("scalar", "batched"):
        cfg = DRAMConfig(channels=2, engine=engine)
        system = DRAMSystem(cfg)
        per_channel: list[list[tuple]] = [[] for _ in system.controllers]
        for ch, ctrl in enumerate(system.controllers):
            ctrl.command_observers.append(
                lambda kind, cycle, bank, row, _log=per_channel[ch]:
                _log.append((kind, cycle, bank, row)))
        t = 0
        for line_no, is_write, gap in program:
            t += gap
            system.access((line_no * 64) % cfg.capacity_bytes, is_write, t)
        system.drain()
        logs[engine] = per_channel
        stats[engine] = dict(system.merged_stats().counters)
        finishes[engine] = system.last_finish()
    assert logs["scalar"] == logs["batched"]
    assert stats["scalar"] == stats["batched"]
    assert finishes["scalar"] == finishes["batched"]


# ------------------------------------------------------ far-memory tier

def _system_run(cfg: DRAMConfig, program: list[tuple]):
    """Drive one program through a full DRAMSystem (the only level where
    the far-memory link participates: inject happens at system enqueue)
    and return everything the differential compares."""
    system = DRAMSystem(cfg)
    per_channel: list[list[tuple]] = [[] for _ in system.controllers]
    for ch, ctrl in enumerate(system.controllers):
        ctrl.command_observers.append(
            lambda kind, cycle, bank, row, _log=per_channel[ch]:
            _log.append((kind, cycle, bank, row)))
    reqs = []
    t = 0
    for line_no, is_write, gap in program:
        t += gap
        reqs.append(system.access(
            (line_no * cfg.line_bytes) % cfg.capacity_bytes, is_write, t))
    system.drain()
    return (per_channel,
            dict(system.merged_stats().counters),
            system.last_finish(),
            [(r.start, r.finish, r.row_hit, r.far) for r in reqs])


def _assert_system_equivalent(cfg: DRAMConfig, program: list[tuple]) -> None:
    runs = {engine: _system_run(replace(cfg, engine=engine), program)
            for engine in ("scalar", "batched")}
    assert runs["scalar"] == runs["batched"]


_FAR_CONFIGS = {
    # Every line behind the link at the default latency/bandwidth.
    "cxl-all": DRAMConfig(channels=1, remote=RemoteLinkConfig(enabled=True)),
    # Tiered placement: half the lines far by deterministic hash — the
    # local/remote interleave exercises the far flag on a per-request
    # basis rather than uniformly.
    "cxl-mixed": DRAMConfig(channels=1, remote=RemoteLinkConfig(
        enabled=True, placement="hash", far_fraction=0.5)),
    # A one-deep return ring over a starved link: every delivery waits on
    # the previous one, so the ring cursor dominates the timing.
    "cxl-tiny-queue": DRAMConfig(channels=1, remote=RemoteLinkConfig(
        enabled=True, queue_depth=1, gbps=4.0)),
    # Occupancy-proportional congestion on top of the queue bound.
    "cxl-congested": DRAMConfig(channels=1, remote=RemoteLinkConfig(
        enabled=True, queue_depth=8, gbps=8.0, congestion=True)),
    # Two channels sharing ONE link: cross-channel service order feeds a
    # single return cursor (the sharing the per-controller harness above
    # cannot see).
    "cxl-2ch": DRAMConfig(channels=2, remote=RemoteLinkConfig(
        enabled=True, latency=800)),
}


@pytest.mark.parametrize("name", sorted(_FAR_CONFIGS))
@settings(max_examples=25, deadline=None)
@given(program=_program)
def test_far_tier_engines_bitwise_equivalent(name, program):
    """Randomized programs with far-tier placement: both engines route
    completions through the same shared RemoteLink, so command streams,
    per-request timings (including link-delivered finishes), link
    counters, and final time must agree exactly."""
    _assert_system_equivalent(_FAR_CONFIGS[name], program)


def test_far_tier_counters_present_and_consistent():
    """The link actually fires: far counters exist, partition by
    placement, and deliveries equal injections after a full drain."""
    program = _long_program(seed=17, n=300, max_gap=150)
    _, counters, _, timings = _system_run(_FAR_CONFIGS["cxl-mixed"], program)
    far = sum(1 for _, _, _, f in timings if f)
    local = sum(1 for _, _, _, f in timings if not f)
    assert far > 0 and local > 0, "hash placement must split the program"
    assert counters["far_serviced"] == far
    assert counters["far_reads"] + counters["far_writes"] == far
    assert counters["serviced"] == far + local


def test_refresh_crossing_a_stalled_link_agrees():
    """Sparse arrivals spanning several tREFI intervals while the link is
    starved (1-deep ring, trickle bandwidth): refresh catch-up interleaves
    with link-stalled deliveries identically on both engines."""
    cfg = DRAMConfig(channels=1, ranks=2, remote=RemoteLinkConfig(
        enabled=True, queue_depth=1, gbps=1.0))
    program = _long_program(seed=29, n=250, max_gap=700)
    runs = {engine: _system_run(replace(cfg, engine=engine), program)
            for engine in ("scalar", "batched")}
    refs = [c for c in runs["scalar"][0][0] if c[0] == "REF"]
    assert len(refs) >= 4, "program must actually cross tREFI"
    assert runs["scalar"] == runs["batched"]


def test_link_disabled_is_bitwise_the_default():
    """An explicit disabled RemoteLinkConfig changes nothing: same logs,
    counters, and timings as the stock config, and no far flags."""
    program = _long_program(seed=31, n=200, max_gap=120)
    stock = _system_run(DRAMConfig(channels=2), program)
    disabled = _system_run(
        DRAMConfig(channels=2, remote=RemoteLinkConfig(
            enabled=False, latency=9999)), program)
    assert stock == disabled
    assert not any(f for _, _, _, f in stock[3])
    assert "far_serviced" not in stock[1]


def test_batched_rejects_reference_schedulers():
    cfg = DRAMConfig(channels=1, scheduler="ref-frfcfs")
    with pytest.raises(ValueError):
        BatchedController(0, cfg, AddressMapper(cfg))
    # The system falls back to the oracle rather than failing.
    system = DRAMSystem(DRAMConfig(channels=1, scheduler="ref-frfcfs",
                                   engine="batched"))
    assert isinstance(system.controllers[0], MemoryController)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        DRAMSystem(DRAMConfig(engine="vectorized"))


# -------------------------------------------- auditor refresh mutations

def _legal_prefix():
    """A minimal legal stream: one ACT + RD on bank (0,0,0,0)."""
    return [("ACT", 0, (0, 0, 0, 0), 5),
            ("RD", T.tRCD, (0, 0, 0, 0), 5)]


def test_auditor_flags_stream_with_refresh_omitted():
    """A rank silently running past 9 x tREFI without a REF violates the
    postponement window — the rule a refresh-dropping engine bug would
    trip."""
    log = _legal_prefix()
    late = 9 * T.tREFI + T.tRCD + 100
    log += [("PRE", late, (0, 0, 0, 0), 5),
            ("ACT", late + T.tRP, (0, 0, 0, 0), 6)]
    auditor = CommandAuditor(T).check_log(log)
    assert any(v.rule == "tREFI-window" for v in auditor.violations)
    # Same stream with a timely REF in the middle is clean.
    fixed = _legal_prefix()
    mid = T.tREFI
    fixed += [("PRE", mid - T.tRP - 1, (0, 0, 0, 0), 5),
              ("REF", mid, (0, 0, 0, 0), -1),
              ("ACT", late + T.tRP, (0, 0, 0, 0), 6)]
    assert CommandAuditor(T).check_log(fixed).ok


def test_auditor_flags_ref_on_open_bank():
    log = _legal_prefix()
    log.append(("REF", T.tREFI, (0, 0, 0, 0), -1))   # row 5 still open
    auditor = CommandAuditor(T).check_log(log)
    assert any(v.rule == "ref-on-open-bank" for v in auditor.violations)


def test_auditor_flags_act_inside_trfc():
    log = [("REF", 1000, (0, 0, 0, 0), -1),
           ("ACT", 1000 + T.tRFC - 1, (0, 0, 0, 0), 3)]
    auditor = CommandAuditor(T).check_log(log)
    assert any(v.rule == "tRFC" for v in auditor.violations)
    clean = [("REF", 1000, (0, 0, 0, 0), -1),
             ("ACT", 1000 + T.tRFC, (0, 0, 0, 0), 3)]
    assert CommandAuditor(T).check_log(clean).ok


def test_refresh_off_engines_emit_no_refs_and_still_agree():
    cfg = DRAMConfig(channels=1, refresh=False)
    scalar, batched, slog, blog = _pair(cfg)
    reqs_s, reqs_b = _requests(cfg, _long_program(seed=3, n=200, max_gap=600))
    for rs, rb in zip(reqs_s, reqs_b):
        scalar.enqueue(rs)
        batched.enqueue(rb)
    scalar.drain()
    batched.drain()
    assert slog == blog
    assert not any(c[0] == "REF" for c in slog)

import math

import pytest

from repro.common import Stats, geomean


def test_counters_and_ratio():
    s = Stats()
    s.add("hits", 3)
    s.add("misses")
    assert s.get("hits") == 3
    assert s.ratio("hits", "total", default=-1.0) == -1.0
    s.add("total", 4)
    assert s.ratio("hits", "total") == pytest.approx(0.75)


def test_weighted_mean():
    s = Stats()
    s.observe("occ", 2.0, weight=10)
    s.observe("occ", 4.0, weight=30)
    assert s.mean("occ") == pytest.approx(3.5)
    assert s.mean("missing", default=7.0) == 7.0


def test_merge_combines_everything():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    a.observe("m", 1.0, 1)
    b.observe("m", 3.0, 1)
    a.bucket("h", 5)
    b.bucket("h", 5, 2)
    a.merge(b)
    assert a.get("x") == 3
    assert a.mean("m") == pytest.approx(2.0)
    assert a.hists["h"][5] == 3


def test_min_max_trackers():
    s = Stats()
    s.note_min("first", 10)
    s.note_min("first", 5)
    s.note_min("first", 7)
    s.note_max("last", 10)
    s.note_max("last", 30)
    s.note_max("last", 20)
    assert s.get("first") == 5
    assert s.get("last") == 30
    assert s.get("absent", default=-1.0) == -1.0


def test_merge_min_max_not_summed():
    """first_arrival/last_finish must merge as min/max across channels,
    not as sums (the bug the per-channel Stats merge used to have)."""
    a, b = Stats(), Stats()
    a.note_min("first_arrival", 100)
    b.note_min("first_arrival", 40)
    a.note_max("last_finish", 500)
    b.note_max("last_finish", 900)
    a.merge(b)
    assert a.get("first_arrival") == 40
    assert a.get("last_finish") == 900
    d = a.as_dict()
    assert d["first_arrival"] == 40
    assert d["last_finish"] == 900


def test_as_dict_includes_means():
    s = Stats()
    s.add("n", 2)
    s.observe("lat", 10, 1)
    d = s.as_dict()
    assert d["n"] == 2
    assert d["lat:mean"] == 10


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == 3.0
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    vals = [1.5, 2.5, 3.5, 4.5]
    expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
    assert geomean(vals) == pytest.approx(expected)

"""Table 3 configuration presets."""

import pytest

from repro.common import CacheConfig, DDR4Timing, DRAMConfig, SystemConfig, ns_to_cycles


def test_timing_matches_table3():
    t = DDR4Timing()
    assert t.tCK == 2                 # 625 ps at 3.2 GHz
    assert t.tRP == 40 and t.tRCD == 40   # 12.5 ns
    assert t.tCCD_S == 8 and t.tCCD_L == 16
    assert t.tRTP == 24
    assert t.tRAS == 104
    assert t.tRC == t.tRAS + t.tRP


def test_dram_peak_bandwidth_is_51_2_gbps():
    cfg = DRAMConfig()
    assert cfg.peak_bw_gbps == pytest.approx(51.2, rel=1e-3)
    assert cfg.banks_total == 32     # 2ch x 1rank x 4bg x 4banks


def test_ns_to_cycles_rounding():
    assert ns_to_cycles(1.0) == 3
    assert ns_to_cycles(2.5) == 8
    assert ns_to_cycles(0.0) == 0


def test_cache_geometry():
    l1 = CacheConfig("L1D", 32 * 1024, 8, latency=4, mshrs=16)
    assert l1.sets == 64
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 3, latency=1, mshrs=1)


def test_baseline_preset_matches_table3():
    cfg = SystemConfig.baseline()
    assert cfg.cores == 4
    assert cfg.core.rob_size == 224
    assert cfg.core.lq_size == 72 and cfg.core.sq_size == 56
    assert cfg.llc.size_bytes == 10 * 1024 * 1024
    assert cfg.llc.mshrs == 256
    assert cfg.dram.request_buffer == 32
    assert cfg.dx100 is None


def test_dx100_preset_shrinks_llc_by_2mb():
    cfg = SystemConfig.dx100_system()
    assert cfg.dx100 is not None
    assert cfg.llc.size_bytes == 8 * 1024 * 1024
    assert cfg.llc.ways == 16
    assert cfg.dx100.tile_elems == 16 * 1024
    assert cfg.dx100.spd_bytes == 2 * 1024 * 1024


def test_scaled_preset_doubles_channels():
    cfg = SystemConfig.baseline(cores=8)
    assert cfg.dram.channels == 4
    assert cfg.llc.size_bytes == 20 * 1024 * 1024


def test_dmp_preset():
    cfg = SystemConfig.dmp_system()
    assert cfg.dmp and cfg.dx100 is None
    assert cfg.llc.size_bytes == 10 * 1024 * 1024

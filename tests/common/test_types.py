import pytest

from repro.common import AccessType, AluOp, DType, Interval, MemOp


def test_access_type_write_flag():
    assert AccessType.STORE.is_write
    assert AccessType.RMW.is_write
    assert not AccessType.LOAD.is_write
    assert not AccessType.PREFETCH.is_write


def test_alu_op_classes():
    assert AluOp.LT.is_comparison
    assert not AluOp.ADD.is_comparison
    # Only associative+commutative ops are legal for IRMW (Section 3.1).
    assert AluOp.ADD.is_commutative_associative
    assert AluOp.MAX.is_commutative_associative
    assert not AluOp.SUB.is_commutative_associative
    assert not AluOp.SHL.is_commutative_associative


def test_dtype_sizes():
    assert DType.U32.nbytes == 4
    assert DType.F64.nbytes == 8
    assert DType.I32.numpy_name == "int32"


def test_interval_overlap():
    a = Interval(0, 100)
    assert a.overlaps(Interval(50, 150))
    assert not a.overlaps(Interval(100, 200))
    assert a.contains(0) and not a.contains(100)
    with pytest.raises(ValueError):
        Interval(10, 5)


def test_memop_defaults():
    op = MemOp(AccessType.LOAD, addr=0x1000)
    assert op.deps == ()
    assert op.issue == -1 and op.complete == -1
    assert not op.atomic

"""DMP behavioural model: lookahead, coverage, conditional pollution."""

from dataclasses import replace

import numpy as np
import pytest

from repro.common import HitLevel, SystemConfig
from repro.cache import MemoryHierarchy
from repro.core import CoreModel, TraceBuilder
from repro.dram import DRAMSystem
from repro.prefetch import DMPEngine


def build(coverage=1.0, distance=4, degree=2, train=4):
    cfg = SystemConfig.dmp_system()
    cfg = replace(cfg, l1=replace(cfg.l1, prefetcher=False),
                  l2=replace(cfg.l2, prefetcher=False))
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    dmp = DMPEngine(hier, distance=distance, degree=degree,
                    coverage=coverage, train_iters=train)
    hier.observers.append(
        lambda core, addr, pc, tag, t: dmp.observe(core, addr, pc, tag, t))
    core = CoreModel(0, cfg.core, hier, dram)
    return cfg, dram, hier, dmp, core


def indirect_trace(targets, pc=77):
    tb = TraceBuilder()
    for i, addr in enumerate(targets):
        tb.load(int(addr), pc=pc, tag=i, extra=4)
    return tb.finish()


def test_prefetches_reduce_average_latency():
    """The head start shortens demand latency, it does not make hits free
    (paper: DMP reduces average memory latency ~1.4x)."""
    rng = np.random.default_rng(0)
    targets = (rng.integers(0, 1 << 20, size=256) & ~7) + (5 << 24)

    cfg, dram, hier, dmp, core = build(distance=128, degree=4)
    dmp.register_stream(77, targets)
    core.run(indirect_trace(targets))
    assert dmp.stats.get("dmp_prefetches") > 100
    with_pf = [op.complete - op.issue for op in core._trace.ops[64:]]

    cfg2, dram2, hier2, dmp2, core2 = build()
    core2.run(indirect_trace(targets))   # stream never registered
    without_pf = [op.complete - op.issue for op in core2._trace.ops[64:]]
    assert sum(with_pf) < 0.9 * sum(without_pf)


def test_no_prefetch_without_registration():
    cfg, dram, hier, dmp, core = build()
    targets = np.arange(64) * 4096 + (5 << 24)
    core.run(indirect_trace(targets, pc=99))
    assert dmp.stats.get("dmp_prefetches") == 0


def test_training_period_suppresses_early_prefetches():
    cfg, dram, hier, dmp, core = build(train=1000)
    targets = np.arange(64) * 4096 + (5 << 24)
    dmp.register_stream(77, targets)
    core.run(indirect_trace(targets))
    assert dmp.stats.get("dmp_prefetches") == 0


def test_coverage_limits_issue_rate():
    targets = np.arange(512) * 4096 + (5 << 24)
    cfg, dram, hier, dmp_full, core = build(coverage=1.0)
    dmp_full.register_stream(77, targets)
    core.run(indirect_trace(targets))

    cfg2, dram2, hier2, dmp_half, core2 = build(coverage=0.5)
    dmp_half.register_stream(77, targets)
    core2.run(indirect_trace(targets))
    assert dmp_half.stats.get("dmp_prefetches") < \
        0.7 * dmp_full.stats.get("dmp_prefetches")


def test_conditional_pollution_counted():
    """DMP prefetches the unconditional stream; iterations that the kernel
    skips become useless prefetches."""
    targets = np.arange(256) * 4096 + (5 << 24)
    cfg, dram, hier, dmp, core = build()
    dmp.register_stream(77, targets)
    # Only even iterations are actually executed.
    tb = TraceBuilder()
    taken = set()
    for i in range(0, 256, 2):
        tb.load(int(targets[i]), pc=77, tag=i, extra=4)
        taken.add(i)
    core.run(tb.finish())
    acc = dmp.accuracy_against({77: taken})
    assert acc < 0.75  # roughly half the prefetches were wasted


def test_prefetch_traffic_reaches_dram():
    targets = np.arange(256) * 4096 + (5 << 24)
    cfg, dram, hier, dmp, core = build()
    dmp.register_stream(77, targets)
    core.run(indirect_trace(targets))
    dram.drain()
    assert hier.stats.get("dmp_prefetch_issued") > 0


def test_invalid_coverage():
    cfg = SystemConfig.dmp_system()
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    with pytest.raises(ValueError):
        DMPEngine(hier, coverage=1.5)

"""Hierarchy extensions: scratchpad-backed regions and DMP prefetch fills."""

import pytest

from repro.common import HitLevel, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem


def build():
    cfg = SystemConfig.baseline()
    dram = DRAMSystem(cfg.dram)
    return cfg, dram, MemoryHierarchy(cfg, dram)


SPD_LO = 1 << 40
SPD_HI = SPD_LO + (1 << 20)


def test_spd_region_fills_without_dram():
    cfg, dram, h = build()
    h.register_spd_region(SPD_LO, SPD_HI, latency=20)
    r = h.access(0, SPD_LO + 128, False, t=0, prefetch=False)
    assert r.level == HitLevel.SPD
    assert r.complete == 0 + cfg.l1.latency + cfg.l2.latency \
        + cfg.llc.latency + 20
    assert dram.merged_stats().get("requests", 0) == 0
    # Second access hits the cache normally.
    r2 = h.access(0, SPD_LO + 128, False, t=r.complete, prefetch=False)
    assert r2.level == HitLevel.L1


def test_spd_region_rejects_empty():
    cfg, dram, h = build()
    with pytest.raises(ValueError):
        h.register_spd_region(10, 10, latency=1)


def test_dmp_prefetch_pays_real_latency():
    cfg, dram, h = build()
    line = 0x40000
    h.prefetch_into(0, line, t=0)
    assert h.stats.get("dmp_prefetch_issued") == 1
    # Demand shortly after coalesces on the in-flight fill.
    r = h.access(0, line, False, t=10, prefetch=False)
    assert r.level == HitLevel.DRAM
    done = r.resolve(dram)
    assert done > 10 + cfg.llc.latency  # not a free hit


def test_dmp_prefetch_duplicate_and_resident_dropped():
    cfg, dram, h = build()
    line = 0x80000
    h.prefetch_into(0, line, t=0)
    h.prefetch_into(0, line, t=1)   # in flight / tag-resident: no re-issue
    assert h.stats.get("dmp_prefetch_issued") == 1
    dram.drain()
    before = h.stats.get("dmp_prefetch_issued")
    h.prefetch_into(0, line, t=10_000)
    assert h.stats.get("dmp_prefetch_issued") == before


def test_dmp_prefetch_respects_mshr_capacity():
    cfg, dram, h = build()
    for i in range(cfg.llc.mshrs + 8):
        h.prefetch_into(0, (1 << 22) + i * 64, t=0)
    assert h.stats.get("dmp_prefetch_dropped") >= 8

import pytest

from repro.cache import MSHRFile


def test_allocate_and_release():
    m = MSHRFile(2)
    e = m.allocate(0x1000, allocated_at=5)
    assert len(m) == 1 and not m.full
    assert m.release(0x1000) is e
    assert len(m) == 0


def test_full_detection():
    m = MSHRFile(2)
    m.allocate(0, 0)
    m.allocate(64, 0)
    assert m.full
    with pytest.raises(RuntimeError):
        m.allocate(128, 0)


def test_coalescing_lookup_counts_waiters():
    m = MSHRFile(4)
    e = m.allocate(0x40, 0)
    assert m.lookup(0x40) is e
    assert m.lookup(0x40) is e
    assert e.waiters == 2
    assert m.lookup(0x80) is None


def test_duplicate_allocation_rejected():
    m = MSHRFile(4)
    m.allocate(0x40, 0)
    with pytest.raises(ValueError):
        m.allocate(0x40, 1)


def test_oldest_is_fifo():
    m = MSHRFile(4)
    m.allocate(1 * 64, 0)
    m.allocate(2 * 64, 1)
    assert m.oldest().line_addr == 64
    m.release(64)
    assert m.oldest().line_addr == 128


def test_release_unknown_raises():
    m = MSHRFile(2)
    with pytest.raises(KeyError):
        m.release(0xdead)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_resolve_sets_ready():
    m = MSHRFile(2)
    e = m.allocate(0, 0)
    assert e.ready == -1
    e.resolve(123)
    assert e.ready == 123

"""Additional hierarchy behaviours: writeback paths, coalescing stats,
observer contract, prefetch-into-SPD suppression."""

from dataclasses import replace

import pytest

from repro.common import HitLevel, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem


def build(**over):
    cfg = SystemConfig.baseline()
    if over:
        cfg = replace(cfg, **over)
    dram = DRAMSystem(cfg.dram)
    return cfg, dram, MemoryHierarchy(cfg, dram)


def test_observers_receive_tags_and_pcs():
    cfg, dram, h = build()
    seen = []
    h.observers.append(lambda core, addr, pc, tag, t:
                       seen.append((core, addr, pc, tag)))
    h.access(2, 0x1234, False, t=5, pc=77, tag=9, prefetch=False)
    assert seen == [(2, 0x1234, 77, 9)]


def test_stores_dirty_the_line_and_write_back_on_eviction():
    small_llc = replace(SystemConfig.baseline().llc,
                        size_bytes=64 * 4 * 8, ways=4, mshrs=8)
    cfg, dram, h = build(llc=small_llc)
    # Write a line, then push it out of the tiny LLC with other lines.
    h.access(0, 0x100, True, 0, prefetch=False).resolve(dram)
    for i in range(1, 64):
        h.access(0, 0x100 + i * 64 * 8, False, i * 100,
                 prefetch=False).resolve(dram)
    dram.drain()
    assert dram.merged_stats().get("writes", 0) >= 1


def test_l1_coalescing_counts():
    cfg, dram, h = build()
    h.access(0, 0x9000, False, 0, prefetch=False)
    h.access(0, 0x9008, False, 1, prefetch=False)
    h.access(0, 0x9010, False, 2, prefetch=False)
    assert h.stats.get("l1_mshr_coalesced") == 2
    assert dram.merged_stats().get("requests") == 1


def test_spd_region_store_marks_dirty_but_no_dram():
    cfg, dram, h = build()
    lo = 1 << 40
    h.register_spd_region(lo, lo + (1 << 16), latency=10)
    r = h.access(0, lo + 64, True, 0, prefetch=False)
    assert r.level == HitLevel.SPD
    dram.drain()
    assert dram.merged_stats().get("requests", 0) == 0


def test_snoop_does_not_perturb_lru():
    cfg, dram, h = build()
    h.access(0, 0, False, 0, prefetch=False).resolve(dram)
    h.access(0, 64, False, 10, prefetch=False).resolve(dram)
    before = h.llc.resident_lines
    for _ in range(100):
        h.snoop(0)
    assert h.llc.resident_lines == before


def test_distinct_cores_have_private_l1():
    cfg, dram, h = build()
    h.access(0, 0x5000, False, 0, prefetch=False).resolve(dram)
    assert h.l1[0].lookup(0x5000, update_lru=False)
    assert not h.l1[1].lookup(0x5000, update_lru=False)

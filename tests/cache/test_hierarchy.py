"""Hierarchy timing, MSHR coalescing/stalls, snooping, and MPKI accounting."""

import pytest

from repro.common import DRAMConfig, HitLevel, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem


@pytest.fixture()
def system():
    cfg = SystemConfig.baseline()
    dram = DRAMSystem(cfg.dram)
    return cfg, dram, MemoryHierarchy(cfg, dram)


def test_first_access_misses_to_dram_then_hits_l1(system):
    cfg, dram, h = system
    r1 = h.access(core=0, addr=0x10000, is_write=False, t=0)
    assert r1.level == HitLevel.DRAM
    done = r1.resolve(dram)
    assert done > cfg.l1.latency + cfg.l2.latency + cfg.llc.latency
    r2 = h.access(core=0, addr=0x10000, is_write=False, t=done)
    assert r2.level == HitLevel.L1
    assert r2.complete == done + cfg.l1.latency


def test_hit_latencies_accumulate_down_the_hierarchy(system):
    cfg, dram, h = system
    # Warm the line, then evict it from L1 only by filling the L1 set.
    first = h.access(0, 0, False, 0, prefetch=False)
    first.resolve(dram)
    set_stride = cfg.l1.sets * 64
    for i in range(1, cfg.l1.ways + 1):
        h.access(0, i * set_stride, False, 100 + i, prefetch=False).resolve(dram)
    r = h.access(0, 0, False, 10_000, prefetch=False)
    assert r.level == HitLevel.L2
    assert r.complete == 10_000 + cfg.l1.latency + cfg.l2.latency


def test_same_line_misses_coalesce_into_one_dram_request(system):
    cfg, dram, h = system
    a = h.access(0, 0x4000, False, 0, prefetch=False)
    b = h.access(0, 0x4008, False, 1, prefetch=False)
    assert a.level == HitLevel.DRAM and b.level == HitLevel.DRAM
    assert a.request is b.request
    assert dram.merged_stats().get("requests") == 1


def test_cross_core_llc_sharing(system):
    cfg, dram, h = system
    h.access(0, 0x8000, False, 0, prefetch=False).resolve(dram)
    r = h.access(1, 0x8000, False, 50_000, prefetch=False)
    assert r.level == HitLevel.LLC


def test_stride_prefetcher_turns_stream_into_hits(system):
    cfg, dram, h = system
    t = 0
    levels = []
    for i in range(64):
        r = h.access(0, i * 64, False, t, pc=42)
        t = r.resolve(dram)
        levels.append(r.level)
    # After training, later lines should be prefetched before demand.
    tail = levels[16:]
    assert any(lv in (HitLevel.L1, HitLevel.L2) for lv in tail)


def test_mshr_stall_bounds_outstanding_misses():
    from dataclasses import replace
    cfg = SystemConfig.baseline()
    cfg = replace(cfg, l1=replace(cfg.l1, prefetcher=False),
                  l2=replace(cfg.l2, prefetcher=False))
    dram = DRAMSystem(cfg.dram)
    h = MemoryHierarchy(cfg, dram)
    results = []
    for i in range(cfg.l1.mshrs + 4):
        # Distinct lines in distinct sets, all at t=0.
        results.append(h.access(0, i * 64 * cfg.l1.sets, False, 0,
                                prefetch=False))
    assert h.stats.get("l1_mshr_stalls") > 0
    # Stalled accesses were issued later than t=0.
    assert max(r.issue for r in results) > 0


def test_snoop_and_invalidate(system):
    cfg, dram, h = system
    h.access(0, 0xA000, False, 0, prefetch=False).resolve(dram)
    assert h.snoop(0xA000)
    h.invalidate(0xA000)
    assert not h.snoop(0xA000)


def test_llc_direct_access_skips_private_caches(system):
    cfg, dram, h = system
    r = h.llc_access(0xC000, is_write=False, t=0)
    assert r.level == HitLevel.DRAM
    r.resolve(dram)
    # The line is in the LLC but not in any L1.
    assert h.llc.lookup(0xC000, update_lru=False)
    assert not h.l1[0].lookup(0xC000, update_lru=False)
    r2 = h.llc_access(0xC000, is_write=False, t=10_000)
    assert r2.level == HitLevel.LLC


def test_dirty_llc_eviction_writes_back(system):
    cfg, dram, h = system
    # Construct a small LLC to force evictions quickly.
    small = SystemConfig.baseline()
    from dataclasses import replace
    small = replace(small, llc=replace(small.llc, size_bytes=64 * 16 * 4,
                                       ways=4, mshrs=16))
    dram2 = DRAMSystem(small.dram)
    h2 = MemoryHierarchy(small, dram2)
    for i in range(64):
        h2.access(0, i * 64, is_write=True, t=i * 10, prefetch=False)
    dram2.drain()
    assert dram2.merged_stats().get("writes") > 0


def test_mpki(system):
    cfg, dram, h = system
    for i in range(10):
        h.access(0, i * 64 * cfg.l1.sets, False, 0, prefetch=False)
    assert h.mpki("l1", kilo_instructions=1.0) == 10
    assert h.mpki("l1", kilo_instructions=0) == 0.0

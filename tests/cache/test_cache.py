"""Tag-store behaviour: LRU, eviction, dirty tracking, invalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CacheConfig
from repro.cache import Cache


def tiny_cache(ways=2, sets=2):
    return Cache(CacheConfig("T", 64 * ways * sets, ways, latency=1, mshrs=4))


def test_miss_then_hit():
    c = tiny_cache()
    assert not c.lookup(0x1000)
    c.insert(0x1000)
    assert c.lookup(0x1000)
    assert c.lookup(0x1004)  # same line


def test_lru_eviction_order():
    c = tiny_cache(ways=2, sets=1)
    c.insert(0)        # line A
    c.insert(64)       # line B
    c.lookup(0)        # A becomes MRU
    victim = c.insert(128)
    assert victim == (64, False)
    assert c.lookup(0) and not c.lookup(64)


def test_dirty_eviction_reported():
    c = tiny_cache(ways=1, sets=1)
    c.insert(0, dirty=True)
    victim = c.insert(64)
    assert victim == (0, True)
    assert c.stats.get("dirty_evictions") == 1


def test_touch_marks_dirty():
    c = tiny_cache()
    c.insert(0x40)
    c.touch(0x40, dirty=True)
    # Evict by filling the set; the dirtied line must come out dirty.
    victims = [c.insert(0x40 + i * 64 * c.config.sets) for i in range(1, 4)]
    assert (0x40, True) in [v for v in victims if v is not None]


def test_insert_existing_line_is_noop_eviction():
    c = tiny_cache()
    c.insert(0)
    assert c.insert(0) is None
    assert c.resident_lines == 1


def test_invalidate():
    c = tiny_cache()
    c.insert(0x80)
    assert c.invalidate(0x80)
    assert not c.lookup(0x80)
    assert not c.invalidate(0x80)


def test_sets_are_independent():
    c = tiny_cache(ways=1, sets=2)
    c.insert(0)    # set 0
    c.insert(64)   # set 1
    assert c.lookup(0) and c.lookup(64)


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_capacity_invariant(line_indices):
    c = tiny_cache(ways=4, sets=4)
    for idx in line_indices:
        c.insert(idx * 64)
    assert c.resident_lines <= 16
    # Every recent distinct line within one set's way-count must be resident.
    last = line_indices[-1]
    assert c.lookup(last * 64)

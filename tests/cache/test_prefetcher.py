from repro.cache import StridePrefetcher


def test_needs_two_confirmations_before_prefetching():
    pf = StridePrefetcher(degree=1)
    assert not pf.observe(pc=1, addr=0)
    assert not pf.observe(pc=1, addr=64)         # stride learned
    assert not pf.observe(pc=1, addr=128)        # first confirmation
    assert pf.observe(pc=1, addr=192) == [256]   # confident


def test_degree_controls_lookahead():
    pf = StridePrefetcher(degree=3)
    for addr in (0, 64, 128):
        pf.observe(pc=7, addr=addr)
    assert pf.observe(pc=7, addr=192) == [256, 320, 384]


def test_random_addresses_never_train():
    pf = StridePrefetcher(degree=2)
    out = []
    for addr in (0, 777 * 64, 13 * 64, 999 * 64, 4 * 64, 123 * 64):
        out += pf.observe(pc=3, addr=addr)
    assert not out


def test_stride_change_resets_confidence():
    pf = StridePrefetcher(degree=1)
    for addr in (0, 8, 16, 24):
        pf.observe(pc=1, addr=addr)
    assert pf.observe(pc=1, addr=32)
    # Break the stride.
    assert not pf.observe(pc=1, addr=1000)
    assert not pf.observe(pc=1, addr=1008)


def test_small_strides_dedupe_to_lines():
    pf = StridePrefetcher(degree=2)
    for addr in (0, 8, 16):
        pf.observe(pc=1, addr=addr)
    out = pf.observe(pc=1, addr=24)
    # 24+8=32 and 24+16=40 share line 0: a single line candidate.
    assert out == [0]


def test_pcs_are_independent():
    pf = StridePrefetcher(degree=1)
    for addr in (0, 64, 128):
        pf.observe(pc=1, addr=addr)
        pf.observe(pc=2, addr=addr + 7)
    assert pf.observe(pc=1, addr=192) == [256]
    assert pf.observe(pc=2, addr=199) == [256]


def test_table_capacity_bounded():
    pf = StridePrefetcher(degree=1, table_size=4)
    for pc in range(100):
        pf.observe(pc=pc, addr=pc * 64)
    assert len(pf._table) <= 4

"""Regression tests for the prefetch/demand race and its MPKI accounting.

A DMP prefetch (:meth:`MemoryHierarchy.prefetch_into`) allocates an LLC
MSHR entry flagged ``prefetch=True`` and installs the tag immediately
(pollution), with the fill paying real DRAM latency.  The first demand to
the line adjudicates the race:

* fill already landed (``ready <= now``) — a *timely* prefetch: the
  demand is a plain LLC hit, no miss charged;
* fill still in flight — the prefetch merely absorbed the demand miss:
  exactly *one* ``llc_misses`` is charged, the entry's flag is cleared so
  later coalescing demands charge nothing, and the demand waits for the
  actual fill (no free hit).

These tests pin the counter arithmetic (and the resulting MPKI) for both
outcomes, on the scalar oracle and the batched front-end alike.
"""

from dataclasses import replace

from repro.cache.batched import BatchedHierarchy
from repro.cache.hierarchy import MemoryHierarchy
from repro.common import SystemConfig
from repro.common.types import HitLevel
from repro.dram.system import DRAMSystem

LINE = 64


def _config() -> SystemConfig:
    """One core, stride prefetchers off — every counter is scripted."""
    cfg = SystemConfig.baseline(1)
    return replace(cfg,
                   l1=replace(cfg.l1, prefetcher=False),
                   l2=replace(cfg.l2, prefetcher=False))


def _hierarchy(cls=MemoryHierarchy):
    cfg = _config()
    return cls(cfg, DRAMSystem(cfg.dram))


def test_timely_prefetch_is_a_plain_hit():
    h = _hierarchy()
    h.prefetch_into(0, 0, t=0)
    assert h.stats.get("dmp_prefetch_issued") == 1
    entry = h.llc_mshr._entries[0]
    h.dram.drain()
    assert entry.request.finish >= 0
    late = entry.request.finish + 500
    result = h.access(0, 0, is_write=False, t=late, prefetch=False)
    assert result.level is HitLevel.LLC
    # A hit completes at the demand's own LLC latency — not the fill's.
    assert result.complete == late + h.config.l1.latency \
        + h.config.l2.latency + h.config.llc.latency
    assert h.stats.get("llc_hits") == 1
    assert h.stats.get("llc_misses") == 0
    assert h.mpki("llc", 1.0) == 0.0


def test_demand_racing_inflight_prefetch_charges_exactly_one_miss():
    h = _hierarchy()
    h.prefetch_into(0, 0, t=0)
    entry = h.llc_mshr._entries[0]
    assert entry.prefetch and entry.request.finish < 0  # still in flight
    result = h.access(0, 0, is_write=False, t=1, prefetch=False)
    assert h.stats.get("llc_misses") == 1
    assert not entry.prefetch  # race adjudicated, flag consumed
    # No free hit: the demand waits for the *actual* DRAM fill.
    assert result.complete < 0 and result.request is entry.request
    done = result.resolve(h.dram)
    assert done == entry.request.finish + h.config.llc.latency
    # A second demand to the same line coalesces silently: still one miss.
    h.access(0, 0, is_write=False, t=2, prefetch=False)
    assert h.stats.get("llc_misses") == 1
    assert h.mpki("llc", 1.0) == 1.0


def test_prefetch_admission_drops():
    h = _hierarchy()
    h.prefetch_into(0, 0, t=0)
    # Tag evicted while the fill is in flight: the line is still
    # outstanding in the MSHR, so a re-prefetch is dropped, not re-issued.
    h.llc.invalidate(0)
    h.prefetch_into(0, 0, t=1)
    assert h.stats.get("dmp_prefetch_dropped") == 1
    # A line already resident in the LLC is not re-requested either.
    h.access(0, LINE, is_write=False, t=2, prefetch=False)
    h.dram.drain()
    h.llc_mshr.release_resolved()
    issued = h.stats.get("dmp_prefetch_issued")
    h.prefetch_into(0, LINE, t=10_000)
    assert h.stats.get("dmp_prefetch_issued") == issued
    assert h.stats.get("dmp_prefetch_dropped") == 1
    # A full MSHR file drops too (no demand ever stalls on a prefetch).
    while not h.llc_mshr.full:
        h.llc_mshr.allocate((1000 + len(h.llc_mshr)) * LINE,
                            allocated_at=0)
    h.prefetch_into(0, 999 * LINE, t=10_001)
    assert h.stats.get("dmp_prefetch_dropped") == 2


def _resolve(h, r):
    """(level, complete) from either front-end's access return shape:
    the scalar :class:`AccessResult` or the batched plain tuple."""
    if isinstance(r, tuple):
        level, _issue, complete, request, ret_lat = r
        if complete < 0:
            if request.finish < 0:
                h.dram.complete(request)
            complete = request.finish + ret_lat
        return level, complete
    return r.level, r.resolve(h.dram)


def _scripted_mpki(cls):
    """4 cold misses + 1 timely prefetch hit + 1 raced prefetch = 5
    LLC misses; returns (counters, mpki) after the script."""
    h = _hierarchy(cls)
    t = 0
    for i in range(4):  # cold demand misses, irregular stride
        r = h.access(0, i * 7 * LINE, is_write=False, t=t, prefetch=False)
        t = _resolve(h, r)[1] + 10
    h.prefetch_into(0, 100 * LINE, t=t)
    h.dram.drain()
    h.llc_mshr.release_resolved()
    t += 10_000  # far past the fill: timely
    r = h.access(0, 100 * LINE, is_write=False, t=t, prefetch=False)
    assert _resolve(h, r)[0] is HitLevel.LLC
    h.prefetch_into(0, 200 * LINE, t=t)
    h.access(0, 200 * LINE, is_write=False, t=t + 1, prefetch=False)  # race
    return dict(h.stats.counters), h.mpki("llc", 1.0)


def test_scripted_mpki_is_pinned_and_frontend_invariant():
    scalar_counters, scalar_mpki = _scripted_mpki(MemoryHierarchy)
    assert scalar_mpki == 5.0
    assert scalar_counters["llc_misses"] == 5
    assert scalar_counters["llc_hits"] == 1
    batched_counters, batched_mpki = _scripted_mpki(BatchedHierarchy)
    assert batched_counters == scalar_counters
    assert batched_mpki == scalar_mpki

"""Documentation hygiene: every public module, module-level function, and
class in the library carries a docstring (deliverable (e)).  Methods are
exempt when they override a documented base-class hook (the workload
interface), so the rule checks module-level definitions and classes."""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _public_toplevel(tree):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node


@pytest.mark.parametrize(
    "path", sorted(SRC.rglob("*.py")), ids=lambda p: str(p.relative_to(SRC)))
def test_module_and_public_items_documented(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"
    missing = []
    for node in _public_toplevel(tree):
        span = (node.end_lineno or node.lineno) - node.lineno
        if span > 6 and not ast.get_docstring(node):
            missing.append(node.name)
    assert not missing, (
        f"{path}: public module-level items without docstrings: {missing}"
    )

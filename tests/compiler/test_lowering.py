"""Lowering details: expression compilation, memoization, and errors."""

import numpy as np
import pytest

from repro.common import AluOp, DType, DX100Config
from repro.compiler import (
    ArrayDecl, BinOp, Binding, Const, Function, Load, Loop, LoweringError,
    Store, Var, hoist, lower_chunk, tile_loop, innermost,
)
from repro.dx100 import FunctionalDX100, HostMemory, ProgramBuilder
from repro.dx100.isa import Instr, Opcode


def make_plan(body, n=64):
    loop = innermost(tile_loop(Loop("i", Const(0), Const(n), body), 32))
    return hoist(loop)


def lower(plan, bindings, lo=0, hi=32):
    pb = ProgramBuilder(DX100Config(tile_elems=32))
    streams = lower_chunk(plan, bindings, pb, lo, hi)
    return pb.build(), streams


def opcodes(items):
    return [x.opcode for x in items if isinstance(x, Instr)]


B = {
    "A": Binding(0x100000, DType.I64),
    "B": Binding(0x200000, DType.I64),
    "C": Binding(0x300000, DType.I64),
}


def test_simple_gather_lowering_shape():
    plan = make_plan([Store("C", Var("i"), Load("A", Load("B", Var("i"))))])
    items, streams = lower(plan, B)
    ops = opcodes(items)
    assert ops.count(Opcode.SLD) == 1   # B stream
    assert ops.count(Opcode.ILD) == 1   # gather
    assert ops.count(Opcode.SST) == 1   # sunk direct store
    assert streams  # the packed load got a tile


def test_common_subexpression_memoized():
    # A[B[i]] + A2? -- two uses of B[i] compile one SLD.
    plan = make_plan([
        Store("C", Var("i"),
              BinOp(AluOp.ADD, Load("A", Load("B", Var("i"))),
                    Load("B", Var("i")))),
    ])
    items, _ = lower(plan, B)
    assert opcodes(items).count(Opcode.SLD) == 1


def test_alus_for_constant_operand():
    plan = make_plan([
        Store("C", Var("i"),
              Load("A", BinOp(AluOp.AND, Load("B", Var("i")), Const(7)))),
    ])
    items, _ = lower(plan, B)
    assert Opcode.ALUS in opcodes(items)


def test_missing_binding_raises():
    plan = make_plan([Store("C", Var("i"), Load("A", Load("B", Var("i"))))])
    with pytest.raises(LoweringError):
        lower(plan, {"B": B["B"], "C": B["C"]})  # no binding for A


def test_noncommutative_const_lhs_rejected():
    plan = make_plan([
        Store("C", Var("i"),
              Load("A", BinOp(AluOp.SUB, Const(100), Load("B", Var("i"))))),
    ])
    with pytest.raises(LoweringError):
        lower(plan, B)


def test_rmw_constant_value_materializes_const_tile():
    plan = make_plan([
        Store("A", Load("B", Var("i")), Const(1), accum=AluOp.ADD),
    ])
    items, _ = lower(plan, B)
    ops = opcodes(items)
    assert Opcode.IRMW in ops
    # The constant tile costs two ALUS ops (splat via *0 then +c).
    assert ops.count(Opcode.ALUS) >= 2

    # And it runs correctly end to end.
    mem = HostMemory(1 << 22)
    b = np.arange(32, dtype=np.int64)
    a = np.zeros(64, dtype=np.int64)
    bindings = {
        "A": Binding(mem.place("A", a), DType.I64),
        "B": Binding(mem.place("B", b), DType.I64),
    }
    pb = ProgramBuilder(DX100Config(tile_elems=32))
    lower_chunk(plan, bindings, pb, 0, 32)
    FunctionalDX100(DX100Config(tile_elems=32), mem).run(pb.build())
    assert mem.view("A")[:32].tolist() == [1] * 32

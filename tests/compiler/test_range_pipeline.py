"""Range-loop compilation through the Range Fuser (Table 1's j = H[i]..H[i+1])."""

import numpy as np
import pytest

from repro.common import AluOp, DType, DX100Config
from repro.compiler import (
    ArrayDecl, BinOp, Const, Function, Load, Loop, Store, Var, bind_arrays,
    reference_run,
)
from repro.compiler.pipeline import offload_range_kernel
from repro.dx100 import FunctionalDX100, HostMemory
from repro.dx100.isa import Instr, Opcode


def csr_arrays(rows, avg, cols, rng):
    degrees = rng.integers(max(1, avg - 2), avg + 3, rows)
    h = np.zeros(rows + 1, dtype=np.int64)
    h[1:] = np.cumsum(degrees)
    nnz = int(h[-1])
    return h, nnz


def range_gather_fn(rows, nnz, m):
    """for i: for j in H[i]..H[i+1]: OUT[j] = A[B[j]]  (the CG pattern)."""
    return Function(
        "range_gather",
        arrays={
            "H": ArrayDecl("H", DType.I64, rows + 1),
            "A": ArrayDecl("A", DType.I64, m),
            "B": ArrayDecl("B", DType.I64, nnz),
            "OUT": ArrayDecl("OUT", DType.I64, nnz),
        },
        body=[Loop("i", Const(0), Const(rows), [
            Loop("j", Load("H", Var("i")),
                 Load("H", BinOp(AluOp.ADD, Var("i"), Const(1))), [
                     Store("OUT", Var("j"), Load("A", Load("B", Var("j")))),
                 ]),
        ])],
    )


def test_range_gather_compiles_and_matches_interpreter():
    rows, avg, m = 64, 6, 512
    rng = np.random.default_rng(0)
    h, nnz = csr_arrays(rows, avg, m, rng)
    arrays = {
        "H": h,
        "A": rng.integers(0, 1000, m).astype(np.int64),
        "B": rng.integers(0, m, nnz).astype(np.int64),
        "OUT": np.zeros(nnz, dtype=np.int64),
    }
    fn = range_gather_fn(rows, nnz, m)
    expect = reference_run(fn, arrays)

    config = DX100Config(tile_elems=128)
    mem = HostMemory(1 << 22)
    bindings = bind_arrays(fn, mem, arrays)
    kernel = offload_range_kernel(fn, bindings, h, config, tile=128)
    ops = [x.opcode for x in kernel.program if isinstance(x, Instr)]
    assert Opcode.RNG in ops          # the Range Fuser is exercised
    assert len(kernel.chunks) > 1     # fused index space was chunked

    FunctionalDX100(config, mem).run(kernel.program)
    assert mem.view("OUT").tolist() == expect["OUT"].tolist()


def test_range_rmw_with_outer_variable_value():
    """for i: for j in H[i]..H[i+1]: A[B[j]] += C[i]  (the PR pattern)."""
    rows, m = 48, 256
    rng = np.random.default_rng(1)
    h, nnz = csr_arrays(rows, 5, m, rng)
    arrays = {
        "H": h,
        "A": np.zeros(m, dtype=np.int64),
        "B": rng.integers(0, m, nnz).astype(np.int64),
        "C": rng.integers(1, 50, rows).astype(np.int64),
    }
    fn = Function(
        "range_rmw",
        arrays={name: ArrayDecl(name, DType.I64, len(arr))
                for name, arr in arrays.items()},
        body=[Loop("i", Const(0), Const(rows), [
            Loop("j", Load("H", Var("i")),
                 Load("H", BinOp(AluOp.ADD, Var("i"), Const(1))), [
                     Store("A", Load("B", Var("j")), Load("C", Var("i")),
                           accum=AluOp.ADD),
                 ]),
        ])],
    )
    expect = reference_run(fn, arrays)
    config = DX100Config(tile_elems=64)
    mem = HostMemory(1 << 22)
    bindings = bind_arrays(fn, mem, arrays)
    kernel = offload_range_kernel(fn, bindings, h, config, tile=64)
    FunctionalDX100(config, mem).run(kernel.program)
    assert mem.view("A").tolist() == expect["A"].tolist()


def test_malformed_range_nests_rejected():
    fn = Function("flat", {"A": ArrayDecl("A", DType.I64, 4)},
                  [Store("A", Const(0), Const(1))])
    with pytest.raises(ValueError):
        offload_range_kernel(fn, {}, np.zeros(4, dtype=np.int64))

    # Upper bound from a different array than the lower bound.
    bad = Function(
        "bad",
        arrays={
            "H": ArrayDecl("H", DType.I64, 5),
            "G": ArrayDecl("G", DType.I64, 5),
            "A": ArrayDecl("A", DType.I64, 8),
            "B": ArrayDecl("B", DType.I64, 8),
        },
        body=[Loop("i", Const(0), Const(4), [
            Loop("j", Load("H", Var("i")),
                 Load("G", BinOp(AluOp.ADD, Var("i"), Const(1))), [
                     Store("A", Load("B", Var("j")), Const(1),
                           accum=AluOp.ADD),
                 ]),
        ])],
    )
    with pytest.raises(ValueError):
        offload_range_kernel(bad, {}, np.zeros(5, dtype=np.int64))

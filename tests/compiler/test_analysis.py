"""Indirect-access detection and the legality (alias) analysis."""

from repro.common import AluOp, DType
from repro.compiler import (
    ArrayDecl, Assign, BinOp, Const, Function, If, Load, Loop, Store, Var,
    find_indirect_accesses, is_legal, legal_accesses,
)


def loop_of(body, var="i", n=16, parallel=True):
    return Loop(var, Const(0), Const(n), body, parallel=parallel)


def test_detects_simple_gather():
    loop = loop_of([Store("C", Var("i"), Load("A", Load("B", Var("i"))))])
    found = find_indirect_accesses(loop)
    assert len(found) == 1
    acc = found[0]
    assert acc.kind == "load" and acc.array == "A"
    assert acc.depth == 1  # one level of indirection in the index


def test_direct_access_not_flagged():
    loop = loop_of([Store("C", Var("i"), Load("A", Var("i")))])
    assert find_indirect_accesses(loop) == []


def test_detects_through_use_def_chain():
    # t = B[i]; u = t & 63;  ... A[u]  (the hash-join pattern)
    loop = loop_of([
        Assign("t", Load("B", Var("i"))),
        Assign("u", BinOp(AluOp.AND, Var("t"), Const(63))),
        Store("C", Var("i"), Load("A", Var("u"))),
    ])
    found = find_indirect_accesses(loop)
    assert len(found) == 1
    assert found[0].array == "A"


def test_detects_conditional_store_and_rmw():
    loop = loop_of([
        If(BinOp(AluOp.GE, Load("D", Var("i")), Const(0)), [
            Store("A", Load("B", Var("i")), Const(1), accum=AluOp.ADD),
        ]),
    ])
    found = find_indirect_accesses(loop)
    rmws = [a for a in found if a.kind == "rmw"]
    assert len(rmws) == 1
    assert rmws[0].cond is not None


def test_multi_level_depth():
    loop = loop_of([
        Store("X", Var("i"), Load("A", Load("B", Load("C", Var("i"))))),
    ])
    acc = [a for a in find_indirect_accesses(loop) if a.array == "A"]
    assert acc and acc[0].depth == 2  # B[C[i]] index chain


def test_gauss_seidel_is_illegal():
    """Indirect load from an array the loop also stores to (Section 4.2)."""
    loop = loop_of([
        Store("A", Var("i"),
              BinOp(AluOp.ADD, Load("A", Load("B", Var("i"))), Const(1))),
    ])
    found = find_indirect_accesses(loop)
    assert found
    assert all(not is_legal(loop, a) for a in found)


def test_serial_loop_is_illegal():
    loop = loop_of([Store("C", Var("i"), Load("A", Load("B", Var("i"))))],
                   parallel=False)
    assert legal_accesses(loop) == []


def test_index_array_written_is_illegal():
    # B is both the index source and a store target.
    loop = loop_of([
        Store("C", Var("i"), Load("A", Load("B", Var("i")))),
        Store("B", Var("i"), Const(0)),
    ])
    gather = [a for a in find_indirect_accesses(loop) if a.array == "A"]
    assert gather and not is_legal(loop, gather[0])


def test_legal_rmw():
    loop = loop_of([
        Store("A", Load("B", Var("i")), Load("C", Var("i")),
              accum=AluOp.ADD),
    ])
    legal = legal_accesses(loop)
    assert len(legal) == 1 and legal[0].kind == "rmw"


def test_store_value_reading_target_is_illegal():
    # A[B[i]] = A[C[i]] — scatter whose value reads the scattered array.
    loop = loop_of([
        Store("A", Load("B", Var("i")), Load("A", Load("C", Var("i")))),
    ])
    stores = [a for a in find_indirect_accesses(loop) if a.kind == "store"]
    assert stores and not is_legal(loop, stores[0])

"""IR construction and reference-interpreter semantics."""

import numpy as np
import pytest

from repro.common import AluOp, DType
from repro.compiler import (
    ArrayDecl, Assign, BinOp, Const, Function, If, Interpreter, Load, Loop,
    Store, Var, loads_in, read_arrays, substitute, vars_in, written_arrays,
)


def gather_fn(n=16, m=32):
    """C[i] = A[B[i]] — the paper's Figure 7(a)."""
    return Function(
        name="gather",
        arrays={
            "A": ArrayDecl("A", DType.I64, m),
            "B": ArrayDecl("B", DType.I64, n),
            "C": ArrayDecl("C", DType.I64, n),
        },
        body=[Loop("i", Const(0), Const(n), [
            Store("C", Var("i"), Load("A", Load("B", Var("i")))),
        ])],
    )


def test_interpreter_runs_gather():
    fn = gather_fn()
    rng = np.random.default_rng(0)
    arrays = {
        "A": rng.integers(0, 100, 32).astype(np.int64),
        "B": rng.integers(0, 32, 16).astype(np.int64),
        "C": np.zeros(16, dtype=np.int64),
    }
    Interpreter(fn, arrays).run()
    assert arrays["C"].tolist() == arrays["A"][arrays["B"]].tolist()


def test_interpreter_conditional_rmw():
    fn = Function(
        name="cond_rmw",
        arrays={
            "A": ArrayDecl("A", DType.I64, 8),
            "B": ArrayDecl("B", DType.I64, 8),
            "D": ArrayDecl("D", DType.I64, 8),
        },
        body=[Loop("i", Const(0), Const(8), [
            If(BinOp(AluOp.GE, Load("D", Var("i")), Const(4)), [
                Store("A", Load("B", Var("i")), Const(1), accum=AluOp.ADD),
            ]),
        ])],
    )
    arrays = {
        "A": np.zeros(8, dtype=np.int64),
        "B": np.arange(8, dtype=np.int64),
        "D": np.arange(8, dtype=np.int64),
    }
    Interpreter(fn, arrays).run()
    assert arrays["A"].tolist() == [0, 0, 0, 0, 1, 1, 1, 1]


def test_interpreter_assignment_and_arith():
    fn = Function(
        name="arith",
        arrays={"X": ArrayDecl("X", DType.I64, 4)},
        body=[Loop("i", Const(0), Const(4), [
            Assign("t", BinOp(AluOp.SHL, Var("i"), Const(1))),
            Store("X", Var("i"), Var("t")),
        ])],
    )
    arrays = {"X": np.zeros(4, dtype=np.int64)}
    Interpreter(fn, arrays).run()
    assert arrays["X"].tolist() == [0, 2, 4, 6]


def test_interpreter_validates_arrays():
    fn = gather_fn()
    with pytest.raises(KeyError):
        Interpreter(fn, {"A": np.zeros(32, dtype=np.int64)})
    bad = {
        "A": np.zeros(32, dtype=np.int64),
        "B": np.zeros(99, dtype=np.int64),   # wrong length
        "C": np.zeros(16, dtype=np.int64),
    }
    with pytest.raises(ValueError):
        Interpreter(fn, bad)


def test_undefined_variable_raises():
    fn = Function("bad", {"X": ArrayDecl("X", DType.I64, 2)},
                  [Store("X", Const(0), Var("nope"))])
    with pytest.raises(NameError):
        Interpreter(fn, {"X": np.zeros(2, dtype=np.int64)}).run()


def test_loads_in_finds_nested():
    expr = Load("A", BinOp(AluOp.ADD, Load("B", Var("i")), Const(1)))
    found = loads_in(expr)
    assert [l.array for l in found] == ["A", "B"]


def test_vars_and_substitute():
    expr = BinOp(AluOp.ADD, Var("t"), Const(1))
    assert vars_in(expr) == {"t"}
    sub = substitute(expr, {"t": Load("B", Var("i"))})
    assert loads_in(sub)[0].array == "B"
    assert vars_in(sub) == {"i"}


def test_written_and_read_arrays():
    fn = gather_fn()
    loop = fn.body[0]
    assert written_arrays(loop.body) == {"C"}
    assert read_arrays(loop.body) == {"A", "B"}

"""Property-based compiler validation: random kernels from a small grammar
are compiled to DX100 programs and must match the reference interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AluOp, DType, DX100Config
from repro.compiler import (
    ArrayDecl, BinOp, Const, Function, If, Load, Loop, Store, Var,
    bind_arrays, offload_kernel, reference_run,
)
from repro.dx100 import FunctionalDX100, HostMemory

N = 96          # loop trip count
M = 64          # indexable array length

# Index expressions over i that stay within [0, M).
index_exprs = st.sampled_from([
    Load("B", Var("i")),
    Load("B", BinOp(AluOp.AND, Load("C", Var("i")), Const(M - 1))),
    Load("B", Load("B2", Var("i"))),
    BinOp(AluOp.AND, Load("C", Var("i")), Const(M - 1)),
])

# Value expressions for stores/RMWs.
value_exprs = st.sampled_from([
    Const(3),
    Load("V", Var("i")),
    BinOp(AluOp.ADD, Load("V", Var("i")), Const(1)),
])

conditions = st.sampled_from([
    None,
    BinOp(AluOp.GE, Load("D", Var("i")), Const(50)),
    BinOp(AluOp.LT, Load("D", Var("i")), Const(30)),
])

kernel_kinds = st.sampled_from(["gather", "rmw", "store"])


def build_function(kind, index, value, cond):
    if kind == "gather":
        stmt = Store("OUT", Var("i"), Load("A", index))
    elif kind == "rmw":
        stmt = Store("A", index, value, accum=AluOp.ADD)
    else:
        stmt = Store("A", index, value)
    body = [If(cond, [stmt])] if cond is not None else [stmt]
    decls = {
        "A": ArrayDecl("A", DType.I64, M),
        "B": ArrayDecl("B", DType.I64, N),
        "B2": ArrayDecl("B2", DType.I64, N),
        "C": ArrayDecl("C", DType.I64, N),
        "D": ArrayDecl("D", DType.I64, N),
        "V": ArrayDecl("V", DType.I64, N),
        "OUT": ArrayDecl("OUT", DType.I64, N),
    }
    return Function("fuzz", decls, [Loop("i", Const(0), Const(N), body)])


def make_arrays(seed):
    rng = np.random.default_rng(seed)
    return {
        "A": rng.integers(0, 1000, M).astype(np.int64),
        "B": rng.integers(0, M, N).astype(np.int64),
        "B2": rng.integers(0, N, N).astype(np.int64),
        "C": rng.integers(0, 1 << 16, N).astype(np.int64),
        "D": rng.integers(0, 100, N).astype(np.int64),
        "V": rng.integers(0, 50, N).astype(np.int64),
        "OUT": np.zeros(N, dtype=np.int64),
    }


@settings(max_examples=60, deadline=None)
@given(kernel_kinds, index_exprs, value_exprs, conditions,
       st.integers(0, 1000), st.sampled_from([16, 32, 96]))
def test_compiled_random_kernel_matches_interpreter(kind, index, value,
                                                    cond, seed, tile):
    if kind == "store" and not isinstance(index, Load):
        # Plain stores through ALU-computed indices can collide; the
        # last-writer order is program order in both models, still fine —
        # keep the case.
        pass
    fn = build_function(kind, index, value, cond)
    arrays = make_arrays(seed)
    expect = reference_run(fn, arrays)

    config = DX100Config(tile_elems=tile)
    mem = HostMemory(1 << 21)
    bindings = bind_arrays(fn, mem, arrays)
    try:
        kernel = offload_kernel(fn, bindings, config, tile=tile)
    except ValueError:
        # Grammar corner with no legal offload (e.g. gather whose index
        # chain is direct): nothing to check.
        return
    FunctionalDX100(config, mem).run(kernel.program)
    for name in ("A", "OUT"):
        assert mem.view(name).tolist() == expect[name].tolist(), \
            f"{kind} with {index!r} cond={cond!r} diverged on {name}"

"""End-to-end compiler runs: interpret original vs execute lowered program."""

import numpy as np
import pytest

from repro.common import AluOp, DType, DX100Config
from repro.compiler import (
    ArrayDecl, BinOp, Const, Function, If, Load, Loop, Store, Var,
    bind_arrays, hoist, offload_kernel, reference_run, tile_loop, innermost,
)
from repro.dx100 import FunctionalDX100, HostMemory


def run_compiled(fn, arrays, tile=64):
    """Compile, run on the functional DX100, and return final memory."""
    config = DX100Config(tile_elems=tile)
    mem = HostMemory(1 << 22)
    bindings = bind_arrays(fn, mem, arrays)
    kernel = offload_kernel(fn, bindings, config, tile=tile)
    FunctionalDX100(config, mem).run(kernel.program)
    return {name: mem.view(name) for name in fn.arrays}, kernel


def gather_fn(n, m):
    return Function(
        "gather",
        arrays={
            "A": ArrayDecl("A", DType.I64, m),
            "B": ArrayDecl("B", DType.I64, n),
            "C": ArrayDecl("C", DType.I64, n),
        },
        body=[Loop("i", Const(0), Const(n), [
            Store("C", Var("i"), Load("A", Load("B", Var("i")))),
        ])],
    )


def test_tiling_structure():
    loop = gather_fn(100, 10).body[0]
    tiled = tile_loop(loop, 32)
    assert tiled.step == 32
    inner = innermost(tiled)
    assert inner.var == "i" and inner is not tiled
    with pytest.raises(ValueError):
        tile_loop(loop, 0)


def test_hoist_produces_full_offload_for_gather():
    loop = innermost(tile_loop(gather_fn(100, 10).body[0], 32))
    plan = hoist(loop)
    assert len(plan.packed_loads) == 1
    assert len(plan.direct_stores) == 1
    assert plan.full_offload


def test_compiled_gather_matches_interpreter():
    n, m = 200, 64
    rng = np.random.default_rng(0)
    arrays = {
        "A": rng.integers(0, 1000, m).astype(np.int64),
        "B": rng.integers(0, m, n).astype(np.int64),
        "C": np.zeros(n, dtype=np.int64),
    }
    fn = gather_fn(n, m)
    expect = reference_run(fn, arrays)
    got, kernel = run_compiled(fn, arrays, tile=64)
    assert got["C"].tolist() == expect["C"].tolist()
    assert len(kernel.chunks) == 4  # 200/64 rounded up


def test_compiled_conditional_rmw_matches_interpreter():
    """GZP pattern: if (D[i] >= F) A[B[i]] += C[i]."""
    n, m = 150, 80
    rng = np.random.default_rng(1)
    arrays = {
        "A": np.zeros(m, dtype=np.int64),
        "B": rng.integers(0, m, n).astype(np.int64),
        "C": rng.integers(1, 10, n).astype(np.int64),
        "D": rng.integers(0, 100, n).astype(np.int64),
    }
    fn = Function(
        "gzp",
        arrays={name: ArrayDecl(name, DType.I64, len(arr))
                for name, arr in arrays.items()},
        body=[Loop("i", Const(0), Const(n), [
            If(BinOp(AluOp.GE, Load("D", Var("i")), Const(50)), [
                Store("A", Load("B", Var("i")), Load("C", Var("i")),
                      accum=AluOp.ADD),
            ]),
        ])],
    )
    expect = reference_run(fn, arrays)
    got, kernel = run_compiled(fn, arrays, tile=32)
    assert got["A"].tolist() == expect["A"].tolist()
    assert kernel.plan.packed_stores[0].accum == AluOp.ADD


def test_compiled_hash_join_address_calc():
    """PRH pattern: A[B[(C[i] & F) >> G]] = C[i]."""
    n, buckets = 128, 32
    rng = np.random.default_rng(2)
    arrays = {
        "A": np.zeros(buckets, dtype=np.int64),
        "B": rng.permutation(buckets).astype(np.int64),
        "C": rng.integers(0, 1 << 16, n).astype(np.int64),
    }
    fn = Function(
        "prh",
        arrays={name: ArrayDecl(name, DType.I64, len(arr))
                for name, arr in arrays.items()},
        body=[Loop("i", Const(0), Const(n), [
            Store("A",
                  Load("B", BinOp(AluOp.SHR,
                                  BinOp(AluOp.AND, Load("C", Var("i")),
                                        Const((buckets - 1) << 9)),
                                  Const(9))),
                  Load("C", Var("i"))),
        ])],
    )
    expect = reference_run(fn, arrays)
    got, _ = run_compiled(fn, arrays, tile=64)
    assert got["A"].tolist() == expect["A"].tolist()


def test_multi_level_indirection_compiles():
    n = 96
    rng = np.random.default_rng(3)
    arrays = {
        "A": rng.integers(0, 50, 256).astype(np.int64),
        "B": rng.integers(0, 256, 128).astype(np.int64),
        "C": rng.integers(0, 128, n).astype(np.int64),
        "X": np.zeros(n, dtype=np.int64),
    }
    fn = Function(
        "gzzi",
        arrays={name: ArrayDecl(name, DType.I64, len(arr))
                for name, arr in arrays.items()},
        body=[Loop("i", Const(0), Const(n), [
            Store("X", Var("i"), Load("A", Load("B", Load("C", Var("i"))))),
        ])],
    )
    expect = reference_run(fn, arrays)
    got, _ = run_compiled(fn, arrays, tile=32)
    assert got["X"].tolist() == expect["X"].tolist()


def test_illegal_kernel_rejected():
    n = 32
    fn = Function(
        "gauss_seidel",
        arrays={
            "A": ArrayDecl("A", DType.I64, n),
            "B": ArrayDecl("B", DType.I64, n),
        },
        body=[Loop("i", Const(0), Const(n), [
            Store("A", Var("i"),
                  BinOp(AluOp.ADD, Load("A", Load("B", Var("i"))), Const(1))),
        ])],
    )
    mem = HostMemory(1 << 20)
    arrays = {"A": np.zeros(n, dtype=np.int64),
              "B": np.zeros(n, dtype=np.int64)}
    bindings = bind_arrays(fn, mem, arrays)
    with pytest.raises(ValueError):
        offload_kernel(fn, bindings, DX100Config(tile_elems=16))


def test_non_loop_body_rejected():
    fn = Function("flat", {"A": ArrayDecl("A", DType.I64, 4)},
                  [Store("A", Const(0), Const(1))])
    with pytest.raises(ValueError):
        offload_kernel(fn, {}, DX100Config())

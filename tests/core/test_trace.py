import pytest

from repro.common import AccessType
from repro.core import TraceBuilder, split_static


def test_builder_emits_ops_in_order():
    tb = TraceBuilder()
    i0 = tb.load(0x100)
    i1 = tb.load(0x200, deps=(i0,))
    i2 = tb.store(0x300, deps=(i1,))
    trace = tb.finish()
    assert [op.kind for op in trace.ops] == [
        AccessType.LOAD, AccessType.LOAD, AccessType.STORE
    ]
    assert trace.ops[1].deps == (0,)
    assert trace.ops[2].deps == (1,)


def test_compute_attributes_to_next_op():
    tb = TraceBuilder()
    tb.compute(5)
    tb.load(0x100, extra=2)
    trace = tb.finish()
    assert trace.ops[0].extra_instrs == 7
    assert trace.instructions == 8  # 1 op + 7 extra


def test_trailing_compute_goes_to_tail():
    tb = TraceBuilder()
    tb.load(0)
    tb.compute(10)
    trace = tb.finish()
    assert trace.tail_instrs == 10
    assert trace.instructions == 11


def test_forward_dependence_rejected():
    tb = TraceBuilder()
    tb.load(0)
    with pytest.raises(ValueError):
        tb.load(8, deps=(5,))


def test_negative_compute_rejected():
    tb = TraceBuilder()
    with pytest.raises(ValueError):
        tb.compute(-1)


def test_rmw_and_atomic_flags():
    tb = TraceBuilder()
    tb.rmw(0x40, atomic=True)
    trace = tb.finish()
    assert trace.ops[0].kind == AccessType.RMW
    assert trace.ops[0].atomic


def test_split_static_blocks():
    parts = split_static(list(range(10)), 4)
    assert len(parts) == 4
    assert [len(p) for p in parts] == [2, 2, 2, 4]
    assert sum(parts, []) == list(range(10))
    with pytest.raises(ValueError):
        split_static([1], 0)

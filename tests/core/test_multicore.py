from dataclasses import replace

import pytest

from repro.common import SystemConfig
from repro.cache import MemoryHierarchy
from repro.core import Multicore, TraceBuilder
from repro.dram import DRAMSystem


def build(cores=4):
    cfg = SystemConfig.baseline()
    cfg = replace(cfg, l1=replace(cfg.l1, prefetcher=False),
                  l2=replace(cfg.l2, prefetcher=False))
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    return cfg, dram, hier, Multicore(cfg, hier, dram)


def gather_trace(base, n, stride=4096):
    tb = TraceBuilder()
    for i in range(n):
        tb.load(base + i * stride, extra=4)
    return tb.finish()


def test_four_cores_share_memory():
    cfg, dram, hier, mc = build()
    traces = [gather_trace(i * (1 << 24), 64) for i in range(4)]
    finish = mc.run(traces)
    assert finish > 0
    assert dram.merged_stats().get("requests") >= 4 * 64 * 0.9
    assert mc.total_instructions() == sum(t.instructions for t in traces)


def test_parallel_speedup_for_compute_bound_work():
    # Frontend-bound work scales with core count.
    def compute_trace(base, n):
        tb = TraceBuilder()
        for i in range(n):
            tb.load(base + i * 8, extra=100)  # mostly L1 hits + compute
        return tb.finish()

    cfg, dram, hier, mc = build()
    single_finish = mc.run([compute_trace(0, 256)])

    cfg2, dram2, hier2, mc2 = build()
    quarter = [compute_trace(i * (1 << 22), 64) for i in range(4)]
    multi_finish = mc2.run(quarter)
    assert multi_finish < 0.5 * single_finish


def test_inter_core_row_interleaving_causes_conflicts():
    """Four cores striding in different rows of the same banks force row
    switches that a single core's stream would not — the inter-core
    interference the paper motivates (Section 1)."""
    cfg, dram, hier, mc = build()
    traces = [gather_trace(i * (1 << 24), 64, stride=4096) for i in range(4)]
    mc.run(traces)
    multi_stats = dram.merged_stats()

    cfg2, dram2, hier2, mc2 = build()
    mc2.run([gather_trace(0, 256, stride=4096)])
    single_stats = dram2.merged_stats()

    assert multi_stats.get("row_conflicts") > single_stats.get("row_conflicts")


def test_too_many_traces_rejected():
    cfg, dram, hier, mc = build()
    with pytest.raises(ValueError):
        mc.run([gather_trace(0, 1)] * 5)


def test_merged_stats():
    cfg, dram, hier, mc = build()
    mc.run([gather_trace(0, 8), gather_trace(1 << 24, 8)])
    merged = mc.merged_stats()
    assert merged.get("ops") == 16

"""The core window model: dependence chains, structural limits, atomics."""

import random
from dataclasses import replace

import pytest

from repro.common import SystemConfig
from repro.cache import MemoryHierarchy
from repro.core import AtomicsArbiter, CoreModel, TraceBuilder
from repro.dram import DRAMSystem


def make_system(cores=1, prefetch=False):
    cfg = SystemConfig.baseline(cores=4)
    if not prefetch:
        cfg = replace(cfg, l1=replace(cfg.l1, prefetcher=False),
                      l2=replace(cfg.l2, prefetcher=False))
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    core = CoreModel(0, cfg.core, hier, dram)
    return cfg, dram, hier, core


def test_independent_loads_overlap():
    """N independent misses should finish far faster than N serial ones."""
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(16):
        tb.load(i * 4096)
    parallel_finish = core.run(tb.finish())

    cfg2, dram2, hier2, core2 = make_system()
    tb2 = TraceBuilder()
    prev = tb2.load(0)
    for i in range(1, 16):
        prev = tb2.load(i * 4096 + 2 ** 22, deps=(prev,))
    serial_finish = core2.run(tb2.finish())
    assert serial_finish > 2.5 * parallel_finish


def test_dependence_chain_limits_outstanding_requests():
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    prev = tb.load(0)
    for i in range(1, 12):
        prev = tb.load(i * 4096, deps=(prev,))
    core.run(tb.finish())
    # Serial chain: mean controller occupancy stays near 1.
    assert dram.mean_occupancy() < 2.0


def test_rob_bounds_window():
    """With huge per-op instruction counts the ROB admits few ops at once."""
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(64):
        tb.load(i * 4096, extra=111)  # 112 instrs/op -> 2 ops fit in ROB 224
    core.run(tb.finish())
    assert core.stats.get("rob_stalls") > 0
    assert dram.mean_occupancy() < 4.0


def test_lq_bounds_loads():
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(cfg.core.lq_size + 8):
        tb.load(i * 4096)
    core.run(tb.finish())
    assert core.stats.get("lq_stalls") > 0


def test_atomic_rmws_serialize():
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(8):
        tb.rmw(i * 4096, atomic=True)
    atomic_finish = core.run(tb.finish())

    cfg2, dram2, hier2, core2 = make_system()
    tb2 = TraceBuilder()
    for i in range(8):
        tb2.rmw(i * 4096, atomic=False)
    plain_finish = core2.run(tb2.finish())
    assert atomic_finish > 1.5 * plain_finish
    assert core.stats.get("atomics") == 8


def test_atomic_misses_serialize_on_memory_latency():
    """Atomics that miss to DRAM cannot overlap within a core — each waits
    for the previous completion (this is why IS gains so much, Section 6.1)."""
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(8):
        tb.rmw(i * 4096 + (1 << 22), atomic=True)
    atomic_finish = core.run(tb.finish())

    cfg2, dram2, hier2, core2 = make_system()
    tb2 = TraceBuilder()
    for i in range(8):
        tb2.rmw(i * 4096 + (1 << 22), atomic=False)
    overlap_finish = core2.run(tb2.finish())
    assert atomic_finish > 1.5 * overlap_finish


def test_arbiter_is_per_core():
    arb = AtomicsArbiter(fence_cycles=5)
    arb.release(core=0, issue=100, completion=180)
    # busy until issue + fence + (completion-issue)/OVERLAP = 100+5+20
    assert arb.acquire(core=0, t=0) == 125
    assert arb.acquire(core=1, t=0) == 0


def test_instruction_accounting():
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    tb.load(0, extra=3)
    tb.compute(6)
    tb.store(64)
    tb.compute(2)
    finish = core.run(tb.finish())
    assert core.stats.get("instructions") == (1 + 3) + (1 + 6) + 2
    assert finish > 0


def test_frontend_bandwidth_bounds_compute():
    """A trace of pure-compute ops takes at least instrs/width cycles."""
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    for i in range(8):
        tb.load(i * 8, extra=799)  # same line: L1 after first fill
    finish = core.run(tb.finish())
    assert finish >= 8 * 800 / cfg.core.width


def test_step_errors_when_exhausted():
    cfg, dram, hier, core = make_system()
    tb = TraceBuilder()
    tb.load(0)
    core.run(tb.finish())
    with pytest.raises(RuntimeError):
        core.step()

"""Trace save/load round trips."""

import numpy as np
import pytest

from repro.common import SystemConfig
from repro.core.traceio import load_traces, save_traces
from repro.dx100 import HostMemory
from repro.sim.system import SimSystem
from repro.workloads import IntegerSort


def test_round_trip_preserves_everything(tmp_path):
    wl = IntegerSort(scale=512, bucket_space=1 << 14)
    wl.generate(HostMemory(1 << 22))
    traces = wl.baseline_traces(4)
    path = tmp_path / "traces.npz"
    save_traces(path, traces)
    loaded = load_traces(path)
    assert len(loaded) == len(traces)
    for orig, back in zip(traces, loaded):
        assert len(orig.ops) == len(back.ops)
        assert orig.instructions == back.instructions
        assert orig.tail_instrs == back.tail_instrs
        for a, b in zip(orig.ops, back.ops):
            assert (a.kind, a.addr, a.size, a.deps, a.extra_instrs,
                    a.atomic, a.pc, a.tag) == \
                   (b.kind, b.addr, b.size, b.deps, b.extra_instrs,
                    b.atomic, b.pc, b.tag)


def test_replayed_trace_times_identically(tmp_path):
    wl = IntegerSort(scale=512, bucket_space=1 << 14)
    wl.generate(HostMemory(1 << 22))
    traces = wl.baseline_traces(4)
    path = tmp_path / "traces.npz"
    save_traces(path, traces)

    def run(trs):
        system = SimSystem(SystemConfig.baseline_scaled())
        return system.multicore.run(trs)

    assert run(traces) == run(load_traces(path))


def test_empty_trace_list(tmp_path):
    path = tmp_path / "empty.npz"
    save_traces(path, [])
    assert load_traces(path) == []

"""Reproducibility: same seed -> identical inputs, traces, and metrics."""

import numpy as np
import pytest

from repro.common import SystemConfig
from repro.dx100 import HostMemory
from repro.sim import run_baseline, run_dx100
from repro.workloads import QUICK_BENCHMARKS, IntegerSort


def test_same_seed_same_data():
    a, b = (IntegerSort(scale=1 << 10, bucket_space=1 << 16),
            IntegerSort(scale=1 << 10, bucket_space=1 << 16))
    m1, m2 = HostMemory(1 << 22), HostMemory(1 << 22)
    a.generate(m1)
    b.generate(m2)
    assert np.array_equal(a.keys, b.keys)


def test_different_seed_different_data():
    a = IntegerSort(scale=1 << 10, seed=0, bucket_space=1 << 16)
    b = IntegerSort(scale=1 << 10, seed=1, bucket_space=1 << 16)
    m1, m2 = HostMemory(1 << 22), HostMemory(1 << 22)
    a.generate(m1)
    b.generate(m2)
    assert not np.array_equal(a.keys, b.keys)


def test_runs_are_deterministic():
    r1 = run_baseline(IntegerSort(scale=1 << 11, bucket_space=1 << 18),
                      SystemConfig.baseline_scaled(), warm=False)
    r2 = run_baseline(IntegerSort(scale=1 << 11, bucket_space=1 << 18),
                      SystemConfig.baseline_scaled(), warm=False)
    assert r1.cycles == r2.cycles
    assert r1.instructions == r2.instructions
    assert r1.dram_requests == r2.dram_requests

    d1 = run_dx100(IntegerSort(scale=1 << 11, bucket_space=1 << 18),
                   SystemConfig.dx100_scaled(tile_elems=1024), warm=False)
    d2 = run_dx100(IntegerSort(scale=1 << 11, bucket_space=1 << 18),
                   SystemConfig.dx100_scaled(tile_elems=1024), warm=False)
    assert d1.cycles == d2.cycles


@pytest.mark.parametrize("name", ["BFS", "GZZI", "PRO"])
def test_factories_produce_independent_instances(name):
    a, b = QUICK_BENCHMARKS[name](), QUICK_BENCHMARKS[name]()
    assert a is not b
    m1, m2 = HostMemory(1 << 25), HostMemory(1 << 25)
    a.generate(m1)
    b.generate(m2)  # must not interfere with a's state
    assert a.mem is m1 and b.mem is m2

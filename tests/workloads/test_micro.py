"""Microbenchmark workloads (Figure 8)."""

import numpy as np
import pytest

from repro.common import DRAMConfig
from repro.dram import AddressMapper
from repro.dx100 import HostMemory
from repro.sim import run_baseline, run_dx100
from repro.workloads import (
    GatherAllMiss, GatherFull, GatherSPD, RMWAtomic, RMWNoAtom, Scatter,
)


def test_gather_full_validates_and_wins():
    base = run_baseline(GatherFull(2048))
    dx = run_dx100(GatherFull(2048))
    assert dx.cycles < base.cycles


def test_gather_spd_has_core_residual_instructions():
    dx_spd = run_dx100(GatherSPD(2048))
    dx_full = run_dx100(GatherFull(2048))
    assert dx_spd.instructions > dx_full.instructions


def test_rmw_atomics_ordering():
    """Paper ordering: atomic baseline slowest, DX100 fastest."""
    atomic = run_baseline(RMWAtomic(2048))
    noatom = run_baseline(RMWNoAtom(2048))
    dx = run_dx100(RMWAtomic(2048))
    assert atomic.cycles > noatom.cycles
    assert dx.cycles < noatom.cycles


def test_scatter_single_core_baseline():
    wl = Scatter(1024)
    mem = HostMemory(1 << 22)
    wl.generate(mem)
    assert wl.single_core_baseline
    assert len(wl.baseline_traces(1)) == 1
    run_dx100(Scatter(1024))  # validates the IST result


def test_allmiss_indices_are_unique_lines():
    wl = GatherAllMiss(rows_per_bank=2)
    mem = HostMemory(1 << 22)
    wl.generate(mem)
    mapper = AddressMapper(DRAMConfig())
    lines = wl.addrs & ~63
    assert len(np.unique(lines)) == len(lines)
    # Exactly rows_per_bank rows used in every bank.
    fields = mapper.map_arrays(wl.addrs)
    assert len(np.unique(fields["row"])) == 2


def test_allmiss_rbh_parameter_shapes_baseline():
    low = run_baseline(GatherAllMiss(rbh=0.0, rows_per_bank=2))
    high = run_baseline(GatherAllMiss(rbh=1.0, rows_per_bank=2))
    assert high.row_buffer_hit_rate > low.row_buffer_hit_rate + 0.5


def test_allmiss_dx100_flat_bandwidth():
    a = run_dx100(GatherAllMiss(rbh=0.0, rows_per_bank=2))
    b = run_dx100(GatherAllMiss(rbh=1.0, rows_per_bank=2))
    assert abs(a.bandwidth_utilization - b.bandwidth_utilization) < 0.1


def test_allmiss_validates_gather():
    run_dx100(GatherAllMiss(rows_per_bank=2))  # raises on divergence


def test_allmiss_rejects_bad_rbh():
    with pytest.raises(ValueError):
        GatherAllMiss(rbh=1.5)

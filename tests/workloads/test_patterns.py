"""Table 1: every benchmark declares its access/condition/loop pattern."""

import pytest

from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS


def test_twelve_main_benchmarks():
    assert len(MAIN_BENCHMARKS) == 12
    assert list(MAIN_BENCHMARKS) == [
        "IS", "CG", "BFS", "PR", "BC", "PRH", "PRO",
        "GZZ", "GZZI", "GZP", "GZPI", "XRAGE",
    ]


def test_quick_set_mirrors_main_set():
    assert set(QUICK_BENCHMARKS) == set(MAIN_BENCHMARKS)


@pytest.mark.parametrize("name", list(MAIN_BENCHMARKS))
def test_patterns_match_table1(name):
    wl = QUICK_BENCHMARKS[name]()
    assert wl.name == name
    assert wl.pattern, f"{name} must declare its Table 1 pattern"
    kind = {"IS": "RMW", "CG": "LD", "BFS": "ST", "PR": "RMW", "BC": "RMW",
            "PRH": "ST", "PRO": "ST", "GZZ": "RMW", "GZZI": "LD",
            "GZP": "RMW", "GZPI": "LD", "XRAGE": "ST"}[name]
    assert wl.pattern.startswith(kind)


@pytest.mark.parametrize("name", ["BFS", "BC", "GZZI", "GZPI"])
def test_indirect_range_loop_workloads(name):
    wl = QUICK_BENCHMARKS[name]()
    assert "H[K[i]]" in wl.pattern


@pytest.mark.parametrize("name", ["GZZ", "GZP", "GZZI", "GZPI", "BFS", "BC"])
def test_conditional_workloads(name):
    wl = QUICK_BENCHMARKS[name]()
    assert "if" in wl.pattern


def test_suites():
    suites = {QUICK_BENCHMARKS[n]().suite for n in QUICK_BENCHMARKS}
    assert suites == {"NAS", "GAP", "Hash-Join", "UME", "Spatter"}

"""Functional cross-checks: every benchmark's DX100 program reproduces its
NumPy reference, on both the functional simulator and the timing model."""

import numpy as np
import pytest

from repro.common import DX100Config, SystemConfig
from repro.dx100 import FunctionalDX100, HostMemory
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.isa import Instr
from repro.sim import run_dx100
from repro.workloads import QUICK_BENCHMARKS, CoreWork

SMALL_TILE = 1 << 11


@pytest.mark.parametrize("name", list(QUICK_BENCHMARKS))
def test_functional_simulator_matches_reference(name):
    """Run the schedule's DX100 items on the functional simulator only."""
    wl = QUICK_BENCHMARKS[name]()
    mem = HostMemory(1 << 25)
    wl.generate(mem)
    config = DX100Config(tile_elems=SMALL_TILE)
    fx = FunctionalDX100(config, mem)
    schedule = wl.dx100_schedule(config, cores=4)
    program = [item for item in schedule
               if isinstance(item, (Instr, RegWrite, WaitTiles))]
    fx.run(program)
    wl.validate(mem)  # memory-state part of the validation


@pytest.mark.parametrize("name", list(QUICK_BENCHMARKS))
def test_timing_model_validates(name):
    """Full timing run, including the gathered-tile checks."""
    wl = QUICK_BENCHMARKS[name]()
    cfg = SystemConfig.dx100_scaled(tile_elems=SMALL_TILE)
    result = run_dx100(wl, cfg, warm=False)  # validates internally
    assert result.cycles > 0
    assert result.dram_requests > 0


@pytest.mark.parametrize("name", list(QUICK_BENCHMARKS))
def test_schedules_are_wellformed(name):
    wl = QUICK_BENCHMARKS[name]()
    mem = HostMemory(1 << 25)
    wl.generate(mem)
    schedule = wl.dx100_schedule(DX100Config(tile_elems=SMALL_TILE), cores=4)
    assert any(isinstance(item, Instr) for item in schedule)
    kinds = (Instr, RegWrite, WaitTiles, CoreWork)
    assert all(isinstance(item, kinds) for item in schedule)


@pytest.mark.parametrize("name", list(QUICK_BENCHMARKS))
def test_baseline_traces_cover_all_cores(name):
    wl = QUICK_BENCHMARKS[name]()
    mem = HostMemory(1 << 25)
    wl.generate(mem)
    traces = wl.baseline_traces(4)
    assert len(traces) == 4
    assert sum(len(t.ops) for t in traces) > 0
    # Dependence edges reference earlier ops only.
    for trace in traces:
        for k, op in enumerate(trace.ops):
            assert all(d < k for d in op.deps)


def test_dmp_streams_are_addresses():
    for name in ("IS", "CG", "XRAGE"):
        wl = QUICK_BENCHMARKS[name]()
        mem = HostMemory(1 << 25)
        wl.generate(mem)
        streams = wl.dmp_streams()
        assert streams
        for pc, addrs in streams.items():
            assert np.asarray(addrs).min() >= mem.base

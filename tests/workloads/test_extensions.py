"""Extension workloads: bucketed IS (footnote 1) and f64 CG."""

import numpy as np
import pytest

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads.extensions import ConjugateGradientF64, IntegerSortBucketed


def test_bucketed_is_produces_a_sorted_array():
    wl = IntegerSortBucketed(scale=1 << 12, key_bits=16)
    result = run_dx100(wl, SystemConfig.dx100_scaled(tile_elems=1024),
                       warm=False)
    assert result.cycles > 0
    # The validated output is stably bucket-sorted; bucket ids ascend.
    out = wl.mem.view("out")
    assert ((out[1:] >> 10) >= (out[:-1] >> 10)).all()


def test_bucketed_is_beats_baseline_at_memory_bound_scale():
    """At cache-resident test scales the baseline is fast; once the key
    space exceeds the (scaled) LLC the offload wins, as in the paper."""
    base = run_baseline(IntegerSortBucketed(scale=1 << 14, key_bits=24),
                        SystemConfig.baseline_scaled(), warm=False)
    dx = run_dx100(IntegerSortBucketed(scale=1 << 14, key_bits=24),
                   SystemConfig.dx100_scaled(tile_elems=4096), warm=False)
    assert dx.cycles < base.cycles


def test_cg_f64_gathers_doubles_exactly():
    wl = ConjugateGradientF64(scale=1 << 8, columns=1 << 14)
    result = run_dx100(wl, SystemConfig.dx100_scaled(tile_elems=1024),
                       warm=False)
    assert result.cycles > 0  # expect_gather checks ran inside run_dx100


def test_cg_f64_baseline_runs():
    result = run_baseline(ConjugateGradientF64(scale=1 << 8,
                                               columns=1 << 14),
                          SystemConfig.baseline_scaled(), warm=False)
    assert result.cycles > 0


def test_connected_components_min_rmw():
    from repro.workloads.extensions import ConnectedComponents
    wl = ConnectedComponents(scale=1 << 9, nodes=1 << 13)
    result = run_dx100(wl, SystemConfig.dx100_scaled(tile_elems=1024),
                       warm=False)
    assert result.cycles > 0  # labels validated inside run_dx100


def test_connected_components_baseline_pays_atomics():
    """At cache-resident scales the baseline's cheap LLC-hit atomics win;
    once the label array pressures the (scaled) LLC, DX100 does."""
    from repro.workloads.extensions import ConnectedComponents
    base = run_baseline(ConnectedComponents(scale=1 << 12, nodes=1 << 17),
                        SystemConfig.baseline_scaled(), warm=False)
    dx = run_dx100(ConnectedComponents(scale=1 << 12, nodes=1 << 17),
                   SystemConfig.dx100_scaled(tile_elems=2048), warm=False)
    assert dx.cycles < base.cycles

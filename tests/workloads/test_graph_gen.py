"""Graph generators: uniform and Kronecker (R-MAT) CSR."""

import numpy as np
import pytest

from repro.workloads.gap import make_kron_csr, make_uniform_csr


def test_uniform_csr_shape():
    rng = np.random.default_rng(0)
    h, adj = make_uniform_csr(1024, 15, rng)
    assert len(h) == 1025
    assert h[0] == 0 and h[-1] == len(adj)
    assert (np.diff(h) >= 0).all()
    assert adj.min() >= 0 and adj.max() < 1024
    mean_deg = len(adj) / 1024
    assert 12 < mean_deg < 18


def test_kron_csr_is_valid():
    rng = np.random.default_rng(1)
    h, adj = make_kron_csr(scale=10, edge_factor=8, rng=rng)
    nodes = 1 << 10
    assert len(h) == nodes + 1
    assert h[-1] == len(adj) == nodes * 8
    assert (np.diff(h) >= 0).all()
    assert adj.min() >= 0 and adj.max() < nodes


def test_kron_degrees_are_power_law_ish():
    """R-MAT graphs are skewed: the top 1% of nodes own far more than 1%
    of the edges, unlike uniform graphs."""
    rng = np.random.default_rng(2)
    kh, _ = make_kron_csr(scale=12, edge_factor=8, rng=rng)
    uh, _ = make_uniform_csr(1 << 12, 8, rng)

    def top1_share(h):
        deg = np.diff(h)
        k = max(1, len(deg) // 100)
        return np.sort(deg)[::-1][:k].sum() / deg.sum()

    assert top1_share(kh) > 2.5 * top1_share(uh)


def test_kron_has_isolated_nodes():
    # Skew implies many nodes receive no out-edges at all.
    rng = np.random.default_rng(3)
    h, _ = make_kron_csr(scale=12, edge_factor=4, rng=rng)
    assert (np.diff(h) == 0).sum() > 100


def test_kron_deterministic_per_seed():
    h1, a1 = make_kron_csr(8, 4, np.random.default_rng(7))
    h2, a2 = make_kron_csr(8, 4, np.random.default_rng(7))
    assert np.array_equal(h1, h2) and np.array_equal(a1, a2)


def test_graph_workloads_accept_kron():
    """PageRank runs on a Kronecker graph via dependency injection."""
    from repro.common import SystemConfig
    from repro.sim import run_dx100
    from repro.workloads.gap import PageRank

    class KronPR(PageRank):
        def _make_graph(self, mem):
            self.h, self.adj = make_kron_csr(12, 8, self.rng)
            self.h_base = mem.place("H", self.h)
            self.adj_base = mem.place("adj", self.adj)

    wl = KronPR(scale=1 << 9, nodes=1 << 12)
    result = run_dx100(wl, SystemConfig.dx100_scaled(tile_elems=2048),
                       warm=False)
    assert result.cycles > 0

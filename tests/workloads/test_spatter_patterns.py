"""Spatter JSON pattern specs."""

import numpy as np
import pytest

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads.spatter_patterns import (
    SpatterKernel, expand_spec, parse_pattern,
)


def test_parse_explicit_pattern():
    p = parse_pattern([0, 4, 8, 100])
    assert p.tolist() == [0, 4, 8, 100]


def test_parse_uniform_shorthand():
    p = parse_pattern("UNIFORM:8:3")
    assert p.tolist() == [0, 3, 6, 9, 12, 15, 18, 21]


def test_parse_ms1_shorthand():
    p = parse_pattern("MS1:64:8", np.random.default_rng(0))
    assert len(p) == 64
    # Mostly stride-1: most consecutive deltas are exactly 1.
    deltas = np.diff(p)
    assert (deltas == 1).mean() > 0.8


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_pattern("BOGUS:1:2")
    with pytest.raises(ValueError):
        parse_pattern("UNIFORM:8")
    with pytest.raises(ValueError):
        parse_pattern([])
    with pytest.raises(ValueError):
        parse_pattern([-1, 2])


def test_expand_spec_with_delta_and_count():
    kernel, idx = expand_spec({"kernel": "gather",
                               "pattern": [0, 2], "delta": 10, "count": 3})
    assert kernel == "gather"
    assert idx.tolist() == [0, 2, 10, 12, 20, 22]


def test_expand_spec_from_json_string():
    kernel, idx = expand_spec('{"kernel": "scatter", "pattern": [1, 5]}')
    assert kernel == "scatter"
    assert idx.tolist() == [1, 5]


def test_expand_spec_errors():
    with pytest.raises(ValueError):
        expand_spec({"kernel": "rmw", "pattern": [0]})
    with pytest.raises(ValueError):
        expand_spec({"pattern": [0], "count": 0})


@pytest.mark.parametrize("kernel", ["gather", "scatter"])
def test_spec_workload_runs_and_validates(kernel):
    spec = {"kernel": kernel, "pattern": "MS1:512:16", "delta": 600,
            "count": 4}
    wl = SpatterKernel(spec)
    result = run_dx100(wl, SystemConfig.dx100_scaled(tile_elems=1024),
                       warm=False)
    assert result.cycles > 0


def test_spec_workload_baseline_vs_dx100():
    spec = {"kernel": "scatter", "pattern": "MS1:2048:16",
            "delta": 40_000, "count": 8}
    base = run_baseline(SpatterKernel(spec),
                        SystemConfig.baseline_scaled(), warm=False)
    dx = run_dx100(SpatterKernel(spec),
                   SystemConfig.dx100_scaled(tile_elems=4096), warm=False)
    assert dx.cycles < base.cycles

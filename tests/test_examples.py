"""The runnable examples stay runnable (fast subset as subprocesses)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py", "compiler_demo.py"])
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "validated" in proc.stdout or "reference" in proc.stdout


def test_all_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "graph_analytics.py", "database_join.py",
            "compiler_demo.py", "mesh_gradient.py",
            "bfs_full.py"} <= names

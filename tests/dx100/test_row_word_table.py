"""Row Table / Word Table fidelity: coalescing, capacity, drain order."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DRAMConfig, DRAMCoord
from repro.dram import AddressMapper
from repro.dx100 import RowTable, WordTable


def coord(ch=0, bg=0, ba=0, row=0, col=0):
    return DRAMCoord(channel=ch, rank=0, bankgroup=bg, bank=ba, row=row,
                     column=col)


def no_hit(line):
    return False


def test_duplicate_line_coalesces():
    rt = RowTable()
    ok1, prev1 = rt.insert(coord(row=1, col=0), line_addr=0x100, iteration=0,
                           h_bit_fn=no_hit)
    ok2, prev2 = rt.insert(coord(row=1, col=0), line_addr=0x100, iteration=5,
                           h_bit_fn=no_hit)
    assert ok1 and ok2
    assert prev1 is None and prev2 == 0
    assert rt.unique_lines == 1
    assert rt.coalescing_factor() == 2.0


def test_capacity_rejects_when_slice_full():
    rt = RowTable(rows_per_slice=2, cols_per_row=8)
    assert rt.insert(coord(row=1), 0x000, 0, no_hit)[0]
    assert rt.insert(coord(row=2), 0x100, 1, no_hit)[0]
    ok, _ = rt.insert(coord(row=3), 0x200, 2, no_hit)
    assert not ok
    # A different bank's slice is unaffected.
    assert rt.insert(coord(ba=1, row=3), 0x300, 3, no_hit)[0]


def test_wide_row_consumes_extra_entries():
    # 9 distinct lines in one row need two BCAM entries (cols_per_row=8).
    rt = RowTable(rows_per_slice=2, cols_per_row=8)
    for i in range(9):
        ok, _ = rt.insert(coord(row=1, col=i), 0x1000 + i * 64, i, no_hit)
        assert ok
    # Slice is now full (2 units); a second row must be rejected.
    ok, _ = rt.insert(coord(row=2), 0x9000, 9, no_hit)
    assert not ok


def test_drain_groups_rows_per_bank():
    rt = RowTable()
    # Interleaved rows into one bank: A B A B.
    seq = [(1, 0x000), (2, 0x400), (1, 0x040), (2, 0x440)]
    for i, (row, line) in enumerate(seq):
        rt.insert(coord(row=row, col=line // 64), line, i, no_hit)
    lines = [p.row for p in rt.drain()]
    assert lines == [1, 1, 2, 2]


def test_drain_interleaves_channels_and_bankgroups():
    rt = RowTable()
    it = 0
    for ch in range(2):
        for bg in range(2):
            for col in range(2):
                rt.insert(coord(ch=ch, bg=bg, row=1, col=col),
                          (ch * 100 + bg * 10 + col) * 64, it, no_hit)
                it += 1
    order = [(p.coord[0], p.coord[2]) for p in rt.drain()]
    # Consecutive requests alternate channel fastest, bank group second.
    assert order[:4] == [(0, 0), (1, 0), (0, 1), (1, 1)]


def test_drain_resets_table():
    rt = RowTable()
    rt.insert(coord(row=1), 0, 0, no_hit)
    assert len(rt.drain()) == 1
    assert rt.occupancy == 0
    assert rt.drain() == []


def test_h_bit_sampled_once_per_line():
    calls = []

    def snoop(line):
        calls.append(line)
        return True

    rt = RowTable()
    rt.insert(coord(row=1), 0x40, 0, snoop)
    rt.insert(coord(row=1), 0x40, 1, snoop)
    assert calls == [0x40]
    assert rt.drain()[0].h_bit is True


def test_word_table_chain():
    wt = WordTable(8)
    wt.insert(0, word_offset=4, prev_iteration=None)
    wt.insert(3, word_offset=12, prev_iteration=0)
    wt.insert(5, word_offset=0, prev_iteration=3)
    assert wt.traverse(5) == [(0, 4), (3, 12), (5, 0)]
    assert wt.count == 3


def test_word_table_errors():
    wt = WordTable(4)
    wt.insert(0, 0, None)
    with pytest.raises(ValueError):
        wt.insert(0, 0, None)
    with pytest.raises(IndexError):
        wt.insert(4, 0, None)
    with pytest.raises(ValueError):
        wt.traverse(2)  # never inserted
    with pytest.raises(ValueError):
        WordTable(0)
    wt.clear()
    assert wt.count == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 22) - 1),
                min_size=1, max_size=300))
def test_no_word_lost_or_duplicated(addresses):
    """Every inserted word is recoverable from exactly one drained line."""
    mapper = AddressMapper(DRAMConfig())
    rt = RowTable(rows_per_slice=4, cols_per_row=2)
    wt = WordTable(len(addresses))
    drained = []
    for i, addr in enumerate(addresses):
        addr &= ~63
        c = mapper.map(addr)
        ok, prev = rt.insert(c, addr, i, no_hit)
        if not ok:
            drained += rt.drain()
            ok, prev = rt.insert(c, addr, i, no_hit)
            assert ok
        wt.insert(i, 0, prev)
    drained += rt.drain()
    recovered = []
    for line in drained:
        recovered += [i for i, _ in wt.traverse(line.tail_i)]
    assert sorted(recovered) == list(range(len(addresses)))

"""Hypothesis property tests for the DX100 mechanism invariants (ISSUE 2).

Two claims from Section 3.3 that the whole bandwidth story rests on:

* a Row Table slice never mixes DRAM rows within an entry — every cache
  line tracked under a (slice, row) entry really decodes to that slice's
  bank and that row;
* Word Table coalescing never fetches the same (channel, row, column)
  twice within a tile — each drain emits a set of *unique* lines, and the
  per-line word chains partition the inserted iterations exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DType, SystemConfig
from repro.common.config import DRAMConfig
from repro.dram.address import AddressMapper
from repro.dx100.row_table import RowTable
from repro.dx100.word_table import WordTable

# A deliberately tiny geometry so random addresses collide on banks, rows,
# and lines often: 2 ch x 1 rank x 2 bg x 2 banks x 8 rows x 4 columns.
SMALL = DRAMConfig(channels=2, ranks=1, bankgroups=2, banks_per_group=2,
                   rows=8, columns=4)
LINES = SMALL.capacity_bytes // SMALL.line_bytes

line_indices = st.lists(st.integers(0, LINES - 1), min_size=1, max_size=120)


def _fill(indices, rows_per_slice=3, cols_per_row=2):
    """Drive RowTable + WordTable exactly the way the fill stage does,
    draining on capacity rejects; returns (mapper, drains, word_table,
    reference) where reference maps line -> iterations since last drain."""
    mapper = AddressMapper(SMALL)
    rt = RowTable(rows_per_slice, cols_per_row)
    wt = WordTable(len(indices))
    drains: list[list] = []
    reference: dict[int, list[int]] = {}
    epochs: list[dict[int, list[int]]] = []
    for it, idx in enumerate(indices):
        line_addr = idx * SMALL.line_bytes
        coord = mapper.map(line_addr)
        accepted, prev = rt.insert(coord, line_addr, it, lambda a: False)
        if not accepted:
            drains.append(rt.drain())
            epochs.append(reference)
            reference = {}
            accepted, prev = rt.insert(coord, line_addr, it,
                                       lambda a: False)
            assert accepted, "insert must succeed on an empty table"
        wt.insert(it, idx % 7, prev)
        reference.setdefault(line_addr, []).append(it)
    drains.append(rt.drain())
    epochs.append(reference)
    return mapper, drains, wt, epochs


@settings(max_examples=60, deadline=None)
@given(line_indices)
def test_row_table_entries_never_mix_dram_rows(indices):
    """Before each drain, every line filed under a (slice, row) entry
    decodes to exactly that bank and that DRAM row."""
    mapper = AddressMapper(SMALL)
    rt = RowTable(rows_per_slice=3, cols_per_row=2)
    for it, idx in enumerate(indices):
        line_addr = idx * SMALL.line_bytes
        coord = mapper.map(line_addr)
        accepted, _ = rt.insert(coord, line_addr, it, lambda a: False)
        if not accepted:
            for sl in rt._slices.values():
                assert sl.entry_units() <= rt.rows_per_slice
            rt.drain()
            accepted, _ = rt.insert(coord, line_addr, it, lambda a: False)
            assert accepted
        for sl in rt._slices.values():
            for row, cols in sl.rows.items():
                for line in cols:
                    decoded = mapper.map(line)
                    assert decoded.flat_bank == sl.coord
                    assert decoded.row == row


@settings(max_examples=60, deadline=None)
@given(line_indices)
def test_drain_never_emits_the_same_line_twice(indices):
    """Within one drain (one tile's request batch), no (channel, row,
    column) target appears twice, and every pending line's coordinates
    round-trip through the address mapper."""
    mapper, drains, _, _ = _fill(indices)
    total_words = 0
    for batch in drains:
        seen = set()
        for pline in batch:
            decoded = mapper.map(pline.line_addr)
            assert decoded.flat_bank == pline.coord
            assert decoded.row == pline.row
            target = (decoded.channel, decoded.row, decoded.column,
                      pline.coord)
            assert target not in seen, "coalescing re-fetched a line"
            seen.add(target)
            total_words += pline.words
    assert total_words == len(indices)   # every inserted word is accounted


@settings(max_examples=60, deadline=None)
@given(line_indices)
def test_word_chains_partition_iterations_in_insertion_order(indices):
    """Walking each drained line's Word Table chain from its tail yields
    exactly the iterations that touched that line since the previous
    drain, oldest first — and the chains partition all iterations."""
    _, drains, wt, epochs = _fill(indices)
    covered = []
    for batch, reference in zip(drains, epochs):
        for pline in batch:
            chain = wt.traverse(pline.tail_i)
            its = [i for i, _ in chain]
            assert its == reference[pline.line_addr]
            assert pline.words == len(its)
            covered.extend(its)
    assert sorted(covered) == list(range(len(indices)))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 511), min_size=1, max_size=200))
def test_indirect_unit_fetches_each_line_exactly_once(indices):
    """End to end: with no capacity drains, the indirect unit's unique-line
    count equals the number of distinct cache lines among the indices —
    duplicates coalesce instead of re-fetching."""
    from repro.cache import MemoryHierarchy
    from repro.dram import DRAMSystem
    from repro.dx100 import DX100, HostMemory

    cfg = SystemConfig.dx100_system(tile_elems=1024)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 22)
    dx = DX100(cfg, hier, dram, mem)
    data = np.arange(512, dtype=np.int64)
    base = mem.place("A", data)
    res = dx.indirect.execute("ld", base, DType.I64,
                              np.array(indices, dtype=np.int64), None,
                              None, 0)
    assert res.drains == 1
    assert res.unique_lines == len({i // 8 for i in indices})
    assert res.coalescing == len(indices) / res.unique_lines

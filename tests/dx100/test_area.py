"""The Table 4 area/power model."""

import pytest

from repro.common import DX100Config
from repro.dx100 import area_power, llc_equivalent_mb


def test_totals_match_table4():
    report = area_power()
    assert report.total_area_mm2 == pytest.approx(4.059, abs=0.01)
    assert report.total_power_mw == pytest.approx(777.0, abs=1.0)


def test_scratchpad_dominates():
    report = area_power()
    spd_area, spd_power = report.modules["scratchpad"]
    assert spd_area > 0.8 * sum(
        a for name, (a, _) in report.modules.items() if name != "scratchpad"
    ) * 4
    assert spd_power > report.total_power_mw / 2


def test_14nm_scaling_and_overhead():
    report = area_power(cores=4)
    assert report.area_14nm_mm2 == pytest.approx(1.5, abs=0.01)
    assert report.overhead_percent == pytest.approx(3.7, abs=0.15)


def test_scratchpad_scales_with_tile_size():
    small = area_power(DX100Config(tile_elems=1024))
    big = area_power(DX100Config(tile_elems=32 * 1024))
    assert big.total_area_mm2 > small.total_area_mm2
    ratio = (big.modules["scratchpad"][0] / small.modules["scratchpad"][0])
    assert ratio == pytest.approx(32.0, rel=1e-6)


def test_llc_equivalent_is_about_2mb():
    assert llc_equivalent_mb() == pytest.approx(1.3, abs=0.3)

from repro.common import AluOp, DType, DX100Config
from repro.dx100 import ProgramBuilder
from repro.dx100 import isa
from repro.dx100.disasm import disasm, format_program


def test_disasm_every_opcode():
    cases = {
        isa.ild(DType.U32, 0x1000, td=1, ts1=2, tc=3):
            "ILD.u32  T1 <- [0x1000 + T2] if T3",
        isa.ist(DType.I64, 0x2000, ts1=4, ts2=5):
            "IST.i64  [0x2000 + T4] <- T5",
        isa.irmw(DType.I64, 0x30, AluOp.ADD, ts1=6, ts2=7):
            "IRMW.i64 [0x30 + T6] add= T7",
        isa.sld(DType.F64, 0x40, td=8, rs1=0, rs2=1, rs3=2):
            "SLD.f64  T8 <- [0x40 + (R0:R1:R2)]",
        isa.sst(DType.F32, 0x50, ts=9, rs1=3, rs2=4, rs3=5):
            "SST.f32  [0x50 + (R3:R4:R5)] <- T9",
        isa.aluv(DType.I32, AluOp.LT, td=10, ts1=11, ts2=12):
            "ALUV.i32 T10 <- T11 lt T12",
        isa.alus(DType.U64, AluOp.SHR, td=13, ts=14, rs=6):
            "ALUS.u64 T13 <- T14 shr R6",
        isa.rng(td1=15, td2=16, ts1=17, ts2=18, rs1=7):
            "RNG   (T15, T16) <- fuse[T17, T18) base=R7",
    }
    for instr, expect in cases.items():
        assert disasm(instr) == expect


def test_format_program():
    pb = ProgramBuilder(DX100Config(tile_elems=64))
    t = pb.sld(DType.I64, 0x100, 0, 64)
    pb.wait(t)
    text = format_program(pb.build())
    assert "R0 <- 0" in text
    assert "SLD.i64" in text
    assert "wait(T0)" in text


def test_format_timeline_shows_overlap():
    import numpy as np
    from repro.common import SystemConfig
    from repro.cache import MemoryHierarchy
    from repro.dram import DRAMSystem
    from repro.dx100 import DX100, HostMemory
    from repro.dx100.disasm import format_timeline

    cfg = SystemConfig.dx100_system(tile_elems=2048)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 22)
    dx = DX100(cfg, hier, dram, mem)
    a = mem.place("A", np.arange(4096, dtype=np.uint32))
    b = mem.place("B", np.arange(2048, dtype=np.uint32))
    pb = ProgramBuilder(cfg.dx100)
    t_b = pb.sld(DType.U32, b, 0, 2048)
    t_p = pb.ild(DType.U32, a, t_b)
    pb.wait(t_p)
    dx.run_program(pb.build())
    text = format_timeline(dx.records)
    assert "SLD" in text and "ILD" in text and "#" in text
    assert format_timeline([]) == "(no instructions executed)"

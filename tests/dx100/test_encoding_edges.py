"""Encoding boundary conditions."""

import pytest

from repro.common import AluOp, DType
from repro.dx100 import decode, encode
from repro.dx100 import isa


def test_max_base_address():
    instr = isa.ild(DType.U32, (1 << 64) - 64, td=0, ts1=1)
    assert decode(encode(instr)) == instr


def test_negative_base_rejected():
    instr = isa.ild(DType.U32, -1, td=0, ts1=1)
    with pytest.raises(ValueError):
        encode(instr)


def test_operand_62_is_maximum():
    instr = isa.aluv(DType.I64, AluOp.ADD, td=62, ts1=62, ts2=62, tc=62)
    assert decode(encode(instr)) == instr


def test_absent_operands_survive_round_trip():
    instr = isa.sld(DType.I64, 0x40, td=0, rs1=1, rs2=2, rs3=3)  # no tc
    back = decode(encode(instr))
    assert back.tc is None and back.ts2 is None


def test_alu_instructions_have_no_base():
    instr = isa.alus(DType.I64, AluOp.SHL, td=1, ts=2, rs=3)
    back = decode(encode(instr))
    assert back.base is None


def test_every_dtype_and_op_code_round_trips():
    for dtype in DType:
        for op in AluOp:
            instr = isa.aluv(dtype, op, td=1, ts1=2, ts2=3)
            assert decode(encode(instr)) == instr

"""First-order energy model (the paper's Section 6.2 energy claim)."""

import pytest

from repro.common import DX100Config
from repro.dx100.energy import EnergyReport, energy_estimate, energy_ratio
from repro.sim import run_baseline, run_dx100
from repro.workloads import GatherFull, IntegerSort


def test_energy_components_positive():
    base = run_baseline(GatherFull(2048))
    report = energy_estimate(base, cores=4)
    assert report.core_dynamic_mj > 0
    assert report.core_static_mj > 0
    assert report.dram_mj > 0
    assert report.dx100_mj == 0.0
    assert report.total_mj == pytest.approx(
        report.core_dynamic_mj + report.core_static_mj + report.dram_mj)


def test_dx100_run_charges_accelerator_power():
    dx = run_dx100(GatherFull(2048))
    with_dx = energy_estimate(dx, cores=4, dx100_config=DX100Config())
    without = energy_estimate(dx, cores=4)
    assert with_dx.dx100_mj > 0
    assert with_dx.total_mj > without.total_mj


def test_offload_saves_energy_on_indirect_kernels():
    """Fewer instructions + shorter runtime beat the added DX100 power."""
    from repro.common import SystemConfig
    base = run_baseline(IntegerSort(scale=1 << 14),
                        SystemConfig.baseline_scaled(), warm=False)
    dx = run_dx100(IntegerSort(scale=1 << 14),
                   SystemConfig.dx100_scaled(), warm=False)
    ratio = energy_ratio(base, dx)
    assert ratio > 1.0


def test_bigger_scratchpad_costs_more_energy():
    dx = run_dx100(GatherFull(2048))
    small = energy_estimate(dx, dx100_config=DX100Config(tile_elems=1024))
    big = energy_estimate(dx, dx100_config=DX100Config(tile_elems=32768))
    assert big.dx100_mj > small.dx100_mj

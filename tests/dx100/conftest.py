import pytest

from repro.common import SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem
from repro.dx100 import DX100, HostMemory


@pytest.fixture()
def dx_system():
    """A small DX100 system: (config, dram, hierarchy, hostmem, dx)."""
    cfg = SystemConfig.dx100_system(tile_elems=1024)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 22)
    dx = DX100(cfg, hier, dram, mem)
    return cfg, dram, hier, mem, dx

"""ISA construction rules and the 192-bit encoding (Table 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import AluOp, DType
from repro.dx100 import Opcode, decode, encode
from repro.dx100 import isa


def test_eight_opcodes():
    assert len(Opcode) == 8


def test_ild_shape():
    i = isa.ild(DType.U32, base=0x1000, td=1, ts1=2, tc=3)
    assert i.opcode == Opcode.ILD
    assert i.source_tiles() == (2, 3)
    assert i.dest_tiles() == (1,)
    assert i.is_indirect and not i.is_stream


def test_irmw_rejects_non_associative_ops():
    with pytest.raises(ValueError):
        isa.irmw(DType.U32, 0, AluOp.SUB, ts1=0, ts2=1)
    isa.irmw(DType.U32, 0, AluOp.ADD, ts1=0, ts2=1)  # fine


def test_rng_two_destinations():
    i = isa.rng(td1=4, td2=5, ts1=1, ts2=2, rs1=0)
    assert i.dest_tiles() == (4, 5)


def test_encode_is_three_64bit_words():
    words = encode(isa.sld(DType.F64, 0xABCD000, td=7, rs1=0, rs2=1, rs3=2))
    assert len(words) == 3
    assert all(0 <= w < (1 << 64) for w in words)
    assert words[1] == 0xABCD000


def test_encode_decode_roundtrip_all_forms():
    cases = [
        isa.ild(DType.U32, 0x1000, td=1, ts1=2, tc=3),
        isa.ist(DType.I64, 0x2000, ts1=4, ts2=5),
        isa.irmw(DType.F64, 0x3000, AluOp.ADD, ts1=6, ts2=7, tc=8),
        isa.sld(DType.U32, 0x4000, td=9, rs1=0, rs2=1, rs3=2),
        isa.sst(DType.F32, 0x5000, ts=10, rs1=3, rs2=4, rs3=5, tc=11),
        isa.aluv(DType.I32, AluOp.LT, td=12, ts1=13, ts2=14),
        isa.alus(DType.U64, AluOp.SHR, td=15, ts=16, rs=6),
        isa.rng(td1=17, td2=18, ts1=19, ts2=20, rs1=7),
    ]
    for instr in cases:
        assert decode(encode(instr)) == instr


def test_operand_range_checked():
    with pytest.raises(ValueError):
        encode(isa.ild(DType.U32, 0, td=63, ts1=0))  # 63 reserved for "absent"


@given(st.integers(min_value=0, max_value=62), st.integers(0, 62),
       st.integers(0, 62), st.sampled_from(list(DType)))
def test_roundtrip_property(td, ts1, tc, dtype):
    instr = isa.ild(dtype, base=0x40000, td=td, ts1=ts1, tc=tc)
    assert decode(encode(instr)) == instr

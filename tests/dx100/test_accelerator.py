"""End-to-end DX100 programs: dispatch, scoreboard, functional cross-check."""

import numpy as np
import pytest

from repro.common import AluOp, DType, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem
from repro.dx100 import DX100, FunctionalDX100, HostMemory, ProgramBuilder


def fresh(tile_elems=512):
    cfg = SystemConfig.dx100_system(tile_elems=tile_elems)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 22)
    return cfg, dram, hier, mem, DX100(cfg, hier, dram, mem)


def gather_program(cfg, mem, n=256):
    """The paper's Figure 7 example: C[i] = A[B[i]]."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1000, size=1024).astype(np.uint32)
    b = rng.integers(0, 1024, size=n).astype(np.uint32)
    a_base = mem.place("A", a)
    b_base = mem.place("B", b)
    c_base = mem.alloc("C", n, DType.U32)
    pb = ProgramBuilder(cfg.dx100)
    t_b = pb.sld(DType.U32, b_base, 0, n)
    t_c = pb.ild(DType.U32, a_base, t_b)
    pb.sst(DType.U32, c_base, t_c, 0, n)
    pb.wait(t_c)
    return pb.build(), a, b


def test_gather_full_program_matches_reference():
    cfg, dram, hier, mem, dx = fresh()
    program, a, b = gather_program(cfg, mem)
    finish = dx.run_program(program)
    assert finish > 0
    assert mem.view("C").tolist() == a[b].tolist()


def test_functional_simulator_agrees_with_timing_model():
    cfg, dram, hier, mem, dx = fresh()
    program, a, b = gather_program(cfg, mem)
    dx.run_program(program)
    timing_result = mem.view("C").copy()

    mem2 = HostMemory(1 << 22)
    program2, a2, b2 = gather_program(cfg, mem2)
    FunctionalDX100(cfg.dx100, mem2).run(program2)
    assert mem2.view("C").tolist() == timing_result.tolist()


def test_scoreboard_orders_dependent_instructions():
    cfg, dram, hier, mem, dx = fresh()
    program, a, b = gather_program(cfg, mem)
    dx.run_program(program)
    sld_rec, ild_rec, sst_rec = dx.records
    # ILD consumes the SLD's tile: it may overlap the stream but cannot
    # finish before it; SST streams behind ILD through the finish bits, so
    # it may start early but cannot complete before its producer.
    assert ild_rec.finish >= sld_rec.finish
    assert sst_rec.start >= ild_rec.start
    assert sst_rec.finish >= ild_rec.finish


def test_sld_ild_fine_grained_overlap():
    """The finish-bit overlap (Section 3.5): the indirect fill starts while
    the stream load is still delivering indices."""
    cfg, dram, hier, mem, dx = fresh(tile_elems=2048)
    program, a, b = gather_program(cfg, mem, n=2048)
    dx.run_program(program)
    sld_rec, ild_rec, _ = dx.records
    assert ild_rec.start < sld_rec.finish


def test_conditional_rmw_program():
    cfg, dram, hier, mem, dx = fresh()
    n = 128
    rng = np.random.default_rng(3)
    a = np.zeros(256, dtype=np.int64)
    b = rng.integers(0, 256, size=n)
    d = rng.integers(0, 100, size=n)
    a_base = mem.place("A", a)
    b_base = mem.place("B", b.astype(np.int64))
    d_base = mem.place("D", d.astype(np.int64))
    c_base = mem.place("CONST", np.ones(n, dtype=np.int64))

    pb = ProgramBuilder(cfg.dx100)
    t_b = pb.sld(DType.I64, b_base, 0, n)
    t_d = pb.sld(DType.I64, d_base, 0, n)
    t_cond = pb.alus(DType.I64, AluOp.GE, t_d, 50)      # D[i] >= 50
    t_one = pb.sld(DType.I64, c_base, 0, n)
    pb.irmw(DType.I64, a_base, AluOp.ADD, t_b, t_one, tc=t_cond)
    pb.wait(t_b)
    dx.run_program(pb.build())

    expect = np.zeros(256, dtype=np.int64)
    np.add.at(expect, b[d >= 50], 1)
    assert mem.view("A").tolist() == expect.tolist()


def test_multi_level_indirection():
    """A[B[C[i]]] via chained ILDs (Table 1's GZZI pattern)."""
    cfg, dram, hier, mem, dx = fresh()
    rng = np.random.default_rng(5)
    a = rng.integers(0, 99, size=512).astype(np.int64)
    b = rng.integers(0, 512, size=256).astype(np.int64)
    c = rng.integers(0, 256, size=64).astype(np.int64)
    a_base, b_base = mem.place("A", a), mem.place("B", b)
    c_base = mem.place("C", c)
    pb = ProgramBuilder(cfg.dx100)
    t_c = pb.sld(DType.I64, c_base, 0, 64)
    t_bc = pb.ild(DType.I64, b_base, t_c)
    t_abc = pb.ild(DType.I64, a_base, t_bc)
    pb.wait(t_abc)
    dx.run_program(pb.build())
    assert dx.spd.read(t_abc).tolist() == a[b[c]].tolist()


def test_range_fuser_program():
    """j = H[i] .. H[i+1] fused, then A[B[j]] (the CG pattern)."""
    cfg, dram, hier, mem, dx = fresh()
    h = np.array([0, 3, 3, 7, 12], dtype=np.int64)   # 4 ranges
    b = np.arange(12, dtype=np.int64)[::-1].copy()
    a = (np.arange(64, dtype=np.int64) * 11)
    h_base, b_base, a_base = mem.place("H", h), mem.place("B", b), mem.place("A", a)
    pb = ProgramBuilder(cfg.dx100)
    t_lo = pb.sld(DType.I64, h_base, 0, 4)
    t_hi = pb.sld(DType.I64, h_base, 1, 5)
    t_outer, t_inner = pb.rng(t_lo, t_hi)
    t_bj = pb.ild(DType.I64, b_base, t_inner)
    t_abj = pb.ild(DType.I64, a_base, t_bj)
    pb.wait(t_abj)
    dx.run_program(pb.build())
    expect = []
    for i in range(4):
        for j in range(h[i], h[i + 1]):
            expect.append(a[b[j]])
    assert dx.spd.read(t_abj).tolist() == expect


def test_register_and_tile_exhaustion():
    cfg, dram, hier, mem, dx = fresh()
    pb = ProgramBuilder(cfg.dx100)
    for _ in range(cfg.dx100.num_tiles):
        pb.alloc_tile()
    with pytest.raises(RuntimeError):
        pb.alloc_tile()
    pb2 = ProgramBuilder(cfg.dx100)
    for _ in range(cfg.dx100.num_registers):
        pb2.reg(0)
    with pytest.raises(RuntimeError):
        pb2.reg(0)


def test_wait_and_mark_consumed():
    cfg, dram, hier, mem, dx = fresh()
    program, *_ = gather_program(cfg, mem)
    dx.run_program(program)
    # A consumed tile re-targeted by a later instruction triggers
    # scratchpad invalidations.
    assert dx.coherency.tracked_lines >= 0  # V bits live after wait


def test_units_overlap_for_independent_instructions():
    """Stream and ALU work on disjoint tiles can overlap in time."""
    cfg, dram, hier, mem, dx = fresh()
    n = 512
    x = np.arange(n, dtype=np.int64)
    x_base = mem.place("X", x)
    pb = ProgramBuilder(cfg.dx100)
    t_x = pb.sld(DType.I64, x_base, 0, n)
    t_y = pb.alus(DType.I64, AluOp.ADD, t_x, 5)
    t_z = pb.sld(DType.I64, x_base, 0, n, td=pb.alloc_tile())
    dx.run_program(pb.build())
    recs = {r.instr.opcode.name + str(i): r for i, r in enumerate(dx.records)}
    alu_rec = dx.records[1]
    sld2_rec = dx.records[2]
    # The second SLD does not wait for the ALU (different units/tiles).
    assert sld2_rec.start < alu_rec.finish or sld2_rec.start <= alu_rec.start


def test_dispatch_requires_dx100_config():
    cfg = SystemConfig.baseline()
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    with pytest.raises(ValueError):
        DX100(cfg, hier, dram, HostMemory(1 << 20))

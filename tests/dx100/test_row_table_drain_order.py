"""Deeper Row Table drain-order properties feeding the DRAM scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import DRAMConfig
from repro.dram import AddressMapper
from repro.dx100 import RowTable


def no_hit(line):
    return False


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 22) - 1),
                min_size=8, max_size=400))
def test_drain_is_per_bank_row_grouped(addresses):
    """Within any one bank, the drain never returns to an earlier row."""
    mapper = AddressMapper(DRAMConfig())
    rt = RowTable()
    for i, addr in enumerate(addresses):
        addr &= ~63
        ok, _ = rt.insert(mapper.map(addr), addr, i, no_hit)
        assert ok  # capacity ample for <=400 addresses
    seen_rows: dict[tuple, list[int]] = {}
    for pline in rt.drain():
        seen_rows.setdefault(pline.coord, []).append(pline.row)
    for rows in seen_rows.values():
        # Row ids appear in contiguous runs: each row visited exactly once.
        changes = sum(1 for a, b in zip(rows, rows[1:]) if a != b)
        assert changes == len(set(rows)) - 1


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 22) - 1),
                min_size=16, max_size=400))
def test_drain_interleaves_channels(addresses):
    """When both channels have pending lines, consecutive requests rarely
    stay on one channel (the Request Generator's arbitration)."""
    mapper = AddressMapper(DRAMConfig())
    rt = RowTable()
    for i, addr in enumerate(addresses):
        addr &= ~63
        rt.insert(mapper.map(addr), addr, i, no_hit)
    drained = rt.drain()
    channels = [p.coord[0] for p in drained]
    if len(set(channels)) < 2:
        return  # all lines happened to land on one channel
    # Alternation rate must beat a single-channel-first order (which has
    # exactly one switch); slice skew can batch a few same-channel picks,
    # so require at least half the smaller channel's count.
    switches = sum(1 for a, b in zip(channels, channels[1:]) if a != b)
    assert switches >= max(1, min(channels.count(0),
                                  channels.count(1)) // 2)


def test_drain_total_equals_unique_lines():
    mapper = AddressMapper(DRAMConfig())
    rt = RowTable()
    rng = np.random.default_rng(0)
    addrs = (rng.integers(0, 1 << 20, 500) & ~63).tolist()
    for i, addr in enumerate(addrs):
        rt.insert(mapper.map(addr), addr, i, no_hit)
    drained = rt.drain()
    assert len(drained) == len(set(addrs))
    assert sum(p.words for p in drained) == len(addrs)

"""FunctionalDX100: the reference executor's semantics and error paths."""

import numpy as np
import pytest

from repro.common import AluOp, DType, DX100Config
from repro.dx100 import FunctionalDX100, HostMemory, ProgramBuilder
from repro.dx100 import isa
from repro.dx100.api import RegWrite, WaitTiles


def fresh(tile=256):
    cfg = DX100Config(tile_elems=tile)
    mem = HostMemory(1 << 20)
    return cfg, mem, FunctionalDX100(cfg, mem)


def test_regwrite_and_sld():
    cfg, mem, fx = fresh()
    base = mem.place("A", np.arange(64, dtype=np.int64))
    fx.run([RegWrite(0, 8), RegWrite(1, 32), RegWrite(2, 2),
            isa.sld(DType.I64, base, td=0, rs1=0, rs2=1, rs3=2)])
    assert fx.tiles[0].tolist() == list(range(8, 32, 2))


def test_wait_is_noop_functionally():
    cfg, mem, fx = fresh()
    base = mem.place("A", np.arange(8, dtype=np.int64))
    fx.run([RegWrite(0, 0), RegWrite(1, 8), RegWrite(2, 1),
            isa.sld(DType.I64, base, td=0, rs1=0, rs2=1, rs3=2),
            WaitTiles((0,))])
    assert len(fx.tiles[0]) == 8


def test_unknown_item_rejected():
    cfg, mem, fx = fresh()
    with pytest.raises(TypeError):
        fx.run(["bogus"])


def test_conditional_sst_scatters_only_taken():
    cfg, mem, fx = fresh()
    src = mem.place("S", np.arange(8, dtype=np.int64) + 100)
    dst = mem.place("D", np.zeros(8, dtype=np.int64))
    pb = ProgramBuilder(cfg)
    t_s = pb.sld(DType.I64, src, 0, 8)
    t_c = pb.alus(DType.I64, AluOp.GE, t_s, 104)   # last 4 taken
    pb.sst(DType.I64, dst, t_s, 0, 8, tc=t_c)
    fx.run(pb.build())
    assert mem.view("D").tolist() == [0, 0, 0, 0, 104, 105, 106, 107]


def test_aluv_and_rng_functional():
    cfg, mem, fx = fresh()
    a = mem.place("A", np.array([1, 2, 3, 4], dtype=np.int64))
    b = mem.place("B", np.array([10, 1, 30, 2], dtype=np.int64))
    pb = ProgramBuilder(cfg)
    t_a = pb.sld(DType.I64, a, 0, 4)
    t_b = pb.sld(DType.I64, b, 0, 4)
    t_max = pb.aluv(DType.I64, AluOp.MAX, t_a, t_b)
    t_outer, t_inner = pb.rng(t_a, t_b)   # ranges [a_i, b_i)
    fx.run(pb.build())
    assert fx.tiles[t_max].tolist() == [10, 2, 30, 4]
    # Ranges: [1,10), [2,1)=empty, [3,30), [4,2)=empty.
    assert fx.tiles[t_inner].tolist() == list(range(1, 10)) + \
        list(range(3, 30))
    assert set(fx.tiles[t_outer].tolist()) == {0, 2}


def test_irmw_min_max_semantics():
    cfg, mem, fx = fresh()
    a = mem.place("A", np.full(4, 50, dtype=np.int64))
    idx = mem.place("IDX", np.array([1, 1, 2], dtype=np.int64))
    val = mem.place("VAL", np.array([10, 99, 80], dtype=np.int64))
    pb = ProgramBuilder(cfg)
    t_i = pb.sld(DType.I64, idx, 0, 3)
    t_v = pb.sld(DType.I64, val, 0, 3)
    pb.irmw(DType.I64, a, AluOp.MIN, t_i, t_v)
    fx.run(pb.build())
    assert mem.view("A").tolist() == [50, 10, 50, 50]


def test_timing_and_functional_models_agree_on_random_programs():
    """Fuzzish agreement check across dtypes and ops."""
    from repro.common import SystemConfig
    from repro.cache import MemoryHierarchy
    from repro.dram import DRAMSystem
    from repro.dx100 import DX100

    rng = np.random.default_rng(0)
    for trial in range(3):
        n = 128
        data = rng.integers(0, 1 << 16, 512).astype(np.uint32)
        idx = rng.integers(0, 512, n).astype(np.int64)
        vals = rng.integers(0, 100, n).astype(np.uint32)

        def build(mem):
            bases = (mem.place("A", data.copy()), mem.place("I", idx),
                     mem.place("V", vals))
            pb = ProgramBuilder(DX100Config(tile_elems=n))
            t_i = pb.sld(DType.I64, bases[1], 0, n)
            t_v = pb.sld(DType.U32, bases[2], 0, n)
            pb.irmw(DType.U32, bases[0], AluOp.ADD, t_i, t_v)
            t_g = pb.ild(DType.U32, bases[0], t_i)
            pb.wait(t_g)
            return pb.build()

        mem1 = HostMemory(1 << 20)
        prog1 = build(mem1)
        FunctionalDX100(DX100Config(tile_elems=n), mem1).run(prog1)

        cfg = SystemConfig.dx100_system(tile_elems=n)
        dram = DRAMSystem(cfg.dram)
        hier = MemoryHierarchy(cfg, dram)
        mem2 = HostMemory(1 << 20)
        dx = DX100(cfg, hier, dram, mem2)
        prog2 = build(mem2)
        dx.run_program(prog2)

        assert mem1.view("A").tolist() == mem2.view("A").tolist()

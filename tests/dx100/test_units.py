"""Stream and Indirect unit behaviour on the timing-integrated system."""

import numpy as np
import pytest

from repro.common import AluOp, DType


def test_sld_reads_sequential_data(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("b", np.arange(100, dtype=np.uint32))
    res = dx.stream.load(base, DType.U32, 0, 100, 1, None, t_start=0)
    assert res.values.tolist() == list(range(100))
    assert res.elements == 100
    assert res.lines == 7  # 100 u32 = 400B = 6.25 lines
    assert res.finish > res.first_avail >= 0


def test_sld_conditional_positions(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("b", np.arange(8, dtype=np.uint32))
    cond = np.array([1, 0, 1, 0, 1, 0, 1, 0])
    res = dx.stream.load(base, DType.U32, 0, 8, 1, cond, t_start=0)
    assert res.values.tolist() == [0, 0, 2, 0, 4, 0, 6, 0]


def test_sst_writes_back(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.alloc("c", 64, DType.U32)
    vals = np.arange(64, dtype=np.uint32) * 3
    res = dx.stream.store(base, DType.U32, 0, 64, 1, vals, None, t_start=0)
    assert mem.view("c").tolist() == (np.arange(64) * 3).tolist()
    assert res.finish > 0


def test_sst_too_short_tile_rejected(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.alloc("c", 64, DType.U32)
    with pytest.raises(ValueError):
        dx.stream.store(base, DType.U32, 0, 64, 1,
                        np.zeros(10, dtype=np.uint32), None, 0)


def test_zero_stride_rejected(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.alloc("z", 8, DType.U32)
    with pytest.raises(ValueError):
        dx.stream.load(base, DType.U32, 0, 8, 0, None, 0)


def test_ild_gathers(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    data = np.arange(512, dtype=np.uint32) * 7
    base = mem.place("a", data)
    indices = np.array([5, 100, 5, 511, 0], dtype=np.int64)
    res = dx.indirect.execute("ld", base, DType.U32, indices, None, None, 0)
    assert res.values.tolist() == [35, 700, 35, 3577, 0]
    assert res.elements == 5
    # Two accesses to index 5's line coalesce.
    assert res.unique_lines < 5
    assert res.coalescing > 1.0


def test_ild_conditional(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("a", np.arange(64, dtype=np.uint32))
    indices = np.array([1, 2, 3], dtype=np.int64)
    cond = np.array([0, 1, 0])
    res = dx.indirect.execute("ld", base, DType.U32, indices, cond, None, 0)
    assert res.values.tolist() == [0, 2, 0]
    assert res.elements == 1


def test_ist_scatters_last_writer_wins(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("a", np.zeros(64, dtype=np.int64))
    indices = np.array([3, 3, 10], dtype=np.int64)
    values = np.array([111, 222, 333], dtype=np.int64)
    dx.indirect.execute("st", base, DType.I64, indices, None, values, 0)
    assert mem.view("a")[3] == 222
    assert mem.view("a")[10] == 333


def test_irmw_accumulates(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("a", np.zeros(32, dtype=np.int64))
    indices = np.array([4, 4, 4, 9], dtype=np.int64)
    values = np.ones(4, dtype=np.int64)
    res = dx.indirect.execute("rmw", base, DType.I64, indices, None, values,
                              0, op=AluOp.ADD)
    assert mem.view("a")[4] == 3
    assert mem.view("a")[9] == 1
    # RMW writes back each modified line.
    dram.drain()
    assert dram.merged_stats().get("writes") >= 1
    assert res.finish > 0


def test_irmw_requires_associative_op(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    base = mem.place("a", np.zeros(8, dtype=np.int64))
    with pytest.raises(ValueError):
        dx.indirect.execute("rmw", base, DType.I64, np.array([0]), None,
                            np.array([1]), 0, op=AluOp.SUB)
    with pytest.raises(ValueError):
        dx.indirect.execute("bogus", base, DType.I64, np.array([0]), None,
                            None, 0)


def test_indirect_reordering_beats_issue_order(dx_system):
    """The headline mechanism: random indices, reordered by the Row Table,
    produce a far higher row-buffer hit rate than the same indices issued
    in program order by a core-like stream."""
    cfg, dram, hier, mem, dx = dx_system
    rng = np.random.default_rng(1)
    data = np.zeros(1 << 18, dtype=np.uint32)  # 1 MiB spread
    base = mem.place("big", data)
    indices = rng.integers(0, len(data), size=1024)

    res = dx.indirect.execute("ld", base, DType.U32,
                              indices.astype(np.int64), None, None, 0)
    dram.drain()
    rbh_dx100 = dram.row_buffer_hit_rate()

    # Baseline: same lines in index order, one at a time.
    from repro.common import SystemConfig
    from repro.dram import DRAMSystem
    dram2 = DRAMSystem(cfg.dram)
    addrs = (base + indices * 4) & ~63
    t = 0
    for a in addrs.tolist():
        req = dram2.access(int(a), False, arrival=t)
        t = dram2.complete(req)
    rbh_base = dram2.row_buffer_hit_rate()
    assert rbh_dx100 > rbh_base + 0.25


def test_h_bit_routes_cached_lines_to_llc(dx_system):
    cfg, dram, hier, mem, dx = dx_system
    data = np.arange(256, dtype=np.uint32)
    base = mem.place("a", data)
    # Warm two lines into the LLC via the cache interface.
    hier.llc_access(base, False, 0).resolve(dram)
    hier.llc_access(base + 64, False, 0).resolve(dram)
    before = dram.merged_stats().get("requests")
    indices = np.array([0, 16], dtype=np.int64)  # both in warmed lines
    dx.indirect.execute("ld", base, DType.U32, indices, None, None, 10_000)
    after = dram.merged_stats().get("requests")
    assert after == before  # served from LLC, no DRAM traffic

"""ALU unit and Range Fuser semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AluOp, DType
from repro.dx100 import AluUnit, RangeFuser, plan_range_chunks


def test_vector_arithmetic():
    alu = AluUnit()
    a = np.array([1, 2, 3], dtype=np.int64)
    b = np.array([10, 20, 30], dtype=np.int64)
    assert alu.apply(AluOp.ADD, a, b, DType.I64).tolist() == [11, 22, 33]
    assert alu.apply(AluOp.MAX, a, b, DType.I64).tolist() == [10, 20, 30]


def test_scalar_hash_join_address_calc():
    # The PRH pattern: f(C[i]) = (C[i] & F) >> G  (Table 1).
    alu = AluUnit()
    c = np.array([0b101100, 0b011010], dtype=np.int64)
    masked = alu.apply(AluOp.AND, c, 0b111100, DType.I64)
    shifted = alu.apply(AluOp.SHR, masked, 2, DType.I64)
    assert shifted.tolist() == [0b1011, 0b0110]


def test_comparisons_produce_condition_tiles():
    alu = AluUnit()
    d = np.array([5.0, 1.0, 9.0])
    cond = alu.apply(AluOp.GE, d, 4.0, DType.F64)
    assert cond.tolist() == [1, 0, 1]


def test_condition_masks_lanes():
    alu = AluUnit()
    a = np.array([1, 2, 3], dtype=np.int64)
    out = alu.apply(AluOp.ADD, a, 10, DType.I64,
                    cond=np.array([1, 0, 1]))
    assert out.tolist() == [11, 0, 13]


def test_cycles_by_lanes():
    alu = AluUnit(lanes=16)
    assert alu.cycles(16) == 1
    assert alu.cycles(17) == 2
    assert alu.cycles(16 * 1024) == 1024
    with pytest.raises(ValueError):
        AluUnit(lanes=0)


def test_condition_shape_mismatch():
    alu = AluUnit()
    with pytest.raises(ValueError):
        alu.apply(AluOp.ADD, np.arange(4), 1, DType.I64, cond=np.arange(3))


def test_fuse_basic():
    fuser = RangeFuser()
    outer, inner = fuser.fuse(lows=[0, 5, 9], highs=[3, 5, 11])
    assert outer.tolist() == [0, 0, 0, 2, 2]
    assert inner.tolist() == [0, 1, 2, 9, 10]


def test_fuse_with_outer_ids_and_cond():
    fuser = RangeFuser()
    outer, inner = fuser.fuse([0, 10], [2, 12], outer_ids=[100, 200],
                              cond=[1, 0])
    assert outer.tolist() == [100, 100]
    assert inner.tolist() == [0, 1]


def test_fuse_capacity_enforced():
    fuser = RangeFuser()
    with pytest.raises(ValueError):
        fuser.fuse([0], [100], capacity=50)


def test_fuse_mismatched_inputs():
    fuser = RangeFuser()
    with pytest.raises(ValueError):
        fuser.fuse([0, 1], [2])


def test_plan_range_chunks():
    chunks = plan_range_chunks([0, 0, 0], [4, 4, 4], capacity=8)
    assert chunks == [(0, 2), (2, 3)]
    assert plan_range_chunks([], [], capacity=4) == [(0, 0)]
    with pytest.raises(ValueError):
        plan_range_chunks([0], [100], capacity=8)


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                min_size=1, max_size=40))
def test_fuse_matches_python_loops(ranges):
    lows = [lo for lo, _ in ranges]
    highs = [lo + n for lo, n in ranges]
    fuser = RangeFuser()
    outer, inner = fuser.fuse(lows, highs)
    expect_outer, expect_inner = [], []
    for i, (lo, hi) in enumerate(zip(lows, highs)):
        for j in range(lo, hi):
            expect_outer.append(i)
            expect_inner.append(j)
    assert outer.tolist() == expect_outer
    assert inner.tolist() == expect_inner


@settings(max_examples=50)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=50),
       st.integers(1, 64))
def test_chunks_cover_everything_within_capacity(counts, capacity):
    counts = [min(c, capacity) for c in counts]
    lows = [0] * len(counts)
    chunks = plan_range_chunks(lows, counts, capacity)
    covered = []
    for start, end in chunks:
        total = sum(counts[start:end])
        assert total <= capacity
        covered += list(range(start, end))
    assert covered == list(range(len(counts)))

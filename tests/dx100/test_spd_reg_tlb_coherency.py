"""Scratchpad, register file, TLB, and the coherency machinery."""

import numpy as np
import pytest

from repro.common import DX100Config, Interval
from repro.dx100 import (
    SPD_BASE, CoherencyAgent, RegionCoherence, RegisterFile, Scratchpad, TLB,
)
from repro.dx100.hostmem import PAGE


def test_scratchpad_write_read_ready():
    spd = Scratchpad(DX100Config(tile_elems=8))
    spd.write(0, np.arange(5), ready_at=100)
    assert spd.read(0).tolist() == [0, 1, 2, 3, 4]
    assert spd.ready_at(0) == 100
    assert spd.tile(0).size == 5


def test_scratchpad_capacity_and_bounds():
    spd = Scratchpad(DX100Config(tile_elems=4, num_tiles=2))
    with pytest.raises(ValueError):
        spd.write(0, np.arange(5), ready_at=0)
    with pytest.raises(IndexError):
        spd.tile(2)
    with pytest.raises(ValueError):
        spd.read(1)  # never written


def test_scratchpad_addresses():
    cfg = DX100Config(tile_elems=16, num_tiles=4)
    spd = Scratchpad(cfg)
    assert spd.elem_addr(0, 0) == SPD_BASE
    assert spd.elem_addr(1, 2) == SPD_BASE + (16 + 2) * 4
    lo, hi = spd.region()
    assert hi - lo == 4 * 16 * 4


def test_register_file():
    rf = RegisterFile(DX100Config())
    rf.write(3, 42)
    assert rf.read(3) == 42
    assert len(rf) == 32
    with pytest.raises(IndexError):
        rf.write(32, 0)
    with pytest.raises(IndexError):
        rf.read(-1)


def test_tlb_preload_avoids_misses():
    tlb = TLB(DX100Config(tlb_miss_penalty=100))
    tlb.preload(0, 4 * PAGE)
    addr, penalty = tlb.translate(3 * PAGE + 123)
    assert addr == 3 * PAGE + 123 and penalty == 0
    _, penalty = tlb.translate(10 * PAGE)
    assert penalty == 100
    # Second touch hits.
    _, penalty = tlb.translate(10 * PAGE + 64)
    assert penalty == 0


def test_tlb_capacity_lru():
    cfg = DX100Config(tlb_miss_penalty=7)
    tlb = TLB(cfg)
    for page in range(cfg.tlb_entries + 1):
        tlb.translate(page * PAGE)
    # Page 0 (LRU) was evicted; the most recent page is still resident.
    assert tlb.translate(0)[1] == 7
    assert tlb.translate(cfg.tlb_entries * PAGE)[1] == 0


def test_tlb_vectorized_tile_translation():
    tlb = TLB(DX100Config(tlb_miss_penalty=50))
    addrs = np.array([0, 64, PAGE, PAGE + 8, 3 * PAGE])
    penalty = tlb.translate_tile(addrs)
    assert penalty == 3 * 50  # three distinct pages, all cold
    assert tlb.translate_tile(addrs) == 0


def test_coherency_agent_v_bits():
    agent = CoherencyAgent()
    agent.core_read(SPD_BASE)
    agent.core_read(SPD_BASE + 64)
    agent.core_read(SPD_BASE + 10_000)
    assert agent.tracked_lines == 3
    live = agent.invalidate_range(SPD_BASE, SPD_BASE + 128)
    assert live == 2
    assert agent.tracked_lines == 1


def test_region_coherence_swmr():
    rc = RegionCoherence(message_cycles=100)
    rc.register(Interval(0, 1000))
    # First writer acquires for free.
    assert rc.acquire(10, instance=0, write=True, t=0) == 0
    # Second instance must pay an ownership transfer.
    assert rc.acquire(10, instance=1, write=True, t=50) == 150
    # Re-acquiring while exclusive is free.
    assert rc.acquire(10, instance=1, write=True, t=200) == 200


def test_region_lock_blocks_other_instances():
    rc = RegionCoherence()
    rc.register(Interval(0, 100))
    rc.acquire(0, instance=0, write=True, t=0)
    rc.lock(0, instance=0)
    with pytest.raises(RuntimeError):
        rc.acquire(0, instance=1, write=True, t=10)
    rc.unlock(0, instance=0)
    rc.acquire(0, instance=1, write=True, t=10)


def test_region_registration_rules():
    rc = RegionCoherence()
    rc.register(Interval(0, 100))
    with pytest.raises(ValueError):
        rc.register(Interval(50, 150))
    with pytest.raises(KeyError):
        rc.acquire(5000, instance=0, write=False, t=0)
    with pytest.raises(RuntimeError):
        rc.lock(0, instance=3)  # not the owner

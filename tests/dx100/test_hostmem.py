import numpy as np
import pytest

from repro.common import DType
from repro.dx100 import HostMemory


def test_alloc_and_view_roundtrip():
    mem = HostMemory(1 << 20)
    base = mem.alloc("a", 16, DType.U32)
    assert base % 4096 == 0 and base >= mem.base
    view = mem.view("a")
    view[:] = np.arange(16)
    assert mem.read_words([base, base + 4], DType.U32).tolist() == [0, 1]


def test_place_initializes():
    mem = HostMemory(1 << 20)
    data = np.arange(8, dtype=np.float64)
    base = mem.place("x", data)
    assert mem.read_words([base + 8 * 7], DType.F64)[0] == 7.0


def test_duplicate_name_rejected():
    mem = HostMemory(1 << 20)
    mem.alloc("a", 4, DType.U32)
    with pytest.raises(ValueError):
        mem.alloc("a", 4, DType.U32)


def test_out_of_memory():
    mem = HostMemory(8192)
    with pytest.raises(MemoryError):
        mem.alloc("big", 10_000, DType.F64)


def test_interval_of():
    mem = HostMemory(1 << 20)
    base = mem.alloc("a", 16, DType.U32)
    iv = mem.interval_of("a")
    assert iv.lo == base and iv.hi == base + 64


def test_write_words_last_wins_on_duplicates():
    mem = HostMemory(1 << 20)
    base = mem.alloc("a", 4, DType.I64)
    mem.write_words([base, base, base + 8], [1, 2, 3], DType.I64)
    assert mem.view("a")[:2].tolist() == [2, 3]


def test_rmw_words_accumulates_duplicates():
    mem = HostMemory(1 << 20)
    base = mem.alloc("a", 4, DType.I64)
    mem.rmw_words([base, base, base], [1, 2, 3], DType.I64, np.add)
    assert mem.view("a")[0] == 6


def test_misaligned_and_oob_access_rejected():
    mem = HostMemory(1 << 16)
    base = mem.alloc("a", 4, DType.U32)
    with pytest.raises(ValueError):
        mem.read_words([base + 1], DType.U32)
    with pytest.raises(IndexError):
        mem.read_words([mem.base + (1 << 16)], DType.U32)
    with pytest.raises(IndexError):
        mem.read_words([0], DType.U32)  # below base


def test_float_rmw_via_minimum():
    mem = HostMemory(1 << 16)
    base = mem.place("f", np.full(4, 10.0))
    mem.rmw_words([base, base + 8], [3.0, 20.0], DType.F64, np.minimum)
    assert mem.view("f")[:2].tolist() == [3.0, 10.0]


def test_invalid_size():
    with pytest.raises(ValueError):
        HostMemory(0)

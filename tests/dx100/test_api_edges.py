"""ProgramBuilder and run_program edge cases."""

import numpy as np
import pytest

from repro.common import DType, DX100Config, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem
from repro.dx100 import DX100, HostMemory, ProgramBuilder
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.scratchpad import SPD_BASE


def make_dx(tile=256):
    cfg = SystemConfig.dx100_system(tile_elems=tile)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 20)
    return cfg, mem, DX100(cfg, hier, dram, mem)


def test_set_reg_and_explicit_reg_indices():
    pb = ProgramBuilder(DX100Config())
    pb.set_reg(5, 99)
    items = pb.build()
    assert items == [RegWrite(5, 99)]


def test_spd_addr_formula():
    cfg = DX100Config(tile_elems=128)
    pb = ProgramBuilder(cfg)
    assert pb.spd_addr(0) == SPD_BASE
    assert pb.spd_addr(2, elem=3) == SPD_BASE + (2 * 128 + 3) * 4


def test_free_tile_allows_reuse():
    cfg = DX100Config(num_tiles=2)
    pb = ProgramBuilder(cfg)
    t0 = pb.alloc_tile()
    t1 = pb.alloc_tile()
    pb.free_tile(t0)
    assert pb.alloc_tile() == t0


def test_run_program_rejects_unknown_items():
    cfg, mem, dx = make_dx()
    with pytest.raises(TypeError):
        dx.run_program([object()])


def test_wait_on_unwritten_tile_returns_current_time():
    cfg, mem, dx = make_dx()
    t = dx.run_program([WaitTiles((5,))], t_core=100)
    assert t == 100


def test_dispatch_time_monotonicity_across_program():
    cfg, mem, dx = make_dx()
    base = mem.place("A", np.arange(256, dtype=np.int64))
    pb = ProgramBuilder(cfg.dx100)
    t1 = pb.sld(DType.I64, base, 0, 128)
    t2 = pb.sld(DType.I64, base, 128, 256)
    dx.run_program(pb.build())
    r1, r2 = dx.records
    assert r2.dispatch > r1.dispatch
    assert r2.start >= r1.start  # same unit, in-order issue


def test_builder_items_are_copied_on_build():
    pb = ProgramBuilder(DX100Config())
    pb.set_reg(0, 1)
    built = pb.build()
    pb.set_reg(1, 2)
    assert len(built) == 1

"""Property-based cross-checks on the DX100 units (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AluOp, DType, SystemConfig
from repro.cache import MemoryHierarchy
from repro.dram import DRAMSystem
from repro.dx100 import DX100, HostMemory


def fresh(tile_elems=1024):
    cfg = SystemConfig.dx100_system(tile_elems=tile_elems)
    dram = DRAMSystem(cfg.dram)
    hier = MemoryHierarchy(cfg, dram)
    mem = HostMemory(1 << 22)
    return cfg, dram, hier, mem, DX100(cfg, hier, dram, mem)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=511), min_size=1,
                max_size=200))
def test_ild_equals_numpy_gather(indices):
    cfg, dram, hier, mem, dx = fresh()
    data = np.arange(512, dtype=np.int64) * 3 + 1
    base = mem.place("A", data)
    res = dx.indirect.execute("ld", base, DType.I64,
                              np.array(indices, dtype=np.int64), None,
                              None, 0)
    assert res.values.tolist() == data[indices].tolist()
    assert res.unique_lines <= len(set(i // 8 for i in indices))
    assert res.coalescing >= 1.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(-50, 50)),
                min_size=1, max_size=150))
def test_irmw_add_equals_numpy_scatter_add(pairs):
    cfg, dram, hier, mem, dx = fresh()
    base = mem.place("A", np.zeros(256, dtype=np.int64))
    idx = np.array([p[0] for p in pairs], dtype=np.int64)
    val = np.array([p[1] for p in pairs], dtype=np.int64)
    dx.indirect.execute("rmw", base, DType.I64, idx, None, val, 0,
                        op=AluOp.ADD)
    expect = np.zeros(256, dtype=np.int64)
    np.add.at(expect, idx, val)
    assert mem.view("A").tolist() == expect.tolist()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=100),
       st.lists(st.booleans(), min_size=100, max_size=100))
def test_conditional_ild_only_loads_taken(indices, conds):
    cfg, dram, hier, mem, dx = fresh()
    data = np.arange(256, dtype=np.int64) + 1000
    base = mem.place("A", data)
    idx = np.array(indices, dtype=np.int64)
    cond = np.array(conds[:len(idx)], dtype=np.int64)
    res = dx.indirect.execute("ld", base, DType.I64, idx, cond, None, 0)
    for i, (want, c) in enumerate(zip(idx, cond)):
        expect = data[want] if c else 0
        assert res.values[i] == expect
    assert res.elements == int(cond.sum())


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 400), st.integers(1, 7))
def test_sld_strided_matches_numpy(n, step):
    cfg, dram, hier, mem, dx = fresh()
    data = np.arange(4096, dtype=np.int64)
    base = mem.place("A", data)
    hi = min(n * step, 4096)
    res = dx.stream.load(base, DType.I64, 0, hi, step, None, 0)
    assert res.values.tolist() == data[0:hi:step].tolist()


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 1023), min_size=2, max_size=300))
def test_timing_never_decreases_along_dependencies(indices):
    """Scoreboard sanity: an instruction never finishes before it starts,
    and dependent instructions never finish before their producers."""
    cfg, dram, hier, mem, dx = fresh()
    data = np.zeros(1024, dtype=np.int64)
    b = np.array(indices, dtype=np.int64)
    a_base = mem.place("A", np.arange(1024, dtype=np.int64))
    b_base = mem.place("B", b)
    from repro.dx100 import ProgramBuilder
    pb = ProgramBuilder(cfg.dx100)
    t_b = pb.sld(DType.I64, b_base, 0, len(b))
    t_p = pb.ild(DType.I64, a_base, t_b)
    pb.wait(t_p)
    dx.run_program(pb.build())
    for rec in dx.records:
        assert rec.finish >= rec.start >= 0
    sld_rec, ild_rec = dx.records
    assert ild_rec.finish >= sld_rec.finish

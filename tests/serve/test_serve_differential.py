"""Engine-differential and behavioural tests for the serve loop.

Every scheduling decision in :func:`repro.serve.serve_run` depends only on
request finish cycles, which the batched array-kernel engine and the
scalar oracle produce identically — so a whole multi-tenant serve run must
be bitwise identical across engines, down to each tenant's individual tile
completion cycles.
"""

from dataclasses import replace

import pytest

from repro.common.config import DRAMConfig
from repro.serve import make_tenants, serve_run


def _specs():
    return make_tenants(2, tiles=2, tile_lines=64, seed=3, aggressor=1)


def test_multi_tenant_schedule_is_bitwise_identical_across_engines():
    reports = {
        engine: serve_run(_specs(),
                          config=replace(DRAMConfig(), engine=engine))
        for engine in ("batched", "scalar")
    }
    snaps = {e: r.golden_snapshot() for e, r in reports.items()}
    assert snaps["batched"].pop("engine") == "batched"
    assert snaps["scalar"].pop("engine") == "scalar"
    assert snaps["batched"] == snaps["scalar"]
    # Beyond the digest: every tile completion cycle, per tenant.
    for tb, ts in zip(reports["batched"].tenants, reports["scalar"].tenants):
        assert tb.completions == ts.completions


def test_serve_run_is_deterministic():
    a = serve_run(_specs()).golden_snapshot()
    b = serve_run(_specs()).golden_snapshot()
    assert a == b


def test_no_borrow_run_completes_every_tile():
    """Disabling work-conserving borrow costs throughput, never liveness."""
    specs = _specs()
    report = serve_run(specs, borrow=False)
    for spec, rec in zip(specs, report.tenants):
        assert rec.tiles == spec.tiles
        # Duplicate addresses inside a tile coalesce in the Row Table, so
        # issued lines can undercut tile_lines — but never exceed it, and
        # every issued line must reach DRAM.
        assert 0 < rec.lines <= spec.tiles * spec.tile_lines
        assert rec.dram_serviced == rec.lines
        assert rec.borrowed_inserts == 0


def test_serve_report_renders_timelines():
    report = serve_run(make_tenants(2, tiles=2, tile_lines=48))
    text = report.render()
    assert "2 tenant(s)" in text
    assert "Jain" in text
    for tenant in (0, 1):
        assert f"t{tenant} completions" in text


def test_serve_run_validations():
    with pytest.raises(ValueError):
        serve_run([])
    specs = make_tenants(1, tiles=1, tile_lines=16)
    with pytest.raises(ValueError):
        serve_run(specs + specs)

"""Property tests proving the serving layer's isolation invariants.

Three families, mirroring the structure of ``tests/dram/test_audit.py``:

* **hypothesis properties** — random operation streams against the QoS
  primitives must uphold the invariants the docstrings promise: the slice
  budget ``sum max(use, quota) <= rows_per_slice``, the reservation
  guarantee (a tenant within its quota is never refused), non-negative
  token accounting, and the compliant-tenant admission delay bound that is
  independent of every other tenant's load;
* **scheduler behaviour** — deficit round-robin stays balanced, and DRAM
  starvation-escalation events on the bus promote the least-served tenant;
* **mutation tests** — each machine checker must *detect* seeded
  violations (a forced bucket overdraft, a quota bypass, a cross-tenant
  line, a negative ledger credit).  A checker that cannot fail proves
  nothing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import DRAMCoord
from repro.serve.admission import (AdmissionController, AdmissionRecord,
                                   QoSViolation, TokenBucket, check_buckets,
                                   check_admission_order,
                                   compliant_delay_bound)
from repro.serve.partition import (BufferLedger, PartitionedRowTable,
                                   check_partition)
from repro.serve.scheduler import FairScheduler
from repro.serve.tenant import jain_index, make_tenants, percentile


def _coord(bank: int, row: int) -> DRAMCoord:
    return DRAMCoord(channel=0, rank=0, bankgroup=0, bank=bank,
                     row=row, column=0)


# ------------------------------------------------- partition slice invariant

_insert_ops = st.lists(
    st.tuples(
        st.integers(0, 2),        # tenant
        st.integers(0, 1),        # bank (slice)
        st.integers(0, 5),        # row
        st.integers(0, 9),        # line within (tenant, row) namespace
        st.booleans(),            # drain this tenant afterwards?
    ),
    min_size=1, max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=_insert_ops)
def test_partition_upholds_slice_invariant_and_reservations(ops):
    """Under any insert/drain stream the partition must (a) keep every
    slice within ``sum max(use, quota) <= rows_per_slice`` and (b) never
    refuse an insert that stays within the tenant's own quota — the
    reservation guarantee borrow must not be able to break."""
    quotas = {0: 2, 1: 2, 2: 3}
    part = PartitionedRowTable(quotas, rows_per_slice=8, cols_per_row=2)
    for tenant, bank, row, line, drain in ops:
        coord = _coord(bank, row)
        # Namespaced line addresses: tenants own disjoint regions, as the
        # serving frontend guarantees via TenantSpec regions.
        line_addr = (tenant << 24) | (row << 12) | (line << 6)
        table = part.table(tenant)
        cost = table.insert_cost(coord, line_addr)
        used = table.slice_units(coord.flat_bank)
        accepted, _ = part.try_insert(tenant, coord, line_addr, 0,
                                      lambda a: False)
        if used + cost <= quotas[tenant]:
            assert accepted, (
                "insert within quota refused: reservation guarantee broken")
        check_partition(part)
        if drain:
            part.drain(tenant)
            check_partition(part)


@settings(max_examples=30, deadline=None)
@given(ops=_insert_ops)
def test_partition_without_borrow_never_exceeds_quota(ops):
    quotas = {0: 2, 1: 2, 2: 3}
    part = PartitionedRowTable(quotas, rows_per_slice=8, cols_per_row=2,
                               borrow=False)
    for tenant, bank, row, line, _ in ops:
        line_addr = (tenant << 24) | (row << 12) | (line << 6)
        part.try_insert(tenant, _coord(bank, row), line_addr, 0,
                        lambda a: False)
        for t, table in part.tables.items():
            assert table.slice_units((0, 0, 0, bank)) <= quotas[t]
    assert sum(part.borrowed_inserts.values()) == 0


def test_partition_rejects_unhonorable_quotas():
    with pytest.raises(ValueError):
        PartitionedRowTable({0: 5, 1: 4}, rows_per_slice=8)
    with pytest.raises(ValueError):
        PartitionedRowTable({0: 0}, rows_per_slice=8)


# ------------------------------------------------------- token accounting

_bucket_ops = st.lists(
    st.tuples(
        st.integers(0, 1),          # tenant
        st.integers(1, 64),         # cost (lines) — within every burst
        st.integers(0, 200),        # gap to next submission
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(ops=_bucket_ops)
def test_admission_keeps_buckets_sane_and_order_monotone(ops):
    """Any monotone submission stream leaves every bucket within
    ``[0, burst]`` and every tenant's admission cycles monotone; each
    tile's delay is bounded by refilling its own cost from empty."""
    specs = make_tenants(2, tiles=1, tile_lines=64, refill_rate=0.5,
                         burst=128.0)
    ctrl = AdmissionController(specs)
    now = 0
    for tenant, cost, gap in ops:
        now += gap
        admit = ctrl.admit(tenant, float(cost), now)
        assert admit >= now
        check_buckets(ctrl)
    check_admission_order(ctrl)
    # A backlogged tenant queues behind its own earlier admissions, so the
    # per-tile bound is relative to max(submit, previous admit): each tile
    # adds at most its own refill time, never another tenant's.
    prev: dict[int, int] = {}
    for record in ctrl.log:
        rate = specs[record.tenant].refill_rate
        base = max(record.submit, prev.get(record.tenant, 0))
        assert record.admit <= base + -(-record.cost // rate)
        prev[record.tenant] = record.admit


@settings(max_examples=40, deadline=None)
@given(jitter=st.lists(st.integers(0, 100), min_size=4, max_size=12),
       flood=st.integers(1, 8))
def test_compliant_tenant_delay_is_bounded_despite_aggressor(jitter, flood):
    """The non-starvation invariant: a tenant pacing its submissions at or
    below its refill rate is admitted within ``compliant_delay_bound``
    cycles no matter how hard another tenant floods admission."""
    specs = make_tenants(2, tiles=1, tile_lines=32, refill_rate=0.25,
                         burst=64.0, aggressor=1, aggressor_boost=4.0)
    compliant, aggressor = specs
    bound = compliant_delay_bound(compliant)
    ctrl = AdmissionController(specs)
    now = 0
    for extra in jitter:
        # Aggressor floods: `flood` back-to-back tiles at this instant.
        for _ in range(flood):
            ctrl.admit(aggressor.tenant_id, float(aggressor.tile_lines), now)
        ctrl.admit(compliant.tenant_id, float(compliant.tile_lines), now)
        # Compliant pacing: at least one bound between submissions.
        now += bound + extra
    assert ctrl.worst_delay(compliant.tenant_id) <= bound
    check_buckets(ctrl)
    check_admission_order(ctrl)


def test_bucket_rejects_impossible_requests():
    bucket = TokenBucket(rate=1.0, burst=8.0)
    with pytest.raises(QoSViolation):
        bucket.ready_at(9.0, now=0)
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=8.0)


# ------------------------------------------------------ buffer ledger credits

_ledger_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(1, 4), st.booleans()),
    min_size=1, max_size=100,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ledger_ops)
def test_buffer_ledger_credits_stay_within_budget(ops):
    """Acquire/release streams keep ``sum max(use, quota)`` within the
    buffer capacity, and an acquire within the tenant's quota always
    succeeds (same reservation rule as the Row Table partition)."""
    quotas = {0: 4, 1: 4, 2: 6}
    ledger = BufferLedger(quotas, capacity=16)
    outstanding = {t: 0 for t in quotas}
    for tenant, lines, release in ops:
        if release and outstanding[tenant]:
            ledger.release(tenant, 1)
            outstanding[tenant] -= 1
        else:
            granted = ledger.try_acquire(tenant, lines)
            if ledger.inflight[tenant] - (lines if granted else 0) \
                    + lines <= quotas[tenant]:
                assert granted, "acquire within quota must succeed"
            if granted:
                outstanding[tenant] += lines
        ledger.check()
    assert ledger.peak[0] <= 16


# -------------------------------------------------- fair scheduler behaviour

def test_deficit_round_robin_stays_balanced():
    fair = FairScheduler([0, 1, 2])
    for tenant in (0, 1, 2):
        for i in range(10):
            fair.push(tenant, 0, f"t{tenant}.{i}")
    counts = {0: 0, 1: 0, 2: 0}
    while fair.pending():
        tenant, _ = fair.pick(0)
        counts[tenant] += 1
        assert max(counts.values()) - min(counts.values()) <= 1, counts
    assert counts == {0: 10, 1: 10, 2: 10}
    assert fair.escalated_picks == 0
    assert fair.service_counts() == counts


def test_not_ready_tiles_are_ineligible_until_their_cycle():
    fair = FairScheduler([0, 1])
    fair.push(0, ready=100, item="late")
    fair.push(1, ready=0, item="early")
    assert fair.pick(0) == (1, "early")
    assert fair.pick(0) is None
    assert fair.next_ready() == 100
    assert fair.pick(100) == (0, "late")


class _FakeBus:
    """Just the ``starvations`` list the scheduler shim consumes."""

    def __init__(self):
        self.starvations = []


def test_starvation_events_escalate_least_served_tenant():
    bus = _FakeBus()
    fair = FairScheduler([0, 1], bus=bus)
    for i in range(4):
        fair.push(0, 0, f"a{i}")
    for i in range(2):
        fair.push(1, 50, f"b{i}")   # tenant 1 not ready until cycle 50
    # Tenant 0 is the only eligible tenant early on: it builds up service.
    for _ in range(3):
        tenant, _ = fair.pick(0)
        assert tenant == 0
    # A DRAM age-cap override lands on the bus; the next pick must promote
    # the least-served tenant (1) past the deficit order.
    bus.starvations.append(("starved", 0))
    tenant, _ = fair.pick(60)
    assert tenant == 1
    assert fair.escalated_picks == 1
    # No fresh event: back to plain deficit round-robin.
    fair.pick(60)
    assert fair.escalated_picks == 1


# --------------------------------------------------- mutation: checker teeth

def test_check_buckets_catches_forced_overdraft():
    """Seed a negative balance through the test-only bypass — the checker
    must flag it, proving the accounting rule is not vacuous."""
    ctrl = AdmissionController(make_tenants(1, tiles=1, tile_lines=16))
    check_buckets(ctrl)                        # honest state is clean
    ctrl.buckets[0].force_spend(ctrl.buckets[0].tokens + 5.0)
    with pytest.raises(QoSViolation, match="< 0"):
        check_buckets(ctrl)


def test_check_buckets_catches_overfull_bucket():
    ctrl = AdmissionController(make_tenants(1, tiles=1, tile_lines=16))
    ctrl.buckets[0].tokens = ctrl.buckets[0].burst * 2
    with pytest.raises(QoSViolation, match="exceeds"):
        check_buckets(ctrl)


def test_check_partition_catches_quota_bypass():
    """Insert past quota directly into the underlying RowTable — skipping
    ``try_insert``'s budget check — and the slice invariant must trip."""
    part = PartitionedRowTable({0: 2, 1: 6}, rows_per_slice=8,
                               cols_per_row=8)
    check_partition(part)
    for row in range(3):                       # 3 rows > quota of 2
        part.tables[0].insert(_coord(0, row), row << 12, 0, lambda a: False)
    with pytest.raises(QoSViolation, match="unhonorable"):
        check_partition(part)


def test_check_partition_catches_cross_tenant_line():
    part = PartitionedRowTable({0: 2, 1: 2}, rows_per_slice=8)
    shared = 0xBEEF00
    part.tables[0].insert(_coord(0, 1), shared, 0, lambda a: False)
    part.tables[1].insert(_coord(0, 1), shared, 0, lambda a: False)
    with pytest.raises(QoSViolation, match="mixes tenants"):
        check_partition(part)


def test_check_partition_catches_physical_overflow():
    part = PartitionedRowTable({0: 2}, rows_per_slice=2, cols_per_row=8)
    for row in range(3):
        part.tables[0].insert(_coord(0, row), row << 12, 0, lambda a: False)
    # RowTable itself refuses the third row, so force the overflow by
    # giving the slice a third row behind the capacity check's back.
    sl = part.tables[0]._slices[(0, 0, 0, 0)]
    from repro.dx100.row_table import ColumnRecord
    sl.rows[99] = {0x999: ColumnRecord(line_addr=0x999, tail_i=0,
                                       h_bit=False)}
    with pytest.raises(QoSViolation, match="physical"):
        check_partition(part)


def test_ledger_check_catches_negative_credit():
    ledger = BufferLedger({0: 4, 1: 4}, capacity=8)
    ledger.check()
    ledger.release(0, 1)                       # release without acquire
    with pytest.raises(QoSViolation, match="negative"):
        ledger.check()


def test_serve_run_catches_quota_bypass_at_peak_occupancy(monkeypatch):
    """End-to-end mutation: route every insert around the partition's
    budget check and the serve loop itself must raise — the invariant is
    verified at peak occupancy (flush time), not after the drain has
    emptied the tables and hidden the violation."""
    from repro.serve import make_tenants, serve_run

    def bypass(self, tenant, coord, line_addr, iteration, h_bit_fn):
        return self.tables[tenant].insert(coord, line_addr, iteration,
                                          h_bit_fn)

    monkeypatch.setattr(PartitionedRowTable, "try_insert", bypass)
    with pytest.raises(QoSViolation, match="unhonorable"):
        serve_run(make_tenants(2, tiles=2, tile_lines=96),
                  rows_per_slice=8, cols_per_row=2)


def test_admission_order_checker_catches_reordering():
    ctrl = AdmissionController(make_tenants(1, tiles=1, tile_lines=16))
    ctrl.log.append(AdmissionRecord(tenant=0, submit=100, admit=100,
                                    cost=16.0, seq=0))
    ctrl.log.append(AdmissionRecord(tenant=0, submit=50, admit=50,
                                    cost=16.0, seq=1))
    with pytest.raises(QoSViolation, match="backwards"):
        check_admission_order(ctrl)


# ------------------------------------------------------------- SLO metrics

def test_percentile_and_jain_edge_cases():
    assert percentile([], 99) == 0
    assert percentile([7], 50) == 7
    assert percentile(list(range(1, 101)), 50) == 50
    assert percentile(list(range(1, 101)), 99) == 99
    with pytest.raises(ValueError):
        percentile([1], 101)
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
    with pytest.raises(ValueError):
        jain_index([-1.0])

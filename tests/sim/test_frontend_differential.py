"""Differential tests: the batched front-end vs the scalar oracle.

The batched front-end (:class:`~repro.cache.batched.BatchedHierarchy` +
:class:`~repro.core.batched.BatchedMulticore`) is a call-graph fusion of
the scalar per-op models — same data structures, same schedule, fewer
Python frames.  *Bitwise equivalence is the contract*: for any trace, the
two front-ends must agree on

* the finish cycle and per-op timing (``issue``, ``complete``, ``level``);
* every cache/MSHR/prefetcher counter in the hierarchy's stats;
* the DRAM command stream (kind, cycle, bank, row, in order) on every
  channel, under *both* DRAM engines;
* the merged DRAM counters and the instruction totals.

Three layers: hypothesis property tests drive randomized multi-core trace
programs (loads/stores/RMWs, dependence chains, atomics, PC/tag streams)
through paired systems; seeded long runs cross prefetcher and MSHR
pressure with the DMP engine attached; and end-to-end pairs replay quick
benchmarks — including DX100 mode, whose tile path exercises
``llc_access``/``access_lines`` — through the sweep's own ``execute_task``.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import SystemConfig
from repro.common.types import AccessType
from repro.core.trace import Trace, TraceBuilder
from repro.sim.system import SimSystem

CORES = 2
LINE = 64


# ------------------------------------------------------------- harness

def _make_config(mode: str, dram_engine: str) -> SystemConfig:
    if mode == "baseline":
        cfg = SystemConfig.baseline(CORES)
    elif mode == "dmp":
        cfg = SystemConfig.dmp_system(CORES)
    elif mode == "dx100":
        cfg = SystemConfig.dx100_system(CORES)
    else:  # pragma: no cover
        raise ValueError(mode)
    return replace(cfg, dram=replace(cfg.dram, engine=dram_engine))


def _system(config: SystemConfig, frontend: str):
    """A SimSystem with per-channel DRAM command recorders attached."""
    system = SimSystem(replace(config, frontend=frontend))
    logs: list[list[tuple]] = []
    for ctrl in system.dram.controllers:
        log: list[tuple] = []
        ctrl.command_observers.append(
            lambda kind, cycle, bank, row, _l=log:
            _l.append((kind, cycle, bank, row)))
        logs.append(log)
    return system, logs


def _build_traces(program) -> list[Trace]:
    """Materialize the per-core op program.  Ops are mutated by the core
    model (issue/complete/level), so each front-end needs fresh traces."""
    builders = [TraceBuilder() for _ in range(CORES)]
    for core, kind, line_no, dep_back, extra, atomic, pc, tag in program:
        tb = builders[core % CORES]
        addr = (line_no * LINE) % (1 << 22)
        n = len(tb._ops)
        deps = (n - 1 - (dep_back % n),) if (dep_back >= 0 and n) else ()
        if extra:
            tb.compute(extra)
        if kind == 0:
            tb.load(addr, deps=deps, pc=pc, tag=tag)
        elif kind == 1:
            tb.store(addr, deps=deps, atomic=atomic, pc=pc, tag=tag)
        else:
            tb.rmw(addr, deps=deps, atomic=atomic, pc=pc, tag=tag)
    return [tb.finish() for tb in builders]


def _assert_equivalent(config: SystemConfig, program,
                       dmp_stream=None) -> None:
    finishes, op_timings, cache_counters = {}, {}, {}
    dram_logs, dram_counters, instrs = {}, {}, {}
    for frontend in ("scalar", "batched"):
        system, logs = _system(config, frontend)
        if dmp_stream is not None and system.dmp is not None:
            pc, addrs = dmp_stream
            system.dmp.register_stream(pc, addrs)
        traces = _build_traces(program)
        finish = system.multicore.run(traces)
        system.dram.drain()
        finishes[frontend] = finish
        op_timings[frontend] = [
            (op.issue, op.complete, op.level)
            for trace in traces for op in trace.ops]
        cache_counters[frontend] = dict(system.hierarchy.stats.counters)
        dram_logs[frontend] = logs
        dram_counters[frontend] = dict(system.dram.merged_stats().counters)
        instrs[frontend] = system.multicore.total_instructions()
    assert finishes["batched"] == finishes["scalar"]
    assert op_timings["batched"] == op_timings["scalar"]
    assert cache_counters["batched"] == cache_counters["scalar"]
    assert dram_logs["batched"] == dram_logs["scalar"]
    assert dram_counters["batched"] == dram_counters["scalar"]
    assert instrs["batched"] == instrs["scalar"]


# ------------------------------------------------- property: random traces

# (core, kind, line_no, dep_back, extra, atomic, pc, tag): a footprint a
# few times the L1/L2 capacity, short dependence chains, occasional
# atomics, and small PC/tag alphabets so prefetchers and the DMP see
# recurring streams.
_op = st.tuples(
    st.integers(0, CORES - 1),            # core
    st.integers(0, 2),                    # load / store / rmw
    st.integers(0, 1 << 9),               # line number
    st.integers(-1, 4),                   # dep: -1 = none, else back-offset
    st.integers(0, 5),                    # extra non-memory instructions
    st.booleans(),                        # atomic?
    st.integers(0, 3),                    # pc
    st.integers(-1, 7),                   # tag
)
_program = st.lists(_op, min_size=1, max_size=60)


@pytest.mark.parametrize("mode,engine", [
    ("baseline", "batched"),
    ("baseline", "scalar"),
    ("dmp", "batched"),
    ("dx100", "batched"),
])
@settings(max_examples=25, deadline=None)
@given(program=_program)
def test_batched_frontend_matches_scalar_randomized(mode, engine, program):
    _assert_equivalent(_make_config(mode, engine), program)


# ------------------------------------------------------ seeded long runs

def _long_program(seed: int, n: int):
    import random
    rng = random.Random(seed)
    prog = []
    for i in range(n):
        kind = rng.choice((0, 0, 0, 1, 2))
        # Mix a strided walk (prefetcher-friendly) with random lines
        # (MSHR/LLC pressure) on alternating PCs.
        line_no = i * 2 if i % 3 else rng.randrange(1 << 12)
        prog.append((rng.randrange(CORES), kind, line_no,
                     rng.randrange(-1, 3), rng.randrange(4),
                     rng.random() < 0.1, i % 3, i % 5))
    return prog


@pytest.mark.parametrize("mode", ["baseline", "dmp", "dx100"])
def test_long_run_agrees(mode):
    _assert_equivalent(_make_config(mode, "batched"),
                       _long_program(seed=hash(mode) % 1000, n=500))


def test_dmp_with_registered_stream_agrees():
    """The DMP observer path live: a registered indirect stream on pc=1
    makes ``observe`` issue LLC prefetches from inside the demand walk —
    the batched walk's observer short-circuit must not skip them."""
    stream = [(i * 17 % (1 << 10)) * LINE for i in range(64)]
    program = [(i % CORES, 0, (i * 17) % (1 << 10), -1, 1, False, 1, i)
               for i in range(200)]
    _assert_equivalent(_make_config("dmp", "batched"), program,
                       dmp_stream=(1, stream))


def test_both_dram_engines_same_frontend_answer():
    """Front-end equivalence must hold on the scalar DRAM oracle too (the
    2x2 grid closes: any front-end x any engine gives the same system)."""
    program = _long_program(seed=42, n=300)
    for engine in ("batched", "scalar"):
        _assert_equivalent(_make_config("baseline", engine), program)


# ---------------------------------------------- end-to-end benchmark pairs

@pytest.mark.parametrize("bench,mode", [
    ("IS", "baseline"),
    ("IS", "dx100"),
    ("CG", "dmp"),
    ("XRAGE", "dx100"),
])
def test_quick_benchmark_end_to_end_pair(bench, mode):
    """Full RunResult equality through the sweep's own task executor —
    every golden metric field plus the extra fields, both front-ends.
    The dx100 rows drive the tile path (``llc_access``/``access_lines``)
    and the scratchpad windows end to end."""
    from repro.sim.sweep import CONFIG_BUILDERS, SweepTask, execute_task

    results = {}
    for frontend in ("batched", "scalar"):
        config = replace(CONFIG_BUILDERS[mode](4), frontend=frontend)
        task = SweepTask(benchmark=bench, mode=mode, quick=True,
                         config=config)
        result, _wall = execute_task(task)
        results[frontend] = result
    assert results["batched"].__dict__ == results["scalar"].__dict__


def test_unknown_frontend_rejected():
    with pytest.raises(ValueError):
        SimSystem(replace(SystemConfig.baseline(2), frontend="vectorized"))

"""The campaign spec DSL: grammar, grid expansion, and the config dict
round-trip the on-disk manifest depends on (bitwise)."""

from dataclasses import asdict

import pytest

from repro.common.config import SystemConfig, ddr5_6400
from repro.sim.specs import (
    SpecError, expand_range, expand_serve_params, expand_sweep_tasks,
    expand_values, parse_atom, parse_spec, sweep_task_from_dict,
    sweep_task_to_dict, system_config_from_dict, system_config_to_dict,
)
from repro.sim.sweep import CONFIG_BUILDERS, MODES


# ------------------------------------------------------------------ grammar

def test_atoms_parse_suffixes_and_strings():
    assert parse_atom("4") == 4
    assert parse_atom("4k") == 4096
    assert parse_atom("2m") == 2 * 1024 ** 2
    assert parse_atom("1g") == 1024 ** 3
    assert parse_atom("ddr5") == "ddr5"
    assert parse_atom("G*") == "G*"
    with pytest.raises(SpecError):
        parse_atom("")


def test_ranges_double_geometrically_and_keep_an_off_chain_hi():
    assert expand_range(1, 8) == [1, 2, 4, 8]
    assert expand_range(4, 4) == [4]
    assert expand_range(4096, 48 * 1024) == [
        4096, 8192, 16384, 32768, 48 * 1024]
    with pytest.raises(SpecError):
        expand_range(0, 8)
    with pytest.raises(SpecError):
        expand_range(8, 4)


def test_values_compose_commas_and_ranges_with_order_preserving_dedupe():
    assert expand_values("1:4,2,16") == [1, 2, 4, 16]
    assert expand_values("ddr4,ddr5") == ["ddr4", "ddr5"]
    assert expand_values("4k:8k") == [4096, 8192]


def test_parse_spec_validates_keys_choices_and_duplicates():
    spec = parse_spec("benchmarks=IS,CG dram=ddr4,ddr5 tile=4k:8k")
    assert spec["benchmarks"] == ["IS", "CG"]
    assert spec["dram"] == ["ddr4", "ddr5"]
    assert spec["tile"] == [4096, 8192]

    with pytest.raises(SpecError, match="unknown dimension"):
        parse_spec("bogus=1")
    with pytest.raises(SpecError, match="given twice"):
        parse_spec("dram=ddr4 dram=ddr5")
    with pytest.raises(SpecError, match="takes"):
        parse_spec("dram=ddr6")
    with pytest.raises(SpecError, match="takes integers"):
        parse_spec("tile=big")
    with pytest.raises(SpecError, match="not key=value"):
        parse_spec("benchmarks")


def test_aliases_normalize_to_canonical_dimensions():
    assert parse_spec("mode=dx100")["modes"] == ["dx100"]
    assert parse_spec("configs=baseline")["modes"] == ["baseline"]
    assert parse_spec("tiles=4k")["tile"] == [4096]
    assert parse_spec("tenant=2")["tenants"] == [2]


def test_benchmark_globs_match_the_registry_in_order():
    tasks = expand_sweep_tasks(parse_spec("benchmarks=G* modes=baseline "
                                          "scale=quick"))
    assert [t.benchmark for t in tasks] == ["GZZ", "GZZI", "GZP", "GZPI"]
    with pytest.raises(SpecError, match="matches nothing"):
        expand_sweep_tasks(parse_spec("benchmarks=NOPE*"))


# ---------------------------------------------------------------- expansion

def test_empty_spec_is_the_full_default_grid():
    tasks = expand_sweep_tasks(parse_spec(""))
    assert len(tasks) == 12 * len(MODES)
    assert all(not t.quick for t in tasks)


def test_tile_axis_only_replicates_dx100_tasks():
    """baseline/dmp have no DX100 config, so the tile axis collapses for
    them instead of producing duplicate cache keys."""
    tasks = expand_sweep_tasks(parse_spec(
        "benchmarks=IS tile=4k:16k scale=quick"))
    by_mode: dict[str, int] = {}
    for t in tasks:
        by_mode[t.mode] = by_mode.get(t.mode, 0) + 1
    assert by_mode == {"baseline": 1, "dmp": 1, "dx100": 3}
    dx_tiles = {t.config.dx100.tile_elems for t in tasks
                if t.mode == "dx100"}
    assert dx_tiles == {4096, 8192, 16384}


def test_dram_axis_selects_presets():
    tasks = expand_sweep_tasks(parse_spec(
        "benchmarks=IS modes=baseline dram=ddr4,ddr5 scale=quick"))
    timings = {t.config.dram.timing.tCK for t in tasks}
    from repro.common.config import DRAMConfig
    assert timings == {DRAMConfig().timing.tCK, ddr5_6400().timing.tCK}


def test_dram_choices_derive_from_the_preset_registry():
    """The grammar's allowed set IS the config layer's registry — adding
    a preset must never require touching the DSL (the hardcoded-set bug
    this pins: ``cxl`` existed in the config but the spec rejected it)."""
    from repro.common.config import DRAM_PRESETS
    from repro.sim.specs import _CHOICES
    assert _CHOICES["dram"] == set(DRAM_PRESETS)
    assert "cxl" in _CHOICES["dram"]


def test_unknown_dram_error_enumerates_the_registry():
    """The error path names every valid preset, cxl included."""
    with pytest.raises(SpecError, match=r"cxl.*ddr4.*ddr5|takes.*cxl"):
        parse_spec("dram=hbm")


def test_dram_cxl_expands_with_the_remote_link_enabled():
    tasks = expand_sweep_tasks(parse_spec(
        "benchmarks=IS modes=baseline,dx100 dram=cxl scale=quick"))
    assert tasks, "cxl must be a legal dram value"
    for task in tasks:
        assert task.config.dram.remote.enabled
    # And it round-trips through the campaign manifest bitwise.
    rebuilt = sweep_task_from_dict(sweep_task_to_dict(tasks[0]))
    assert rebuilt == tasks[0]
    assert rebuilt.config.dram.remote.enabled
    assert rebuilt.key() == tasks[0].key()


def test_serve_axis_accepts_cxl():
    params = expand_serve_params(parse_spec("tenants=2 dram=cxl"))
    assert [p["dram"] for p in params] == ["cxl"]


def test_serve_axis_expands_tenants_by_dram_by_aggressor():
    params = expand_serve_params(parse_spec("tenants=1:4 dram=ddr4,ddr5"))
    assert len(params) == 3 * 2       # tenants 1,2,4 x two DRAM presets
    assert {p["tenants"] for p in params} == {1, 2, 4}

    with pytest.raises(SpecError, match="out of range"):
        expand_serve_params(parse_spec("tenants=2 aggressor=5"))
    assert expand_serve_params(parse_spec("benchmarks=IS")) == []


# --------------------------------------------------------------- round-trip

@pytest.mark.parametrize("mode", MODES)
def test_system_config_round_trips_bitwise(mode):
    config = CONFIG_BUILDERS[mode](4)
    rebuilt = system_config_from_dict(system_config_to_dict(config))
    assert rebuilt == config
    assert asdict(rebuilt) == asdict(config)


def test_system_config_round_trip_covers_ddr5_and_tile_overrides():
    from dataclasses import replace
    config = SystemConfig.dx100_scaled(4)
    config = replace(config, dram=ddr5_6400(),
                     dx100=config.dx100.with_tile(8192))
    assert system_config_from_dict(system_config_to_dict(config)) == config


def test_sweep_task_round_trip_preserves_the_cache_key():
    task = expand_sweep_tasks(parse_spec(
        "benchmarks=CG modes=dx100 tile=8k scale=quick"))[0]
    rebuilt = sweep_task_from_dict(sweep_task_to_dict(task))
    assert rebuilt == task
    assert rebuilt.key() == task.key()

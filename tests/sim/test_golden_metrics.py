"""Golden-metrics regression harness (tier-1).

Re-runs the REPRO_QUICK suite under all three configurations through the
sweep executor — with the run cache disabled, so the model actually
executes — and diffs every pinned ``RunResult`` field *exactly* against
``tests/golden/quick_suite.json``.

Any mismatch means a change altered the reproduced numbers.  If that is
intentional (a model fix, a calibration change), regenerate the golden
file with ``python -m repro sweep --update-golden`` and commit it with the
change; EXPERIMENTS.md documents the workflow.
"""

import json

from repro.sim.sweep import (
    GOLDEN_FIELDS, GOLDEN_PATH, diff_golden, golden_snapshot, load_golden,
    main_sweep_tasks, run_sweep,
)


def test_golden_file_is_committed_and_well_formed():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; run `python -m repro sweep --update-golden`")
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["fields"] == list(GOLDEN_FIELDS)
    metrics = payload["metrics"]
    assert len(metrics) == 12, sorted(metrics)
    for name, runs in metrics.items():
        assert set(runs) == {"baseline", "dmp", "dx100"}, name
        for mode, fields in runs.items():
            assert set(fields) == set(GOLDEN_FIELDS), (name, mode)


def test_quick_suite_matches_golden_metrics_exactly():
    golden = load_golden()
    outcome = run_sweep(main_sweep_tasks(quick=True), cache=False)
    problems = diff_golden(golden_snapshot(outcome), golden)
    assert not problems, (
        "reproduced metrics drifted from tests/golden/quick_suite.json "
        "(intentional? `python -m repro sweep --update-golden`):\n  "
        + "\n  ".join(problems))


# ------------------------------------------------------------ tenancy golden

def test_tenancy_golden_file_is_committed_and_well_formed():
    from repro.serve.golden import TENANCY_GOLDEN_PATH, load_tenancy_golden
    assert TENANCY_GOLDEN_PATH.exists(), (
        f"missing {TENANCY_GOLDEN_PATH}; run "
        f"`python -m repro serve --update-golden`")
    scenarios = load_tenancy_golden()
    assert {"t1", "t2", "t2_aggressor", "t4"} <= set(scenarios)
    for name, entry in scenarios.items():
        assert entry["engine"] == "batched", name
        assert entry["total_cycles"] > 0, name
        assert 0.0 < entry["jain"] <= 1.0, name
        for tenant, rec in entry["tenants"].items():
            assert rec["p50"] <= rec["p99"], (name, tenant)
            assert rec["dram_serviced"] == rec["lines"], (name, tenant)


def test_tenancy_scenarios_match_golden_exactly():
    from repro.serve import tenancy_scenarios
    from repro.serve.golden import (
        diff_tenancy_golden, load_tenancy_golden, tenancy_snapshot,
    )
    golden = load_tenancy_golden()
    problems = diff_tenancy_golden(tenancy_snapshot(tenancy_scenarios()),
                                   golden)
    assert not problems, (
        "tenancy QoS metrics drifted from tests/golden/tenancy_quick.json "
        "(intentional? `python -m repro serve --update-golden`):\n  "
        + "\n  ".join(problems))


def test_single_tenant_serve_degenerates_to_untagged_run():
    """tenants=1 must replay the untagged path cycle for cycle.

    The only admissible difference is the per-tenant DRAM counters
    themselves (absent when untagged); every latency, cycle count, and
    fairness figure must be bitwise identical.
    """
    from repro.serve import make_tenants, serve_run
    specs = make_tenants(1, tiles=3, tile_lines=96)
    tagged = serve_run(specs, tag_requests=True).golden_snapshot()
    untagged = serve_run(specs, tag_requests=False).golden_snapshot()
    for snap in (tagged, untagged):
        for rec in snap["tenants"].values():
            for key in ("dram_serviced", "dram_bytes", "dram_row_hits"):
                rec.pop(key)
    assert tagged == untagged


def test_tenant_tagged_quick_run_matches_pinned_golden():
    """Threading tenant tags through SimSystem must not move any metric.

    Runs one quick benchmark with every core and the DX100 instance
    tagged as tenant 0 and compares the pinned RunResult fields against
    the committed golden values for the untagged run.
    """
    from repro.sim.runner import run_dx100
    from repro.sim.sweep import CONFIG_BUILDERS
    from repro.workloads import QUICK_BENCHMARKS
    golden = load_golden()
    name = sorted(golden)[0]
    result = run_dx100(QUICK_BENCHMARKS[name](), CONFIG_BUILDERS["dx100"](4),
                       warm=False, tenant=0)
    for fld in GOLDEN_FIELDS:
        assert getattr(result, fld) == golden[name]["dx100"][fld], fld

"""Golden-metrics regression harness (tier-1).

Re-runs the REPRO_QUICK suite under all three configurations through the
sweep executor — with the run cache disabled, so the model actually
executes — and diffs every pinned ``RunResult`` field *exactly* against
``tests/golden/quick_suite.json``.

Any mismatch means a change altered the reproduced numbers.  If that is
intentional (a model fix, a calibration change), regenerate the golden
file with ``python -m repro sweep --update-golden`` and commit it with the
change; EXPERIMENTS.md documents the workflow.
"""

import json

from repro.sim.sweep import (
    GOLDEN_FIELDS, GOLDEN_PATH, diff_golden, golden_snapshot, load_golden,
    main_sweep_tasks, run_sweep,
)


def test_golden_file_is_committed_and_well_formed():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; run `python -m repro sweep --update-golden`")
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["fields"] == list(GOLDEN_FIELDS)
    metrics = payload["metrics"]
    assert len(metrics) == 12, sorted(metrics)
    for name, runs in metrics.items():
        assert set(runs) == {"baseline", "dmp", "dx100"}, name
        for mode, fields in runs.items():
            assert set(fields) == set(GOLDEN_FIELDS), (name, mode)


def test_quick_suite_matches_golden_metrics_exactly():
    golden = load_golden()
    outcome = run_sweep(main_sweep_tasks(quick=True), cache=False)
    problems = diff_golden(golden_snapshot(outcome), golden)
    assert not problems, (
        "reproduced metrics drifted from tests/golden/quick_suite.json "
        "(intentional? `python -m repro sweep --update-golden`):\n  "
        + "\n  ".join(problems))

"""Bar-chart renderer."""

import pytest

from repro.sim.report import bar_chart


def test_bar_chart_scales_to_peak():
    chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2.00x" in lines[1]


def test_bar_chart_empty_and_invalid():
    assert bar_chart({}) == "(no data)"
    with pytest.raises(ValueError):
        bar_chart({"a": 0.0})

"""Bar-chart renderer and comparison-table alignment."""

import pytest

from repro.sim.metrics import RunResult
from repro.sim.report import bar_chart, comparison_table


def test_bar_chart_scales_to_peak():
    chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2.00x" in lines[1]


def test_bar_chart_zero_renders_zero_width():
    chart = bar_chart({"a": 0.0, "b": 2.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 0       # zero is an honest nothing
    assert "0.00x" in lines[0]
    assert lines[1].count("#") == 10


def test_bar_chart_tiny_positive_still_visible():
    chart = bar_chart({"a": 0.001, "b": 2.0}, width=10)
    assert chart.splitlines()[0].count("#") == 1


def test_bar_chart_empty_and_invalid():
    assert bar_chart({}) == "(no data)"
    with pytest.raises(ValueError):
        bar_chart({"a": 0.0})             # no positive peak to scale by
    with pytest.raises(ValueError):
        bar_chart({"a": -1.0, "b": 2.0})  # sign cannot map to a length


def _result(workload, config, cycles):
    return RunResult(
        workload=workload, config=config, cycles=cycles,
        instructions=1000.0, bandwidth_utilization=0.5,
        row_buffer_hit_rate=0.5, request_buffer_occupancy=1.0,
        llc_mpki=1.0, dram_bytes=64, dram_requests=1,
    )


def test_comparison_table_aligns_missing_cells():
    """A row with a missing run must pad to exactly the populated width so
    every '|' separator lines up down the whole table."""
    results = {
        "full": {
            "baseline": _result("full", "baseline", 2000),
            "dmp": _result("full", "dmp", 1500),
            "dx100": _result("full", "dx100", 1000),
        },
        "nobase": {
            "dx100": _result("nobase", "dx100", 1000),
        },
        "onlybase": {
            "baseline": _result("onlybase", "baseline", 2000),
        },
    }
    table = comparison_table(results).splitlines()
    rows = [ln for ln in table if ln and not ln.startswith(("-", "geomean"))]
    widths = {len(ln) for ln in rows}
    assert len(widths) == 1, f"ragged rows: {sorted(widths)}"
    pipes = {tuple(i for i, ch in enumerate(ln) if ch == "|") for ln in rows}
    assert len(pipes) == 1, "column separators shifted between rows"


def test_comparison_table_speedup_only_with_baseline():
    results = {
        "nobase": {"dx100": _result("nobase", "dx100", 1000)},
    }
    table = comparison_table(results)
    assert "x" not in table.splitlines()[-1]   # no phantom speedup
    assert "geomean" not in table

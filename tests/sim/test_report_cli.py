"""Report formatting and the command-line runner."""

import csv
import io

import pytest

from repro.sim import run_baseline, run_dx100
from repro.sim.report import comparison_table, single_run_summary, to_csv
from repro.workloads import GatherFull
from repro.__main__ import main


@pytest.fixture(scope="module")
def runs():
    base = run_baseline(GatherFull(1024))
    dx = run_dx100(GatherFull(1024))
    return base, dx


def test_csv_round_trip(runs, tmp_path):
    base, dx = runs
    path = tmp_path / "results.csv"
    text = to_csv([base, dx], path)
    assert path.read_text() == text
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 2
    assert rows[0]["workload"] == "gather-full"
    assert int(rows[0]["cycles"]) == base.cycles


def test_comparison_table(runs):
    base, dx = runs
    table = comparison_table({"gather-full": {"baseline": base,
                                              "dx100": dx}})
    assert "gather-full" in table
    assert "geomean speedup (dx100)" in table
    assert "x" in table


def test_single_run_summary(runs):
    base, _ = runs
    text = single_run_summary(base)
    assert "gather-full" in text and "cycles" in text


def test_bandwidth_utilization_is_physical(runs):
    for r in runs:
        assert 0.0 <= r.bandwidth_utilization <= 1.0


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "XRAGE" in out and "Spatter" in out


def test_cli_area(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "scratchpad" in out and "TOTAL" in out


def test_cli_run_quick(capsys, tmp_path):
    csv_path = tmp_path / "out.csv"
    code = main(["run", "XRAGE", "--quick", "--configs", "baseline",
                 "dx100", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "XRAGE" in out and "geomean" in out
    assert csv_path.exists()


def test_cli_run_rejects_unknown(capsys):
    assert main(["run", "NOPE", "--quick"]) == 2
    assert main(["run", "--quick"]) == 2


def test_cli_run_with_trace(capsys, tmp_path):
    from repro.obs.validate import validate_file
    trace_path = tmp_path / "trace.json"
    code = main(["run", "XRAGE", "--quick", "--configs", "baseline",
                 "--trace", str(trace_path), "--sample-every", "500"])
    assert code == 0
    assert trace_path.exists()
    assert validate_file(trace_path) == []


def test_cli_timeline(capsys):
    code = main(["timeline", "XRAGE", "--quick", "--mode", "dx100",
                 "--sample-every", "500", "--width", "50"])
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "rbh" in out and "bw_util" in out
    assert "timeline_samples" in out


def test_cli_timeline_rejects_bad_args(capsys):
    assert main(["timeline", "NOPE", "--quick"]) == 2
    assert main(["timeline", "XRAGE", "--quick", "--sample-every", "0"]) == 2

"""The campaign fabric: lease protocol, retry/backoff, resume-without-
re-simulation, generate-stage reuse, and bitwise identity with the direct
runner path."""

import json
import os
import threading
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.dx100.hostmem import HostMemory
from repro.sim.fabric import (
    GenerateCache, RetryPolicy, build_tasks, campaign_status, claim_task,
    complete_task, create_campaign, fail_task, load_campaign,
    merge_bench_record, reclaim_expired, run_campaign, run_grouped,
    worker_loop,
)
from repro.sim.sweep import (
    RunCache, execute_task, main_sweep_tasks, result_to_dict, run_sweep,
)


def _campaign(tmp_path, spec="benchmarks=IS modes=baseline,dx100 "
              "scale=quick", **kwargs):
    tasks = build_tasks(spec)
    kwargs.setdefault("cache", False)
    path = create_campaign(tasks, "t", root=tmp_path / "camps",
                           spec_text=spec, **kwargs)
    return path, tasks


def _done(path):
    return {p.stem: json.loads(p.read_text())
            for p in (path / "done").glob("*.json")}


# ----------------------------------------------------------- manifest basics

def test_build_tasks_assigns_stable_readable_ids():
    tasks = build_tasks("benchmarks=IS tile=4k:8k scale=quick tenants=2")
    tids = [t.tid for t in tasks]
    assert tids == ["IS.quick.baseline", "IS.quick.dmp", "IS.quick.dx100",
                    "IS.quick.dx100.2", "serve.t2.ddr4"]
    assert len(set(tids)) == len(tids)


def test_campaign_round_trips_through_the_manifest(tmp_path):
    path, tasks = _campaign(tmp_path)
    campaign = load_campaign(path)
    assert set(campaign.tasks) == {t.tid for t in tasks}
    for task in tasks:
        loaded = campaign.tasks[task.tid]
        assert loaded.sweep == task.sweep
        assert loaded.group == task.group
    assert campaign_status(path).pending == len(tasks)


def test_create_refuses_to_clobber_an_existing_campaign(tmp_path):
    _campaign(tmp_path)
    with pytest.raises(FileExistsError):
        _campaign(tmp_path)


def test_cache_hits_settle_at_creation_and_never_schedule(tmp_path):
    """A task already in the run cache lands in done/ with cached=true;
    only the rest get queue tokens."""
    cache_dir = tmp_path / "cache"
    tasks = main_sweep_tasks(quick=True, benchmarks=["IS"],
                             modes=("baseline",))
    run_sweep(tasks, jobs=1, cache=True, cache_dir=cache_dir)

    path = create_campaign(
        build_tasks("benchmarks=IS modes=baseline,dx100 scale=quick"),
        "c", root=tmp_path / "camps", cache=True, cache_dir=cache_dir)
    status = campaign_status(path)
    assert status.done == 1 and status.pending == 1
    assert _done(path)["IS.quick.baseline"]["cached"] is True


# ------------------------------------------------------------ lease protocol

def test_claim_is_exactly_once_under_contention(tmp_path):
    path, _ = _campaign(tmp_path)
    wins: list[str] = []
    barrier = threading.Barrier(8)

    def contend(i):
        barrier.wait()
        if claim_task(path, "IS.quick.baseline", f"w{i}") is not None:
            wins.append(f"w{i}")

    threads = [threading.Thread(target=contend, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    assert (path / "active" / f"IS.quick.baseline@{wins[0]}").exists()


def test_failure_reenqueues_with_backoff_then_goes_terminal(tmp_path):
    path, _ = _campaign(tmp_path)
    retry = RetryPolicy(max_retries=1, backoff_base_s=10.0)
    tid = "IS.quick.baseline"

    token = claim_task(path, tid, "w0")
    assert fail_task(path, tid, "w0", token, "boom", retry) is True
    requeued = json.loads((path / "queue" / tid).read_text())
    assert requeued["retries"] == 1
    assert requeued["not_before"] > time.time() + 5.0   # backoff applied

    token = json.loads((path / "queue" / tid).read_text())
    os.rename(path / "queue" / tid, path / "active" / f"{tid}@w0")
    assert fail_task(path, tid, "w0", token, "boom again", retry) is False
    terminal = json.loads((path / "failed" / f"{tid}.json").read_text())
    assert terminal["error"] == "boom again"
    assert not (path / "queue" / tid).exists()


def test_backoff_is_capped_exponential():
    retry = RetryPolicy(max_retries=8, backoff_base_s=1.0, backoff_cap_s=5.0)
    assert [retry.backoff(n) for n in range(4)] == [1.0, 2.0, 4.0, 5.0]


def test_reclaim_requeues_only_expired_leases(tmp_path):
    path, _ = _campaign(tmp_path)
    fresh, stale = "IS.quick.baseline", "IS.quick.dx100"
    claim_task(path, fresh, "w0")
    claim_task(path, stale, "w1")
    old = time.time() - 120.0
    os.utime(path / "active" / f"{stale}@w1", (old, old))

    assert reclaim_expired(path, lease_ttl_s=30.0) == [stale]
    assert (path / "queue" / stale).exists()
    assert (path / "active" / f"{fresh}@w0").exists()


def test_reclaim_drops_stale_leases_whose_task_already_completed(tmp_path):
    """Crash between done-write and lease-unlink: the record wins, the
    lease is garbage."""
    path, _ = _campaign(tmp_path)
    tid = "IS.quick.baseline"
    claim_task(path, tid, "w0")
    complete_task(path, tid, "w1", {"tid": tid, "cached": False})
    lease = path / "active" / f"{tid}@w0"
    assert lease.exists()          # w0's lease survived w1's completion
    old = time.time() - 120.0
    os.utime(lease, (old, old))
    assert reclaim_expired(path, lease_ttl_s=30.0) == []
    assert not lease.exists()
    assert not (path / "queue" / tid).exists()


# ------------------------------------------------------------- worker loop

def test_worker_loop_drains_the_campaign(tmp_path):
    path, tasks = _campaign(tmp_path)
    out = worker_loop(path, worker="w0", cache=False)
    assert out.executed == len(tasks)
    status = campaign_status(path)
    assert status.finished and status.done == len(tasks)
    stats = json.loads((path / "workers" / "w0.json").read_text())
    assert stats["generates"] == 1 and stats["reuses"] == 1


def test_injected_failure_is_retried_to_success(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_INJECT_FAIL", "IS.quick.dx100:1")
    path, _ = _campaign(tmp_path,
                        retry=RetryPolicy(max_retries=2,
                                          backoff_base_s=0.05))
    worker_loop(path, worker="w0", cache=False)
    record = _done(path)["IS.quick.dx100"]
    assert record["retries"] == 1
    assert campaign_status(path).failed == 0


def test_exhausted_retries_go_terminal_without_wedging_the_loop(
        tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_INJECT_FAIL", "IS.quick.dx100:99")
    path, _ = _campaign(tmp_path,
                        retry=RetryPolicy(max_retries=1,
                                          backoff_base_s=0.05))
    out = worker_loop(path, worker="w0", cache=False)
    status = campaign_status(path)
    assert status.failed == 1 and status.done == 1 and status.finished
    assert out.failures == 2       # initial attempt + one retry


def test_resume_executes_only_non_done_tasks(tmp_path):
    """The zero-duplicated-simulation guarantee: a completed campaign
    resumed from its manifest runs nothing and rewrites nothing."""
    path, tasks = _campaign(tmp_path)
    worker_loop(path, worker="w0", cache=False)
    before = {p.name: (p.stat().st_mtime_ns, p.read_text())
              for p in (path / "done").glob("*.json")}

    out = worker_loop(path, worker="w1", cache=False)
    assert out.executed == 0
    after = {p.name: (p.stat().st_mtime_ns, p.read_text())
             for p in (path / "done").glob("*.json")}
    assert after == before


def test_interrupted_campaign_resumes_the_remainder_exactly(tmp_path):
    """Half-done manifest: the resuming worker simulates exactly the
    missing tasks and leaves the finished records byte-identical."""
    path, tasks = _campaign(
        tmp_path, spec="benchmarks=IS,CG modes=baseline,dx100 scale=quick")
    # Simulate an interruption: run only the IS tasks, then stop.
    gen = GenerateCache()
    campaign = load_campaign(path)
    from repro.sim.fabric import execute_campaign_task
    for tid in ("IS.quick.baseline", "IS.quick.dx100"):
        claim_task(path, tid, "w0")
        record = execute_campaign_task(campaign.tasks[tid], gen,
                                       cache=False)
        record.update({"worker": "w0", "retries": 0})
        complete_task(path, tid, "w0", record)
    preserved = {tid: rec for tid, rec in _done(path).items()}

    out = worker_loop(path, worker="w1", cache=False)
    assert out.executed == 2       # only the CG half
    done = _done(path)
    assert len(done) == 4
    for tid, rec in preserved.items():
        assert done[tid] == rec    # untouched, still credited to w0
    assert all(done[f"CG.quick.{m}"]["worker"] == "w1"
               for m in ("baseline", "dx100"))


# ------------------------------------------- bitwise identity + reuse perf

def test_campaign_results_are_bitwise_identical_to_direct_runs(tmp_path):
    path, tasks = _campaign(tmp_path, spec="benchmarks=IS scale=quick")
    run_campaign(path, workers=1, cache=False)
    done = _done(path)
    for task in tasks:
        direct, _ = execute_task(task.sweep)
        assert done[task.tid]["result"] == result_to_dict(direct), task.tid


def test_generate_cache_reuses_snapshots_within_a_dataset():
    tasks = main_sweep_tasks(quick=True, benchmarks=["IS", "CG"],
                             modes=("baseline", "dx100"))
    gen = GenerateCache()
    for task in tasks:
        gen.prepared(task)
    assert gen.generates == 2 and gen.reuses == 2


def test_prepared_workloads_are_independent_instances():
    """Each run must get its own workload: schedule building mutates
    state, and a shared instance would leak it across modes."""
    task = main_sweep_tasks(quick=True, benchmarks=["IS"],
                            modes=("dx100",))[0]
    gen = GenerateCache()
    first, second = gen.prepared(task), gen.prepared(task)
    assert first is not second
    assert gen.generates == 1 and gen.reuses == 1


def test_trace_memo_reuses_builds_and_sweeps_run_scribbles():
    """The second run of a dataset (DMP after baseline) must reuse the
    memoized trace build, with per-run op timing swept back to defaults."""
    task = main_sweep_tasks(quick=True, benchmarks=["IS"],
                            modes=("baseline",))[0]
    gen = GenerateCache()
    first = gen.prepared(task)
    mem = HostMemory(first.mem_bytes)
    first.generate(mem)
    built = first.baseline_traces(4)
    assert gen.trace_builds == 1 and gen.trace_reuses == 0
    built[0].ops[0].issue = 123          # what a core run would leave behind
    built[0].ops[0].complete = 456
    second = gen.prepared(task)
    second.generate(HostMemory(second.mem_bytes))
    again = second.baseline_traces(4)
    assert again[0] is built[0]          # same build, not a re-emit
    assert gen.trace_builds == 1 and gen.trace_reuses == 1
    op = again[0].ops[0]
    assert op.issue == -1 and op.complete == -1 and op.level is None


def test_no_baseline_traces_implementation_mutates_its_workload():
    """Trace memoization (GenerateCache) assumes baseline_traces is a pure
    reader of workload state; hold every implementation to that."""
    import ast
    root = Path(__file__).resolve().parents[2] / "src/repro/workloads"
    offenders = []
    for source in root.glob("*.py"):
        for node in ast.walk(ast.parse(source.read_text())):
            if not (isinstance(node, ast.FunctionDef)
                    and node.name == "baseline_traces"):
                continue
            for sub in ast.walk(node):
                targets = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                for t in targets:
                    if (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        offenders.append(f"{source.name}: self.{t.attr}")
    assert not offenders, offenders


def test_run_grouped_matches_the_ungrouped_executor():
    """run_sweep(affinity=True) must be a pure perf change: same results,
    same order, for the same tasks."""
    tasks = main_sweep_tasks(quick=True, benchmarks=["IS", "CG"],
                             modes=("baseline", "dx100"))
    plain = run_sweep(tasks, jobs=1, cache=False)
    grouped = run_sweep(tasks, jobs=1, cache=False, affinity=True)
    assert [asdict(r.result) for r in grouped.runs] == \
        [asdict(r.result) for r in plain.runs]


def test_run_grouped_indices_survive_bucketing():
    tasks = main_sweep_tasks(quick=True, benchmarks=["IS", "CG"],
                             modes=("baseline",))
    out = run_grouped(list(enumerate(tasks)), jobs=1)
    assert sorted(i for i, _, _ in out) == [0, 1]


# ------------------------------------------------------------------ reports

def test_summary_md_reports_statuses_and_reuse(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_INJECT_FAIL", "IS.quick.dx100:99")
    path, _ = _campaign(tmp_path,
                        retry=RetryPolicy(max_retries=0,
                                          backoff_base_s=0.05))
    summary = run_campaign(path, workers=1, cache=False)
    text = (path / "summary.md").read_text()
    assert "| IS.quick.baseline | sweep | done |" in text
    assert "| IS.quick.dx100 | sweep | failed |" in text
    assert "## Failures" in text and "injected failure" in text
    assert summary["failed"] == 1 and summary["done"] == 1


def test_merge_bench_record_preserves_sweep_fields(tmp_path):
    bench = tmp_path / "BENCH_mainsweep.json"
    bench.write_text(json.dumps({"bench": "mainsweep", "wall_s": 9.9}))
    merge_bench_record({"id": "x", "total": 3, "done": 3, "failed": 0,
                        "cache_hits": 1, "sim_wall_s": 1.0,
                        "generate": {"generates": 1, "reuses": 2}},
                       bench)
    record = json.loads(bench.read_text())
    assert record["wall_s"] == 9.9              # sweep's field untouched
    assert record["campaign"]["generate"]["reuses"] == 2


def test_serve_tasks_execute_through_the_fabric(tmp_path):
    tasks = build_tasks("tenants=2")
    path = create_campaign(tasks, "s", root=tmp_path / "camps", cache=False)
    worker_loop(path, worker="w0", cache=False)
    record = _done(path)["serve.t2.ddr4"]
    assert record["kind"] == "serve"
    assert record["result"]["tenants"]          # golden_snapshot shape

"""The profiling harness: report schema, stage timers, CLI round-trip."""

import json

from repro.__main__ import main
from repro.sim.profile import (
    NULL_TIMERS, PROFILE_SCHEMA, StageTimers, profile_run,
)

REQUIRED_KEYS = {
    "schema", "benchmark", "mode", "quick", "wall_s", "stages_s",
    "components_s", "hotspots", "result",
}


def _check_report(report):
    assert REQUIRED_KEYS <= set(report)
    assert report["schema"] == PROFILE_SCHEMA
    assert report["wall_s"] > 0
    # Stage timers are a decomposition of (part of) the run: their sum can
    # never exceed the profiled wall-clock.
    assert sum(report["stages_s"].values()) <= report["wall_s"] + 1e-6
    assert "simulate" in report["stages_s"]
    # Component attribution must cover the simulator's own packages.
    assert "dram" in report["components_s"]
    assert all(v >= 0 for v in report["components_s"].values())
    for h in report["hotspots"]:
        assert {"function", "file", "line", "ncalls",
                "tottime_s", "cumtime_s"} <= set(h)
    assert report["result"]["cycles"] > 0


def test_profile_run_quick_baseline():
    report = profile_run("IS", mode="baseline", quick=True, top=5)
    _check_report(report)
    assert len(report["hotspots"]) <= 5
    assert report["benchmark"] == "IS"
    assert report["mode"] == "baseline"
    assert report["quick"] is True


def test_profile_run_dx100_has_offload_stages():
    report = profile_run("PR", mode="dx100", quick=True, top=3)
    _check_report(report)
    assert "preload" in report["stages_s"]
    assert "validate" in report["stages_s"]


def test_profile_cli_emits_valid_json(tmp_path, capsys):
    out = tmp_path / "profile.json"
    rc = main(["profile", "IS", "--quick", "--top", "4",
               "--json", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    _check_report(report)
    stdout = capsys.readouterr().out
    assert "hotspots by tottime" in stdout


def test_profile_cli_rejects_unknown_benchmark(capsys):
    assert main(["profile", "NOPE", "--quick"]) == 2
    assert "NOPE" in capsys.readouterr().err


def test_stage_timers_accumulate_and_null_is_free():
    timers = StageTimers()
    with timers.stage("a"):
        pass
    with timers.stage("a"):
        pass
    with timers.stage("b"):
        pass
    d = timers.as_dict()
    assert set(d) == {"a", "b"}
    assert all(v >= 0 for v in d.values())
    # The null timer records nothing and returns a shared no-op context.
    with NULL_TIMERS.stage("anything"):
        pass
    assert NULL_TIMERS.as_dict() == {}

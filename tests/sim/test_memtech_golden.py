"""Memory-technology golden harness (tier-1).

Re-runs the local/ddr5/cxl/mixed scenario grid (quick IS, baseline +
DX100) and diffs every pinned field exactly against
``tests/golden/memory_technology.json`` — the far-memory analogue of the
quick-suite goldens.  Regenerate after an intentional model change with
``python -m repro.sim.memtech --update-golden``.
"""

import json

from repro.sim.memtech import (
    MEMTECH_FIELDS, MEMTECH_GOLDEN_PATH, MEMTECH_SCENARIOS,
    diff_memtech_golden, load_memtech_golden, run_memtech,
)


def test_memtech_golden_file_is_committed_and_well_formed():
    assert MEMTECH_GOLDEN_PATH.exists(), (
        f"missing {MEMTECH_GOLDEN_PATH}; run "
        f"`python -m repro.sim.memtech --update-golden`")
    payload = json.loads(MEMTECH_GOLDEN_PATH.read_text())
    assert payload["fields"] == list(MEMTECH_FIELDS)
    metrics = payload["metrics"]
    assert set(metrics) == set(MEMTECH_SCENARIOS)
    for scenario, runs in metrics.items():
        assert set(runs) == {"baseline", "dx100"}, scenario
        for mode, fields in runs.items():
            assert set(fields) == set(MEMTECH_FIELDS), (scenario, mode)
    # The far-tier rows really went through the link; the local rows
    # really did not.
    for scenario in ("cxl", "mixed"):
        for mode in ("baseline", "dx100"):
            assert metrics[scenario][mode]["far_serviced"] > 0, scenario
    for scenario in ("local", "ddr5"):
        for mode in ("baseline", "dx100"):
            assert metrics[scenario][mode]["far_serviced"] == 0, scenario


def test_memtech_grid_matches_golden_exactly():
    golden = load_memtech_golden()
    problems = diff_memtech_golden(run_memtech(), golden)
    assert not problems, (
        "memory-technology metrics drifted from "
        "tests/golden/memory_technology.json (intentional? "
        "`python -m repro.sim.memtech --update-golden`):\n  "
        + "\n  ".join(problems))


def test_golden_pins_the_far_memory_thesis():
    """The committed numbers themselves encode the headline claim: the
    link hurts the baseline far more than DX100, so the speedup grows
    from local DDR4 to all-far CXL."""
    golden = load_memtech_golden()

    def speedup(scenario):
        return (golden[scenario]["baseline"]["cycles"]
                / golden[scenario]["dx100"]["cycles"])

    assert speedup("cxl") > speedup("local") * 1.5
    assert golden["cxl"]["baseline"]["cycles"] > \
        2 * golden["local"]["baseline"]["cycles"]
    dx_degradation = (golden["cxl"]["dx100"]["cycles"]
                      / golden["local"]["dx100"]["cycles"])
    base_degradation = (golden["cxl"]["baseline"]["cycles"]
                        / golden["local"]["baseline"]["cycles"])
    assert dx_degradation < base_degradation / 2

"""Multi-instance DX100 runs (Section 6.6 core multiplexing)."""

import pytest

from repro.sim.scale import _split_groups, run_dx100_multi
from repro.workloads import IntegerSort
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.isa import Instr
from repro.dx100 import Scratchpad
from repro.common import DX100Config


def test_split_groups_at_wait_boundaries():
    from repro.dx100 import isa
    from repro.common import DType
    i1 = isa.sld(DType.U32, 0, td=0, rs1=0, rs2=1, rs3=2)
    schedule = [RegWrite(0, 0), i1, WaitTiles((0,)), RegWrite(1, 1), i1,
                WaitTiles((0,))]
    groups = _split_groups(schedule)
    assert len(groups) == 2
    assert all(isinstance(g[-1], WaitTiles) for g in groups)


def test_two_instances_validate_and_record_transfers():
    result = run_dx100_multi(
        IntegerSort(scale=1 << 13, bucket_space=1 << 19),
        cores=8, instances=2, tile_elems=1 << 11)
    assert result.config == "dx100x2"
    assert result.extra["instances"] == 2
    # Both instances wrote the shared count array: SWMR transfers happened.
    assert result.extra["ownership_transfers"] >= 1
    assert result.cycles > 0


def test_single_instance_multi_runner_matches_plain():
    result = run_dx100_multi(
        IntegerSort(scale=1 << 12, bucket_space=1 << 18),
        cores=8, instances=1, tile_elems=1 << 11)
    assert result.extra["ownership_transfers"] == 0


def test_instance_scratchpads_do_not_overlap():
    cfg = DX100Config(tile_elems=1 << 11)
    base0 = Scratchpad.instance_base(0, cfg)
    base1 = Scratchpad.instance_base(1, cfg)
    span = cfg.num_tiles * cfg.tile_elems * 4
    assert base1 >= base0 + span

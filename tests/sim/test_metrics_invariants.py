"""Cross-configuration metric invariants over the quick benchmark set.

These are the harness-level sanity properties every run must satisfy,
independent of which configuration wins.
"""

import pytest

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.workloads import QUICK_BENCHMARKS

SUBSET = ["IS", "PR", "GZZ", "XRAGE"]


@pytest.fixture(scope="module")
def runs():
    out = {}
    for name in SUBSET:
        out[name] = {
            "baseline": run_baseline(QUICK_BENCHMARKS[name](),
                                     SystemConfig.baseline_scaled(),
                                     warm=False),
            "dx100": run_dx100(QUICK_BENCHMARKS[name](),
                               SystemConfig.dx100_scaled(tile_elems=2048),
                               warm=False),
        }
    return out


def test_bandwidth_utilization_bounded(runs):
    for name, pair in runs.items():
        for r in pair.values():
            assert 0.0 <= r.bandwidth_utilization <= 1.0, (name, r.config)


def test_rbh_bounded(runs):
    for pair in runs.values():
        for r in pair.values():
            assert 0.0 <= r.row_buffer_hit_rate <= 1.0


def test_occupancy_within_buffer_capacity(runs):
    for pair in runs.values():
        for r in pair.values():
            assert 0.0 <= r.request_buffer_occupancy <= 32.0


def test_dram_bytes_consistent_with_requests(runs):
    for pair in runs.values():
        for r in pair.values():
            assert r.dram_bytes == r.dram_requests * 64


def test_dx100_reduces_core_instructions(runs):
    for name, pair in runs.items():
        assert pair["dx100"].instructions < pair["baseline"].instructions, \
            name


def test_dx100_raises_occupancy_and_rbh(runs):
    for name, pair in runs.items():
        base, dx = pair["baseline"], pair["dx100"]
        assert dx.request_buffer_occupancy > base.request_buffer_occupancy
        assert dx.row_buffer_hit_rate >= base.row_buffer_hit_rate


def test_cycles_positive_and_finite(runs):
    for pair in runs.values():
        for r in pair.values():
            assert 0 < r.cycles < 1 << 40

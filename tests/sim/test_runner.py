"""Simulation harness: runners, metrics, and cross-configuration invariants."""

import pytest

from repro.common import SystemConfig
from repro.sim import SimSystem, compare, run_baseline, run_dmp, run_dx100
from repro.workloads import QUICK_BENCHMARKS, GatherFull, IntegerSort


def test_simsystem_wiring():
    system = SimSystem(SystemConfig.baseline())
    assert system.dx100 is None and system.dmp is None
    system = SimSystem(SystemConfig.dx100_system())
    assert system.dx100 is not None
    system = SimSystem(SystemConfig.dmp_system())
    assert system.dmp is not None and system.hierarchy.observers


def test_run_baseline_produces_metrics():
    result = run_baseline(GatherFull(1024))
    assert result.config == "baseline"
    assert result.cycles > 0
    assert result.instructions > 1024
    assert 0 <= result.bandwidth_utilization <= 1.0
    assert 0 <= result.row_buffer_hit_rate <= 1.0


def test_run_dx100_validates_and_counts_issue_instructions():
    result = run_dx100(GatherFull(1024))
    assert result.config == "dx100"
    assert result.extra["dx100_instructions"] > 0
    assert result.extra["coalescing"] >= 1.0


def test_run_dx100_requires_dx_config():
    with pytest.raises(ValueError):
        run_dx100(GatherFull(1024), SystemConfig.baseline())


def test_dmp_run_issues_prefetches():
    wl = QUICK_BENCHMARKS["IS"]()
    result = run_dmp(wl, warm=False)
    assert result.config == "dmp"
    assert result.extra["dmp_prefetches"] > 0


def test_compare_runs_all_three_configs():
    results = compare(lambda: GatherFull(1024), tile_elems=1024)
    assert set(results) == {"baseline", "dmp", "dx100"}
    speedup = results["dx100"].speedup_over(results["baseline"])
    assert speedup > 1.0


def test_speedup_over():
    a = run_baseline(GatherFull(512))
    b = run_baseline(GatherFull(512))
    assert a.speedup_over(b) == pytest.approx(b.cycles / a.cycles)


def test_scaled_configs_are_consistent():
    base = SystemConfig.baseline_scaled()
    dx = SystemConfig.dx100_scaled()
    dmp = SystemConfig.dmp_scaled()
    assert base.llc.size_bytes > dx.llc.size_bytes  # SPD area handicap
    assert dmp.dmp and dmp.llc.size_bytes == base.llc.size_bytes
    big = SystemConfig.baseline_scaled(cores=8)
    assert big.dram.channels == 4


def test_software_pipeline_preserves_items_and_validates():
    from repro.sim import software_pipeline
    from repro.workloads import GZZ

    wl = GZZ(scale=1 << 13)
    from repro.dx100 import HostMemory
    mem = HostMemory(1 << 25)
    wl.generate(mem)
    from repro.common import DX100Config
    schedule = wl.dx100_schedule(DX100Config(tile_elems=2048), 4)
    piped = software_pipeline(schedule)
    assert sorted(map(id, piped)) == sorted(map(id, schedule))

    # A pipelined run still validates and is never slower than serial
    # beyond noise.
    plain = run_dx100(GZZ(scale=1 << 13),
                      SystemConfig.dx100_scaled(tile_elems=2048), warm=False)
    fast = run_dx100(GZZ(scale=1 << 13),
                     SystemConfig.dx100_scaled(tile_elems=2048),
                     warm=False, pipelined=True)
    assert fast.cycles <= plain.cycles * 1.02

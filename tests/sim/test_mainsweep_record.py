"""benchmarks/mainsweep.py glue: record() emits .txt + .json and creates
the results directory with parents (works from a clean checkout)."""

import importlib.util
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _load_mainsweep():
    spec = importlib.util.spec_from_file_location(
        "mainsweep", REPO / "benchmarks" / "mainsweep.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules["mainsweep"] = module
    spec.loader.exec_module(module)
    return module


def test_record_writes_txt_and_json_with_parents(tmp_path, monkeypatch,
                                                 capsys):
    mainsweep = _load_mainsweep()
    nested = tmp_path / "deep" / "results"       # does not exist yet
    monkeypatch.setattr(mainsweep, "RESULTS_DIR", nested)

    mainsweep.record("fig_test", ["a | 1.0x", "b | 2.0x"],
                     data={"speedups": {"a": 1.0, "b": 2.0}})

    assert (nested / "fig_test.txt").read_text() == "a | 1.0x\nb | 2.0x\n"
    payload = json.loads((nested / "fig_test.json").read_text())
    assert payload["figure"] == "fig_test"
    assert payload["lines"] == ["a | 1.0x", "b | 2.0x"]
    assert payload["data"] == {"speedups": {"a": 1.0, "b": 2.0}}
    assert "fig_test" in capsys.readouterr().out


def test_record_without_data_omits_the_key(tmp_path, monkeypatch):
    mainsweep = _load_mainsweep()
    monkeypatch.setattr(mainsweep, "RESULTS_DIR", tmp_path / "r")
    mainsweep.record("fig_plain", ["only text"])
    payload = json.loads((tmp_path / "r" / "fig_plain.json").read_text())
    assert "data" not in payload


def test_benchmark_set_honours_quick_env(monkeypatch):
    mainsweep = _load_mainsweep()
    monkeypatch.delenv("REPRO_QUICK", raising=False)
    from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS
    assert mainsweep.benchmark_set() is MAIN_BENCHMARKS
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert mainsweep.benchmark_set() is QUICK_BENCHMARKS

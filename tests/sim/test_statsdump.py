"""Component-statistics dump."""

import pytest

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.sim.statsdump import dump_stats, format_stats, write_stats
from repro.sim.system import SimSystem
from repro.workloads import GatherFull


def _run(dx=False):
    cfg = (SystemConfig.dx100_system(tile_elems=1024) if dx
           else SystemConfig.baseline())
    system = SimSystem(cfg)
    wl = GatherFull(1024)
    wl.generate(system.hostmem)
    if dx:
        system.dx100.run_program(wl.dx100_schedule(cfg.dx100, 4))
    else:
        system.multicore.run(wl.baseline_traces(4))
    system.dram.drain()
    return system


def test_dump_contains_all_components():
    system = _run()
    stats = dump_stats(system)
    assert any(k.startswith("dram.ch0.") for k in stats)
    assert any(k.startswith("cache.") for k in stats)
    assert any(k.startswith("core0.") for k in stats)
    assert "dram.row_buffer_hit_rate" in stats
    assert stats["dram.total_bytes"] > 0


def test_min_max_keys_are_suffixed():
    """Min/max trackers must land under ``.min`` / ``.max`` so a tracker
    sharing a counter's name can never silently overwrite it."""
    system = _run()
    stats = dump_stats(system)
    assert "dram.ch0.first_arrival.min" in stats
    assert "dram.ch0.last_finish.max" in stats
    assert "dram.ch0.first_arrival" not in stats
    assert "dram.ch0.last_finish" not in stats
    # Weighted averages keep their .mean suffix through the public API.
    assert "dram.ch0.occupancy.mean" in stats


def test_dump_includes_dx100_when_present():
    system = _run(dx=True)
    stats = dump_stats(system)
    assert any(k.startswith("dx100.") for k in stats)
    assert stats["dx100.instructions"] > 0


def test_format_and_write(tmp_path):
    system = _run()
    text = format_stats(dump_stats(system))
    assert "dram.ch0.serviced" in text
    path = tmp_path / "stats.txt"
    stats = write_stats(system, path)
    assert path.read_text().count("\n") == len(stats)

"""Co-run interference study."""

import pytest

from repro.common import SystemConfig
from repro.sim.corun import NamespacedMemory, run_corun
from repro.dx100 import HostMemory
from repro.workloads import IntegerSort, SpatterXRAGE


def test_namespaced_memory_isolates_names():
    mem = HostMemory(1 << 20)
    a = NamespacedMemory(mem, "a:")
    b = NamespacedMemory(mem, "b:")
    base_a = a.alloc("X", 16, "int64")
    base_b = b.alloc("X", 16, "int64")
    assert base_a != base_b
    a.view("X")[:] = 1
    b.view("X")[:] = 2
    assert mem.view("a:X")[0] == 1 and mem.view("b:X")[0] == 2
    assert a.base == mem.base  # pass-through attributes


def test_corun_reports_interference():
    factories = [
        lambda: IntegerSort(scale=1 << 13, bucket_space=1 << 19),
        lambda: SpatterXRAGE(scale=1 << 13, region=1 << 18),
    ]
    result = run_corun(factories, SystemConfig.baseline_scaled(),
                       tenants=True)
    assert result.names == ["IS", "XRAGE"]
    assert result.corun_finish >= max(result.corun_cycles) - 1
    # Sharing the memory system cannot make either workload faster; with
    # two indirect streams it typically slows both down.
    for i in range(2):
        assert result.slowdown(i) > 0.95
    # The tenant tags attribute each workload's own DRAM traffic.
    assert result.tenant_dram is not None
    for counters in result.tenant_dram:
        assert counters["serviced"] > 0
        assert counters["bytes"] >= counters["serviced"] * 64


def test_tenant_tagged_corun_matches_legacy_runner():
    """Tags feed accounting only: the tenant-tagged co-run must report
    exactly the cycles (hence slowdowns) of the legacy untagged runner."""
    factories = [
        lambda: IntegerSort(scale=1 << 13, bucket_space=1 << 19),
        lambda: SpatterXRAGE(scale=1 << 13, region=1 << 18),
    ]
    config = SystemConfig.baseline_scaled()
    legacy = run_corun(factories, config)
    tagged = run_corun(factories, config, tenants=True)
    assert legacy.tenant_dram is None
    assert tagged.solo_cycles == legacy.solo_cycles
    assert tagged.corun_cycles == legacy.corun_cycles
    assert tagged.corun_finish == legacy.corun_finish


def test_corun_validations():
    with pytest.raises(ValueError):
        run_corun([lambda: IntegerSort(scale=64)])
    with pytest.raises(ValueError):
        run_corun([lambda: IntegerSort(scale=64)] * 3,
                  SystemConfig.baseline_scaled())  # 4 cores / 3 workloads

"""Cache-key field coverage: no config field may silently alias.

The :class:`~repro.sim.sweep.RunCache` is content-addressed by
``SweepTask.key()``, which folds ``asdict(config)`` into the hash.  That
makes coverage *structural* — but only if every field actually survives
the round trip into the payload.  These tests walk the live dataclass
tree (so a field added to any config class is covered the day it lands):

* mutating **any** leaf field of ``SystemConfig`` — through every nested
  dataclass (``CoreConfig``, ``CacheConfig`` x3, ``DRAMConfig``,
  ``DDR4Timing``, ``RemoteLinkConfig``, ``DX100Config``) — must change
  the cache key;
* a stored result must be a cache **miss** under the mutated config (the
  regression the key test abstracts);
* the campaign-manifest JSON round trip must rebuild every mutated
  config bitwise, with the nested frozen dataclasses re-typed (a raw
  dict landing in a typed field is exactly the aliasing trap that
  motivated this file).
"""

import dataclasses
import json

import pytest

from repro.common.config import (
    DDR4Timing, DRAMConfig, RemoteLinkConfig, SystemConfig,
)
from repro.sim.specs import system_config_from_dict, system_config_to_dict
from repro.sim.sweep import RunCache, SweepTask, execute_task


def _mutate(value):
    """A same-typed, different value for one leaf field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        # Doubling (not +1) keeps the size/ways/line divisibility the
        # cache configs validate at construction.
        return value * 2 if value else 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "_mutated"
    raise TypeError(f"unhandled leaf type {type(value)!r}")


def _leaf_paths(obj, prefix=()):
    """Every (path, value) of a nested-dataclass tree, leaves only."""
    out = []
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        path = prefix + (f.name,)
        if dataclasses.is_dataclass(value):
            out.extend(_leaf_paths(value, path))
        else:
            out.append((path, value))
    return out


def _with_mutation(obj, path):
    """Rebuild a frozen config tree with the leaf at ``path`` mutated."""
    name, rest = path[0], path[1:]
    value = getattr(obj, name)
    new = _with_mutation(value, rest) if rest else _mutate(value)
    return dataclasses.replace(obj, **{name: new})


def _base_config() -> SystemConfig:
    # The dx100 preset: every nested dataclass present (baseline's
    # ``dx100=None`` would hide the DX100Config subtree from the walk).
    return SystemConfig.dx100_system()


def _task(config: SystemConfig) -> SweepTask:
    return SweepTask(benchmark="IS", mode="dx100", quick=True,
                     config=config)


ALL_PATHS = [p for p, _ in _leaf_paths(_base_config())]


def test_walk_reaches_every_required_subtree():
    """The structural guarantee is only as good as the walk: assert the
    classes the issue names (and the new RemoteLinkConfig) all contribute
    leaves, so a refactor that detaches one fails loudly."""
    tops = {p[0] for p in ALL_PATHS}
    assert {"core", "l1", "l2", "llc", "dram", "dx100"} <= tops
    dram_leaves = {p for p in ALL_PATHS if p[0] == "dram"}
    assert any(p[1] == "timing" for p in dram_leaves)
    assert any(p[1] == "remote" for p in dram_leaves)
    # Field-count floors: every current field of the named classes shows
    # up as a leaf (nested classes via their own leaves).
    assert sum(1 for p in ALL_PATHS if p[:2] == ("dram", "timing")) == \
        len(dataclasses.fields(DDR4Timing))
    assert sum(1 for p in ALL_PATHS if p[:2] == ("dram", "remote")) == \
        len(dataclasses.fields(RemoteLinkConfig))
    flat_dram = [p for p in ALL_PATHS if p[0] == "dram" and len(p) == 2]
    nested = sum(1 for f in dataclasses.fields(DRAMConfig)
                 if dataclasses.is_dataclass(f.default_factory()
                                             if f.default_factory
                                             is not dataclasses.MISSING
                                             else f.default))
    assert len(flat_dram) == len(dataclasses.fields(DRAMConfig)) - nested


@pytest.mark.parametrize("path", ALL_PATHS,
                         ids=[".".join(p) for p in ALL_PATHS])
def test_every_config_field_changes_the_cache_key(path):
    base = _task(_base_config()).key()
    mutated = _task(_with_mutation(_base_config(), path)).key()
    assert mutated != base, f"field {'.'.join(path)} does not reach the key"


def test_mutated_config_misses_the_run_cache(tmp_path):
    """End to end: a stored result is found under its own key and NOT
    found after a single-field edit — including a field of the newest
    nested config (the link latency)."""
    cache = RunCache(tmp_path)
    task = _task(_base_config())
    result, _ = execute_task(task)
    cache.store(task.key(), task, result)
    assert cache.load(task.key()) is not None
    for path in [("dram", "remote", "latency"),
                 ("dram", "timing", "tRFC"),
                 ("dram", "channels"),
                 ("cores",)]:
        edited = _task(_with_mutation(_base_config(), path))
        assert cache.load(edited.key()) is None, \
            f"edit to {'.'.join(path)} hit the cache"


@pytest.mark.parametrize("path",
                         [p for p in ALL_PATHS if p[0] == "dram"],
                         ids=[".".join(p) for p in ALL_PATHS
                              if p[0] == "dram"])
def test_manifest_round_trip_is_bitwise_per_field(path):
    """Each mutated DRAM-subtree config survives the campaign-manifest
    JSON round trip bitwise, with nested types rebuilt (not raw dicts)."""
    config = _with_mutation(_base_config(), path)
    back = system_config_from_dict(
        json.loads(json.dumps(system_config_to_dict(config))))
    assert back == config
    assert isinstance(back.dram.timing, DDR4Timing)
    assert isinstance(back.dram.remote, RemoteLinkConfig)
    assert hash(back) == hash(config)   # frozen trees stay hashable

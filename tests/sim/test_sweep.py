"""The sweep executor: determinism, the content-addressed run cache, and
cache-key sensitivity (ISSUE 2's bitwise-identical guarantee)."""

from dataclasses import asdict, replace

import pytest

from repro.common import SystemConfig
from repro.sim import run_baseline, run_dx100
from repro.sim.sweep import (
    RunCache, SweepTask, diff_golden, execute_task, golden_snapshot,
    main_sweep_tasks, model_version, run_sweep, workload_fingerprint,
)
from repro.workloads import QUICK_BENCHMARKS


def _tasks(benchmarks=("IS",), modes=("baseline", "dx100")):
    return main_sweep_tasks(quick=True, benchmarks=list(benchmarks),
                            modes=modes)


# ------------------------------------------------------------- determinism

def test_parallel_sweep_matches_serial_and_direct_runs():
    """The same quick workload run serially, via the executor with jobs=1,
    and via the executor with jobs=4 yields identical metrics dicts."""
    direct = {
        "baseline": run_baseline(QUICK_BENCHMARKS["IS"](),
                                 SystemConfig.baseline_scaled(), warm=False),
        "dx100": run_dx100(QUICK_BENCHMARKS["IS"](),
                           SystemConfig.dx100_scaled(), warm=False),
    }
    serial = run_sweep(_tasks(), jobs=1, cache=False)
    parallel = run_sweep(_tasks(), jobs=4, cache=False)

    for outcome in (serial, parallel):
        runs = outcome.nested()["IS"]
        for mode, want in direct.items():
            assert asdict(runs[mode]) == asdict(want), mode


def test_task_order_is_preserved():
    tasks = _tasks(benchmarks=("IS", "CG"))
    outcome = run_sweep(tasks, jobs=4, cache=False)
    assert [(r.task.benchmark, r.task.mode) for r in outcome.runs] == \
        [(t.benchmark, t.mode) for t in tasks]


# ------------------------------------------------------------------- cache

def test_cache_hit_returns_the_exact_cached_runresult(tmp_path):
    tasks = _tasks()
    cold = run_sweep(tasks, jobs=1, cache=True, cache_dir=tmp_path)
    assert cold.cache_hits == 0 and cold.cache_misses == len(tasks)

    warm = run_sweep(tasks, jobs=1, cache=True, cache_dir=tmp_path)
    assert warm.cache_hits == len(tasks) and warm.cache_misses == 0
    for a, b in zip(cold.runs, warm.runs):
        assert not a.cached and b.cached
        assert asdict(a.result) == asdict(b.result)

    # The store itself round-trips bitwise: load(key) == the stored result.
    store = RunCache(tmp_path)
    for run in cold.runs:
        assert asdict(store.load(run.key)) == asdict(run.result)


def test_corrupt_cache_entry_falls_back_to_a_rerun(tmp_path):
    task = _tasks(modes=("baseline",))[0]
    store = RunCache(tmp_path)
    (store.directory).mkdir(parents=True, exist_ok=True)
    (store.directory / f"{task.key()}.json").write_text("not json{")
    outcome = run_sweep([task], jobs=1, cache=True, cache_dir=tmp_path)
    assert outcome.cache_misses == 1
    assert outcome.runs[0].result.cycles > 0


def test_prune_removes_entries_from_older_models(tmp_path):
    task = _tasks(modes=("baseline",))[0]
    run_sweep([task], jobs=1, cache=True, cache_dir=tmp_path)
    store = RunCache(tmp_path)
    stale = store.directory / ("0" * 64 + ".json")
    stale.write_text('{"model": "not-this-model", "result": {}}')
    assert store.prune() == 1
    assert not stale.exists()
    assert store.load(task.key()) is not None   # current entry survives


# -------------------------------------------------------------------- keys

def test_key_is_stable_and_content_sensitive():
    a, b = _tasks(modes=("baseline",))[0], _tasks(modes=("baseline",))[0]
    assert a.key() == b.key()

    other_mode = replace(a, mode="dx100",
                         config=SystemConfig.dx100_scaled())
    assert other_mode.key() != a.key()

    other_config = replace(a, config=replace(
        a.config, llc=replace(a.config.llc, size_bytes=2560 * 1024)))
    assert other_config.key() != a.key()

    other_size = replace(a, quick=False)   # MAIN vs QUICK constructor params
    assert other_size.key() != a.key()


def test_key_separates_frontends_and_scales():
    """``frontend`` and ``scale`` are explicit top-level key fields: a
    scalar-frontend replay must never alias a batched run's cache entry
    (they are bitwise-equal by contract, but an alias would make the
    differential check vacuous), and quick/main runs of the same workload
    class must never share entries."""
    a = _tasks(modes=("baseline",))[0]
    assert a.config.frontend == "batched"

    scalar = replace(a, config=replace(a.config, frontend="scalar"))
    assert scalar.key() != a.key()
    # Same frontend forced twice hashes identically (no hidden state).
    scalar2 = replace(a, config=replace(a.config, frontend="scalar"))
    assert scalar2.key() == scalar.key()

    import json
    from unittest import mock

    captured = []
    real_dumps = json.dumps

    def spy(payload, **kw):
        captured.append(payload)
        return real_dumps(payload, **kw)

    with mock.patch.object(json, "dumps", side_effect=spy):
        a.key()
    (payload,) = [p for p in captured if isinstance(p, dict)
                  and "frontend" in p]
    assert payload["frontend"] == "batched"
    assert payload["scale"] == "quick"


def test_workload_fingerprint_captures_constructor_params():
    fp_a = workload_fingerprint(QUICK_BENCHMARKS["IS"]())
    fp_b = workload_fingerprint(QUICK_BENCHMARKS["IS"]())
    assert fp_a == fp_b
    assert fp_a["params"]["scale"] == 1 << 12
    assert "rng" not in fp_a["params"] and "mem" not in fp_a["params"]


def test_model_version_is_a_stable_stamp():
    assert model_version() == model_version()
    assert len(model_version()) == 16


def test_unknown_benchmark_and_mode_are_rejected():
    with pytest.raises(KeyError):
        main_sweep_tasks(quick=True, benchmarks=["NOPE"])
    with pytest.raises(ValueError):
        SweepTask(benchmark="IS", mode="turbo", quick=True,
                  config=SystemConfig.baseline_scaled())


# ------------------------------------------------------------ golden diffs

def test_diff_golden_flags_any_field_change():
    outcome = run_sweep(_tasks(modes=("baseline",)), jobs=1, cache=False)
    snap = golden_snapshot(outcome)
    assert diff_golden(snap, snap) == []

    drifted = {n: {m: dict(f) for m, f in runs.items()}
               for n, runs in snap.items()}
    drifted["IS"]["baseline"]["cycles"] += 1
    problems = diff_golden(snap, drifted)
    assert problems and "IS/baseline.cycles" in problems[0]

    missing = {**snap, "GHOST": {}}
    assert any("GHOST" in p for p in diff_golden(snap, missing))


# --------------------------------------------------------- cache hygiene

def test_store_tmp_name_is_per_process_and_cleaned_up(tmp_path):
    """Concurrent writers must not share a temp file: the staging name
    embeds the pid, and nothing *.tmp survives a successful store."""
    import os

    task = _tasks(modes=("baseline",))[0]
    outcome = run_sweep([task], jobs=1, cache=False)
    store = RunCache(tmp_path)

    seen = []
    original = RunCache._path

    def spy(self, key):
        seen.extend(p.name for p in self.directory.glob("*.tmp"))
        return original(self, key)

    RunCache._path = spy
    try:
        store.store(task.key(), task, outcome.runs[0].result)
    finally:
        RunCache._path = original
    assert any(f".{os.getpid()}.tmp" in name for name in seen)
    assert list(tmp_path.glob("*.tmp")) == []
    assert asdict(store.load(task.key())) == asdict(outcome.runs[0].result)


def test_prune_deletes_orphaned_tmp_files(tmp_path):
    """A writer killed mid-store leaves <key>.<pid>.tmp behind; prune
    sweeps those alongside stale-model entries."""
    task = _tasks(modes=("baseline",))[0]
    run_sweep([task], jobs=1, cache=True, cache_dir=tmp_path)
    store = RunCache(tmp_path)
    orphan = store.directory / f"{task.key()}.12345.tmp"
    orphan.write_text('{"half": "written')
    assert store.prune() == 1
    assert not orphan.exists()
    assert store.load(task.key()) is not None


def test_default_jobs_prefers_scheduling_affinity(monkeypatch):
    """Inside a container the affinity mask, not os.cpu_count(), bounds
    usable parallelism; REPRO_JOBS still overrides everything."""
    import os

    from repro.sim.sweep import default_jobs

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2},
                        raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert default_jobs() == 3

    monkeypatch.setattr(os, "sched_getaffinity",
                        lambda pid: (_ for _ in ()).throw(OSError()),
                        raising=False)
    assert default_jobs() == 64

    monkeypatch.setenv("REPRO_JOBS", "7")
    assert default_jobs() == 7


def test_prune_deletes_corrupt_entries_left_by_killed_workers(tmp_path):
    """A SIGKILLed worker can leave a cache file holding anything —
    truncated JSON, or JSON that parses but is not a record.  prune must
    sweep them all without crashing, and keep the valid entry."""
    task = _tasks(modes=("baseline",))[0]
    run_sweep([task], jobs=1, cache=True, cache_dir=tmp_path)
    store = RunCache(tmp_path)

    (tmp_path / "deadbeef1.json").write_text('{"model": "x", "trunc')
    (tmp_path / "deadbeef2.json").write_text("null")
    (tmp_path / "deadbeef3.json").write_text("[1, 2, 3]")
    assert store.prune() == 3
    assert sorted(p.name for p in tmp_path.glob("*.json")) == \
        [f"{task.key()}.json"]
    assert store.load(task.key()) is not None


def test_run_sweep_rejects_nonpositive_jobs():
    task = _tasks(modes=("baseline",))[0]
    with pytest.raises(ValueError, match="at least one job"):
        run_sweep([task], jobs=0, cache=False)
    with pytest.raises(ValueError, match="at least one job"):
        run_sweep([task], jobs=-2, cache=False)


def test_default_jobs_rejects_bad_repro_jobs(monkeypatch):
    from repro.sim.sweep import default_jobs

    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.setenv("REPRO_JOBS", "-3")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()


def test_sweep_cli_rejects_jobs_zero_with_a_clear_message(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--jobs", "0", "--quick", "IS"]) == 2
    err = capsys.readouterr().err
    assert "--jobs must be >= 1" in err


def test_sweep_cli_reports_bad_repro_jobs(monkeypatch, capsys, tmp_path):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_JOBS", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["sweep", "--quick", "IS", "--configs", "baseline"]) == 2
    assert "REPRO_JOBS must be a positive integer" in capsys.readouterr().err

"""Chaos: SIGKILL a campaign worker mid-task and prove the fabric's
crash-recovery story — the lease expires, exactly one reclaimer wins, and
the resumed campaign's metrics are bitwise identical to an uninterrupted
run with zero duplicated simulation."""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.sim.fabric import (
    ENV_TEST_SLEEP, build_tasks, campaign_status, create_campaign,
    reclaim_expired, worker_loop,
)

SPEC = "benchmarks=IS modes=baseline,dx100 scale=quick"
VICTIM_TID = "IS.quick.dx100"    # claimed second (tid order within group)


def _results(path):
    return {p.stem: json.loads(p.read_text())["result"]
            for p in (path / "done").glob("*.json")}


def _wait_for(predicate, timeout_s=60.0, period_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(period_s)
    return False


@pytest.mark.skipif("fork" not in multiprocessing.get_all_start_methods(),
                    reason="needs fork for a killable worker process")
def test_sigkilled_worker_lease_expires_and_campaign_resumes_bitwise(
        tmp_path, monkeypatch):
    ttl = 1.0
    path = create_campaign(build_tasks(SPEC), "chaos",
                           root=tmp_path / "camps", spec_text=SPEC,
                           cache=False, lease_ttl_s=ttl)

    # The victim stalls inside the second task's execution window (the
    # heartbeat keeps its lease live while it sleeps) until SIGKILLed.
    monkeypatch.setenv(ENV_TEST_SLEEP, f"{VICTIM_TID}:600")
    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=worker_loop, args=(str(path),),
                         kwargs={"worker": "victim", "cache": False})
    victim.start()
    lease = path / "active" / f"{VICTIM_TID}@victim"
    try:
        assert _wait_for(lease.exists), "victim never claimed the task"
        assert campaign_status(path).done == 1   # first task finished
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.join(timeout=10.0)
    monkeypatch.delenv(ENV_TEST_SLEEP)

    # The lease outlives the worker until the TTL lapses without a
    # heartbeat; racing reclaimers convert it into exactly one token.
    assert lease.exists()
    assert _wait_for(
        lambda: time.time() - lease.stat().st_mtime > ttl,
        timeout_s=ttl * 20)
    reclaimed: list[str] = []
    barrier = threading.Barrier(2)

    def reclaim():
        barrier.wait()
        reclaimed.extend(reclaim_expired(path, lease_ttl_s=ttl))

    threads = [threading.Thread(target=reclaim) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reclaimed == [VICTIM_TID]
    assert (path / "queue" / VICTIM_TID).exists()
    assert not lease.exists()

    # Resume: only the reclaimed task simulates; the dead worker's
    # finished record survives byte-for-byte.
    survivor = json.loads(
        (path / "done" / "IS.quick.baseline.json").read_text())
    assert survivor["worker"] == "victim"
    out = worker_loop(path, worker="medic", cache=False)
    assert out.executed == 1
    status = campaign_status(path)
    assert status.finished and status.done == 2 and status.failed == 0
    assert json.loads(
        (path / "done" / "IS.quick.baseline.json").read_text()) == survivor

    # And the interrupted-then-resumed campaign's metrics are bitwise
    # identical to a never-interrupted one.
    reference = create_campaign(build_tasks(SPEC), "reference",
                                root=tmp_path / "camps", cache=False)
    worker_loop(reference, worker="ref", cache=False)
    assert _results(path) == _results(reference)

"""The observability layer must never perturb the simulated numbers.

The golden harness (``tests/sim/test_golden_metrics.py``) already pins an
un-instrumented quick-suite run bitwise against
``tests/golden/quick_suite.json``; these tests close the other half of the
contract: a run with the full event bus *attached* (tracing + samplers)
produces GOLDEN_FIELDS identical to a plain run, so observability can be
switched on for debugging without invalidating any number it is used to
explain.
"""

from repro.common import SystemConfig
from repro.obs import EventBus
from repro.sim import run_baseline, run_dx100
from repro.sim.sweep import GOLDEN_FIELDS
from repro.workloads import GatherFull


def _golden_view(result):
    return {f: getattr(result, f) for f in GOLDEN_FIELDS}


def test_baseline_metrics_identical_with_bus_attached():
    plain = run_baseline(GatherFull(2048), warm=False)
    bus = EventBus(trace=True, sample_every=200)
    observed = run_baseline(GatherFull(2048), warm=False, obs=bus)
    assert _golden_view(observed) == _golden_view(plain)
    assert bus.event_count() > 0          # the bus really was live


def test_dx100_metrics_identical_with_bus_attached():
    config = SystemConfig.dx100_system(tile_elems=1024)
    plain = run_dx100(GatherFull(2048), config, warm=False)
    bus = EventBus(trace=True, sample_every=200)
    observed = run_dx100(GatherFull(2048), config, warm=False, obs=bus)
    assert _golden_view(observed) == _golden_view(plain)
    assert any(p[1] == "drain" for p in bus.tile_phases)


def test_summary_lands_in_extra_not_in_golden_fields():
    bus = EventBus(trace=True, sample_every=200)
    result = run_baseline(GatherFull(2048), warm=False, obs=bus)
    summary = bus.summary()
    assert summary                        # non-empty digest
    for key in summary:
        assert key.startswith(("obs_", "timeline_"))
        assert key not in GOLDEN_FIELDS
        assert result.extra[key] == summary[key]

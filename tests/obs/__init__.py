"""Tests for the observability layer (events, timeline, trace export)."""

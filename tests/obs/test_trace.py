"""Chrome trace-event export: well-formedness, track layout, validator."""

import json

from repro.common import SystemConfig
from repro.obs import EventBus
from repro.obs.trace import (
    PID_CACHE, PID_CORES, PID_DRAM_BASE, PID_TILES, PID_UNITS,
    chrome_trace, write_chrome_trace,
)
from repro.obs.validate import validate_file, validate_trace
from repro.sim import run_baseline, run_dx100
from repro.workloads import GatherFull


def _dx100_trace_bus():
    bus = EventBus(trace=True, sample_every=200)
    run_dx100(GatherFull(2048), SystemConfig.dx100_system(tile_elems=1024),
              warm=False, obs=bus)
    return bus


def _process_names(payload):
    return {e["pid"]: e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"}


def test_dx100_trace_is_valid_and_has_expected_tracks():
    payload = chrome_trace(_dx100_trace_bus())
    assert validate_trace(payload) == []
    names = _process_names(payload)
    channels = SystemConfig.dx100_system().dram.channels
    for channel in range(channels):
        assert names[PID_DRAM_BASE + channel] == f"DRAM ch{channel}"
    assert names[PID_TILES] == "DX100 tiles"
    assert names[PID_UNITS] == "DX100 units"
    phases = {e["name"] for e in payload["traceEvents"]
              if e["ph"] == "X" and e["pid"] == PID_TILES}
    assert {"fill", "drain", "response"} <= phases


def test_baseline_trace_has_core_and_cache_tracks():
    bus = EventBus(trace=True, sample_every=200)
    run_baseline(GatherFull(2048), warm=False, obs=bus)
    payload = chrome_trace(bus)
    assert validate_trace(payload) == []
    names = _process_names(payload)
    assert names.get(PID_CORES) == "cores"
    assert names.get(PID_CACHE) == "cache"


def test_timestamps_monotonic_per_track():
    payload = chrome_trace(_dx100_trace_bus())
    last = {}
    for event in payload["traceEvents"]:
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        assert event["ts"] >= last.get(track, 0)
        last[track] = event["ts"]


def test_row_open_spans_carry_access_counts():
    payload = chrome_trace(_dx100_trace_bus())
    spans = [e for e in payload["traceEvents"]
             if e["ph"] == "X" and e["pid"] >= PID_DRAM_BASE]
    assert spans
    assert all(e["name"].startswith("row ") for e in spans)
    served = sum(e["args"]["reads"] + e["args"]["writes"] for e in spans)
    assert served > 0


def test_write_and_validate_file(tmp_path):
    path = write_chrome_trace(_dx100_trace_bus(), tmp_path / "t.json")
    assert validate_file(path) == []
    payload = json.loads(path.read_text())
    assert payload["otherData"]["sample_every"] == 200


def test_validator_flags_malformed_traces(tmp_path):
    assert validate_trace([]) == ["top level is not a JSON object"]
    assert validate_trace({}) == ["missing traceEvents key"]
    assert validate_trace({"traceEvents": []}) == ["traceEvents is empty"]
    bad = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 10, "dur": 1},
        {"ph": "X", "pid": 1, "tid": 1, "name": "b", "ts": 5, "dur": 1},
    ]}
    problems = validate_trace(bad)
    assert len(problems) == 1 and "backwards" in problems[0]
    missing = {"traceEvents": [{"ph": "X", "pid": 1}]}
    assert "missing keys" in validate_trace(missing)[0]
    path = tmp_path / "bad.json"
    path.write_text("not json")
    assert any("unreadable" in p for p in validate_file(path))

"""Timeline samplers: sampling, summary digest, and the ASCII report."""

import pytest

from repro.common import SystemConfig
from repro.obs import EventBus, Timeline
from repro.obs.timeline import render_timeline
from repro.sim import run_baseline, run_dx100
from repro.workloads import GatherFull


def _sampled_bus(mode="dx100", every=200):
    bus = EventBus(trace=False, sample_every=every)
    if mode == "dx100":
        run_dx100(GatherFull(2048), SystemConfig.dx100_system(tile_elems=1024),
                  warm=False, obs=bus)
    else:
        run_baseline(GatherFull(2048), warm=False, obs=bus)
    return bus


def test_sampler_produces_windowed_series():
    bus = _sampled_bus()
    timeline = bus.timeline
    assert timeline.sample_count() > 0
    for samples in timeline.channels.values():
        buckets = [s["bucket"] for s in samples]
        assert buckets == sorted(buckets)
        for s in samples:
            assert 0.0 <= s["rbh"] <= 1.0
            assert s["bw_util"] >= 0.0
            assert s["occupancy"] >= 0
    assert timeline.drains            # DX100 runs record drain windows
    assert timeline.rt_fills


def test_summary_digest_keys_and_ranges():
    bus = _sampled_bus()
    summary = bus.summary()
    assert summary["timeline_every"] == 200
    assert summary["timeline_samples"] == bus.timeline.sample_count()
    assert summary["timeline_drains"] == len(bus.timeline.drains)
    assert 0.0 <= summary["timeline_rbh_mean"] <= 1.0
    assert summary["timeline_rbh_mean"] <= summary["timeline_rbh_max"] <= 1.0
    assert summary["timeline_row_table_fill_max"] > 0
    # trace=False: no event streams were recorded, only samples.
    assert "obs_trace_events" not in summary
    assert bus.event_count() == 0


def test_render_timeline_ascii_report():
    bus = _sampled_bus()
    report = render_timeline(bus.timeline, width=40)
    lines = report.splitlines()
    assert lines[0].startswith("timeline:")
    assert any(ln.strip().startswith("rbh") for ln in lines)
    assert any(ln.strip().startswith("bw_util") for ln in lines)
    assert any(ln.strip().startswith("tile drain") for ln in lines)
    # Pure ASCII, bounded width.
    assert all(ord(ch) < 128 for ch in report)
    sparks = [ln for ln in lines if "|" in ln]
    assert all(len(ln) < 80 for ln in sparks)


def test_render_timeline_without_samples():
    assert "no timeline samples" in render_timeline(Timeline(100))


def test_timeline_rejects_bad_period():
    with pytest.raises(ValueError):
        Timeline(0)


def test_baseline_sampling_works_without_dx100():
    bus = _sampled_bus(mode="baseline")
    assert bus.timeline.sample_count() > 0
    assert bus.timeline.drains == []
    assert "timeline_rbh_mean" in bus.summary()

"""The Indirect Access unit (Section 3.2): fill / request / response.

The unit executes ILD / IST / IRMW over a tile of indices:

1. **Fill** — decode each index to DRAM coordinates and insert into the
   Row/Word tables (coalescing duplicate lines).  When a slice runs out of
   BCAM entries the table drains mid-fill.
2. **Request** — drained lines issue in the Row Table's interleaved,
   row-grouped order.  Lines whose H bit is set (cached somewhere, learned
   by snooping at first touch) go through the Cache Interface; the rest
   bypass the LLC straight into the memory controllers — the path that
   escapes core-side MSHR limits.
3. **Response** — the Word Table linked list recovers which tile elements
   each returning line serves; the Word Modifier extracts words (ILD),
   inserts words (IST), or applies the arithmetic op (IRMW), writing
   modified lines back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import DX100Config
from repro.common.stats import Stats
from repro.common.types import AluOp, DRAMCoord, DType
from repro.cache.hierarchy import MemoryHierarchy
from repro.dram.system import DRAMSystem
from repro.dx100.alu import RMW_UFUNCS
from repro.dx100.hostmem import HostMemory
from repro.dx100.row_table import PendingLine, RowTable
from repro.dx100.tlb import TLB
from repro.dx100.word_table import WordTable

RESPONSE_LATENCY = 16  # word-modifier pipeline depth, cycles


@dataclass
class IndirectResult:
    """Outcome of one indirect instruction over a tile."""

    values: np.ndarray | None     # gathered words (ILD only)
    finish: int
    elements: int
    unique_lines: int
    drains: int
    start: int = 0
    busy_until: int = 0   # fill-stage end: when the unit can accept more

    @property
    def coalescing(self) -> float:
        return self.elements / self.unique_lines if self.unique_lines else 1.0

    @property
    def stream_rate(self) -> float:
        """Approximate elements-per-cycle delivery rate (for consumers that
        overlap with this instruction through the finish bits)."""
        return self.elements / max(1, self.finish - self.start)


class IndirectUnit:
    """ILD/IST/IRMW execution through Row Table + Word Table."""

    def __init__(self, config: DX100Config, hierarchy: MemoryHierarchy,
                 dram: DRAMSystem, hostmem: HostMemory, tlb: TLB,
                 stats: Stats | None = None) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.dram = dram
        self.hostmem = hostmem
        self.tlb = tlb
        self.stats = stats if stats is not None else Stats()
        # Observability bus; None (a couple of branches per *tile*, never
        # per element) unless an EventBus is attached.
        self.obs = None
        self.mapper = dram.mapper
        self.line_bytes = hierarchy.line
        # Owning tenant (-1 = untagged); stamped on every issued line for
        # per-tenant accounting, never consulted by the schedulers.
        self.tenant = -1

    # ----------------------------------------------------------------- fill

    def execute(self, kind: str, base: int, dtype: DType,
                indices: np.ndarray, cond: np.ndarray | None,
                src_values: np.ndarray | None, t_start: int,
                op: AluOp | None = None,
                index_avail: tuple[int, float] | None = None,
                tile: int = -1) -> IndirectResult:
        """Run one indirect instruction.

        ``index_avail`` is (t0, rate): element ``e`` of the index tile
        becomes available at ``t0 + e / rate`` — the fine-grained overlap
        with a producing SLD that the scratchpad finish bits enable.
        ``kind`` is "ld", "st", or "rmw".  ``tile`` is a label for the
        observability layer's tile lifecycle spans (the destination tile
        for ILD, the index tile for IST/IRMW; -1 = unlabelled).
        """
        if kind not in ("ld", "st", "rmw"):
            raise ValueError(f"unknown indirect kind {kind!r}")
        if kind == "rmw" and (op is None or not op.is_commutative_associative):
            raise ValueError("IRMW needs a commutative+associative op")

        indices = np.asarray(indices, dtype=np.int64)
        n_tile = len(indices)
        iters = np.arange(n_tile, dtype=np.int64)
        if cond is not None:
            if len(cond) < n_tile:
                raise ValueError("condition tile shorter than index tile")
            keep = np.asarray(cond[:n_tile]) != 0
            iters = iters[keep]
            sel_idx = indices[keep]
        else:
            sel_idx = indices
        addrs = base + sel_idx * dtype.nbytes

        t = t_start + (self.tlb.translate_tile(addrs) if addrs.size else 0)
        fields = self.mapper.map_arrays(addrs) if addrs.size else None

        row_table = RowTable(self.config.row_table_rows,
                             self.config.row_table_cols)
        word_table = WordTable(max(n_tile, 1))
        drains = 0
        pending_reqs: list[tuple[PendingLine, object]] = []

        fill_rate = self.config.fill_rate
        avail_t0, avail_rate = index_avail if index_avail else (t, float("inf"))
        fill_cursor = float(t)

        if fields is not None:
            chans = fields["channel"].tolist()
            ranks = fields["rank"].tolist()
            bgs = fields["bankgroup"].tolist()
            banks = fields["bank"].tolist()
            rows = fields["row"].tolist()
            cols = fields["column"].tolist()
            lines = fields["line"].tolist()
            offs = (addrs % self.line_bytes).tolist()
            it_list = iters.tolist()
            for e in range(len(it_list)):
                coord = DRAMCoord(channel=chans[e], rank=ranks[e],
                                  bankgroup=bgs[e], bank=banks[e],
                                  row=rows[e], column=cols[e])
                fill_cursor = max(fill_cursor + 1.0 / fill_rate,
                                  avail_t0 + e / avail_rate)
                accepted, prev = row_table.insert(
                    coord, lines[e], it_list[e], self.hierarchy.snoop)
                if not accepted:
                    # Capacity drain, then retry (must succeed on empty table).
                    pending_reqs += self._drain(row_table, int(fill_cursor),
                                                kind, tile)
                    drains += 1
                    accepted, prev = row_table.insert(
                        coord, lines[e], it_list[e], self.hierarchy.snoop)
                    if not accepted:
                        raise RuntimeError("insert failed on empty Row Table")
                word_table.insert(it_list[e], offs[e], prev)

        pending_reqs += self._drain(row_table, int(fill_cursor), kind, tile)
        drains += 1
        if self.obs is not None:
            self.obs.tile_phase(tile, "fill", t_start, int(fill_cursor),
                                lines=int(iters.size))

        # ------------------------------------------------------- response
        finish = int(fill_cursor)
        served = 0
        wb_lo = wb_hi = -1
        wb_lines = 0
        for pline, access in pending_reqs:
            completion = access.resolve(self.dram)
            chain = word_table.traverse(pline.tail_i)
            served += len(chain)
            if kind in ("st", "rmw") and not pline.h_bit:
                # Write the modified line back through the DRAM interface.
                wr = self.dram.access(pline.line_addr, is_write=True,
                                      arrival=completion + 1,
                                      decoded=pline.coord + (pline.row,),
                                      tenant=self.tenant)
                wb_lines += 1
                if wb_lo < 0 or wr.arrival < wb_lo:
                    wb_lo = wr.arrival
                if wr.arrival > wb_hi:
                    wb_hi = wr.arrival
                completion = max(completion, wr.arrival)
            finish = max(finish, completion)
        if iters.size and served != iters.size:
            raise RuntimeError(
                f"word table served {served} of {iters.size} elements"
            )
        finish += RESPONSE_LATENCY
        if self.obs is not None:
            self.obs.tile_phase(tile, "response", int(fill_cursor), finish,
                                lines=len(pending_reqs))
            if wb_lines:
                self.obs.tile_phase(tile, "writeback", wb_lo, wb_hi,
                                    lines=wb_lines)

        # ------------------------------------------------------ functional
        values = None
        if kind == "ld":
            values = np.zeros(n_tile, dtype=dtype.numpy_name)
            if addrs.size:
                values[iters] = self.hostmem.read_words(addrs, dtype)
        elif kind == "st":
            if addrs.size:
                src = np.asarray(src_values)[iters]
                self.hostmem.write_words(addrs, src, dtype)
        else:  # rmw
            if addrs.size:
                src = np.asarray(src_values)[iters]
                self.hostmem.rmw_words(addrs, src, dtype, RMW_UFUNCS[op])

        unique = row_table.unique_lines
        self.stats.add(f"i{kind}_elements", iters.size)
        self.stats.add(f"i{kind}_lines", unique)
        self.stats.add("indirect_drains", drains)
        return IndirectResult(values=values, finish=finish,
                              elements=int(iters.size), unique_lines=unique,
                              drains=drains, start=t,
                              busy_until=int(fill_cursor))

    # ---------------------------------------------------------------- drain

    def _drain(self, row_table: RowTable, t: int, kind: str,
               tile: int = -1) -> list[tuple[PendingLine, object]]:
        """Request stage: issue drained lines in interleaved order."""
        obs = self.obs
        occupancy = row_table.occupancy if obs is not None else 0
        out = []
        drain_rate = self.config.drain_rate
        is_write = kind in ("st", "rmw")
        for j, pline in enumerate(row_table.drain()):
            arrival = t + j // drain_rate
            # The tile was decoded wholesale by map_arrays at fill time;
            # the Row Table carries the coordinates, so neither path below
            # re-maps the line.
            decoded = pline.coord + (pline.row,)
            if pline.h_bit:
                access = self.hierarchy.llc_access(
                    pline.line_addr, is_write, arrival, decoded=decoded,
                    tenant=self.tenant)
            else:
                req = self.dram.access(pline.line_addr, is_write=False,
                                       arrival=arrival, decoded=decoded,
                                       tenant=self.tenant)
                access = _DirectAccess(req)
            out.append((pline, access))
        remote = self.dram.remote
        if remote is not None and out:
            # Far-memory accounting only: counts the drained lines that
            # live behind the link (the batch DX100 pipelines through it
            # while the baseline pays per-miss round trips).  Never alters
            # timing — the system enqueue already did the link traversal.
            far = sum(1 for pline, _ in out
                      if remote.is_far(pline.line_addr))
            if far:
                self.stats.add("indirect_far_lines", far)
        if obs is not None and out:
            end = t + (len(out) - 1) // drain_rate + 1
            obs.tile_phase(tile, "drain", t, end, lines=len(out))
            obs.rt_fill(t, occupancy, len(out))
        return out


class _DirectAccess:
    """Adapter giving DRAM-direct requests the AccessResult resolve API."""

    def __init__(self, request) -> None:
        self.request = request
        self.complete = -1

    def resolve(self, dram: DRAMSystem) -> int:
        if self.complete < 0:
            self.complete = dram.complete(self.request)
        return self.complete

"""The DX100 scratchpad: tiles, sizes, and the ready-bit protocol.

The scratchpad holds ``num_tiles`` tiles of up to ``tile_elems`` elements.
Per Section 3.5 each tile carries a *size*, a *ready* bit used for
core <-> DX100 synchronization (the ``wait`` API polls it), and per-element
*finish* bits enabling producer/consumer overlap between functional units.
The timing model represents the bits as cycle timestamps: ``ready_at`` is
the cycle the ready bit is set; fine-grained overlap is negotiated through
the producing instruction's streaming start time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import DX100Config

SPD_BASE = 1 << 40  # memory-mapped scratchpad data region (Figure 6)


@dataclass
class Tile:
    """One scratchpad tile."""

    index: int
    values: np.ndarray | None = None
    ready_at: int = 0
    streaming_from: int = 0      # cycle the first elements become available
    producer: object = None      # the instruction record that last wrote it

    @property
    def size(self) -> int:
        return 0 if self.values is None else len(self.values)


class Scratchpad:
    """Tile storage plus the ready-bit synchronization protocol."""

    def __init__(self, config: DX100Config, word_bytes: int = 4,
                 base: int = SPD_BASE) -> None:
        self.config = config
        self.word_bytes = word_bytes
        self.base = base
        self.tiles = [Tile(i) for i in range(config.num_tiles)]

    def tile(self, index: int) -> Tile:
        if not 0 <= index < self.config.num_tiles:
            raise IndexError(f"tile {index} out of range")
        return self.tiles[index]

    def write(self, index: int, values: np.ndarray, ready_at: int,
              streaming_from: int | None = None,
              producer: object = None) -> Tile:
        """Produce a tile: stores values and stamps its ready time."""
        values = np.asarray(values)
        if len(values) > self.config.tile_elems:
            raise ValueError(
                f"{len(values)} elements exceed tile capacity "
                f"{self.config.tile_elems}"
            )
        tile = self.tile(index)
        tile.values = values
        tile.ready_at = ready_at
        tile.streaming_from = (streaming_from if streaming_from is not None
                               else ready_at)
        tile.producer = producer
        return tile

    def read(self, index: int) -> np.ndarray:
        tile = self.tile(index)
        if tile.values is None:
            raise ValueError(f"tile {index} read before any write")
        return tile.values

    def ready_at(self, index: int) -> int:
        return self.tile(index).ready_at

    # ------------------------------------------------------- address mapping

    def elem_addr(self, tile: int, elem: int = 0) -> int:
        """Memory-mapped address of a tile element, for core-side reads."""
        return self.base + (tile * self.config.tile_elems
                            + elem) * self.word_bytes

    def region(self) -> tuple[int, int]:
        """The [lo, hi) address window of the whole scratchpad data region."""
        hi = self.base + (self.config.num_tiles * self.config.tile_elems
                          * self.word_bytes)
        return self.base, hi

    @staticmethod
    def instance_base(instance: int, config: DX100Config,
                      word_bytes: int = 4) -> int:
        """Non-overlapping memory-mapped base for each DX100 instance."""
        span = config.num_tiles * config.tile_elems * word_bytes
        return SPD_BASE + instance * 2 * span

"""The DX100 instruction set (the paper's Table 2).

Eight instructions over scratchpad tiles (T*), scalar registers (R*), and a
base array address::

    ILD  dtype base       TD  TS1      TC    TD[i] = base[TS1[i]]         if TC[i]
    IST  dtype base       TS1 TS2      TC    base[TS1[i]] = TS2[i]        if TC[i]
    IRMW dtype base op    TS1 TS2      TC    base[TS1[i]] op= TS2[i]      if TC[i]
    SLD  dtype base TD  RS1 RS2 RS3    TC    TD[i] = base[rs1 + i*rs3], i < (rs2-rs1)/rs3, if TC[i]
    SST  dtype base TS  RS1 RS2 RS3    TC    base[rs1 + i*rs3] = TS[i]    if TC[i]
    ALUV dtype op  TD  TS1 TS2         TC    TD[i] = TS1[i] op TS2[i]     if TC[i]
    ALUS dtype op  TD  TS  RS          TC    TD[i] = TS[i]  op rs         if TC[i]
    RNG        TD1 TD2 TS1 TS2 RS1     TC    fuse ranges [TS1[i], TS2[i]) into
                                             (outer TD1, inner TD2), rs1 = id base

Condition tiles hold 0/1 words; ``tc=None`` means unconditional.  IRMW is
restricted to commutative+associative ops because the indirect unit reorders
updates (Section 3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.types import AluOp, DType


class Opcode(enum.Enum):
    """The eight DX100 instruction opcodes (Table 2)."""

    ILD = 0
    IST = 1
    IRMW = 2
    SLD = 3
    SST = 4
    ALUV = 5
    ALUS = 6
    RNG = 7


@dataclass(frozen=True)
class Instr:
    """One decoded DX100 instruction.

    Tile operands are scratchpad tile ids; register operands are register
    file indices.  Unused operands are None.
    """

    opcode: Opcode
    dtype: DType | None = None
    base: int | None = None
    op: AluOp | None = None
    td: int | None = None
    td2: int | None = None
    ts1: int | None = None
    ts2: int | None = None
    tc: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    rs3: int | None = None

    def source_tiles(self) -> tuple[int, ...]:
        srcs = [t for t in (self.ts1, self.ts2, self.tc) if t is not None]
        return tuple(srcs)

    def dest_tiles(self) -> tuple[int, ...]:
        dests = [t for t in (self.td, self.td2) if t is not None]
        return tuple(dests)

    @property
    def is_indirect(self) -> bool:
        return self.opcode in (Opcode.ILD, Opcode.IST, Opcode.IRMW)

    @property
    def is_stream(self) -> bool:
        return self.opcode in (Opcode.SLD, Opcode.SST)


def ild(dtype: DType, base: int, td: int, ts1: int,
        tc: int | None = None) -> Instr:
    """Indirect load: ``TD[i] = base[TS1[i]]``."""
    return Instr(Opcode.ILD, dtype=dtype, base=base, td=td, ts1=ts1, tc=tc)


def ist(dtype: DType, base: int, ts1: int, ts2: int,
        tc: int | None = None) -> Instr:
    """Indirect store: ``base[TS1[i]] = TS2[i]``."""
    return Instr(Opcode.IST, dtype=dtype, base=base, ts1=ts1, ts2=ts2, tc=tc)


def irmw(dtype: DType, base: int, op: AluOp, ts1: int, ts2: int,
         tc: int | None = None) -> Instr:
    """Indirect read-modify-write: ``base[TS1[i]] op= TS2[i]``."""
    if not op.is_commutative_associative:
        raise ValueError(
            f"IRMW requires a commutative+associative op, got {op.value}"
        )
    return Instr(Opcode.IRMW, dtype=dtype, base=base, op=op,
                 ts1=ts1, ts2=ts2, tc=tc)


def sld(dtype: DType, base: int, td: int, rs1: int, rs2: int, rs3: int,
        tc: int | None = None) -> Instr:
    """Streaming load of ``base[rs1 : rs2 : rs3]`` into TD."""
    return Instr(Opcode.SLD, dtype=dtype, base=base, td=td,
                 rs1=rs1, rs2=rs2, rs3=rs3, tc=tc)


def sst(dtype: DType, base: int, ts: int, rs1: int, rs2: int, rs3: int,
        tc: int | None = None) -> Instr:
    """Streaming store of TS into ``base[rs1 : rs2 : rs3]``."""
    return Instr(Opcode.SST, dtype=dtype, base=base, ts1=ts,
                 rs1=rs1, rs2=rs2, rs3=rs3, tc=tc)


def aluv(dtype: DType, op: AluOp, td: int, ts1: int, ts2: int,
         tc: int | None = None) -> Instr:
    """Vector ALU: ``TD[i] = TS1[i] op TS2[i]``."""
    return Instr(Opcode.ALUV, dtype=dtype, op=op, td=td, ts1=ts1, ts2=ts2,
                 tc=tc)


def alus(dtype: DType, op: AluOp, td: int, ts: int, rs: int,
         tc: int | None = None) -> Instr:
    """Scalar ALU: ``TD[i] = TS[i] op registers[rs]``."""
    return Instr(Opcode.ALUS, dtype=dtype, op=op, td=td, ts1=ts, rs1=rs,
                 tc=tc)


def rng(td1: int, td2: int, ts1: int, ts2: int, rs1: int | None = None,
        tc: int | None = None) -> Instr:
    """Range fuser: concatenate [TS1[i], TS2[i]) ranges into TD2 with the
    originating outer index in TD1."""
    return Instr(Opcode.RNG, td=td1, td2=td2, ts1=ts1, ts2=ts2, rs1=rs1,
                 tc=tc)

"""The DX100 ALU unit: 16-lane vector/scalar arithmetic (Section 3.4).

Executes the ALUV / ALUS instructions used for condition evaluation
(``D[i] >= F``) and address calculation (``(C[i] & F) >> G``).  Comparison
results are 0/1 condition tiles consumable by every other unit.
"""

from __future__ import annotations

import numpy as np

from repro.common.types import AluOp, DType

_BINARY = {
    AluOp.ADD: lambda a, b: a + b,
    AluOp.SUB: lambda a, b: a - b,
    AluOp.MUL: lambda a, b: a * b,
    AluOp.MIN: np.minimum,
    AluOp.MAX: np.maximum,
    AluOp.AND: lambda a, b: a & b,
    AluOp.OR: lambda a, b: a | b,
    AluOp.XOR: lambda a, b: a ^ b,
    AluOp.SHR: lambda a, b: a >> b,
    AluOp.SHL: lambda a, b: a << b,
    AluOp.LT: lambda a, b: (a < b).astype(np.int64),
    AluOp.LE: lambda a, b: (a <= b).astype(np.int64),
    AluOp.GT: lambda a, b: (a > b).astype(np.int64),
    AluOp.GE: lambda a, b: (a >= b).astype(np.int64),
    AluOp.EQ: lambda a, b: (a == b).astype(np.int64),
}

RMW_UFUNCS = {
    AluOp.ADD: np.add,
    AluOp.MIN: np.minimum,
    AluOp.MAX: np.maximum,
    AluOp.AND: np.bitwise_and,
    AluOp.OR: np.bitwise_or,
    AluOp.XOR: np.bitwise_xor,
}


class AluUnit:
    """Vector ALU over scratchpad tiles."""

    def __init__(self, lanes: int = 16) -> None:
        if lanes <= 0:
            raise ValueError("lane count must be positive")
        self.lanes = lanes

    def apply(self, op: AluOp, a: np.ndarray, b, dtype: DType,
              cond: np.ndarray | None = None) -> np.ndarray:
        """``a op b`` elementwise (``b`` may be a scalar); where ``cond`` is
        zero the lane is skipped and the output element is 0."""
        if op not in _BINARY:
            raise ValueError(f"unsupported ALU op {op}")
        a = np.asarray(a)
        if op in (AluOp.AND, AluOp.OR, AluOp.XOR, AluOp.SHR, AluOp.SHL):
            a = a.astype(np.int64)
            b = np.asarray(b).astype(np.int64) if not np.isscalar(b) else int(b)
        result = _BINARY[op](a, b)
        if not op.is_comparison:
            np_dtype = np.dtype(dtype.numpy_name)
            result = result.astype(np_dtype)
        if cond is not None:
            cond = np.asarray(cond)
            if cond.shape != a.shape:
                raise ValueError("condition tile shape mismatch")
            result = np.where(cond != 0, result, np.zeros_like(result))
        return result

    def cycles(self, n: int) -> int:
        """Execution cycles for an n-element tile."""
        return -(-n // self.lanes)

"""The DX100 programming API (Section 4.1).

Workloads and the compiler build *programs*: flat lists of

* :class:`RegWrite` — write a scalar register (loop bounds, strides),
* :class:`repro.dx100.isa.Instr` — one accelerator instruction,
* :class:`WaitTiles` — the ``wait`` API: spin on tiles' ready bits.

The same program runs on the timing model (:class:`repro.dx100.DX100`) and
on the functional simulator (:class:`repro.dx100.functional.FunctionalDX100`),
which is how the paper's "functional simulator verifies correctness before
gem5 simulation" methodology is reproduced.

:class:`ProgramBuilder` adds tile/register allocation and convenience
wrappers so kernels read like the paper's Figure 7(d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.dx100 import isa
from repro.dx100.isa import Instr
from repro.dx100.scratchpad import SPD_BASE


@dataclass(frozen=True)
class RegWrite:
    reg: int
    value: float | int


@dataclass(frozen=True)
class WaitTiles:
    tiles: tuple[int, ...]


ProgramItem = object  # RegWrite | WaitTiles | Instr


class ProgramBuilder:
    """Builds DX100 programs with explicit tile/register management."""

    def __init__(self, config: DX100Config | None = None) -> None:
        self.config = config or DX100Config()
        self.items: list[ProgramItem] = []
        self._free_tiles = list(range(self.config.num_tiles - 1, -1, -1))
        self._free_regs = list(range(self.config.num_registers - 1, -1, -1))

    # ------------------------------------------------------------ resources

    def alloc_tile(self) -> int:
        if not self._free_tiles:
            raise RuntimeError("out of scratchpad tiles")
        return self._free_tiles.pop()

    def free_tile(self, tile: int) -> None:
        self._free_tiles.append(tile)

    def reg(self, value) -> int:
        """Allocate a register and schedule its write."""
        if not self._free_regs:
            raise RuntimeError("out of registers")
        index = self._free_regs.pop()
        self.items.append(RegWrite(index, value))
        return index

    def set_reg(self, index: int, value) -> None:
        self.items.append(RegWrite(index, value))

    # ---------------------------------------------------------- instructions

    def sld(self, dtype: DType, base: int, lo: int, hi: int, step: int = 1,
            tc: int | None = None, td: int | None = None) -> int:
        td = self.alloc_tile() if td is None else td
        r_lo, r_hi, r_st = self.reg(lo), self.reg(hi), self.reg(step)
        self.items.append(isa.sld(dtype, base, td, r_lo, r_hi, r_st, tc))
        return td

    def sst(self, dtype: DType, base: int, ts: int, lo: int, hi: int,
            step: int = 1, tc: int | None = None) -> None:
        r_lo, r_hi, r_st = self.reg(lo), self.reg(hi), self.reg(step)
        self.items.append(isa.sst(dtype, base, ts, r_lo, r_hi, r_st, tc))

    def ild(self, dtype: DType, base: int, ts1: int, tc: int | None = None,
            td: int | None = None) -> int:
        td = self.alloc_tile() if td is None else td
        self.items.append(isa.ild(dtype, base, td, ts1, tc))
        return td

    def ist(self, dtype: DType, base: int, ts1: int, ts2: int,
            tc: int | None = None) -> None:
        self.items.append(isa.ist(dtype, base, ts1, ts2, tc))

    def irmw(self, dtype: DType, base: int, op: AluOp, ts1: int, ts2: int,
             tc: int | None = None) -> None:
        self.items.append(isa.irmw(dtype, base, op, ts1, ts2, tc))

    def aluv(self, dtype: DType, op: AluOp, ts1: int, ts2: int,
             tc: int | None = None, td: int | None = None) -> int:
        td = self.alloc_tile() if td is None else td
        self.items.append(isa.aluv(dtype, op, td, ts1, ts2, tc))
        return td

    def alus(self, dtype: DType, op: AluOp, ts: int, scalar,
             tc: int | None = None, td: int | None = None) -> int:
        td = self.alloc_tile() if td is None else td
        r = self.reg(scalar)
        self.items.append(isa.alus(dtype, op, td, ts, r, tc))
        return td

    def rng(self, ts_lo: int, ts_hi: int, outer_base: int = 0,
            tc: int | None = None) -> tuple[int, int]:
        td1, td2 = self.alloc_tile(), self.alloc_tile()
        r = self.reg(outer_base)
        self.items.append(isa.rng(td1, td2, ts_lo, ts_hi, r, tc))
        return td1, td2

    def wait(self, *tiles: int) -> None:
        self.items.append(WaitTiles(tuple(tiles)))

    # -------------------------------------------------------------- helpers

    def spd_addr(self, tile: int, elem: int = 0, word_bytes: int = 4) -> int:
        """Core-visible address of a scratchpad element (Figure 6)."""
        return SPD_BASE + (tile * self.config.tile_elems + elem) * word_bytes

    def build(self) -> list[ProgramItem]:
        return list(self.items)

"""Flat host-memory model backing the functional side of the simulation.

Workloads allocate their arrays here; both the CPU-side reference kernels
and the DX100 functional/timing models read and write the same backing
store, which is what lets every experiment cross-check the accelerator's
results against a NumPy reference.

Addresses are *physical*: the allocator hands out bump-pointer regions
(page-aligned) inside a single byte buffer, so an address is an offset that
the DRAM address mapper can decode directly (the paper's huge-page,
identity-translated regime, Section 3.6).
"""

from __future__ import annotations

import numpy as np

from repro.common.types import DType, Interval

PAGE = 2 * 1024 * 1024  # huge page


class HostMemory:
    """Bump-pointer allocator over one flat byte buffer."""

    def __init__(self, size_bytes: int = 1 << 26, base: int = PAGE) -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.base = base
        self.size = size_bytes
        self._buf = np.zeros(size_bytes, dtype=np.uint8)
        self._next = 0
        self._segments: dict[str, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------ allocation

    def alloc(self, name: str, shape, dtype: DType | str,
              align: int = 4096) -> int:
        """Allocate a named array; returns its base physical address."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        np_dtype = np.dtype(dtype.numpy_name if isinstance(dtype, DType)
                            else dtype)
        count = int(np.prod(shape)) if not np.isscalar(shape) else int(shape)
        nbytes = count * np_dtype.itemsize
        offset = -(-self._next // align) * align  # round up
        if offset + nbytes > self.size:
            raise MemoryError(
                f"out of simulated memory allocating {name!r} "
                f"({nbytes} bytes at offset {offset}/{self.size})"
            )
        view = self._buf[offset:offset + nbytes].view(np_dtype)
        if not np.isscalar(shape):
            view = view.reshape(shape)
        self._next = offset + nbytes
        self._segments[name] = (self.base + offset, view)
        return self.base + offset

    def place(self, name: str, array: np.ndarray, align: int = 4096) -> int:
        """Allocate and initialize a segment from an existing array."""
        addr = self.alloc(name, array.shape, str(array.dtype), align)
        self.view(name)[...] = array
        return addr

    def clone_state_from(self, other: "HostMemory") -> None:
        """Adopt ``other``'s allocations and contents wholesale.

        The campaign fabric's generate-stage reuse snapshots a workload's
        freshly generated memory once per dataset and restores it into
        each run's own memory instead of regenerating — valid because
        allocation is a deterministic bump pointer, so the restored state
        is bitwise what ``generate`` would have produced.
        """
        if self.base != other.base or self.size != other.size:
            raise ValueError(
                f"memory geometry mismatch: base {self.base:#x}/{other.base:#x}, "
                f"size {self.size}/{other.size}")
        self._buf[:other._next] = other._buf[:other._next]
        self._next = other._next
        segments: dict[str, tuple[int, np.ndarray]] = {}
        for name, (addr, view) in other._segments.items():
            off = addr - self.base
            mine = self._buf[off:off + view.nbytes].view(view.dtype)
            if mine.shape != view.shape:
                mine = mine.reshape(view.shape)
            segments[name] = (addr, mine)
        self._segments = segments

    def view(self, name: str) -> np.ndarray:
        """The live NumPy view of a segment (mutations are visible to all)."""
        return self._segments[name][1]

    def addr_of(self, name: str) -> int:
        return self._segments[name][0]

    def interval_of(self, name: str) -> Interval:
        addr, view = self._segments[name]
        return Interval(addr, addr + view.nbytes)

    # ------------------------------------------------------------ raw access

    def _offset(self, addr: int, nbytes: int) -> int:
        off = addr - self.base
        if not 0 <= off <= self.size - nbytes:
            raise IndexError(f"address {addr:#x} outside simulated memory")
        return off

    def read_words(self, addrs, dtype: DType) -> np.ndarray:
        """Vectorized typed read at arbitrary (aligned) addresses."""
        np_dtype = np.dtype(dtype.numpy_name)
        addrs = np.asarray(addrs, dtype=np.int64)
        offs = addrs - self.base
        if offs.size and (offs.min() < 0
                          or offs.max() > self.size - np_dtype.itemsize):
            raise IndexError("address outside simulated memory")
        if offs.size and (offs % np_dtype.itemsize).any():
            raise ValueError("misaligned typed read")
        flat = self._buf.view(np_dtype)
        return flat[offs // np_dtype.itemsize].copy()

    def write_words(self, addrs, values, dtype: DType) -> None:
        """Vectorized typed write; duplicate addresses: last value wins."""
        np_dtype = np.dtype(dtype.numpy_name)
        addrs = np.asarray(addrs, dtype=np.int64)
        offs = addrs - self.base
        if offs.size and (offs.min() < 0
                          or offs.max() > self.size - np_dtype.itemsize):
            raise IndexError("address outside simulated memory")
        if offs.size and (offs % np_dtype.itemsize).any():
            raise ValueError("misaligned typed write")
        flat = self._buf.view(np_dtype)
        flat[offs // np_dtype.itemsize] = np.asarray(values, dtype=np_dtype)

    def rmw_words(self, addrs, values, dtype: DType, ufunc) -> None:
        """Vectorized read-modify-write using an unbuffered NumPy ufunc
        (``np.add``, ``np.minimum``, ...) so duplicate addresses accumulate."""
        np_dtype = np.dtype(dtype.numpy_name)
        addrs = np.asarray(addrs, dtype=np.int64)
        offs = (addrs - self.base) // np_dtype.itemsize
        flat = self._buf.view(np_dtype)
        ufunc.at(flat, offs, np.asarray(values, dtype=np_dtype))

"""First-order energy model.

The paper argues DX100's 3.6x dynamic-instruction reduction "can
significantly improve CPU core energy consumption" (Section 6.2) and
reports DX100's own power in Table 4.  This module composes those numbers
into a per-run energy estimate:

* core dynamic energy   — instructions x energy/instruction (Horowitz-style
  scalar-op budget for a wide OoO core, dominated by fetch/rename/issue);
* core static energy    — per-core leakage x runtime;
* DRAM energy           — bytes moved x pJ/byte (activation + IO averaged);
* DX100 energy          — Table 4 power x runtime (when present).

All constants are order-of-magnitude 14 nm figures; the model is for the
*relative* comparison between configurations, like the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CYCLE_NS, DX100Config
from repro.dx100.area import area_power

CORE_ENERGY_PER_INSTR_PJ = 150.0   # wide OoO core, per dynamic instruction
CORE_STATIC_MW = 500.0             # per-core leakage + clock tree
DRAM_PJ_PER_BYTE = 40.0            # DDR4 activation + IO, averaged


@dataclass
class EnergyReport:
    """Energy components of one run, in millijoules."""

    core_dynamic_mj: float
    core_static_mj: float
    dram_mj: float
    dx100_mj: float

    @property
    def total_mj(self) -> float:
        return (self.core_dynamic_mj + self.core_static_mj
                + self.dram_mj + self.dx100_mj)


def energy_estimate(result, cores: int = 4,
                    dx100_config: DX100Config | None = None) -> EnergyReport:
    """Estimate the energy of one :class:`repro.sim.RunResult`.

    ``dx100_config`` should be passed for DX100 runs so the accelerator's
    Table 4 power is charged for the whole runtime.
    """
    seconds = result.cycles * CYCLE_NS * 1e-9
    core_dynamic = result.instructions * CORE_ENERGY_PER_INSTR_PJ * 1e-9  # mJ
    core_static = CORE_STATIC_MW * cores * seconds  # mW * s = mJ
    dram = result.dram_bytes * DRAM_PJ_PER_BYTE * 1e-9
    dx100 = 0.0
    if dx100_config is not None:
        dx100 = area_power(dx100_config).total_power_mw * seconds
    return EnergyReport(core_dynamic_mj=core_dynamic,
                        core_static_mj=core_static,
                        dram_mj=dram, dx100_mj=dx100)


def energy_ratio(baseline_result, dx100_result, cores: int = 4,
                 dx100_config: DX100Config | None = None) -> float:
    """Baseline energy / DX100 energy (> 1 means DX100 saves energy)."""
    base = energy_estimate(baseline_result, cores)
    dx = energy_estimate(dx100_result, cores,
                         dx100_config or DX100Config())
    return base.total_mj / dx.total_mj

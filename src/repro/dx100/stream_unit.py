"""The Stream Access unit (Section 3.3, Figure 3 c/d).

Streaming loads (SLD) and stores (SST) move tiles between sequential memory
addresses and the scratchpad.  Streaming accesses have high locality, so
they are routed through the LLC via the Cache Interface; the Request Table
(an MSHR analogue) paces outstanding line fills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import DX100Config
from repro.common.stats import Stats
from repro.common.types import DType
from repro.cache.hierarchy import MemoryHierarchy
from repro.dram.system import DRAMSystem
from repro.dx100.hostmem import HostMemory
from repro.dx100.tlb import TLB


@dataclass
class StreamResult:
    """Timing outcome of one streaming instruction."""

    values: np.ndarray | None
    finish: int
    first_avail: int      # when the first elements reach the scratchpad
    lines: int
    elements: int
    busy_until: int = 0   # when the unit's issue port frees (pipelining)

    @property
    def stream_rate(self) -> float:
        """Elements per cycle between first_avail and finish."""
        span = max(1, self.finish - self.first_avail)
        return self.elements / span


class StreamUnit:
    """SLD/SST execution over the Cache Interface."""

    def __init__(self, config: DX100Config, hierarchy: MemoryHierarchy,
                 dram: DRAMSystem, hostmem: HostMemory, tlb: TLB,
                 stats: Stats | None = None) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.dram = dram
        self.hostmem = hostmem
        self.tlb = tlb
        self.stats = stats if stats is not None else Stats()
        self.line_bytes = hierarchy.line
        # Owning tenant (-1 = untagged); stamped on every issued line for
        # per-tenant accounting, never consulted by the schedulers.
        self.tenant = -1

    # --------------------------------------------------------------- common

    def _issue_lines(self, lines: np.ndarray, is_write: bool, t_start: int,
                     avail: tuple[int, float] | None = None,
                     elems_per_line: float = 1.0) -> tuple[int, int]:
        """Issue one request per unique line through the LLC; returns
        (first_completion, last_completion).

        ``avail`` is (t0, rate): line ``j``'s source elements become
        available at ``t0 + j*elems_per_line/rate`` — the finish-bit overlap
        with a producing instruction.
        """
        results = []
        t = t_start
        window = self.config.request_table
        rate = self.config.stream_issue_rate
        # Whole-tile decode: one map_arrays call replaces a per-line
        # mapper.map on every LLC miss below.
        line_list = lines.tolist()
        if line_list:
            fields = self.dram.mapper.map_arrays(lines)
            decoded = list(zip(
                fields["channel"].tolist(), fields["rank"].tolist(),
                fields["bankgroup"].tolist(), fields["bank"].tolist(),
                fields["row"].tolist(),
            ))
        else:
            decoded = []
        for j, line in enumerate(line_list):
            if j >= window:
                # Request-table back-pressure: wait for an older fill.
                results[j - window].resolve(self.dram)
                t = max(t, results[j - window].complete - window)
            arrival = max(t, t_start + j // rate)
            if avail is not None:
                arrival = max(arrival,
                              int(avail[0] + j * elems_per_line / avail[1]))
            res = self.hierarchy.llc_access(int(line), is_write, arrival,
                                            decoded=decoded[j],
                                            tenant=self.tenant)
            results.append(res)
            t += 1
        completions = [r.resolve(self.dram) for r in results]
        if not completions:
            return t_start, t_start
        return min(completions), max(completions)

    # ----------------------------------------------------------------- load

    def load(self, base: int, dtype: DType, lo: int, hi: int, step: int,
             cond: np.ndarray | None, t_start: int) -> StreamResult:
        """SLD: gather ``base[lo:hi:step]`` into a tile.

        Positional semantics: tile element ``i`` holds the value of loop
        iteration ``i``; condition-skipped iterations leave zeros.
        """
        if step == 0:
            raise ValueError("stream stride must be non-zero")
        idx = np.arange(lo, hi, step, dtype=np.int64)
        mask = np.ones(len(idx), dtype=bool)
        if cond is not None:
            if len(cond) < len(idx):
                raise ValueError("condition tile shorter than the loop")
            mask = np.asarray(cond[:len(idx)]) != 0
        addrs = base + idx[mask] * dtype.nbytes
        t_start += self.tlb.translate_tile(addrs) if addrs.size else 0
        lines = np.unique(addrs & ~np.int64(self.line_bytes - 1))
        first, last = self._issue_lines(lines, False, t_start)
        values = np.zeros(len(idx), dtype=dtype.numpy_name)
        if addrs.size:
            values[mask] = self.hostmem.read_words(addrs, dtype)
        self.stats.add("sld_elements", len(addrs))
        self.stats.add("sld_lines", len(lines))
        return StreamResult(values=values, finish=last,
                            first_avail=first, lines=len(lines),
                            elements=len(addrs),
                            busy_until=t_start + len(lines)
                            // self.config.stream_issue_rate)

    # ---------------------------------------------------------------- store

    def store(self, base: int, dtype: DType, lo: int, hi: int, step: int,
              values: np.ndarray, cond: np.ndarray | None, t_start: int,
              avail: tuple[int, float] | None = None,
              min_finish: int = 0) -> StreamResult:
        """SST: scatter a tile to ``base[lo:hi:step]``.

        ``avail``/``min_finish`` let the store stream behind a producing
        instruction (finish-bit overlap) without outrunning its data.
        """
        if step == 0:
            raise ValueError("stream stride must be non-zero")
        idx = np.arange(lo, hi, step, dtype=np.int64)
        vals = np.asarray(values)[:len(idx)]
        if len(vals) < len(idx):
            raise ValueError("tile shorter than the store loop")
        if cond is not None:
            keep = np.asarray(cond[:len(idx)]) != 0
            idx, vals = idx[keep], vals[keep]
        addrs = base + idx * dtype.nbytes
        t_start += self.tlb.translate_tile(addrs) if addrs.size else 0
        lines = np.unique(addrs & ~np.int64(self.line_bytes - 1))
        epl = len(addrs) / max(1, len(lines))
        first, last = self._issue_lines(lines, True, t_start, avail, epl)
        last = max(last, min_finish)
        if addrs.size:
            self.hostmem.write_words(addrs, vals, dtype)
        self.stats.add("sst_elements", len(addrs))
        self.stats.add("sst_lines", len(lines))
        return StreamResult(values=None, finish=last, first_avail=first,
                            lines=len(lines), elements=len(addrs),
                            busy_until=t_start + len(lines)
                            // self.config.stream_issue_rate)

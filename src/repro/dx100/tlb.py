"""The DX100 TLB (Section 3.6).

With huge pages and the paper's PTE-transfer API the accelerator translates
virtual addresses locally; the identity mapping keeps physical == virtual
while still charging the miss penalty when an unregistered page is touched.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.common.config import DX100Config
from repro.common.stats import Stats
from repro.dx100.hostmem import PAGE


class TLB:
    """256-entry fully associative TLB over 2 MiB pages, LRU replacement."""

    def __init__(self, config: DX100Config | None = None,
                 stats: Stats | None = None) -> None:
        cfg = config or DX100Config()
        self.entries = cfg.tlb_entries
        self.miss_penalty = cfg.tlb_miss_penalty
        self.stats = stats if stats is not None else Stats()
        self._pages: OrderedDict[int, None] = OrderedDict()

    @property
    def live_entries(self) -> int:
        """Number of pages currently resident (for stats dumps)."""
        return len(self._pages)

    def preload(self, lo: int, hi: int) -> int:
        """The PTE-transfer API: install all pages of [lo, hi); returns the
        number of pages installed."""
        count = 0
        for page in range(lo // PAGE, -(-hi // PAGE)):
            self._install(page)
            count += 1
        return count

    def _install(self, page: int) -> None:
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None

    def translate(self, addr: int) -> tuple[int, int]:
        """Returns (physical_addr, penalty_cycles); identity mapping."""
        page = addr // PAGE
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.add("tlb_hits")
            return addr, 0
        self.stats.add("tlb_misses")
        self._install(page)
        return addr, self.miss_penalty

    def translate_tile(self, addrs: np.ndarray) -> int:
        """Vectorized translation of a whole tile of addresses; returns the
        total penalty (identity mapping leaves the addresses unchanged)."""
        pages = np.unique(np.asarray(addrs, dtype=np.int64) // PAGE)
        penalty = 0
        for page in pages.tolist():
            if page in self._pages:
                self._pages.move_to_end(page)
                self.stats.add("tlb_hits")
            else:
                self.stats.add("tlb_misses")
                self._install(page)
                penalty += self.miss_penalty
        return penalty

"""The DX100 scalar register file (32 registers, Section 3.5).

Registers hold loop bounds, strides, and ALU scalar operands; cores write
them through the memory-mapped register region before issuing instructions.
"""

from __future__ import annotations

from repro.common.config import DX100Config


class RegisterFile:
    """32 scalar registers holding Python ints/floats."""

    def __init__(self, config: DX100Config | None = None) -> None:
        self.size = (config or DX100Config()).num_registers
        self._regs: list[float | int] = [0] * self.size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register {index} out of range 0..{self.size - 1}")

    def write(self, index: int, value) -> None:
        self._check(index)
        self._regs[index] = value

    def read(self, index: int):
        self._check(index)
        return self._regs[index]

    def __len__(self) -> int:
        return self.size

"""Functional (timing-free) DX100 simulator.

Executes the same programs as the timing model against the same host
memory, using an independent, direct NumPy implementation of each
instruction's semantics.  The paper used exactly this methodology: "a
functional simulator for DX100 APIs was developed to ensure the
correctness of the implementations before simulation" (Section 5).
Divergence between this simulator and the timing model is a bug in one of
them; the test suite cross-checks both on every workload.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.dx100.alu import RMW_UFUNCS, AluUnit
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.hostmem import HostMemory
from repro.dx100.isa import Instr
from repro.dx100.range_fuser import RangeFuser


class FunctionalDX100:
    """Reference executor for DX100 programs."""

    def __init__(self, config: DX100Config | None, hostmem: HostMemory) -> None:
        self.config = config or DX100Config()
        self.hostmem = hostmem
        self.tiles: dict[int, np.ndarray] = {}
        self.regs: list[float | int] = [0] * self.config.num_registers
        self._alu = AluUnit(self.config.alu_lanes)
        self._fuser = RangeFuser()

    # ------------------------------------------------------------- plumbing

    def _cond(self, instr: Instr, n: int) -> np.ndarray | None:
        if instr.tc is None:
            return None
        cond = self.tiles[instr.tc]
        if len(cond) < n:
            raise ValueError("condition tile too short")
        return np.asarray(cond[:n])

    def _mask(self, instr: Instr, n: int) -> np.ndarray:
        cond = self._cond(instr, n)
        return np.ones(n, dtype=bool) if cond is None else cond != 0

    # ------------------------------------------------------------- executor

    def run(self, items) -> None:
        for item in items:
            if isinstance(item, RegWrite):
                self.regs[item.reg] = item.value
            elif isinstance(item, WaitTiles):
                continue  # no timing: tiles are always "ready"
            elif isinstance(item, Instr):
                self._execute(item)
            else:
                raise TypeError(f"unknown program item {item!r}")

    def _execute(self, instr: Instr) -> None:
        handler = getattr(self, f"_exec_{instr.opcode.name.lower()}")
        handler(instr)

    def _loop_indices(self, instr: Instr) -> np.ndarray:
        lo = int(self.regs[instr.rs1])
        hi = int(self.regs[instr.rs2])
        step = int(self.regs[instr.rs3])
        return np.arange(lo, hi, step, dtype=np.int64)

    def _exec_sld(self, instr: Instr) -> None:
        # Positional semantics: element i of the tile corresponds to loop
        # iteration i; condition-skipped iterations leave zeros.
        idx = self._loop_indices(instr)
        mask = self._mask(instr, len(idx))
        addrs = instr.base + idx[mask] * instr.dtype.nbytes
        out = np.zeros(len(idx), dtype=instr.dtype.numpy_name)
        out[mask] = self.hostmem.read_words(addrs, instr.dtype)
        self.tiles[instr.td] = out

    def _exec_sst(self, instr: Instr) -> None:
        idx = self._loop_indices(instr)
        mask = self._mask(instr, len(idx))
        values = np.asarray(self.tiles[instr.ts1])[:len(idx)]
        addrs = instr.base + idx[mask] * instr.dtype.nbytes
        self.hostmem.write_words(addrs, values[mask], instr.dtype)

    def _exec_ild(self, instr: Instr) -> None:
        indices = np.asarray(self.tiles[instr.ts1], dtype=np.int64)
        mask = self._mask(instr, len(indices))
        addrs = instr.base + indices[mask] * instr.dtype.nbytes
        out = np.zeros(len(indices), dtype=instr.dtype.numpy_name)
        out[mask] = self.hostmem.read_words(addrs, instr.dtype)
        self.tiles[instr.td] = out

    def _exec_ist(self, instr: Instr) -> None:
        indices = np.asarray(self.tiles[instr.ts1], dtype=np.int64)
        mask = self._mask(instr, len(indices))
        values = np.asarray(self.tiles[instr.ts2])[:len(indices)]
        addrs = instr.base + indices[mask] * instr.dtype.nbytes
        self.hostmem.write_words(addrs, values[mask], instr.dtype)

    def _exec_irmw(self, instr: Instr) -> None:
        indices = np.asarray(self.tiles[instr.ts1], dtype=np.int64)
        mask = self._mask(instr, len(indices))
        values = np.asarray(self.tiles[instr.ts2])[:len(indices)]
        addrs = instr.base + indices[mask] * instr.dtype.nbytes
        self.hostmem.rmw_words(addrs, values[mask], instr.dtype,
                               RMW_UFUNCS[instr.op])

    def _exec_aluv(self, instr: Instr) -> None:
        a = self.tiles[instr.ts1]
        b = self.tiles[instr.ts2]
        self.tiles[instr.td] = self._alu.apply(
            instr.op, a, b, instr.dtype, self._cond(instr, len(a)))

    def _exec_alus(self, instr: Instr) -> None:
        a = self.tiles[instr.ts1]
        scalar = self.regs[instr.rs1]
        self.tiles[instr.td] = self._alu.apply(
            instr.op, a, scalar, instr.dtype, self._cond(instr, len(a)))

    def _exec_rng(self, instr: Instr) -> None:
        lows = self.tiles[instr.ts1]
        highs = self.tiles[instr.ts2]
        outer0 = int(self.regs[instr.rs1]) if instr.rs1 is not None else 0
        outer_ids = outer0 + np.arange(len(lows), dtype=np.int64)
        cond = self._cond(instr, len(lows))
        outer, inner = self._fuser.fuse(lows, highs, outer_ids, cond,
                                        capacity=self.config.tile_elems)
        self.tiles[instr.td] = outer
        self.tiles[instr.td2] = inner

"""DX100 top level: the controller that dispatches instructions to units.

The controller (Section 3.5) receives instructions from cores as
memory-mapped stores, schedules them through a scoreboard that blocks on
tile hazards (no renaming), and retires them by setting the destination
tiles' ready bits.  Units are independent, so a streaming load of the next
tile overlaps the indirect unit's work on the current one — the
double-buffering the programming model exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.cache.hierarchy import MemoryHierarchy
from repro.dram.system import DRAMSystem
from repro.dx100.alu import AluUnit
from repro.dx100.coherency import CoherencyAgent
from repro.dx100.hostmem import HostMemory
from repro.dx100.indirect_unit import IndirectUnit
from repro.dx100.isa import Instr, Opcode
from repro.dx100.range_fuser import RangeFuser
from repro.dx100.regfile import RegisterFile
from repro.dx100.scratchpad import Scratchpad
from repro.dx100.stream_unit import StreamUnit
from repro.dx100.tlb import TLB

_UNIT_OF = {
    Opcode.SLD: "stream", Opcode.SST: "stream",
    Opcode.ILD: "indirect", Opcode.IST: "indirect", Opcode.IRMW: "indirect",
    Opcode.ALUV: "alu", Opcode.ALUS: "alu",
    Opcode.RNG: "rng",
}

@dataclass
class InstrRecord:
    """Execution record of one dispatched instruction."""

    instr: Instr
    dispatch: int
    start: int
    finish: int
    detail: object = None


class DX100:
    """One DX100 instance wired to the host memory system."""

    def __init__(self, config: SystemConfig, hierarchy: MemoryHierarchy,
                 dram: DRAMSystem, hostmem: HostMemory,
                 instance: int = 0) -> None:
        if config.dx100 is None:
            raise ValueError("SystemConfig has no DX100 configuration")
        self.config = config.dx100
        self.instance = instance
        self.hierarchy = hierarchy
        self.dram = dram
        self.hostmem = hostmem
        self.stats = Stats()
        self.spd = Scratchpad(
            self.config,
            base=Scratchpad.instance_base(instance, self.config))
        self.regs = RegisterFile(self.config)
        self.tlb = TLB(self.config, self.stats)
        # The batched units need the fused hierarchy's whole-tile path, so
        # the selection follows the hierarchy actually wired in (callers
        # like tests may pair a scalar hierarchy with a batched-default
        # config).
        if config.frontend == "batched" and hasattr(hierarchy,
                                                    "access_lines"):
            from repro.dx100.batched import (BatchedIndirectUnit,
                                             BatchedStreamUnit)
            stream_cls: type[StreamUnit] = BatchedStreamUnit
            indirect_cls: type[IndirectUnit] = BatchedIndirectUnit
        else:
            stream_cls = StreamUnit
            indirect_cls = IndirectUnit
        self.stream = stream_cls(self.config, hierarchy, dram, hostmem,
                                 self.tlb, self.stats)
        self.indirect = indirect_cls(self.config, hierarchy, dram, hostmem,
                                     self.tlb, self.stats)
        self.alu = AluUnit(self.config.alu_lanes)
        self.fuser = RangeFuser()
        self.coherency = CoherencyAgent(stats=self.stats)
        self._unit_free = {"stream": 0, "indirect": 0, "alu": 0, "rng": 0}
        # Owning tenant (-1 = untagged); see :meth:`set_tenant`.
        self.tenant = -1
        # Observability bus; None (one branch per dispatch) when off.
        self.obs = None
        self.records: list[InstrRecord] = []
        lo, hi = self.spd.region()
        hierarchy.register_spd_region(lo, hi, self.config.spd_read_latency)

    def set_tenant(self, tenant: int) -> None:
        """Tag every request this instance issues with ``tenant``.

        The tag feeds per-tenant accounting in the controllers and the
        serving layer only — it never changes how requests are scheduled,
        so a tagged run and an untagged run produce identical timing.
        """
        self.tenant = tenant
        self.stream.tenant = tenant
        self.indirect.tenant = tenant

    # ------------------------------------------------------------- core side

    def preload_pages(self, lo: int, hi: int) -> int:
        """The PTE-transfer API (done once per application)."""
        return self.tlb.preload(lo, hi)

    def write_register(self, index: int, value) -> None:
        self.regs.write(index, value)

    def tile_ready(self, tile: int) -> int:
        """Cycle at which the tile's ready bit is set (polled by ``wait``)."""
        return self.spd.ready_at(tile)

    def wait(self, tiles, t: int) -> int:
        """Core-side wait on ready bits; returns the resume cycle."""
        ready = max((self.tile_ready(ti) for ti in tiles), default=t)
        return max(t, ready)

    def mark_consumed(self, tile: int) -> None:
        """Record that cores read this tile (sets coherency V bits)."""
        lo = self.spd.elem_addr(tile, 0)
        hi = self.spd.elem_addr(tile + 1, 0) if (
            tile + 1 < self.config.num_tiles) else self.spd.region()[1]
        for line in range(lo, hi, self.hierarchy.line):
            self.coherency.core_read(line)

    # -------------------------------------------------------------- dispatch

    def _cond(self, instr: Instr) -> np.ndarray | None:
        return None if instr.tc is None else self.spd.read(instr.tc)

    def _ready(self, tiles) -> int:
        return max((self.spd.ready_at(t) for t in tiles), default=0)

    def dispatch(self, instr: Instr, t_core: int) -> InstrRecord:
        """Deliver and execute one instruction; returns its record."""
        dispatch = t_core + self.config.noc_latency
        unit = _UNIT_OF[instr.opcode]
        if ((instr.is_indirect or instr.opcode == Opcode.SST)
                and instr.ts1 is not None):
            # Fine-grained overlap (finish bits, Section 3.5): the consumer
            # may begin as soon as its operand tiles start streaming in; it
            # paces itself on per-element availability.
            streamable = {instr.ts1, instr.ts2} - {None}
            src_ready = max(
                (self.spd.tile(t).streaming_from for t in streamable),
                default=0)
            others = [t for t in instr.source_tiles() if t not in streamable]
            src_ready = max(src_ready, self._ready(others))
        else:
            src_ready = self._ready(instr.source_tiles())
        start = max(dispatch, self._unit_free[unit], src_ready,
                    self._ready(instr.dest_tiles()))
        # Invalidate core-cached scratchpad lines of the tiles this
        # instruction touches (coherency agent, Section 3.6).
        for tile in (*instr.source_tiles(), *instr.dest_tiles()):
            lo = self.spd.elem_addr(tile, 0)
            hi = lo + self.config.tile_elems * self.spd.word_bytes
            self.coherency.invalidate_range(lo, hi, self.hierarchy)

        handler = getattr(self, f"_exec_{instr.opcode.name.lower()}")
        finish, detail = handler(instr, start)

        # Units are pipelined: the issue port frees before the data lands.
        busy = getattr(detail, "busy_until", 0) or finish
        self._unit_free[unit] = min(busy, finish) if busy else finish
        record = InstrRecord(instr=instr, dispatch=dispatch, start=start,
                             finish=finish, detail=detail)
        self.records.append(record)
        self.stats.add("instructions")
        self.stats.add(f"op_{instr.opcode.name.lower()}")
        if self.obs is not None:
            self._publish(instr, unit, start, finish)
        return record

    def _publish(self, instr: Instr, unit: str, start: int,
                 finish: int) -> None:
        """Emit the instruction span and, for stream/ALU ops, the tile
        lifecycle phase (indirect ops publish their own fill/drain/
        response/writeback phases from inside the Indirect unit)."""
        obs = self.obs
        obs.dx_span(unit, instr.opcode.name, start, finish)
        op = instr.opcode
        if op is Opcode.SLD:
            obs.tile_phase(instr.td, "stream-in", start, finish)
        elif op is Opcode.SST:
            obs.tile_phase(instr.ts1, "stream-out", start, finish)
        elif op in (Opcode.ALUV, Opcode.ALUS):
            obs.tile_phase(instr.td, "alu", start, finish)

    # ------------------------------------------------------------- execution

    def _exec_sld(self, instr: Instr, start: int):
        lo = int(self.regs.read(instr.rs1))
        hi = int(self.regs.read(instr.rs2))
        step = int(self.regs.read(instr.rs3))
        res = self.stream.load(instr.base, instr.dtype, lo, hi, step,
                               self._cond(instr), start)
        self.spd.write(instr.td, res.values, ready_at=res.finish,
                       streaming_from=res.first_avail, producer=res)
        return res.finish, res

    def _exec_sst(self, instr: Instr, start: int):
        lo = int(self.regs.read(instr.rs1))
        hi = int(self.regs.read(instr.rs2))
        step = int(self.regs.read(instr.rs3))
        src = self.spd.tile(instr.ts1)
        values = self.spd.read(instr.ts1)
        avail = None
        min_finish = 0
        producer = src.producer
        if (producer is not None and hasattr(producer, "stream_rate")
                and src.streaming_from < src.ready_at):
            avail = (max(start, src.streaming_from), producer.stream_rate)
            min_finish = src.ready_at
        res = self.stream.store(instr.base, instr.dtype, lo, hi, step,
                                values, self._cond(instr), start,
                                avail=avail, min_finish=min_finish)
        return res.finish, res

    def _indirect_common(self, instr: Instr, start: int, kind: str):
        indices = self.spd.read(instr.ts1)
        # Element availability paces the fill: combine the streaming rates
        # of every streamed operand (index tile, and value tile for ST/RMW).
        t0, rate = start, float("inf")
        for tile_id in {instr.ts1, instr.ts2} - {None}:
            tile = self.spd.tile(tile_id)
            producer = tile.producer
            if (producer is not None and hasattr(producer, "stream_rate")
                    and tile.streaming_from < tile.ready_at):
                t0 = max(t0, tile.streaming_from)
                rate = min(rate, producer.stream_rate)
        index_avail = (max(start, t0), rate) if rate != float("inf") else None
        src = self.spd.read(instr.ts2) if instr.ts2 is not None else None
        res = self.indirect.execute(
            kind, instr.base, instr.dtype, indices, self._cond(instr), src,
            start, op=instr.op, index_avail=index_avail,
            tile=instr.td if instr.td is not None else instr.ts1,
        )
        return res

    def _exec_ild(self, instr: Instr, start: int):
        res = self._indirect_common(instr, start, "ld")
        self.spd.write(instr.td, res.values, ready_at=res.finish,
                       streaming_from=res.start, producer=res)
        return res.finish, res

    def _exec_ist(self, instr: Instr, start: int):
        res = self._indirect_common(instr, start, "st")
        return res.finish, res

    def _exec_irmw(self, instr: Instr, start: int):
        res = self._indirect_common(instr, start, "rmw")
        return res.finish, res

    def _exec_aluv(self, instr: Instr, start: int):
        a = self.spd.read(instr.ts1)
        b = self.spd.read(instr.ts2)
        if len(a) != len(b):
            raise ValueError("ALUV operand tiles differ in length")
        out = self.alu.apply(instr.op, a, b, instr.dtype, self._cond(instr))
        finish = start + self.alu.cycles(len(a))
        self.spd.write(instr.td, out, ready_at=finish)
        return finish, None

    def _exec_alus(self, instr: Instr, start: int):
        a = self.spd.read(instr.ts1)
        scalar = self.regs.read(instr.rs1)
        out = self.alu.apply(instr.op, a, scalar, instr.dtype,
                             self._cond(instr))
        finish = start + self.alu.cycles(len(a))
        self.spd.write(instr.td, out, ready_at=finish)
        return finish, None

    def _exec_rng(self, instr: Instr, start: int):
        lows = self.spd.read(instr.ts1)
        highs = self.spd.read(instr.ts2)
        outer0 = int(self.regs.read(instr.rs1)) if instr.rs1 is not None else 0
        outer_ids = outer0 + np.arange(len(lows), dtype=np.int64)
        outer, inner = self.fuser.fuse(lows, highs, outer_ids,
                                       self._cond(instr),
                                       capacity=self.config.tile_elems)
        finish = start + self.fuser.cycles(len(inner))
        self.spd.write(instr.td, outer, ready_at=finish)
        self.spd.write(instr.td2, inner, ready_at=finish)
        return finish, None

    # -------------------------------------------------------------- programs

    def run_program(self, items, t_core: int = 0) -> int:
        """Execute a list of program items (see :mod:`repro.dx100.api`);
        returns the core-side completion cycle."""
        from repro.dx100.api import RegWrite, WaitTiles

        t = t_core
        for item in items:
            if isinstance(item, RegWrite):
                self.write_register(item.reg, item.value)
                t += 1
            elif isinstance(item, WaitTiles):
                t = self.wait(item.tiles, t)
                for tile in item.tiles:
                    self.mark_consumed(tile)
            elif isinstance(item, Instr):
                self.dispatch(item, t)
                t += 3  # three 64-bit memory-mapped stores
            else:
                raise TypeError(f"unknown program item {item!r}")
        return t

"""The Indirect Access unit's Row Table (Figure 4 a/b).

One slice per DRAM bank.  A slice's BCAM tracks up to ``rows`` open target
rows; each row entry's SRAM side tracks up to ``cols`` target columns
(cache lines), each holding the tail of that line's word linked-list in the
Word Table and the cache-hit (H) bit sampled at first touch.

The structure realizes the three bandwidth mechanisms:

* **reorder** — drain emits all buffered columns of a DRAM row
  consecutively, so the bank services them as row hits;
* **coalesce** — a second word to an already-tracked line only extends the
  word list instead of adding a request;
* **interleave** — drain round-robins across slices ordered so consecutive
  requests alternate channels first and bank groups second.

A row with more than ``cols`` distinct lines consumes additional BCAM
entries (one per ``cols`` lines), which is how the hardware's fixed-shape
SRAM is modelled without losing capacity semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import DRAMCoord


@dataclass
class ColumnRecord:
    """One tracked cache line within a row."""

    line_addr: int
    tail_i: int          # last word-table iteration touching this line
    h_bit: bool          # line present in the cache hierarchy at first touch
    words: int = 1


@dataclass
class _Slice:
    coord: tuple[int, int, int, int]       # (channel, rank, bankgroup, bank)
    rows: dict[int, dict[int, ColumnRecord]] = field(default_factory=dict)
    #: BCAM entries consumed (ceil(lines/cols_per_entry) summed over rows),
    #: maintained incrementally on insert.  The *insert* capacity check
    #: reads this counter (rows only grow between drains, so it is exact);
    #: :meth:`entry_units` still recomputes from the rows so external
    #: checkers (the serving layer's invariants) detect state corrupted
    #: behind the API.
    units: int = 0

    def entry_units(self) -> int:
        return sum(-(-len(cols) // _Slice.cols_per_entry)
                   for cols in self.rows.values())

    cols_per_entry = 8  # overridden by RowTable


@dataclass
class PendingLine:
    """A drained request: one unique cache line plus its word list tail."""

    line_addr: int
    coord: tuple[int, int, int, int]
    row: int
    tail_i: int
    h_bit: bool
    words: int


class RowTable:
    """All slices of the Row Table plus the interleaving drain order."""

    def __init__(self, rows_per_slice: int = 64, cols_per_row: int = 8) -> None:
        self.rows_per_slice = rows_per_slice
        self.cols_per_row = cols_per_row
        _Slice.cols_per_entry = cols_per_row
        self._slices: dict[tuple[int, int, int, int], _Slice] = {}
        self.inserted_words = 0
        self.unique_lines = 0

    # ---------------------------------------------------------------- insert

    def insert(self, coord: DRAMCoord, line_addr: int, iteration: int,
               h_bit_fn) -> tuple[bool, int | None]:
        """Insert one word.

        Returns ``(accepted, previous_tail)``; ``accepted`` is False when the
        slice is out of BCAM entries and the table must be drained first.
        ``previous_tail`` is the prior word-list tail for the line (None for
        a fresh line), which the caller links into the Word Table.
        ``h_bit_fn(line_addr)`` is consulted only on a line's first touch —
        the directory snoop of Section 3.6.
        """
        return self.insert_decoded(coord.flat_bank, coord.row, line_addr,
                                   iteration, h_bit_fn)

    def insert_decoded(self, flat_bank: tuple[int, int, int, int], row: int,
                       line_addr: int, iteration: int,
                       h_bit_fn) -> tuple[bool, int | None]:
        """:meth:`insert` keyed by pre-decoded ``(flat_bank, row)``.

        The batched indirect unit decodes whole tiles through
        ``AddressMapper.map_arrays`` and feeds the coordinate fields here
        directly, skipping the per-element :class:`DRAMCoord` construction.
        """
        sl = self._slices.get(flat_bank)
        if sl is None:
            sl = _Slice(coord=flat_bank)
            self._slices[flat_bank] = sl
        cols = sl.rows.get(row)
        if cols is not None and line_addr in cols:
            rec = cols[line_addr]
            prev = rec.tail_i
            rec.tail_i = iteration
            rec.words += 1
            self.inserted_words += 1
            return True, prev
        # A new line: check BCAM capacity.
        if cols is None:
            needed = 1
        else:
            needed = 1 if len(cols) % self.cols_per_row == 0 else 0
        if sl.units + needed > self.rows_per_slice:
            return False, None
        if cols is None:
            cols = {}
            sl.rows[row] = cols
        cols[line_addr] = ColumnRecord(line_addr=line_addr, tail_i=iteration,
                                       h_bit=bool(h_bit_fn(line_addr)))
        sl.units += needed
        self.inserted_words += 1
        self.unique_lines += 1
        return True, None

    # ----------------------------------------------------------------- drain

    def drain(self) -> list[PendingLine]:
        """Empty the table, returning requests in issue order.

        Issue order: round-robin one column at a time across slices sorted so
        that consecutive picks alternate channel fastest, then bank group,
        then bank; within a slice, rows drain completely before the next row
        starts (the row-hit grouping).
        """
        def interleave_key(sl: _Slice) -> tuple:
            ch, ra, bg, ba = sl.coord
            return (ra, ba, bg, ch)

        ordered = sorted(self._slices.values(), key=interleave_key)
        # Flatten each slice into its per-bank row-grouped column order.
        per_slice: list[list[PendingLine]] = []
        for sl in ordered:
            lines: list[PendingLine] = []
            for row, cols in sl.rows.items():
                for rec in cols.values():
                    lines.append(PendingLine(
                        line_addr=rec.line_addr, coord=sl.coord, row=row,
                        tail_i=rec.tail_i, h_bit=rec.h_bit, words=rec.words,
                    ))
            per_slice.append(lines)
        out: list[PendingLine] = []
        cursors = [0] * len(per_slice)
        remaining = sum(len(s) for s in per_slice)
        while remaining:
            for i, lines in enumerate(per_slice):
                if cursors[i] < len(lines):
                    out.append(lines[cursors[i]])
                    cursors[i] += 1
                    remaining -= 1
        self._slices.clear()
        return out

    # ---------------------------------------------------------------- stats

    @property
    def occupancy(self) -> int:
        return sum(sl.entry_units() for sl in self._slices.values())

    def slice_units(self, flat_bank: tuple[int, int, int, int]) -> int:
        """BCAM entry units currently used by one slice (0 if untouched).

        Public so external quota layers (:mod:`repro.serve`) can budget
        per-tenant capacity without reaching into ``_slices``.
        """
        sl = self._slices.get(flat_bank)
        return 0 if sl is None else sl.entry_units()

    def entries(self):
        """Iterate tracked lines as ``(flat_bank, row, line_addr, words)``.

        Read-only view for external checkers (the serving layer's isolation
        invariants walk every entry without touching slice internals).
        """
        for key, sl in self._slices.items():
            for row, cols in sl.rows.items():
                for rec in cols.values():
                    yield key, row, rec.line_addr, rec.words

    def insert_cost(self, coord: DRAMCoord, line_addr: int) -> int:
        """BCAM entry units an insert of ``line_addr`` would consume.

        0 — the line is already tracked (coalesce) or fits in its row's
        current entry; 1 — a fresh BCAM entry would be allocated.  Pure
        query: the table is not modified.
        """
        sl = self._slices.get(coord.flat_bank)
        if sl is None:
            return 1
        cols = sl.rows.get(coord.row)
        if cols is None:
            return 1
        if line_addr in cols:
            return 0
        return 1 if len(cols) % self.cols_per_row == 0 else 0

    def coalescing_factor(self) -> float:
        """Words inserted per unique line (>= 1)."""
        if self.unique_lines == 0:
            return 1.0
        return self.inserted_words / self.unique_lines

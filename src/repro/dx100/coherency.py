"""DX100 coherency machinery (Sections 3.6 and 6.6).

Two pieces:

* :class:`CoherencyAgent` — tracks which scratchpad cache lines cores may
  have cached (a V bit per line, set when a core reads the scratchpad) and
  invalidates them from the host hierarchy when an instruction re-targets
  those tiles.
* :class:`RegionCoherence` — the coarse-grained region protocol used when
  multiple DX100 instances share arrays: a Single-Writer-Multiple-Reader
  invariant over whole array address ranges, with a fixed message cost per
  ownership change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.stats import Stats
from repro.common.types import Interval


class CoherencyAgent:
    """Per-line V bits over the scratchpad data region."""

    def __init__(self, line_bytes: int = 64, stats: Stats | None = None) -> None:
        self.line_bytes = line_bytes
        self.stats = stats if stats is not None else Stats()
        self._valid: set[int] = set()

    def core_read(self, addr: int) -> None:
        """A core read of a scratchpad address sets the line's V bit."""
        self._valid.add(addr // self.line_bytes)

    def invalidate_range(self, lo: int, hi: int, hierarchy=None) -> int:
        """Invalidate all V lines in [lo, hi); returns how many were live.

        Called by the controller when an instruction is dispatched whose
        source/destination tiles cores may have cached.
        """
        first, last = lo // self.line_bytes, -(-hi // self.line_bytes)
        live = [line for line in self._valid
                if first <= line < last]
        for line in live:
            self._valid.discard(line)
            if hierarchy is not None:
                hierarchy.invalidate(line * self.line_bytes)
        self.stats.add("spd_invalidations", len(live))
        return len(live)

    @property
    def tracked_lines(self) -> int:
        return len(self._valid)


@dataclass
class _Region:
    interval: Interval
    owner: int | None = None          # instance holding write permission
    readers: set[int] = field(default_factory=set)
    locked: bool = False


class RegionCoherence:
    """SWMR region protocol between DX100 instances (Section 6.6)."""

    def __init__(self, message_cycles: int = 100,
                 stats: Stats | None = None) -> None:
        self.message_cycles = message_cycles
        self.stats = stats if stats is not None else Stats()
        self._regions: list[_Region] = []

    def register(self, interval: Interval) -> int:
        for existing in self._regions:
            if existing.interval.overlaps(interval):
                raise ValueError("coherence regions may not overlap")
        self._regions.append(_Region(interval))
        return len(self._regions) - 1

    def _find(self, addr: int) -> _Region:
        for region in self._regions:
            if region.interval.contains(addr):
                return region
        raise KeyError(f"no coherence region covers {addr:#x}")

    def acquire(self, addr: int, instance: int, write: bool, t: int) -> int:
        """Acquire read or write permission; returns the cycle granted."""
        region = self._find(addr)
        if region.locked and region.owner != instance:
            raise RuntimeError("region locked by another instance")
        if write:
            if region.owner == instance and not region.readers - {instance}:
                return t  # already exclusive
            # Invalidate other readers/owner: one message round.
            cost = self.message_cycles if (region.readers - {instance}
                                           or region.owner not in (None, instance)) else 0
            region.owner = instance
            region.readers = {instance}
            if cost:
                self.stats.add("ownership_transfers")
            return t + cost
        if instance in region.readers:
            return t
        cost = self.message_cycles if region.owner not in (None, instance) else 0
        region.readers.add(instance)
        if region.owner != instance:
            region.owner = None  # downgraded to shared
        return t + cost

    def lock(self, addr: int, instance: int) -> None:
        """Hold the region for the duration of an executing instruction."""
        region = self._find(addr)
        if region.owner != instance:
            raise RuntimeError("must own a region to lock it")
        region.locked = True

    def unlock(self, addr: int, instance: int) -> None:
        region = self._find(addr)
        if region.owner != instance:
            raise RuntimeError("unlock by non-owner")
        region.locked = False

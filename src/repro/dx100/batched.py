"""Batched front-end: tile-granular DX100 stream/indirect kernels.

The accelerator half of the ``SystemConfig.frontend = "batched"`` split:

* :class:`BatchedStreamUnit` routes the SLD/SST issue loop through
  :meth:`repro.cache.batched.BatchedHierarchy.access_lines` — one decode,
  one fused function for the whole tile instead of two calls per line.

* :class:`BatchedIndirectUnit` keeps the fill -> request -> response
  pipeline of the scalar unit but feeds the Row Table through
  :meth:`RowTable.insert_decoded` with coordinate tuples pre-zipped from
  one ``map_arrays`` decode, and drops the Word Table entirely: the only
  thing the scalar response stage reads from the linked list is the chain
  *length*, which the Row Table already carries as ``PendingLine.words``
  (every insert bumps the column record, every drain snapshots it), so the
  two numpy scalar writes per element vanish with no observable change.

Both units share the scalar classes' drain/request stage and functional
(numpy) execution; the differential suite runs the same tiles through both
front-ends and asserts identical timings, stats, and DRAM streams.
"""

from __future__ import annotations

import numpy as np

from repro.common.types import AluOp, DType
from repro.dx100.alu import RMW_UFUNCS
from repro.dx100.indirect_unit import (RESPONSE_LATENCY, IndirectResult,
                                       IndirectUnit)
from repro.dx100.row_table import RowTable
from repro.dx100.stream_unit import StreamUnit


class BatchedStreamUnit(StreamUnit):
    """SLD/SST over the fused whole-tile LLC path."""

    def _issue_lines(self, lines: np.ndarray, is_write: bool, t_start: int,
                     avail: tuple[int, float] | None = None,
                     elems_per_line: float = 1.0) -> tuple[int, int]:
        if not len(lines):
            return t_start, t_start
        return self.hierarchy.access_lines(
            lines, is_write, t_start,
            window=self.config.request_table,
            rate=self.config.stream_issue_rate,
            avail=avail, elems_per_line=elems_per_line,
            tenant=self.tenant)


class BatchedIndirectUnit(IndirectUnit):
    """ILD/IST/IRMW with decoded bulk Row Table fills."""

    def execute(self, kind: str, base: int, dtype: DType,
                indices: np.ndarray, cond: np.ndarray | None,
                src_values: np.ndarray | None, t_start: int,
                op: AluOp | None = None,
                index_avail: tuple[int, float] | None = None,
                tile: int = -1) -> IndirectResult:
        if kind not in ("ld", "st", "rmw"):
            raise ValueError(f"unknown indirect kind {kind!r}")
        if kind == "rmw" and (op is None or not op.is_commutative_associative):
            raise ValueError("IRMW needs a commutative+associative op")

        indices = np.asarray(indices, dtype=np.int64)
        n_tile = len(indices)
        iters = np.arange(n_tile, dtype=np.int64)
        if cond is not None:
            if len(cond) < n_tile:
                raise ValueError("condition tile shorter than index tile")
            keep = np.asarray(cond[:n_tile]) != 0
            iters = iters[keep]
            sel_idx = indices[keep]
        else:
            sel_idx = indices
        addrs = base + sel_idx * dtype.nbytes

        t = t_start + (self.tlb.translate_tile(addrs) if addrs.size else 0)
        fields = self.mapper.map_arrays(addrs) if addrs.size else None

        row_table = RowTable(self.config.row_table_rows,
                             self.config.row_table_cols)
        drains = 0
        pending_reqs: list = []

        fill_rate = self.config.fill_rate
        avail_t0, avail_rate = index_avail if index_avail else (t, float("inf"))
        fill_cursor = float(t)

        if fields is not None:
            # One decode, the per-element loop then touches Python lists
            # only: bank keys pre-zipped for insert_decoded, rows/lines as
            # flat ints.
            keys = list(zip(fields["channel"].tolist(),
                            fields["rank"].tolist(),
                            fields["bankgroup"].tolist(),
                            fields["bank"].tolist()))
            rows = fields["row"].tolist()
            lines = fields["line"].tolist()
            it_list = iters.tolist()
            snoop = self.hierarchy.snoop
            insert = row_table.insert_decoded
            for e in range(len(it_list)):
                fill_cursor = max(fill_cursor + 1.0 / fill_rate,
                                  avail_t0 + e / avail_rate)
                accepted, _prev = insert(keys[e], rows[e], lines[e],
                                         it_list[e], snoop)
                if not accepted:
                    # Capacity drain, then retry (must succeed on empty table).
                    pending_reqs += self._drain(row_table, int(fill_cursor),
                                                kind, tile)
                    drains += 1
                    accepted, _prev = insert(keys[e], rows[e], lines[e],
                                             it_list[e], snoop)
                    if not accepted:
                        raise RuntimeError("insert failed on empty Row Table")

        pending_reqs += self._drain(row_table, int(fill_cursor), kind, tile)
        drains += 1
        if self.obs is not None:
            self.obs.tile_phase(tile, "fill", t_start, int(fill_cursor),
                                lines=int(iters.size))

        # ------------------------------------------------------- response
        finish = int(fill_cursor)
        served = 0
        wb_lo = wb_hi = -1
        wb_lines = 0
        for pline, access in pending_reqs:
            completion = access.resolve(self.dram)
            served += pline.words
            if kind in ("st", "rmw") and not pline.h_bit:
                wr = self.dram.access(pline.line_addr, is_write=True,
                                      arrival=completion + 1,
                                      decoded=pline.coord + (pline.row,),
                                      tenant=self.tenant)
                wb_lines += 1
                if wb_lo < 0 or wr.arrival < wb_lo:
                    wb_lo = wr.arrival
                if wr.arrival > wb_hi:
                    wb_hi = wr.arrival
                completion = max(completion, wr.arrival)
            finish = max(finish, completion)
        if iters.size and served != iters.size:
            raise RuntimeError(
                f"row table served {served} of {iters.size} elements"
            )
        finish += RESPONSE_LATENCY
        if self.obs is not None:
            self.obs.tile_phase(tile, "response", int(fill_cursor), finish,
                                lines=len(pending_reqs))
            if wb_lines:
                self.obs.tile_phase(tile, "writeback", wb_lo, wb_hi,
                                    lines=wb_lines)

        # ------------------------------------------------------ functional
        values = None
        if kind == "ld":
            values = np.zeros(n_tile, dtype=dtype.numpy_name)
            if addrs.size:
                values[iters] = self.hostmem.read_words(addrs, dtype)
        elif kind == "st":
            if addrs.size:
                src = np.asarray(src_values)[iters]
                self.hostmem.write_words(addrs, src, dtype)
        else:  # rmw
            if addrs.size:
                src = np.asarray(src_values)[iters]
                self.hostmem.rmw_words(addrs, src, dtype, RMW_UFUNCS[op])

        unique = row_table.unique_lines
        self.stats.add(f"i{kind}_elements", iters.size)
        self.stats.add(f"i{kind}_lines", unique)
        self.stats.add("indirect_drains", drains)
        return IndirectResult(values=values, finish=finish,
                              elements=int(iters.size), unique_lines=unique,
                              drains=drains, start=t,
                              busy_until=int(fill_cursor))

"""DX100: the programmable data access accelerator (the paper's contribution).

Public surface:

* :class:`DX100` — the timing-integrated accelerator instance.
* :class:`FunctionalDX100` — the timing-free reference executor.
* :class:`ProgramBuilder` + :mod:`repro.dx100.isa` — the programming API.
* :class:`HostMemory` — the simulated physical memory workloads allocate in.
* :func:`area_power` — the Table 4 area/power model.
"""

from repro.dx100.accelerator import DX100, InstrRecord
from repro.dx100.alu import AluUnit
from repro.dx100.api import ProgramBuilder, RegWrite, WaitTiles
from repro.dx100.area import area_power, llc_equivalent_mb
from repro.dx100.coherency import CoherencyAgent, RegionCoherence
from repro.dx100.disasm import disasm, format_program, format_timeline
from repro.dx100.encoding import decode, encode
from repro.dx100.energy import EnergyReport, energy_estimate, energy_ratio
from repro.dx100.functional import FunctionalDX100
from repro.dx100.hostmem import HostMemory
from repro.dx100.indirect_unit import IndirectUnit
from repro.dx100.isa import Instr, Opcode
from repro.dx100.range_fuser import RangeFuser, plan_range_chunks
from repro.dx100.regfile import RegisterFile
from repro.dx100.row_table import RowTable
from repro.dx100.scratchpad import SPD_BASE, Scratchpad
from repro.dx100.stream_unit import StreamUnit
from repro.dx100.tlb import TLB
from repro.dx100.word_table import WordTable

__all__ = [
    "AluUnit",
    "CoherencyAgent",
    "DX100",
    "FunctionalDX100",
    "HostMemory",
    "IndirectUnit",
    "Instr",
    "InstrRecord",
    "Opcode",
    "ProgramBuilder",
    "RangeFuser",
    "RegWrite",
    "RegionCoherence",
    "RegisterFile",
    "RowTable",
    "SPD_BASE",
    "Scratchpad",
    "StreamUnit",
    "TLB",
    "WaitTiles",
    "WordTable",
    "area_power",
    "decode",
    "disasm",
    "format_program",
    "format_timeline",
    "encode",
    "EnergyReport",
    "energy_estimate",
    "energy_ratio",
    "llc_equivalent_mb",
    "plan_range_chunks",
]

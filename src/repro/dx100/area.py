"""Area and power model (the paper's Table 4).

The per-module 28 nm numbers come from the paper's Design Compiler
synthesis; we reproduce the arithmetic: module totals, the 28 nm -> 14 nm
technology scaling (Stillmaker & Baas equations, which the paper applies to
get ~1.5 mm^2), and the processor overhead against Skylake die-shot
estimates (10.1 mm^2 per core, 2.3 mm^2 per 2 MB LLC slice).

The scratchpad entry scales linearly with configured capacity so tile-size
sensitivity studies (Figure 13) can report their area cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DX100Config

# Table 4, 28nm: module -> (area mm^2, power mW)
TABLE4_28NM = {
    "range_fuser": (0.001, 0.26),
    "alu": (0.095, 74.83),
    "stream_access": (0.012, 6.03),
    "indirect_access": (0.323, 83.70),
    "controller": (0.002, 0.43),
    "interface": (0.045, 30.0),
    "coherency_agent": (0.010, 3.12),
    "register_file": (0.005, 1.56),
    "scratchpad": (3.566, 577.03),
}

# Stillmaker & Baas scaling from 28 nm to 14 nm as applied in the paper:
# 4.061 mm^2 -> ~1.5 mm^2, i.e. an area factor of ~0.369.
AREA_SCALE_28_TO_14 = 1.5 / 4.061
SKYLAKE_CORE_MM2_14NM = 10.1
LLC_SLICE_2MB_MM2_14NM = 2.3

_REFERENCE_SPD_BYTES = 2 * 1024 * 1024  # 32 tiles x 16K x 4B


@dataclass
class AreaReport:
    modules: dict[str, tuple[float, float]]
    total_area_mm2: float
    total_power_mw: float
    area_14nm_mm2: float
    overhead_percent: float


def area_power(config: DX100Config | None = None, cores: int = 4) -> AreaReport:
    """Area/power breakdown for a DX100 instance.

    The scratchpad scales with the configured capacity; every other module
    is capacity-independent at first order.
    """
    cfg = config or DX100Config()
    scale_spd = cfg.spd_bytes / _REFERENCE_SPD_BYTES
    modules = {}
    for name, (area, power) in TABLE4_28NM.items():
        if name == "scratchpad":
            modules[name] = (area * scale_spd, power * scale_spd)
        else:
            modules[name] = (area, power)
    total_area = sum(a for a, _ in modules.values())
    total_power = sum(p for _, p in modules.values())
    area_14 = total_area * AREA_SCALE_28_TO_14
    processor_area = cores * SKYLAKE_CORE_MM2_14NM
    overhead = 100.0 * area_14 / processor_area
    return AreaReport(modules=modules, total_area_mm2=total_area,
                      total_power_mw=total_power, area_14nm_mm2=area_14,
                      overhead_percent=overhead)


def llc_equivalent_mb(config: DX100Config | None = None) -> float:
    """How much LLC the DX100 area could buy instead (the paper gives the
    baseline a 2 MB larger LLC for fairness, Section 5)."""
    report = area_power(config)
    return 2.0 * report.area_14nm_mm2 / LLC_SLICE_2MB_MM2_14NM

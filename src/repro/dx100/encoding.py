"""192-bit binary encoding of DX100 instructions.

Instructions travel from cores to DX100 as three 64-bit memory-mapped
stores (Section 3.5).  The layout packs, LSB first:

word 0:  opcode(4) | dtype(3) | op(5) | td(6) | td2(6) | ts1(6) | ts2(6)
         | tc(6) | rs1(6) | rs2(6) | rs3(6)   (= 60 bits used)
word 1:  base physical address (64)
word 2:  reserved / zero (64)

Tile and register operand fields use 6 bits; the all-ones value (63)
encodes "absent".
"""

from __future__ import annotations

from repro.common.types import AluOp, DType
from repro.dx100.isa import Instr, Opcode

_NONE = 63
_DTYPES = list(DType)
_OPS = list(AluOp)

_FIELDS = (  # (name, width) in word 0, LSB first after opcode/dtype/op
    ("td", 6), ("td2", 6), ("ts1", 6), ("ts2", 6), ("tc", 6),
    ("rs1", 6), ("rs2", 6), ("rs3", 6),
)


def encode(instr: Instr) -> tuple[int, int, int]:
    """Pack an instruction into three 64-bit words."""
    word0 = instr.opcode.value & 0xF
    shift = 4
    dtype_code = _DTYPES.index(instr.dtype) + 1 if instr.dtype else 0
    word0 |= dtype_code << shift
    shift += 3
    op_code = _OPS.index(instr.op) + 1 if instr.op else 0
    word0 |= op_code << shift
    shift += 5
    for name, width in _FIELDS:
        value = getattr(instr, name)
        if value is None:
            value = _NONE
        elif not 0 <= value < _NONE:
            raise ValueError(f"operand {name}={value} out of range")
        word0 |= value << shift
        shift += width
    base = instr.base if instr.base is not None else 0
    if not 0 <= base < (1 << 64):
        raise ValueError("base address out of range")
    return (word0, base, 0)


def decode(words: tuple[int, int, int]) -> Instr:
    """Unpack three 64-bit words into an instruction."""
    word0, base, _ = words
    opcode = Opcode(word0 & 0xF)
    shift = 4
    dtype_code = (word0 >> shift) & 0x7
    dtype = _DTYPES[dtype_code - 1] if dtype_code else None
    shift += 3
    op_code = (word0 >> shift) & 0x1F
    op = _OPS[op_code - 1] if op_code else None
    shift += 5
    fields = {}
    for name, width in _FIELDS:
        value = (word0 >> shift) & ((1 << width) - 1)
        fields[name] = None if value == _NONE else value
        shift += width
    has_base = opcode in (Opcode.ILD, Opcode.IST, Opcode.IRMW,
                          Opcode.SLD, Opcode.SST)
    return Instr(opcode=opcode, dtype=dtype,
                 base=base if has_base else None, op=op, **fields)

"""The Indirect Access unit's Word Table (Figure 4c).

For each tile iteration the table stores the word offset within its cache
line and a link to the *previous* iteration that touched the same line,
forming a per-line linked list.  The response stage walks the list from the
Row Table's tail pointer to find every tile element served by one returning
cache line.
"""

from __future__ import annotations

import numpy as np


class WordTable:
    """Linked word records, indexed by tile iteration number."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._valid = np.zeros(capacity, dtype=bool)
        self._offset = np.zeros(capacity, dtype=np.int32)
        self._prev = np.full(capacity, -1, dtype=np.int64)

    def insert(self, iteration: int, word_offset: int,
               prev_iteration: int | None) -> None:
        if not 0 <= iteration < self.capacity:
            raise IndexError(f"iteration {iteration} out of range")
        if self._valid[iteration]:
            raise ValueError(f"iteration {iteration} already inserted")
        self._valid[iteration] = True
        self._offset[iteration] = word_offset
        self._prev[iteration] = -1 if prev_iteration is None else prev_iteration

    def traverse(self, tail_iteration: int) -> list[tuple[int, int]]:
        """Walk the linked list from its tail; returns (iteration, offset)
        pairs in *insertion* order (oldest first)."""
        chain: list[tuple[int, int]] = []
        i = tail_iteration
        while i >= 0:
            if not self._valid[i]:
                raise ValueError(f"broken chain at iteration {i}")
            chain.append((i, int(self._offset[i])))
            i = int(self._prev[i])
        chain.reverse()
        return chain

    def clear(self) -> None:
        self._valid[:] = False
        self._prev[:] = -1

    @property
    def count(self) -> int:
        return int(self._valid.sum())

"""Human-readable disassembly of DX100 instructions and programs."""

from __future__ import annotations

from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.isa import Instr, Opcode


def disasm(instr: Instr) -> str:
    """One-line assembly-like rendering of an instruction."""
    cond = f" if T{instr.tc}" if instr.tc is not None else ""
    dt = f".{instr.dtype.value}" if instr.dtype else ""
    op = instr.op.value if instr.op else ""
    base = f"0x{instr.base:x}" if instr.base is not None else "?"
    if instr.opcode == Opcode.ILD:
        return f"ILD{dt}  T{instr.td} <- [{base} + T{instr.ts1}]{cond}"
    if instr.opcode == Opcode.IST:
        return f"IST{dt}  [{base} + T{instr.ts1}] <- T{instr.ts2}{cond}"
    if instr.opcode == Opcode.IRMW:
        return (f"IRMW{dt} [{base} + T{instr.ts1}] {op}= "
                f"T{instr.ts2}{cond}")
    if instr.opcode == Opcode.SLD:
        return (f"SLD{dt}  T{instr.td} <- [{base} + (R{instr.rs1}:"
                f"R{instr.rs2}:R{instr.rs3})]{cond}")
    if instr.opcode == Opcode.SST:
        return (f"SST{dt}  [{base} + (R{instr.rs1}:R{instr.rs2}:"
                f"R{instr.rs3})] <- T{instr.ts1}{cond}")
    if instr.opcode == Opcode.ALUV:
        return (f"ALUV{dt} T{instr.td} <- T{instr.ts1} {op} "
                f"T{instr.ts2}{cond}")
    if instr.opcode == Opcode.ALUS:
        return (f"ALUS{dt} T{instr.td} <- T{instr.ts1} {op} "
                f"R{instr.rs1}{cond}")
    if instr.opcode == Opcode.RNG:
        return (f"RNG   (T{instr.td}, T{instr.td2}) <- fuse[T{instr.ts1}, "
                f"T{instr.ts2}) base=R{instr.rs1}{cond}")
    raise ValueError(f"unknown opcode {instr.opcode}")


def format_timeline(records, width: int = 60) -> str:
    """Gantt-style text timeline of executed instruction records.

    Each row is one instruction; ``.`` marks dispatch-to-start waiting
    (scoreboard/unit hazards) and ``#`` marks start-to-finish execution,
    so unit overlap and the finish-bit pipelining are visible at a glance.
    """
    if not records:
        return "(no instructions executed)"
    t0 = min(r.dispatch for r in records)
    t1 = max(r.finish for r in records)
    span = max(1, t1 - t0)

    def col(t: int) -> int:
        return round((t - t0) * (width - 1) / span)

    lines = []
    for r in records:
        row = [" "] * width
        for x in range(col(r.dispatch), col(r.start)):
            row[x] = "."
        for x in range(col(r.start), col(r.finish) + 1):
            row[x] = "#"
        label = disasm(r.instr).split("  ")[0]
        lines.append(f"{label:9s} |{''.join(row)}| "
                     f"{r.start}..{r.finish}")
    return "\n".join(lines)


def format_program(items) -> str:
    """Render a full program (RegWrites, instructions, waits)."""
    lines = []
    for item in items:
        if isinstance(item, RegWrite):
            lines.append(f"      R{item.reg} <- {item.value}")
        elif isinstance(item, WaitTiles):
            tiles = ", ".join(f"T{t}" for t in item.tiles)
            lines.append(f"      wait({tiles})")
        elif isinstance(item, Instr):
            lines.append(f"      {disasm(item)}")
        else:
            lines.append(f"      <core work: {item!r}>")
    return "\n".join(lines)

"""The Range Fuser unit (Section 3.4, Figure 5).

Indirect range loops (``j = H[K[i]] to H[K[i]+1]``) cover only a few
iterations each — too few for bulk access.  The fuser concatenates many
small [lo, hi) ranges into one long inner-index tile, with a parallel tile
naming the outer iteration each inner index came from.
"""

from __future__ import annotations

import numpy as np


class RangeFuser:
    """Fuses per-iteration ranges into (outer, inner) induction tiles."""

    def __init__(self, rate: int = 4) -> None:
        # Inner indices produced per cycle (timing only).
        self.rate = rate

    def fuse(self, lows: np.ndarray, highs: np.ndarray,
             outer_ids: np.ndarray | None = None,
             cond: np.ndarray | None = None,
             capacity: int | None = None
             ) -> tuple[np.ndarray, np.ndarray]:
        """Return (outer_tile, inner_tile).

        ``outer_ids[i]`` is the value recorded for range ``i`` (defaults to
        ``i`` itself); ``cond`` masks ranges out entirely.  Raises if the
        fused output exceeds ``capacity`` — callers chunk their input with
        :func:`plan_range_chunks`.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.shape != highs.shape:
            raise ValueError("low/high tiles differ in length")
        if outer_ids is None:
            outer_ids = np.arange(len(lows), dtype=np.int64)
        else:
            outer_ids = np.asarray(outer_ids, dtype=np.int64)
        if cond is not None:
            keep = np.asarray(cond) != 0
            lows, highs, outer_ids = lows[keep], highs[keep], outer_ids[keep]
        counts = np.maximum(highs - lows, 0)
        total = int(counts.sum())
        if capacity is not None and total > capacity:
            raise ValueError(
                f"fused range of {total} exceeds tile capacity {capacity}"
            )
        outer = np.repeat(outer_ids, counts)
        # Inner indices: for each range, lo .. hi-1.
        ends = np.cumsum(counts)
        starts = ends - counts
        inner = np.arange(total, dtype=np.int64)
        inner += np.repeat(lows - starts, counts)
        return outer, inner

    def cycles(self, produced: int) -> int:
        return -(-produced // self.rate)


def plan_range_chunks(lows, highs, capacity: int) -> list[tuple[int, int]]:
    """Split range-list index space into [start, end) chunks whose fused
    output each fits in ``capacity`` inner elements."""
    lows = np.asarray(lows, dtype=np.int64)
    highs = np.asarray(highs, dtype=np.int64)
    counts = np.maximum(highs - lows, 0)
    chunks: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for i, c in enumerate(counts):
        c = int(c)
        if c > capacity:
            raise ValueError(
                f"single range of {c} exceeds tile capacity {capacity}"
            )
        if acc + c > capacity:
            chunks.append((start, i))
            start = i
            acc = 0
        acc += c
    if start < len(counts) or not chunks:
        chunks.append((start, len(counts)))
    return chunks

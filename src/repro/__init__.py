"""DX100 reproduction: a programmable data access accelerator for
indirection (Khadem et al., ISCA 2025), with the DRAM / cache / core
substrates, a DMP prefetcher baseline, an MLIR-analogue compiler, the 12
evaluation workloads, and the benchmark harness that regenerates every
figure and table of the paper.

Subpackages: ``repro.common`` (configuration, types), ``repro.dram``,
``repro.cache``, ``repro.core`` (substrates), ``repro.dx100`` (the
contribution), ``repro.prefetch`` (DMP), ``repro.compiler``,
``repro.workloads``, ``repro.sim`` (harness).  ``python -m repro`` is the
command-line runner.
"""

__version__ = "1.0.0"

"""The paper's benchmark workloads (Section 5) and microbenchmarks."""

from repro.workloads.base import CoreWork, Workload
from repro.workloads.extensions import (
    ConjugateGradientF64, ConnectedComponents, IntegerSortBucketed,
)
from repro.workloads.gap import BFS, BetweennessCentrality, PageRank
from repro.workloads.hashjoin import RadixJoinChaining, RadixJoinHistogram
from repro.workloads.micro import (
    GatherAllMiss, GatherFull, GatherSPD, RMWAtomic, RMWNoAtom, Scatter,
)
from repro.workloads.nas import ConjugateGradient, IntegerSort
from repro.workloads.registry import (
    FULL_BENCHMARKS, MAIN_BENCHMARKS, QUICK_BENCHMARKS,
)
from repro.workloads.spatter import SpatterXRAGE
from repro.workloads.spatter_patterns import SpatterKernel, expand_spec
from repro.workloads.ume import GZP, GZPI, GZZ, GZZI

__all__ = [
    "BFS",
    "BetweennessCentrality",
    "ConjugateGradient",
    "ConjugateGradientF64",
    "ConnectedComponents",
    "CoreWork",
    "FULL_BENCHMARKS",
    "GatherAllMiss",
    "GatherFull",
    "GatherSPD",
    "GZP",
    "GZPI",
    "GZZ",
    "GZZI",
    "IntegerSort",
    "IntegerSortBucketed",
    "MAIN_BENCHMARKS",
    "PageRank",
    "QUICK_BENCHMARKS",
    "RadixJoinChaining",
    "RadixJoinHistogram",
    "RMWAtomic",
    "RMWNoAtom",
    "Scatter",
    "SpatterKernel",
    "SpatterXRAGE",
    "expand_spec",
    "Workload",
]

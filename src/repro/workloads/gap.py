"""GAP benchmark suite: BFS, PageRank, Betweenness Centrality.

One iteration of each algorithm over a uniform random graph in CSR form
(the paper uses 2^20-2^22 nodes at average degree 15; we scale the node
count down and process a frontier/node slice sized to the Python simulator,
preserving the Table 1 patterns):

* BFS — ``ST parent[adj[j]] = u if dist[adj[j]] == INF``,
  indirect range loop ``j = H[K[i]] .. H[K[i]+1]``;
* PR  — ``RMW score_new[adj[j]] += contrib[i]``, direct range loop;
* BC  — ``RMW sigma[adj[j]] += sigma[u] if depth[adj[j]] == d+1``,
  indirect range loop.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.dx100.range_fuser import plan_range_chunks
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_EXTRA, PC_INDEX, PC_INDIRECT, PC_VALUE,
    Workload,
)

INF = (1 << 31) - 1


def make_uniform_csr(nodes: int, degree: int, rng) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random graph in CSR: (offsets H, neighbors adj)."""
    degrees = rng.integers(max(1, degree // 2), degree * 3 // 2 + 1, nodes)
    h = np.zeros(nodes + 1, dtype=np.int64)
    h[1:] = np.cumsum(degrees)
    adj = rng.integers(0, nodes, int(h[-1])).astype(np.int64)
    return h, adj


def make_kron_csr(scale: int, edge_factor: int, rng,
                  a: float = 0.57, b: float = 0.19,
                  c: float = 0.19) -> tuple[np.ndarray, np.ndarray]:
    """Kronecker (R-MAT) graph in CSR form — the GAP suite's default
    generator, with its (0.57, 0.19, 0.19, 0.05) initiator matrix.

    ``scale`` is log2(nodes); ``edge_factor`` is edges per node.  Returns
    (offsets H, neighbors adj) sorted by source; the power-law degree
    distribution is what distinguishes kron runs from the paper's uniform
    graphs.
    """
    nodes = 1 << scale
    edges = nodes * edge_factor
    src = np.zeros(edges, dtype=np.int64)
    dst = np.zeros(edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(edges)
        # Quadrant probabilities: a | b / c | d.
        src_bit = (r >= a + b).astype(np.int64)
        r2 = rng.random(edges)
        dst_bit = np.where(src_bit == 0, (r2 >= a / (a + b)),
                           (r2 >= c / (1.0 - a - b))).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    h = np.zeros(nodes + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=nodes)
    h[1:] = np.cumsum(counts)
    return h, dst.astype(np.int64)


class _GraphWorkload(Workload):
    suite = "GAP"

    def __init__(self, scale: int = 1 << 13, seed: int = 0,
                 nodes: int = 1 << 18, degree: int = 15) -> None:
        super().__init__(scale, seed)
        self.nodes = nodes
        self.degree = degree

    def _make_graph(self, mem: HostMemory) -> None:
        self.h, self.adj = make_uniform_csr(self.nodes, self.degree,
                                            self.rng)
        self.h_base = mem.place("H", self.h)
        self.adj_base = mem.place("adj", self.adj)

    def non_roi_instructions(self) -> float:
        # Graph kernels iterate edges, not nodes: frontier setup, graph
        # loading, and the non-offloaded epilogue scale with the edges
        # processed per iteration.
        return 4.0 * self.scale * self.degree


class BFS(_GraphWorkload):
    """One bottom-up-style frontier expansion."""

    name = "BFS"
    pattern = "ST A[B[j]] if (D[E[j]] < F), j = H[K[i]] to H[K[i]+1]"

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self._make_graph(mem)
        self.frontier = np.sort(self.rng.choice(
            self.nodes, size=self.scale, replace=False)).astype(np.int64)
        self.k_base = mem.place("K", self.frontier)
        dist = np.full(self.nodes, INF, dtype=np.int64)
        visited = self.rng.random(self.nodes) < 0.5
        dist[visited] = self.rng.integers(0, 5, int(visited.sum()))
        self.dist = dist
        self.dist_base = mem.place("dist", dist)
        self.parent_base = mem.place(
            "parent", np.full(self.nodes, -1, dtype=np.int64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        # Plain-int views: per-element numpy indexing in the emit loop
        # dominates trace-construction time otherwise.
        frontier = self.frontier.tolist()
        h_vals = self.h.tolist()
        adj = self.adj.tolist()
        dist = self.dist.tolist()
        k_base, h_base, adj_base = self.k_base, self.h_base, self.adj_base
        dist_base, parent_base = self.dist_base, self.parent_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                u = frontier[i]
                tb.load(k_base + 8 * i, pc=PC_INDEX, extra=2)
                hk = tb.load(h_base + 8 * u, pc=PC_EXTRA, extra=2)
                for j in range(h_vals[u], h_vals[u + 1]):
                    v = adj[j]
                    aj = tb.load(adj_base + 8 * j, deps=(hk,),
                                 pc=PC_INDEX, extra=1, tag=j)
                    dv = tb.load(dist_base + 8 * v, deps=(aj,),
                                 pc=PC_INDIRECT, extra=BASE_ADDR_CALC - 2,
                                 tag=j)
                    if dist[v] == INF:
                        # Condition is a speculated branch; the address
                        # data-depends on the neighbour id only.
                        tb.store(parent_base + 8 * v, deps=(aj,),
                                 pc=PC_VALUE, extra=2, tag=j)
                    else:
                        tb.compute(2)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        lows = self.h[self.frontier]
        highs = self.h[self.frontier + 1]
        for f0, f1 in plan_range_chunks(lows, highs, config.tile_elems):
            if lows[f0:f1].size == 0 or (highs[f0:f1] - lows[f0:f1]).sum() == 0:
                continue
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, self.k_base, f0, f1)
            t_hlo = pb.ild(DType.I64, self.h_base, t_k)
            t_k1 = pb.alus(DType.I64, AluOp.ADD, t_k, 1)
            t_hhi = pb.ild(DType.I64, self.h_base, t_k1)
            t_outer, t_inner = pb.rng(t_hlo, t_hhi, outer_base=f0)
            t_adj = pb.ild(DType.I64, self.adj_base, t_inner)
            t_dist = pb.ild(DType.I64, self.dist_base, t_adj)
            t_cond = pb.alus(DType.I64, AluOp.EQ, t_dist, INF)
            t_u = pb.ild(DType.I64, self.k_base, t_outer)
            pb.ist(DType.I64, self.parent_base, t_adj, t_u, tc=t_cond)
            pb.wait(t_adj)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        return {}  # order-dependent: validated by validate() below

    def validate(self, mem: HostMemory) -> None:
        parent = mem.view("parent")
        # Unvisited neighbours of frontier nodes must have gained a parent
        # that is a frontier node adjacent to them; others stay -1.
        eligible = set()
        valid_parents: dict[int, set[int]] = {}
        for u in self.frontier.tolist():
            for j in range(int(self.h[u]), int(self.h[u + 1])):
                v = int(self.adj[j])
                if self.dist[v] == INF:
                    eligible.add(v)
                    valid_parents.setdefault(v, set()).add(u)
        for v in range(self.nodes):
            if v in eligible:
                if int(parent[v]) not in valid_parents[v]:
                    raise AssertionError(f"BFS: bad parent for node {v}")
            elif parent[v] != -1:
                raise AssertionError(f"BFS: spurious parent for node {v}")

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.dist_base + 8 * self.adj}


class PageRank(_GraphWorkload):
    """One push-style PR iteration over a node slice."""

    name = "PR"
    pattern = "RMW A[B[j]], j = H[i] to H[i+1]"

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self._make_graph(mem)
        # Integer (fixed-point) contributions keep reordered sums exact.
        self.contrib = self.rng.integers(1, 1000,
                                         self.nodes).astype(np.int64)
        self.contrib_base = mem.place("contrib", self.contrib)
        self.score_base = mem.place(
            "score_new", np.zeros(self.nodes, dtype=np.int64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        h_vals = self.h.tolist()
        adj = self.adj.tolist()
        h_base, contrib_base = self.h_base, self.contrib_base
        adj_base, score_base = self.adj_base, self.score_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                hk = tb.load(h_base + 8 * i, pc=PC_EXTRA, extra=2)
                tb.load(contrib_base + 8 * i, pc=PC_VALUE, extra=1)
                for j in range(h_vals[i], h_vals[i + 1]):
                    aj = tb.load(adj_base + 8 * j, deps=(hk,),
                                 pc=PC_INDEX, extra=1, tag=j)
                    tb.rmw(score_base + 8 * adj[j],
                           deps=(aj,), atomic=True, pc=PC_INDIRECT,
                           extra=BASE_ADDR_CALC - 2, tag=j)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        lows, highs = self.h[:self.scale], self.h[1:self.scale + 1]
        for r0, r1 in plan_range_chunks(lows, highs, config.tile_elems):
            if self.h[r1] == self.h[r0]:
                continue
            pb = ProgramBuilder(config)
            t_lo = pb.sld(DType.I64, self.h_base, r0, r1)
            t_hi = pb.sld(DType.I64, self.h_base, r0 + 1, r1 + 1)
            t_outer, t_inner = pb.rng(t_lo, t_hi, outer_base=r0)
            t_adj = pb.ild(DType.I64, self.adj_base, t_inner)
            t_c = pb.ild(DType.I64, self.contrib_base, t_outer)
            pb.irmw(DType.I64, self.score_base, AluOp.ADD, t_adj, t_c)
            pb.wait(t_adj)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        score = np.zeros(self.nodes, dtype=np.int64)
        for i in range(self.scale):
            j0, j1 = int(self.h[i]), int(self.h[i + 1])
            np.add.at(score, self.adj[j0:j1], self.contrib[i])
        return {"score_new": score}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.score_base + 8 * self.adj}


class BetweennessCentrality(_GraphWorkload):
    """One forward sigma-accumulation level of Brandes' algorithm."""

    name = "BC"
    pattern = "RMW A[B[j]] if (D[E[j]] == F), j = H[K[i]] to H[K[i]+1]"

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self._make_graph(mem)
        self.depth = self.rng.integers(0, 4, self.nodes).astype(np.int64)
        self.level = 2
        # Sources live strictly above the target level (Brandes levels are
        # disjoint), so sigma reads and sigma updates never alias.
        candidates = np.nonzero(self.depth != self.level)[0]
        self.frontier = np.sort(self.rng.choice(
            candidates, size=self.scale, replace=False)).astype(np.int64)
        self.k_base = mem.place("K", self.frontier)
        self.depth_base = mem.place("depth", self.depth)
        self.sigma0 = self.rng.integers(1, 100, self.nodes).astype(np.int64)
        self.sigma_base = mem.place("sigma", self.sigma0.copy())

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        frontier = self.frontier.tolist()
        h_vals = self.h.tolist()
        adj = self.adj.tolist()
        depth = self.depth.tolist()
        level = self.level
        k_base, h_base, sigma_base = (self.k_base, self.h_base,
                                      self.sigma_base)
        adj_base, depth_base = self.adj_base, self.depth_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                u = frontier[i]
                tb.load(k_base + 8 * i, pc=PC_INDEX, extra=2)
                hk = tb.load(h_base + 8 * u, pc=PC_EXTRA, extra=2)
                su = tb.load(sigma_base + 8 * u, pc=PC_VALUE, extra=1)
                for j in range(h_vals[u], h_vals[u + 1]):
                    v = adj[j]
                    aj = tb.load(adj_base + 8 * j, deps=(hk,),
                                 pc=PC_INDEX, extra=1, tag=j)
                    dv = tb.load(depth_base + 8 * v, deps=(aj,),
                                 pc=PC_INDIRECT, extra=3, tag=j)
                    if depth[v] == level:
                        tb.rmw(sigma_base + 8 * v, deps=(aj, su),
                               atomic=True, pc=PC_VALUE,
                               extra=BASE_ADDR_CALC - 3, tag=j)
                    else:
                        tb.compute(2)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        lows = self.h[self.frontier]
        highs = self.h[self.frontier + 1]
        for f0, f1 in plan_range_chunks(lows, highs, config.tile_elems):
            if (highs[f0:f1] - lows[f0:f1]).sum() == 0:
                continue
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, self.k_base, f0, f1)
            t_hlo = pb.ild(DType.I64, self.h_base, t_k)
            t_k1 = pb.alus(DType.I64, AluOp.ADD, t_k, 1)
            t_hhi = pb.ild(DType.I64, self.h_base, t_k1)
            t_outer, t_inner = pb.rng(t_hlo, t_hhi, outer_base=f0)
            t_adj = pb.ild(DType.I64, self.adj_base, t_inner)
            t_depth = pb.ild(DType.I64, self.depth_base, t_adj)
            t_cond = pb.alus(DType.I64, AluOp.EQ, t_depth, self.level)
            t_u = pb.ild(DType.I64, self.k_base, t_outer)
            t_su = pb.ild(DType.I64, self.sigma_base, t_u)
            pb.irmw(DType.I64, self.sigma_base, AluOp.ADD, t_adj, t_su,
                    tc=t_cond)
            pb.wait(t_adj)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        sigma = self.sigma0.copy()
        for u in self.frontier.tolist():
            j0, j1 = int(self.h[u]), int(self.h[u + 1])
            targets = self.adj[j0:j1]
            mask = self.depth[targets] == self.level
            np.add.at(sigma, targets[mask], self.sigma0[u])
        return {"sigma": sigma}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.depth_base + 8 * self.adj}

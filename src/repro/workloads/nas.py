"""NAS parallel benchmarks: Integer Sort (IS) and Conjugate Gradient (CG).

IS (bucket-disabled, as in the paper) is key counting: ``count[K[i]] += 1``
over random keys — a pure indirect-RMW kernel whose baseline pays for
atomics on every update.  CG is CSR sparse matrix-vector product: streaming
column/value arrays with an indirect gather of the dense vector
(``x[col[j]]``) inside direct range loops (``j = H[i] to H[i+1]``,
Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.dx100.isa import Instr
from repro.dx100.range_fuser import plan_range_chunks
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_EXTRA, PC_INDEX, PC_INDIRECT, PC_OUTPUT, PC_SPD,
    PC_VALUE, CoreWork, Workload, chunk_bounds,
)


def _instr_count(items) -> int:
    return sum(isinstance(x, Instr) for x in items)


class IntegerSort(Workload):
    """NAS IS: ``count[K[i]] += 1`` (RMW A[B[i]], i = F to G)."""

    name = "IS"
    suite = "NAS"
    pattern = "RMW A[B[i]], i = F to G"

    def __init__(self, scale: int = 1 << 16, seed: int = 0,
                 bucket_space: int = 1 << 22) -> None:
        super().__init__(scale, seed)
        self.bucket_space = bucket_space

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self.keys = self.rng.integers(0, self.bucket_space,
                                      self.scale).astype(np.int64)
        self.k_base = mem.place("K", self.keys)
        self.count_base = mem.alloc("count", self.bucket_space, DType.U32)
        self.ones = np.ones(self.scale, dtype=np.uint32)
        self.ones_base = mem.place("ones", self.ones)

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        # Plain-int views: per-element numpy indexing in the emit loop
        # dominates trace-construction time otherwise.
        keys = self.keys.tolist()
        k_base, count_base = self.k_base, self.count_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                idx = tb.load(k_base + 8 * i, pc=PC_INDEX, extra=2,
                              tag=i)
                tb.rmw(count_base + 4 * keys[i], size=4,
                       deps=(idx,), atomic=True, pc=PC_INDIRECT,
                       extra=BASE_ADDR_CALC, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, self.k_base, lo, hi)
            t_one = pb.sld(DType.U32, self.ones_base, lo, hi)
            pb.irmw(DType.U32, self.count_base, AluOp.ADD, t_k, t_one)
            pb.wait(t_k, t_one)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        return {"count": np.bincount(
            self.keys, minlength=self.bucket_space).astype(np.uint32)}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.count_base + 4 * self.keys}


class ConjugateGradient(Workload):
    """NAS CG: CSR SpMV ``y[i] = sum vals[j] * x[col[j]]``
    (LD A[B[j]], j = H[i] to H[i+1])."""

    name = "CG"
    suite = "NAS"
    pattern = "LD A[B[j]], j = H[i] to H[i+1]"

    def __init__(self, scale: int = 1 << 13, seed: int = 0,
                 avg_nnz: int = 16, columns: int = 1 << 21) -> None:
        super().__init__(scale, seed)
        self.avg_nnz = avg_nnz
        self.columns = columns

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        rows = self.scale
        degrees = self.rng.integers(self.avg_nnz // 2,
                                    self.avg_nnz * 3 // 2 + 1, rows)
        self.h = np.zeros(rows + 1, dtype=np.int64)
        self.h[1:] = np.cumsum(degrees)
        self.nnz = int(self.h[-1])
        self.col = self.rng.integers(0, self.columns,
                                     self.nnz).astype(np.int64)
        self.x = self.rng.integers(0, 1 << 20, self.columns).astype(np.int64)
        self.h_base = mem.place("H", self.h)
        self.col_base = mem.place("col", self.col)
        self.vals_base = mem.alloc("vals", self.nnz, DType.I64)
        self.x_base = mem.place("x", self.x)
        self.y_base = mem.alloc("y", rows, DType.I64)

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        h_vals = self.h.tolist()
        col = self.col.tolist()
        h_base, col_base, vals_base = (self.h_base, self.col_base,
                                       self.vals_base)
        x_base, y_base = self.x_base, self.y_base
        for rows in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in rows:
                tb.load(h_base + 8 * i, pc=PC_EXTRA, extra=2)
                for j in range(h_vals[i], h_vals[i + 1]):
                    cidx = tb.load(col_base + 8 * j, pc=PC_INDEX,
                                   extra=1, tag=j)
                    tb.load(vals_base + 8 * j, pc=PC_VALUE, extra=1)
                    tb.load(x_base + 8 * col[j],
                            deps=(cidx,), pc=PC_INDIRECT,
                            extra=BASE_ADDR_CALC - 2, tag=j)
                tb.store(y_base + 8 * i, pc=PC_OUTPUT, extra=2)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        chunks = plan_range_chunks(self.h[:-1], self.h[1:],
                                   config.tile_elems)
        for r0, r1 in chunks:
            if self.h[r1] == self.h[r0]:
                continue
            pb = ProgramBuilder(config)
            t_lo = pb.sld(DType.I64, self.h_base, r0, r1)
            t_hi = pb.sld(DType.I64, self.h_base, r0 + 1, r1 + 1)
            t_outer, t_inner = pb.rng(t_lo, t_hi, outer_base=r0)
            t_col = pb.ild(DType.I64, self.col_base, t_inner)
            t_x = pb.ild(DType.I64, self.x_base, t_col)
            pb.wait(t_x)
            chunk_items = pb.build()
            j0, j1 = int(self.h[r0]), int(self.h[r1])
            self.expect_gather(
                _instr_count(items + chunk_items) - 1,
                self.x[self.col[j0:j1]])
            items += chunk_items
            # Residual: cores stream vals[j] and the packed x tile, FMA,
            # and store y[i] per row.
            spd = pb.spd_addr(t_x)
            traces = []
            for part in split_static(list(range(j0, j1)), cores):
                tb = TraceBuilder()
                for j in part:
                    tb.load(self.vals_base + 8 * j, pc=PC_VALUE, extra=1)
                    tb.load(spd + 4 * (j - j0), size=4, pc=PC_SPD, extra=2)
                traces.append(tb.finish())
            items.append(CoreWork(traces=traces))
        return items

    def expected(self) -> dict[str, np.ndarray]:
        return {}  # validation is via the gathered tiles (expect_gather)

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.x_base + 8 * self.col}


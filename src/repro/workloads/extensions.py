"""Extension workloads beyond the paper's evaluated set.

The paper's footnote 1 notes DX100 also accelerates the *bucket-based* IS
algorithm (the evaluation disables buckets); ``IntegerSortBucketed``
implements that full sort.  ``ConjugateGradientF64`` is the CG kernel on
real double-precision data, exercising the F64 datapath end to end.
``ConnectedComponents`` is a Shiloach-Vishkin label-propagation round —
an IRMW/MIN kernel from the introduction's workload list.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.dx100.isa import Instr
from repro.dx100.range_fuser import plan_range_chunks
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_EXTRA, PC_INDEX, PC_INDIRECT, PC_SPD, PC_VALUE,
    CoreWork, Workload, chunk_bounds,
)

BUCKET_SHIFT = 10


class IntegerSortBucketed(Workload):
    """Full bucket sort of integer keys (the NAS IS algorithm with buckets).

    Three phases per the NAS reference: (1) bucket histogram — IRMW;
    (2) prefix sums on the host (cheap scalar work); (3) key permutation —
    the scatter position is ``offsets[bucket(K[i])] + rank_i``, computed
    with the ALU (bucket extraction) + ILD (offset gather) + ALUV (rank
    add) + IST (the permute).  Validation: the output is the stably
    bucket-sorted key array.
    """

    name = "IS-bucketed"
    suite = "NAS"
    pattern = "ST A[B[f(C[i])] + r], f = C[i] >> S, i = F to G"

    def __init__(self, scale: int = 1 << 14, seed: int = 0,
                 key_bits: int = 20) -> None:
        super().__init__(scale, seed)
        self.key_bits = key_bits
        self.buckets = 1 << (key_bits - BUCKET_SHIFT)

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n = self.scale
        self.keys = self.rng.integers(0, 1 << self.key_bits,
                                      n).astype(np.int64)
        self.bucket_of = self.keys >> BUCKET_SHIFT
        counts = np.bincount(self.bucket_of, minlength=self.buckets)
        self.offsets = np.zeros(self.buckets, dtype=np.int64)
        self.offsets[1:] = np.cumsum(counts)[:-1]
        # rank_i = how many earlier keys share the bucket (stable order).
        self.ranks = np.zeros(n, dtype=np.int64)
        seen: dict[int, int] = {}
        for i, b in enumerate(self.bucket_of.tolist()):
            self.ranks[i] = seen.get(b, 0)
            seen[b] = self.ranks[i] + 1

        self.k_base = mem.place("K", self.keys)
        self.hist_base = mem.place(
            "hist", np.zeros(self.buckets, dtype=np.int64))
        self.off_base = mem.place("offsets", self.offsets)
        self.rank_base = mem.place("ranks", self.ranks)
        self.out_base = mem.place("out", np.zeros(n, dtype=np.int64))
        self.ones_base = mem.place("ones", np.ones(n, dtype=np.int64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                # Phase 1: histogram.
                key = tb.load(self.k_base + 8 * i, pc=PC_INDEX, extra=2,
                              tag=i)
                tb.rmw(self.hist_base + 8 * int(self.bucket_of[i]),
                       deps=(key,), atomic=True, pc=PC_VALUE, extra=2,
                       tag=i)
            for i in part:
                # Phase 3: permute (rank held in a register in real code).
                key = tb.load(self.k_base + 8 * i, pc=PC_INDEX, extra=2,
                              tag=i)
                off = tb.load(self.off_base + 8 * int(self.bucket_of[i]),
                              deps=(key,), pc=PC_EXTRA, extra=2, tag=i)
                pos = int(self.offsets[self.bucket_of[i]]
                          + self.ranks[i])
                tb.store(self.out_base + 8 * pos, deps=(off,),
                         pc=PC_INDIRECT, extra=BASE_ADDR_CALC - 2, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, self.k_base, lo, hi)
            t_b = pb.alus(DType.I64, AluOp.SHR, t_k, BUCKET_SHIFT)
            t_one = pb.sld(DType.I64, self.ones_base, lo, hi)
            pb.irmw(DType.I64, self.hist_base, AluOp.ADD, t_b, t_one)
            t_off = pb.ild(DType.I64, self.off_base, t_b)
            t_rank = pb.sld(DType.I64, self.rank_base, lo, hi)
            t_pos = pb.aluv(DType.I64, AluOp.ADD, t_off, t_rank)
            pb.ist(DType.I64, self.out_base, t_pos, t_k)
            pb.wait(t_k)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        order = np.argsort(self.bucket_of, kind="stable")
        hist = np.bincount(self.bucket_of, minlength=self.buckets)
        return {"out": self.keys[order], "hist": hist.astype(np.int64)}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        pos = self.offsets[self.bucket_of] + self.ranks
        return {PC_INDIRECT: self.out_base + 8 * pos}


class ConjugateGradientF64(Workload):
    """CG SpMV on double-precision data, validated with tolerances.

    The evaluated workloads use integer data so that DX100's reordered
    updates compare exactly; this extension runs the F64 datapath (SLD/ILD
    of f64 tiles) and validates the gathered values bitwise (gathers are
    order-independent) while the residual dot products would be the cores'
    job, as in the paper.
    """

    name = "CG-f64"
    suite = "NAS"
    pattern = "LD A[B[j]], j = H[i] to H[i+1] (float64)"

    def __init__(self, scale: int = 1 << 10, seed: int = 0,
                 avg_nnz: int = 16, columns: int = 1 << 16) -> None:
        super().__init__(scale, seed)
        self.avg_nnz = avg_nnz
        self.columns = columns

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        rows = self.scale
        degrees = self.rng.integers(self.avg_nnz // 2,
                                    self.avg_nnz * 3 // 2 + 1, rows)
        self.h = np.zeros(rows + 1, dtype=np.int64)
        self.h[1:] = np.cumsum(degrees)
        self.nnz = int(self.h[-1])
        self.col = self.rng.integers(0, self.columns,
                                     self.nnz).astype(np.int64)
        self.x = self.rng.standard_normal(self.columns)
        self.h_base = mem.place("H", self.h)
        self.col_base = mem.place("col", self.col)
        self.x_base = mem.place("x", self.x)

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        for rows in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in rows:
                tb.load(self.h_base + 8 * i, pc=PC_EXTRA, extra=2)
                for j in range(int(self.h[i]), int(self.h[i + 1])):
                    cidx = tb.load(self.col_base + 8 * j, pc=PC_INDEX,
                                   extra=1, tag=j)
                    tb.load(self.x_base + 8 * int(self.col[j]),
                            deps=(cidx,), pc=PC_INDIRECT,
                            extra=BASE_ADDR_CALC, tag=j)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        chunks = plan_range_chunks(self.h[:-1], self.h[1:],
                                   config.tile_elems)
        for r0, r1 in chunks:
            if self.h[r1] == self.h[r0]:
                continue
            pb = ProgramBuilder(config)
            t_lo = pb.sld(DType.I64, self.h_base, r0, r1)
            t_hi = pb.sld(DType.I64, self.h_base, r0 + 1, r1 + 1)
            t_outer, t_inner = pb.rng(t_lo, t_hi, outer_base=r0)
            t_col = pb.ild(DType.I64, self.col_base, t_inner)
            t_x = pb.ild(DType.F64, self.x_base, t_col)
            pb.wait(t_x)
            chunk_items = pb.build()
            n_before = sum(isinstance(x, Instr) for x in items)
            n_chunk = sum(isinstance(x, Instr) for x in chunk_items)
            j0, j1 = int(self.h[r0]), int(self.h[r1])
            self.expect_gather(n_before + n_chunk - 1,
                               self.x[self.col[j0:j1]])
            items += chunk_items
        return items

    def expected(self) -> dict[str, np.ndarray]:
        return {}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.x_base + 8 * self.col}


class ConnectedComponents(Workload):
    """One label-propagation round of Shiloach-Vishkin connected components
    (cited in the paper's introduction as a target workload class).

    ``label[dst] = min(label[dst], label[src])`` over every edge — an
    IRMW/MIN kernel, exercising the reorderable-minimum datapath.  The
    baseline needs an atomic compare-exchange loop per edge; DX100's
    exclusive-writer IRMW needs none.
    """

    name = "CC"
    suite = "GAP"
    pattern = "RMW(min) A[B[j]], j = H[i] to H[i+1]"

    def __init__(self, scale: int = 1 << 12, seed: int = 0,
                 nodes: int = 1 << 16, degree: int = 8) -> None:
        super().__init__(scale, seed)
        self.nodes = nodes
        self.degree = degree

    def generate(self, mem: HostMemory) -> None:
        from repro.workloads.gap import make_uniform_csr
        self._remember(mem)
        self.h, self.adj = make_uniform_csr(self.nodes, self.degree,
                                            self.rng)
        self.labels0 = self.rng.permutation(self.nodes).astype(np.int64)
        self.h_base = mem.place("H", self.h)
        self.adj_base = mem.place("adj", self.adj)
        self.src_label_base = mem.place("src_labels",
                                        self.labels0[:self.nodes].copy())
        self.label_base = mem.place("labels", self.labels0.copy())

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for u in part:
                hk = tb.load(self.h_base + 8 * u, pc=PC_EXTRA, extra=2)
                lu = tb.load(self.src_label_base + 8 * u, pc=PC_VALUE,
                             extra=1)
                for j in range(int(self.h[u]), int(self.h[u + 1])):
                    aj = tb.load(self.adj_base + 8 * j, deps=(hk,),
                                 pc=PC_INDEX, extra=1, tag=j)
                    # CAS-min loop: load, compare, locked exchange.
                    tb.rmw(self.label_base + 8 * int(self.adj[j]),
                           deps=(aj, lu), atomic=True, pc=PC_INDIRECT,
                           extra=BASE_ADDR_CALC, tag=j)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        lows, highs = self.h[:self.scale], self.h[1:self.scale + 1]
        items: list = []
        for r0, r1 in plan_range_chunks(lows, highs, config.tile_elems):
            if self.h[r1] == self.h[r0]:
                continue
            pb = ProgramBuilder(config)
            t_lo = pb.sld(DType.I64, self.h_base, r0, r1)
            t_hi = pb.sld(DType.I64, self.h_base, r0 + 1, r1 + 1)
            t_outer, t_inner = pb.rng(t_lo, t_hi, outer_base=r0)
            t_adj = pb.ild(DType.I64, self.adj_base, t_inner)
            t_lu = pb.ild(DType.I64, self.src_label_base, t_outer)
            pb.irmw(DType.I64, self.label_base, AluOp.MIN, t_adj, t_lu)
            pb.wait(t_adj)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        labels = self.labels0.copy()
        for u in range(self.scale):
            j0, j1 = int(self.h[u]), int(self.h[u + 1])
            np.minimum.at(labels, self.adj[j0:j1], self.labels0[u])
        return {"labels": labels}

    def non_roi_instructions(self) -> float:
        """Edge-proportional setup, as for the other graph kernels."""
        return 4.0 * self.scale * self.degree

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.label_base + 8 * self.adj}

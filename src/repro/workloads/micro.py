"""The five microbenchmarks of Section 6.1 (Figure 8).

All-Hit scenario (Figure 8a): streaming indices (``B[i] = i``) and warmed
caches isolate DX100's instruction-count and atomics advantages from its
bandwidth advantages.  All-Miss scenario (Figure 8 b/c): 16K unique indices
spread one word per cache line across rows/banks/channels, permuted to
synthesize target row-buffer hit rates and channel/bank-group interleaving
for the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DRAMConfig, DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dram.address import AddressMapper
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_INDEX, PC_INDIRECT, PC_OUTPUT, PC_SPD, PC_VALUE,
    CoreWork, Workload, chunk_bounds,
)


class _GatherBase(Workload):
    """Shared machinery: C[i] = A[B[i]] with B[i] = i (all-hit)."""

    suite = "micro"
    pattern = "LD A[B[i]], i = F to G"

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n = self.scale
        self.a = self.rng.integers(0, 1 << 30, n).astype(np.uint32)
        self.b = np.arange(n, dtype=np.uint32)
        self.a_base = mem.place("A", self.a)
        self.b_base = mem.place("B", self.b)
        self.c_base = mem.alloc("C", n, DType.U32)

    def warm_lines(self) -> list[int]:
        lines = []
        for base, nbytes in ((self.a_base, self.a.nbytes),
                             (self.b_base, self.b.nbytes),
                             (self.c_base, self.a.nbytes)):
            lines += list(range(base, base + nbytes, 64))
        return lines

    def baseline_traces(self, cores: int) -> list[Trace]:
        parts = split_static(list(range(self.scale)), cores)
        traces = []
        for part in parts:
            tb = TraceBuilder()
            for i in part:
                idx = tb.load(self.b_base + 4 * i, size=4, pc=PC_INDEX,
                              extra=1, tag=i)
                ind = tb.load(self.a_base + 4 * int(self.b[i]), size=4,
                              deps=(idx,), pc=PC_INDIRECT,
                              extra=BASE_ADDR_CALC, tag=i)
                tb.store(self.c_base + 4 * i, size=4, deps=(ind,),
                         pc=PC_OUTPUT, extra=3)
            traces.append(tb.finish())
        return traces

    def expected(self) -> dict[str, np.ndarray]:
        return {"C": self.a[self.b]}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.a_base + 4 * self.b.astype(np.int64)}


class GatherSPD(_GatherBase):
    """Offload only the gather; cores read the packed tile from the SPD."""

    name = "gather-spd"

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        from repro.dx100.scratchpad import SPD_BASE

        pb = ProgramBuilder(config)
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb.items.clear()
            t_b = pb.sld(DType.U32, self.b_base, lo, hi)
            t_p = pb.ild(DType.U32, self.a_base, t_b)
            pb.wait(t_p)
            items += pb.build()
            # Residual: each core streams its share of the packed tile from
            # the SPD and stores it to C[i].
            spd = SPD_BASE + t_p * config.tile_elems * 4
            traces = []
            for part in split_static(list(range(lo, hi)), cores):
                tb = TraceBuilder()
                for i in part:
                    tb.load(spd + 4 * (i - lo), size=4, extra=1, pc=PC_SPD)
                    tb.store(self.c_base + 4 * i, size=4, extra=1,
                             pc=PC_OUTPUT)
                traces.append(tb.finish())
            items.append(CoreWork(traces=traces))
            pb.free_tile(t_b)
            pb.free_tile(t_p)
        # The residual core stores are timing-only; apply their data effect.
        self.mem.view("C")[:] = self.a[self.b]
        return items


class GatherFull(_GatherBase):
    """Whole kernel offloaded: SLD + ILD + SST; cores only issue."""

    name = "gather-full"

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        pb = ProgramBuilder(config)
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb.items.clear()
            t_b = pb.sld(DType.U32, self.b_base, lo, hi)
            t_p = pb.ild(DType.U32, self.a_base, t_b)
            pb.sst(DType.U32, self.c_base, t_p, lo, hi)
            pb.wait(t_p)
            items += pb.build()
            pb.free_tile(t_b)
            pb.free_tile(t_p)
        return items


class _RMWBase(Workload):
    """A[B[i]] += C[i] with streaming indices (all-hit)."""

    suite = "micro"
    pattern = "RMW A[B[i]], i = F to G"
    atomic = True

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n = self.scale
        self.a0 = self.rng.integers(0, 1000, n).astype(np.int64)
        self.b = np.arange(n, dtype=np.int64)
        self.c = self.rng.integers(1, 10, n).astype(np.int64)
        self.a_base = mem.place("A", self.a0.copy())
        self.b_base = mem.place("B", self.b)
        self.c_base = mem.place("C", self.c)

    def warm_lines(self) -> list[int]:
        out = []
        for base, nbytes in ((self.a_base, self.a0.nbytes),
                             (self.b_base, self.b.nbytes),
                             (self.c_base, self.c.nbytes)):
            out += list(range(base, base + nbytes, 64))
        return out

    def baseline_traces(self, cores: int) -> list[Trace]:
        parts = split_static(list(range(self.scale)), cores)
        traces = []
        for part in parts:
            tb = TraceBuilder()
            for i in part:
                idx = tb.load(self.b_base + 8 * i, pc=PC_INDEX, extra=1,
                              tag=i)
                val = tb.load(self.c_base + 8 * i, pc=PC_VALUE, extra=1)
                tb.rmw(self.a_base + 8 * int(self.b[i]), deps=(idx, val),
                       atomic=self.atomic, pc=PC_INDIRECT,
                       extra=BASE_ADDR_CALC, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        pb = ProgramBuilder(config)
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb.items.clear()
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            t_c = pb.sld(DType.I64, self.c_base, lo, hi)
            pb.irmw(DType.I64, self.a_base, AluOp.ADD, t_b, t_c)
            pb.wait(t_b, t_c)
            items += pb.build()
            pb.free_tile(t_b)
            pb.free_tile(t_c)
        return items

    def expected(self) -> dict[str, np.ndarray]:
        result = self.a0.copy()
        np.add.at(result, self.b, self.c)
        return {"A": result}


class RMWAtomic(_RMWBase):
    name = "rmw-atomic"
    atomic = True


class RMWNoAtom(_RMWBase):
    """Correctness-ignoring baseline (no fences) — still loses to DX100."""

    name = "rmw-noatom"
    atomic = False


class Scatter(Workload):
    """A[B[i]] = C[i]; the baseline cannot parallelize (WAW hazards)."""

    name = "scatter"
    suite = "micro"
    pattern = "ST A[B[i]], i = F to G"
    single_core_baseline = True

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n = self.scale
        self.b = self.rng.permutation(n).astype(np.int64)
        self.c = self.rng.integers(0, 1 << 20, n).astype(np.int64)
        self.a_base = mem.place("A", np.zeros(n, dtype=np.int64))
        self.b_base = mem.place("B", self.b)
        self.c_base = mem.place("C", self.c)

    def warm_lines(self) -> list[int]:
        return list(range(self.b_base, self.c_base + self.c.nbytes, 64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        tb = TraceBuilder()
        for i in range(self.scale):
            idx = tb.load(self.b_base + 8 * i, pc=PC_INDEX, extra=1, tag=i)
            val = tb.load(self.c_base + 8 * i, pc=PC_VALUE, extra=1)
            tb.store(self.a_base + 8 * int(self.b[i]), deps=(idx, val),
                     pc=PC_INDIRECT, extra=BASE_ADDR_CALC, tag=i)
        return [tb.finish()]

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        pb = ProgramBuilder(config)
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb.items.clear()
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            t_c = pb.sld(DType.I64, self.c_base, lo, hi)
            pb.ist(DType.I64, self.a_base, t_b, t_c)
            pb.wait(t_b, t_c)
            items += pb.build()
            pb.free_tile(t_b)
            pb.free_tile(t_c)
        return items

    def expected(self) -> dict[str, np.ndarray]:
        result = np.zeros(self.scale, dtype=np.int64)
        result[self.b] = self.c
        return {"A": result}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.a_base + 8 * self.b}


class GatherAllMiss(Workload):
    """Figure 8(b,c): unique indices with synthesized RBH / CHI / BGI.

    One word per cache line, spread over ``rows_per_bank`` rows of every
    bank.  The index *order* controls the baseline's locality; DX100
    re-derives its own order, so its bandwidth stays flat.
    """

    name = "gather-allmiss"
    suite = "micro"
    pattern = "LD A[B[i]], i = F to G (unique indices)"

    def __init__(self, scale: int = 0, seed: int = 0, rbh: float = 0.0,
                 chi: bool = True, bgi: bool = True,
                 rows_per_bank: int = 4) -> None:
        super().__init__(scale, seed)
        if not 0.0 <= rbh <= 1.0:
            raise ValueError("rbh must be within [0, 1]")
        self.rbh = rbh
        self.chi = chi
        self.bgi = bgi
        self.rows_per_bank = rows_per_bank

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        dram = DRAMConfig()
        mapper = AddressMapper(dram)
        row_span = 1 << (mapper.total_bits - _field_width(mapper, "row"))
        # Allocate A aligned to a full row span so rows are not straddled.
        span_bytes = self.rows_per_bank * row_span
        self.a_base = mem.alloc("A", span_bytes // 4, DType.U32,
                                align=row_span)
        row0 = (self.a_base >> _row_shift(mapper)) & (dram.rows - 1)

        # Per-bank queues of line addresses, in runs of length L per row.
        run = 1_000_000 if self.rbh >= 1.0 else max(
            1, round(1.0 / (1.0 - self.rbh)))
        per_bank: dict[tuple[int, int], list[int]] = {}
        for ch in range(dram.channels):
            for bg in range(dram.bankgroups):
                for ba in range(dram.banks_per_group):
                    addrs = []
                    cols = list(range(dram.columns))
                    cursor = [0] * self.rows_per_bank
                    r = 0
                    total = self.rows_per_bank * dram.columns
                    while len(addrs) < total:
                        for _ in range(run):
                            if cursor[r] >= dram.columns:
                                break
                            addrs.append(mapper.compose(
                                channel=ch, bankgroup=bg, bank=ba,
                                row=row0 + r, column=cursor[r]))
                            cursor[r] += 1
                        nxt = (r + 1) % self.rows_per_bank
                        while cursor[nxt] >= dram.columns and \
                                len(addrs) < total:
                            nxt = (nxt + 1) % self.rows_per_bank
                        r = nxt
                    per_bank[(ch, bg * dram.banks_per_group + ba)] = addrs

        order = self._merge(per_bank, dram)
        self.addrs = np.array(order, dtype=np.int64)
        self.indices = (self.addrs - self.a_base) // 4
        self.b_base = mem.place("B", self.indices)
        self.n = len(self.indices)
        self.c_base = mem.alloc("C", self.n, DType.U32)
        mem.view("A")[:] = self.rng.integers(
            0, 1 << 30, span_bytes // 4).astype(np.uint32)
        self.a = mem.view("A").copy()

    def _merge(self, per_bank, dram) -> list[int]:
        """Merge per-bank queues according to the CHI / BGI settings.

        Banks *within* a bank group always interleave (tRRD-level
        parallelism exists even in the worst case); CHI/BGI control whether
        consecutive accesses alternate channels and bank groups.
        """
        nb = dram.banks_per_group

        def round_robin(queues: list[list[int]]) -> list[int]:
            out: list[int] = []
            cursors = [0] * len(queues)
            remaining = sum(len(q) for q in queues)
            while remaining:
                for i, q in enumerate(queues):
                    if cursors[i] < len(q):
                        out.append(q[cursors[i]])
                        cursors[i] += 1
                        remaining -= 1
            return out

        def group(ch: int, bg: int) -> list[int]:
            """One (channel, bankgroup) stream with its banks interleaved."""
            return round_robin([per_bank[(ch, bg * nb + ba)]
                                for ba in range(nb)])

        channels = range(dram.channels)
        bankgroups = range(dram.bankgroups)
        if self.chi and self.bgi:
            return round_robin([group(ch, bg)
                                for bg in bankgroups for ch in channels])
        if self.chi and not self.bgi:
            out: list[int] = []
            for bg in bankgroups:
                out += round_robin([group(ch, bg) for ch in channels])
            return out
        if not self.chi and self.bgi:
            out = []
            for ch in channels:
                out += round_robin([group(ch, bg) for bg in bankgroups])
            return out
        out = []
        for ch in channels:
            for bg in bankgroups:
                out += group(ch, bg)
        return out

    def warm_lines(self) -> list[int]:
        """All-Miss means A misses; the constant index set B (and the output
        C) are cache-resident, so only the indirect traffic reaches DRAM."""
        lines = list(range(self.b_base, self.b_base + self.indices.nbytes,
                           64))
        lines += list(range(self.c_base, self.c_base + 4 * self.n, 64))
        return lines

    def baseline_traces(self, cores: int) -> list[Trace]:
        # Partition iterations by DRAM *bank* so concurrent cores do not
        # thrash each other's open rows — otherwise the synthesized RBH
        # property would be destroyed by the static split, not by the
        # index order under study.
        mapper = AddressMapper(DRAMConfig())
        fields = mapper.map_arrays(self.addrs)
        bank_of = fields["bank"]
        parts = [np.nonzero(bank_of % cores == c)[0] for c in range(cores)]
        traces = []
        for part in parts:
            tb = TraceBuilder()
            for i in part.tolist():
                idx = tb.load(self.b_base + 8 * i, pc=PC_INDEX, extra=1,
                              tag=i)
                ind = tb.load(int(self.addrs[i]), size=4, deps=(idx,),
                              pc=PC_INDIRECT, extra=BASE_ADDR_CALC, tag=i)
                tb.store(self.c_base + 4 * i, size=4, deps=(ind,),
                         pc=PC_OUTPUT, extra=3)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        pb = ProgramBuilder(config)
        items: list = []
        for lo, hi in chunk_bounds(self.n, config.tile_elems):
            pb.items.clear()
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            t_p = pb.ild(DType.U32, self.a_base, t_b)
            pb.sst(DType.U32, self.c_base, t_p, lo, hi)
            pb.wait(t_p)
            items += pb.build()
            pb.free_tile(t_b)
            pb.free_tile(t_p)
        return items

    def expected(self) -> dict[str, np.ndarray]:
        return {"C": self.a[self.indices].astype(np.uint32)}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.addrs}


def _row_shift(mapper: AddressMapper) -> int:
    for name, shift, width in mapper._fields:
        if name == "row":
            return shift
    raise KeyError("row")


def _field_width(mapper: AddressMapper, field: str) -> int:
    for name, shift, width in mapper._fields:
        if name == field:
            return width
    raise KeyError(field)

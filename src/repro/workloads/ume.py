"""UME proxy (LANL unstructured-mesh gradient kernels).

Four kernels over a synthetic unstructured mesh of Z zones and P points.
The zone-to-zone and zone-to-point maps have the limited spatial locality
the paper measures on the real 2M-zone dataset (average index distance
about Z/24), reproduced here with Laplacian-distributed offsets:

* GZZ  — ``RMW A[B[i]]  if D[i] >= F``  (zone-to-zone accumulate)
* GZZI — ``LD A[B[C[j]]] if D[j] >= F`` over ``j = H[K[i]] .. H[K[i]+1]``
* GZP  — ``RMW A[B[i]]  if D[i] >= F``  (zone-to-point accumulate)
* GZPI — ``LD A[B[C[j]]] if D[j] >= F`` over ``j = H[K[i]] .. H[K[i]+1]``
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.dx100.isa import Instr
from repro.dx100.range_fuser import plan_range_chunks
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_EXTRA, PC_INDEX, PC_INDIRECT, PC_SPD, PC_VALUE,
    CoreWork, Workload, chunk_bounds,
)

THRESHOLD = 50


def laplace_map(n: int, target: int, spread: int, rng) -> np.ndarray:
    """An index map with the paper's limited-locality distribution."""
    offsets = rng.laplace(0.0, spread, n).astype(np.int64)
    return np.clip(np.arange(n, dtype=np.int64) * target // n + offsets,
                   0, target - 1)


class _GradientRMW(Workload):
    """Shared machinery for GZZ / GZP: conditional indirect accumulate."""

    suite = "UME"
    pattern = "RMW A[B[i]] if (D[i] >= F), i = F to G"
    target_divisor = 1   # GZP maps zones onto a smaller point space

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        z = self.scale
        target = max(z // self.target_divisor, 1024)
        self.target = target
        self.b = laplace_map(z, target, target // 24, self.rng)
        self.d = self.rng.integers(0, 100, z).astype(np.int64)
        self.c = self.rng.integers(1, 1000, z).astype(np.int64)
        self.b_base = mem.place("B", self.b)
        self.d_base = mem.place("D", self.d)
        self.c_base = mem.place("C", self.c)
        self.a_base = mem.place("A", np.zeros(target, dtype=np.int64))
        # Zone coordinate data read by the gradient computation itself.
        self.gx_base = mem.alloc("gx", z, DType.I64)

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        # Plain-int views: per-element numpy indexing inside the emit loop
        # costs more than the trace op it guards.
        d_vals = self.d.tolist()
        b_vals = self.b.tolist()
        d_base, gx_base = self.d_base, self.gx_base
        b_base, c_base, a_base = self.b_base, self.c_base, self.a_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                d = tb.load(d_base + 8 * i, pc=PC_EXTRA, extra=3)
                # Gradient contribution computed on the core either way.
                tb.load(gx_base + 8 * i, pc=PC_VALUE, extra=6)
                if d_vals[i] >= THRESHOLD:
                    # The guard is a predicted branch: no data dependence.
                    idx = tb.load(b_base + 8 * i,
                                  pc=PC_INDEX, extra=1, tag=i)
                    tb.load(c_base + 8 * i, pc=PC_VALUE, extra=1)
                    tb.rmw(a_base + 8 * b_vals[i], deps=(idx,),
                           atomic=True, pc=PC_INDIRECT,
                           extra=BASE_ADDR_CALC - 2, tag=i)
                else:
                    tb.compute(2)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_d = pb.sld(DType.I64, self.d_base, lo, hi)
            t_cond = pb.alus(DType.I64, AluOp.GE, t_d, THRESHOLD)
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            t_c = pb.sld(DType.I64, self.c_base, lo, hi)
            pb.irmw(DType.I64, self.a_base, AluOp.ADD, t_b, t_c, tc=t_cond)
            pb.wait(t_b, t_c)
            items += pb.build()
            # Residual: cores compute the next tile's contributions
            # (coordinate load + gradient arithmetic + store of C).
            traces = []
            for part in split_static(list(range(lo, hi)), cores):
                tb = TraceBuilder()
                for i in part:
                    tb.load(self.gx_base + 8 * i, pc=PC_VALUE, extra=6)
                    tb.store(self.c_base + 8 * i, pc=PC_INDEX, extra=1)
                traces.append(tb.finish())
            items.append(CoreWork(traces=traces))
        return items

    def expected(self) -> dict[str, np.ndarray]:
        out = np.zeros(self.target, dtype=np.int64)
        taken = self.d >= THRESHOLD
        np.add.at(out, self.b[taken], self.c[taken])
        return {"A": out}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.a_base + 8 * self.b}


class GZZ(_GradientRMW):
    name = "GZZ"
    target_divisor = 1


class GZP(_GradientRMW):
    name = "GZP"
    pattern = "RMW A[B[i]] if (D[i] >= F), i = F to G (zone-to-point)"
    target_divisor = 4


class _GradientIndirectLD(Workload):
    """Shared machinery for GZZI / GZPI: two-level conditional gather over
    indirect range loops."""

    suite = "UME"
    pattern = "LD A[B[C[j]]] if (D[j] >= F), j = H[K[i]] to H[K[i]+1]"
    target_divisor = 1

    def __init__(self, scale: int = 1 << 12, seed: int = 0,
                 zones: int = 1 << 17, corners: int = 6) -> None:
        super().__init__(scale, seed)
        self.zones = zones
        self.corners = corners

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        z = self.zones
        degrees = self.rng.integers(self.corners - 2, self.corners + 3, z)
        self.h = np.zeros(z + 1, dtype=np.int64)
        self.h[1:] = np.cumsum(degrees)
        total = int(self.h[-1])
        target = max(z // self.target_divisor, 1024)
        self.target = target
        self.c = self.rng.integers(0, z, total).astype(np.int64)
        self.b = laplace_map(z, target, target // 24, self.rng)
        self.d = self.rng.integers(0, 100, total).astype(np.int64)
        self.a = self.rng.integers(0, 1 << 20, target).astype(np.int64)
        self.frontier = np.sort(self.rng.choice(
            z, size=self.scale, replace=False)).astype(np.int64)

        self.h_base = mem.place("H", self.h)
        self.c_base = mem.place("C", self.c)
        self.b_base = mem.place("B", self.b)
        self.d_base = mem.place("D", self.d)
        self.a_base = mem.place("A", self.a)
        self.k_base = mem.place("K", self.frontier)

    def non_roi_instructions(self) -> float:
        # The gradient loop iterates zone corners (~`corners` per zone).
        return 4.0 * self.scale * self.corners

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        frontier = self.frontier.tolist()
        h_vals = self.h.tolist()
        d_vals = self.d.tolist()
        c_vals = self.c.tolist()
        b_vals = self.b.tolist()
        k_base, h_base, d_base = self.k_base, self.h_base, self.d_base
        c_base, b_base, a_base = self.c_base, self.b_base, self.a_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                u = frontier[i]
                tb.load(k_base + 8 * i, pc=PC_INDEX, extra=2)
                hk = tb.load(h_base + 8 * u, pc=PC_EXTRA, extra=2)
                for j in range(h_vals[u], h_vals[u + 1]):
                    d = tb.load(d_base + 8 * j, deps=(hk,),
                                pc=PC_VALUE, extra=2, tag=j)
                    if d_vals[j] >= THRESHOLD:
                        # Speculated past the guard: no data dependence.
                        cj = tb.load(c_base + 8 * j,
                                     pc=PC_INDEX, extra=1, tag=j)
                        bj = tb.load(b_base + 8 * c_vals[j],
                                     deps=(cj,), pc=PC_EXTRA, extra=2,
                                     tag=j)
                        tb.load(a_base + 8 * b_vals[c_vals[j]],
                                deps=(bj,), pc=PC_INDIRECT,
                                extra=BASE_ADDR_CALC - 4, tag=j)
                    else:
                        tb.compute(2)
                    tb.compute(4)  # gradient arithmetic per corner
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        lows = self.h[self.frontier]
        highs = self.h[self.frontier + 1]
        for f0, f1 in plan_range_chunks(lows, highs, config.tile_elems):
            if (highs[f0:f1] - lows[f0:f1]).sum() == 0:
                continue
            pb = ProgramBuilder(config)
            t_k = pb.sld(DType.I64, self.k_base, f0, f1)
            t_hlo = pb.ild(DType.I64, self.h_base, t_k)
            t_k1 = pb.alus(DType.I64, AluOp.ADD, t_k, 1)
            t_hhi = pb.ild(DType.I64, self.h_base, t_k1)
            t_outer, t_inner = pb.rng(t_hlo, t_hhi, outer_base=f0)
            t_d = pb.ild(DType.I64, self.d_base, t_inner)
            t_cond = pb.alus(DType.I64, AluOp.GE, t_d, THRESHOLD)
            t_c = pb.ild(DType.I64, self.c_base, t_inner, tc=t_cond)
            t_b = pb.ild(DType.I64, self.b_base, t_c, tc=t_cond)
            t_a = pb.ild(DType.I64, self.a_base, t_b, tc=t_cond)
            pb.wait(t_a)
            chunk_items = pb.build()
            expect = self._expected_chunk(f0, f1)
            n_before = sum(isinstance(x, Instr) for x in items)
            n_chunk = sum(isinstance(x, Instr) for x in chunk_items)
            self.expect_gather(n_before + n_chunk - 1, expect)
            items += chunk_items
            # Residual: consume the packed tile and compute gradients.
            spd = pb.spd_addr(t_a)
            count = int((highs[f0:f1] - lows[f0:f1]).sum())
            traces = []
            for part in split_static(list(range(count)), cores):
                tb = TraceBuilder()
                for e in part:
                    tb.load(spd + 4 * e, size=4, pc=PC_SPD, extra=4)
                traces.append(tb.finish())
            items.append(CoreWork(traces=traces))
        return items

    def _expected_chunk(self, f0: int, f1: int) -> np.ndarray:
        parts = []
        for u in self.frontier[f0:f1].tolist():
            j = np.arange(int(self.h[u]), int(self.h[u + 1]))
            vals = np.where(self.d[j] >= THRESHOLD,
                            self.a[self.b[self.c[j]]], 0)
            parts.append(vals)
        return np.concatenate(parts) if parts else np.zeros(0, np.int64)

    def expected(self) -> dict[str, np.ndarray]:
        return {}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.b_base + 8 * self.c}


class GZZI(_GradientIndirectLD):
    name = "GZZI"
    target_divisor = 1


class GZPI(_GradientIndirectLD):
    name = "GZPI"
    pattern = ("LD A[B[C[j]]] if (D[j] >= F), j = H[K[i]] to H[K[i]+1] "
               "(zone-to-point)")
    target_divisor = 4

"""Spatter benchmark: the xRAGE scatter pattern.

Spatter replays gather/scatter index traces collected from production
applications; the paper uses a pattern from the xRAGE multi-physics code
(``ST A[B[i]]``, Table 1).  xRAGE's AMR data produces indices with *block*
structure — short contiguous runs at effectively random block starts — which
we synthesize here: runs of ``block`` consecutive elements whose starting
positions are uniform over a large target region.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_INDEX, PC_INDIRECT, PC_VALUE, Workload, chunk_bounds,
)


class SpatterXRAGE(Workload):
    """xRAGE scatter: ``A[B[i]] = C[i]`` with block-structured indices."""

    name = "XRAGE"
    suite = "Spatter"
    pattern = "ST A[B[i]], i = F to G"

    def __init__(self, scale: int = 1 << 16, seed: int = 0,
                 block: int = 16, region: int = 1 << 20) -> None:
        super().__init__(scale, seed)
        self.block = block
        self.region = region

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n_blocks = -(-self.scale // self.block)
        starts = self.rng.integers(0, self.region - self.block,
                                   n_blocks).astype(np.int64)
        runs = [np.arange(s, s + self.block) for s in starts]
        self.indices = np.concatenate(runs)[:self.scale]
        self.values = self.rng.integers(0, 1 << 20,
                                        self.scale).astype(np.int64)
        self.b_base = mem.place("B", self.indices)
        self.c_base = mem.place("C", self.values)
        self.a_base = mem.place("A", np.zeros(self.region, dtype=np.int64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        indices = self.indices.tolist()
        b_base, c_base, a_base = self.b_base, self.c_base, self.a_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                idx = tb.load(b_base + 8 * i, pc=PC_INDEX, extra=2,
                              tag=i)
                val = tb.load(c_base + 8 * i, pc=PC_VALUE, extra=1)
                tb.store(a_base + 8 * indices[i],
                         deps=(idx, val), pc=PC_INDIRECT,
                         extra=BASE_ADDR_CALC, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            t_c = pb.sld(DType.I64, self.c_base, lo, hi)
            pb.ist(DType.I64, self.a_base, t_b, t_c)
            pb.wait(t_b, t_c)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        out = np.zeros(self.region, dtype=np.int64)
        out[self.indices] = self.values  # last writer wins, program order
        return {"A": out}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.a_base + 8 * self.indices}

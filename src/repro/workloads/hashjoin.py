"""Hash-Join benchmark suite: parallel radix join partitioning.

PRH (histogram-based, Kim et al.): a histogram pass
(``hist[f(C[i])] += 1``) followed by a tuple scatter through partition
offsets (``A[B[f(C[i])]] = C[i]``), with the radix function
``f(C[i]) = (C[i] & F) >> G`` computed by the ALU unit (Table 1).

PRO (bucket-chaining, Manegold et al.): array-based linked lists — probes
walk ``payload[head[f(k)]]`` then ``payload[next[...]]``, the bulk
linked-list traversal the paper highlights (Section 4.1 Limitations).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import AluOp, DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_EXTRA, PC_INDEX, PC_INDIRECT, PC_OUTPUT, PC_VALUE,
    Workload, chunk_bounds,
)

RADIX_SHIFT = 9


class RadixJoinHistogram(Workload):
    """PRH: histogram + scatter through partition offsets."""

    name = "PRH"
    suite = "Hash-Join"
    pattern = "ST A[B[f(C[i])]], f(C[i]) = (C[i] & F) >> G, i = F to G"

    def __init__(self, scale: int = 1 << 16, seed: int = 0,
                 partitions: int = 1 << 13,
                 table_space: int = 1 << 20) -> None:
        super().__init__(scale, seed)
        self.partitions = partitions
        self.table_space = table_space
        self.mask = (partitions - 1) << RADIX_SHIFT

    def _radix(self, keys: np.ndarray) -> np.ndarray:
        return (keys & self.mask) >> RADIX_SHIFT

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self.tuples = self.rng.integers(
            0, 1 << 30, self.scale).astype(np.int64)
        self.radix = self._radix(self.tuples)
        # Partition base offsets scattered over the output table.
        self.offsets = (self.rng.permutation(self.partitions).astype(np.int64)
                        * (self.table_space // self.partitions))
        self.c_base = mem.place("C", self.tuples)
        self.hist_base = mem.place(
            "hist", np.zeros(self.partitions, dtype=np.int64))
        self.b_base = mem.place("B", self.offsets)
        self.a_base = mem.place(
            "A", np.zeros(self.table_space, dtype=np.int64))
        self.ones_base = mem.place(
            "ones", np.ones(self.scale, dtype=np.int64))

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        # Plain-int views: per-element numpy indexing in the emit loop
        # dominates trace-construction time otherwise.
        radix = self.radix.tolist()
        offsets = self.offsets.tolist()
        c_base, hist_base = self.c_base, self.hist_base
        b_base, a_base = self.b_base, self.a_base
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                # Histogram pass.
                key = tb.load(c_base + 8 * i, pc=PC_INDEX, extra=3)
                tb.rmw(hist_base + 8 * radix[i], deps=(key,),
                       atomic=True, pc=PC_VALUE, extra=3, tag=i)
            for i in part:
                # Scatter pass.
                key = tb.load(c_base + 8 * i, pc=PC_INDEX, extra=3,
                              tag=i)
                off = tb.load(b_base + 8 * radix[i],
                              deps=(key,), pc=PC_EXTRA, extra=2, tag=i)
                tb.store(a_base + 8 * offsets[radix[i]],
                         deps=(off,), pc=PC_INDIRECT,
                         extra=BASE_ADDR_CALC - 4, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_c = pb.sld(DType.I64, self.c_base, lo, hi)
            t_and = pb.alus(DType.I64, AluOp.AND, t_c, self.mask)
            t_f = pb.alus(DType.I64, AluOp.SHR, t_and, RADIX_SHIFT)
            t_one = pb.sld(DType.I64, self.ones_base, lo, hi)
            pb.irmw(DType.I64, self.hist_base, AluOp.ADD, t_f, t_one)
            t_b = pb.ild(DType.I64, self.b_base, t_f)
            pb.ist(DType.I64, self.a_base, t_b, t_c)
            pb.wait(t_c)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        hist = np.bincount(self.radix, minlength=self.partitions)
        table = np.zeros(self.table_space, dtype=np.int64)
        table[self.offsets[self.radix]] = self.tuples  # last writer wins
        return {"hist": hist.astype(np.int64), "A": table}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT:
                self.a_base + 8 * self.offsets[self.radix]}


class RadixJoinChaining(Workload):
    """PRO: probe phase over array-based bucket chains (2 hops)."""

    name = "PRO"
    suite = "Hash-Join"
    pattern = "ST A[B[f(C[i])]] (bucket chaining: nodes[next_idx[i]])"

    def __init__(self, scale: int = 1 << 16, seed: int = 0,
                 buckets: int = 1 << 15) -> None:
        super().__init__(scale, seed)
        self.buckets = buckets
        self.mask = (buckets - 1) << RADIX_SHIFT

    def _radix(self, keys: np.ndarray) -> np.ndarray:
        return (keys & self.mask) >> RADIX_SHIFT

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        n_build = 2 * self.buckets  # exactly two tuples per bucket
        order = self.rng.permutation(n_build).astype(np.int64)
        self.head = order[:self.buckets].copy()
        self.next = np.full(n_build, -1, dtype=np.int64)
        self.next[self.head] = order[self.buckets:]
        self.payload = self.rng.integers(
            0, 1 << 20, n_build).astype(np.int64)
        self.probes = self.rng.integers(
            0, 1 << 30, self.scale).astype(np.int64)
        self.probe_radix = self._radix(self.probes)

        self.head_base = mem.place("head", self.head)
        self.next_base = mem.place("next", self.next)
        self.pay_base = mem.place("payload", self.payload)
        self.probe_base = mem.place("probes", self.probes)
        self.res_base = mem.alloc("result", self.scale, DType.I64)

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        probe_radix = self.probe_radix.tolist()
        head = self.head.tolist()
        nxt = self.next.tolist()
        probe_base, head_base = self.probe_base, self.head_base
        pay_base, next_base, res_base = (self.pay_base, self.next_base,
                                         self.res_base)
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                h = probe_radix[i]
                n0 = head[h]
                n1 = nxt[n0]
                key = tb.load(probe_base + 8 * i, pc=PC_INDEX, extra=3,
                              tag=i)
                e0 = tb.load(head_base + 8 * h, deps=(key,),
                             pc=PC_INDIRECT, extra=3, tag=i)
                p0 = tb.load(pay_base + 8 * n0, deps=(e0,),
                             pc=PC_VALUE, extra=2, tag=i)
                e1 = tb.load(next_base + 8 * n0, deps=(e0,),
                             pc=PC_EXTRA, extra=2, tag=i)
                p1 = tb.load(pay_base + 8 * n1, deps=(e1,),
                             pc=PC_VALUE, extra=2, tag=i)
                tb.store(res_base + 8 * i, deps=(p0, p1),
                         pc=PC_OUTPUT, extra=3)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_p = pb.sld(DType.I64, self.probe_base, lo, hi)
            t_and = pb.alus(DType.I64, AluOp.AND, t_p, self.mask)
            t_h = pb.alus(DType.I64, AluOp.SHR, t_and, RADIX_SHIFT)
            t_n0 = pb.ild(DType.I64, self.head_base, t_h)
            t_p0 = pb.ild(DType.I64, self.pay_base, t_n0)
            t_n1 = pb.ild(DType.I64, self.next_base, t_n0)
            t_p1 = pb.ild(DType.I64, self.pay_base, t_n1)
            t_sum = pb.aluv(DType.I64, AluOp.ADD, t_p0, t_p1)
            pb.sst(DType.I64, self.res_base, t_sum, lo, hi)
            pb.wait(t_sum)
            items += pb.build()
        return items

    def expected(self) -> dict[str, np.ndarray]:
        n0 = self.head[self.probe_radix]
        n1 = self.next[n0]
        return {"result": self.payload[n0] + self.payload[n1]}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT:
                self.head_base + 8 * self.probe_radix}


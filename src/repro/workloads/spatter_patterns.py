"""Spatter-style pattern specifications.

The Spatter benchmark (Lavin et al., MEMSYS 2020) describes gather/scatter
kernels as JSON objects: a ``kernel`` (gather/scatter), a ``pattern`` (a
base index sequence), a ``delta`` applied between repetitions, and a
``count``.  The paper drives Spatter with a pattern collected from xRAGE
(Sheridan et al. 2024); this module implements the spec format so custom
patterns — including published Spatter JSON — run through the same
workload machinery.

Supported spec keys (anything else is ignored):

* ``kernel``   — "gather" or "scatter";
* ``pattern``  — list of integers, or the string shorthands
  ``"UNIFORM:N:S"`` (N indices with stride S) and ``"MS1:N:B"``
  (mostly-stride-1: N indices in runs of B at random starts);
* ``delta``    — index offset added between repetitions (default: the
  pattern span, giving non-overlapping windows);
* ``count``    — number of repetitions.
"""

from __future__ import annotations

import json

import numpy as np

from repro.common.config import DX100Config
from repro.common.types import DType
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory
from repro.workloads.base import (
    BASE_ADDR_CALC, PC_INDEX, PC_INDIRECT, PC_OUTPUT, PC_VALUE,
    Workload, chunk_bounds,
)


def parse_pattern(spec, rng=None) -> np.ndarray:
    """Expand a Spatter ``pattern`` entry to a base index array."""
    if isinstance(spec, str):
        parts = spec.split(":")
        kind = parts[0].upper()
        if kind == "UNIFORM":
            if len(parts) != 3:
                raise ValueError("UNIFORM takes N:S")
            n, stride = int(parts[1]), int(parts[2])
            return np.arange(n, dtype=np.int64) * stride
        if kind == "MS1":
            if len(parts) != 3:
                raise ValueError("MS1 takes N:B")
            n, block = int(parts[1]), int(parts[2])
            rng = rng or np.random.default_rng(0)
            starts = rng.integers(0, max(1, 8 * n), -(-n // block))
            runs = [np.arange(s, s + block) for s in starts]
            return np.concatenate(runs)[:n].astype(np.int64)
        raise ValueError(f"unknown pattern shorthand {kind!r}")
    pattern = np.asarray(spec, dtype=np.int64)
    if pattern.ndim != 1 or len(pattern) == 0:
        raise ValueError("pattern must be a non-empty 1-D index list")
    if (pattern < 0).any():
        raise ValueError("pattern indices must be non-negative")
    return pattern


def expand_spec(spec: dict | str, rng=None) -> tuple[str, np.ndarray]:
    """Expand a full Spatter spec to (kernel, index array)."""
    if isinstance(spec, str):
        spec = json.loads(spec)
    kernel = str(spec.get("kernel", "gather")).lower()
    if kernel not in ("gather", "scatter"):
        raise ValueError(f"unsupported kernel {kernel!r}")
    base = parse_pattern(spec["pattern"], rng)
    count = int(spec.get("count", 1))
    if count <= 0:
        raise ValueError("count must be positive")
    delta = int(spec.get("delta", int(base.max()) + 1))
    reps = [base + k * delta for k in range(count)]
    return kernel, np.concatenate(reps)


class SpatterKernel(Workload):
    """A runnable workload built from a Spatter JSON spec."""

    suite = "Spatter"

    def __init__(self, spec: dict | str, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.kernel, self.indices = expand_spec(spec, rng)
        self.span = int(self.indices.max()) + 1
        super().__init__(scale=len(self.indices), seed=seed)
        self.name = f"spatter-{self.kernel}"
        self.pattern = (f"{'ST' if self.kernel == 'scatter' else 'LD'} "
                        f"A[B[i]], i = F to G (Spatter spec)")

    # ------------------------------------------------------------- data

    def generate(self, mem: HostMemory) -> None:
        self._remember(mem)
        self.a = self.rng.integers(0, 1 << 30, self.span).astype(np.int64)
        self.values = self.rng.integers(0, 1 << 20,
                                        self.scale).astype(np.int64)
        self.a_base = mem.place("A", self.a if self.kernel == "gather"
                                else np.zeros(self.span, dtype=np.int64))
        self.b_base = mem.place("B", self.indices)
        self.c_base = mem.place(
            "C", self.values if self.kernel == "scatter"
            else np.zeros(self.scale, dtype=np.int64))

    # -------------------------------------------------------------- traces

    def baseline_traces(self, cores: int) -> list[Trace]:
        traces = []
        for part in split_static(list(range(self.scale)), cores):
            tb = TraceBuilder()
            for i in part:
                idx = tb.load(self.b_base + 8 * i, pc=PC_INDEX, extra=1,
                              tag=i)
                target = self.a_base + 8 * int(self.indices[i])
                if self.kernel == "gather":
                    val = tb.load(target, deps=(idx,), pc=PC_INDIRECT,
                                  extra=BASE_ADDR_CALC, tag=i)
                    tb.store(self.c_base + 8 * i, deps=(val,),
                             pc=PC_OUTPUT, extra=2)
                else:
                    val = tb.load(self.c_base + 8 * i, pc=PC_VALUE, extra=1)
                    tb.store(target, deps=(idx, val), pc=PC_INDIRECT,
                             extra=BASE_ADDR_CALC, tag=i)
            traces.append(tb.finish())
        return traces

    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        items: list = []
        for lo, hi in chunk_bounds(self.scale, config.tile_elems):
            pb = ProgramBuilder(config)
            t_b = pb.sld(DType.I64, self.b_base, lo, hi)
            if self.kernel == "gather":
                t_p = pb.ild(DType.I64, self.a_base, t_b)
                pb.sst(DType.I64, self.c_base, t_p, lo, hi)
                pb.wait(t_p)
            else:
                t_c = pb.sld(DType.I64, self.c_base, lo, hi)
                pb.ist(DType.I64, self.a_base, t_b, t_c)
                pb.wait(t_b, t_c)
            items += pb.build()
        return items

    # ---------------------------------------------------------- validation

    def expected(self) -> dict[str, np.ndarray]:
        if self.kernel == "gather":
            return {"C": self.a[self.indices]}
        out = np.zeros(self.span, dtype=np.int64)
        out[self.indices] = self.values
        return {"A": out}

    def dmp_streams(self) -> dict[int, np.ndarray]:
        return {PC_INDIRECT: self.a_base + 8 * self.indices}

"""The 12-benchmark evaluation set (Section 5) with scaled default sizes.

Factories return fresh workload instances so each configuration runs on
identical inputs (same seed) with independent state.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Workload
from repro.workloads.gap import BFS, BetweennessCentrality, PageRank
from repro.workloads.hashjoin import RadixJoinChaining, RadixJoinHistogram
from repro.workloads.nas import ConjugateGradient, IntegerSort
from repro.workloads.spatter import SpatterXRAGE
from repro.workloads.ume import GZP, GZPI, GZZ, GZZI

WorkloadFactory = Callable[[], Workload]

# name -> factory, ordered as the paper's figures list them.
MAIN_BENCHMARKS: dict[str, WorkloadFactory] = {
    "IS": lambda: IntegerSort(scale=1 << 15),
    "CG": lambda: ConjugateGradient(scale=1 << 11),
    "BFS": lambda: BFS(scale=1 << 12, nodes=1 << 17),
    "PR": lambda: PageRank(scale=1 << 12, nodes=1 << 17),
    "BC": lambda: BetweennessCentrality(scale=1 << 12, nodes=1 << 17),
    "PRH": lambda: RadixJoinHistogram(scale=1 << 15),
    "PRO": lambda: RadixJoinChaining(scale=1 << 15),
    "GZZ": lambda: GZZ(scale=1 << 16),
    "GZZI": lambda: GZZI(scale=1 << 12, zones=1 << 16),
    "GZP": lambda: GZP(scale=1 << 16),
    "GZPI": lambda: GZPI(scale=1 << 12, zones=1 << 16),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 15),
}

# Paper-scale footprints (Section 5 sizes): datasets far past every cache
# capacity, for the ``--scale full`` runner mode.  Only the batched
# front-end makes these tractable; entries carry the simulated-memory
# footprint they need via ``mem_bytes``.
def _sized(factory: WorkloadFactory, mem_bytes: int) -> WorkloadFactory:
    def build() -> Workload:
        wl = factory()
        wl.mem_bytes = mem_bytes
        return wl
    return build


FULL_BENCHMARKS: dict[str, WorkloadFactory] = {
    "IS": _sized(lambda: IntegerSort(scale=1 << 25,
                                     bucket_space=1 << 22), 1 << 29),
    "CG": _sized(lambda: ConjugateGradient(scale=1 << 15,
                                           columns=1 << 22), 1 << 28),
    "XRAGE": _sized(lambda: SpatterXRAGE(scale=1 << 22,
                                         region=1 << 24), 1 << 28),
}

# A smaller variant for tests and quick CI-style runs.
QUICK_BENCHMARKS: dict[str, WorkloadFactory] = {
    "IS": lambda: IntegerSort(scale=1 << 12, bucket_space=1 << 18),
    "CG": lambda: ConjugateGradient(scale=1 << 8, columns=1 << 17),
    "BFS": lambda: BFS(scale=1 << 9, nodes=1 << 14),
    "PR": lambda: PageRank(scale=1 << 9, nodes=1 << 14),
    "BC": lambda: BetweennessCentrality(scale=1 << 9, nodes=1 << 14),
    "PRH": lambda: RadixJoinHistogram(scale=1 << 12, partitions=1 << 10,
                                      table_space=1 << 17),
    "PRO": lambda: RadixJoinChaining(scale=1 << 12, buckets=1 << 12),
    "GZZ": lambda: GZZ(scale=1 << 13),
    "GZZI": lambda: GZZI(scale=1 << 9, zones=1 << 13),
    "GZP": lambda: GZP(scale=1 << 13),
    "GZPI": lambda: GZPI(scale=1 << 9, zones=1 << 13),
    "XRAGE": lambda: SpatterXRAGE(scale=1 << 12, region=1 << 17),
}

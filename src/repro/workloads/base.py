"""Workload framework.

Each paper benchmark provides three views of the same kernel:

* ``generate``        — allocate and initialize its arrays in host memory;
* ``baseline_traces`` — the per-core memory-op trace of the legacy multicore
  code (index loads feeding indirect accesses, address-calculation
  instruction counts, atomics where the kernel needs them);
* ``dx100_schedule``  — the offloaded version: DX100 program items
  interleaved with the residual core work (:class:`CoreWork` items), tiled
  and double-buffered;
* ``expected``        — the NumPy reference the DX100 run's memory state is
  validated against.

Scales are reduced relative to the paper (Python request-level simulation),
with access-pattern statistics preserved; see DESIGN.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.common.config import DX100Config
from repro.core.trace import Trace, TraceBuilder, split_static
from repro.dx100.hostmem import HostMemory
from repro.dx100.scratchpad import SPD_BASE


@dataclass
class CoreWork:
    """Residual multicore work inside a DX100 schedule."""

    traces: list[Trace]


# PCs used so the stride prefetcher and DMP can distinguish access streams.
PC_INDEX = 1
PC_INDIRECT = 2
PC_VALUE = 3
PC_OUTPUT = 4
PC_SPD = 5
PC_EXTRA = 6

# Per-element instruction costs, calibrated against the paper's
# Gather-Full microbenchmark (baseline ~13 dynamic instructions per
# element, DX100 residual near zero; Section 6.1) and the 3.6x geomean
# instruction reduction of Figure 11(a).
BASE_ADDR_CALC = 8     # address arithmetic + loop overhead per element
SPD_CONSUME_EXTRA = 2  # residual loop overhead per consumed element


class Workload(ABC):
    """One benchmark kernel."""

    name: str = "workload"
    suite: str = "suite"
    pattern: str = ""          # the Table 1 row for this kernel
    single_core_baseline: bool = False   # scatter: WAW hazards serialize
    #: Simulated host-memory footprint this workload needs.  The runner
    #: sizes :class:`~repro.dx100.hostmem.HostMemory` from this, so
    #: full-scale registry entries (paper-sized footprints) can raise it
    #: past the 64 MiB default without touching every call site.
    mem_bytes: int = 1 << 26

    def __init__(self, scale: int, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.mem: HostMemory | None = None

    # ---------------------------------------------------------------- hooks

    @abstractmethod
    def generate(self, mem: HostMemory) -> None:
        """Allocate arrays in ``mem`` and remember their bases."""

    @abstractmethod
    def baseline_traces(self, cores: int) -> list[Trace]:
        """Per-core traces of the legacy code."""

    @abstractmethod
    def dx100_schedule(self, config: DX100Config, cores: int) -> list:
        """DX100 program items + CoreWork for the offloaded code."""

    @abstractmethod
    def expected(self) -> dict[str, np.ndarray]:
        """Final expected contents of mutated arrays (or packed outputs)."""

    def dmp_streams(self) -> dict[int, np.ndarray]:
        """pc -> unconditional indirect target addresses, for the DMP run."""
        return {}

    def non_roi_instructions(self) -> float:
        """Instructions outside the offloaded region of interest (input
        generation, setup) — identical in every configuration.  The paper's
        Figure 11(a) counts whole-execution instructions, so this floor is
        what keeps fully-offloaded kernels' reduction ratios finite."""
        return 4.0 * self.scale

    # -------------------------------------------------------------- utility

    def validate(self, mem: HostMemory) -> None:
        """Assert the post-run memory matches the NumPy reference."""
        for name, expect in self.expected().items():
            got = mem.view(name)
            if not np.array_equal(got, expect):
                bad = int(np.count_nonzero(got != expect))
                raise AssertionError(
                    f"{self.name}: array {name!r} diverges from the "
                    f"reference in {bad}/{len(expect)} elements"
                )

    def validate_dx(self, dx, mem: HostMemory) -> None:
        """Full DX100-run validation: memory state plus any gathered tiles
        registered with :meth:`expect_gather` (for load-only kernels whose
        results live in the scratchpad rather than memory)."""
        self.validate(mem)
        for record_index, expect in getattr(self, "_gather_checks", []):
            record = dx.records[record_index]
            got = record.detail.values
            if not np.array_equal(np.asarray(got), np.asarray(expect)):
                raise AssertionError(
                    f"{self.name}: gathered tile of instruction "
                    f"{record_index} diverges from the reference"
                )

    def expect_gather(self, instr_index: int, values: np.ndarray) -> None:
        """Register the expected contents of instruction ``instr_index``'s
        gathered tile (index counts Instr items in schedule order)."""
        if not hasattr(self, "_gather_checks"):
            self._gather_checks = []
        self._gather_checks.append((instr_index, np.asarray(values)))

    def _remember(self, mem: HostMemory) -> None:
        self.mem = mem


def spd_consume_work(tile: int, count: int, cores: int,
                     config: DX100Config, extra: int = SPD_CONSUME_EXTRA,
                     word_bytes: int = 4) -> CoreWork:
    """Core-side streaming reads of a packed tile, split across cores."""
    base = SPD_BASE + tile * config.tile_elems * word_bytes
    parts = split_static(list(range(count)), cores)
    traces = []
    for part in parts:
        tb = TraceBuilder()
        for i in part:
            tb.load(base + i * word_bytes, size=word_bytes, extra=extra,
                    pc=PC_SPD)
        traces.append(tb.finish())
    return CoreWork(traces=traces)


def chunk_bounds(n: int, tile: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + tile, n)) for lo in range(0, n, tile)]

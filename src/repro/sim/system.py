"""Assembles a full simulated system from a :class:`SystemConfig`."""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.cache.batched import BatchedHierarchy
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.batched import BatchedMulticore
from repro.core.multicore import Multicore
from repro.dram.system import DRAMSystem
from repro.dx100.accelerator import DX100
from repro.dx100.hostmem import HostMemory
from repro.prefetch.dmp import DMPEngine


class SimSystem:
    """DRAM + caches + cores (+ DX100 / + DMP) behind one object."""

    def __init__(self, config: SystemConfig,
                 mem_bytes: int = 1 << 26,
                 audit: bool | None = None,
                 obs=None) -> None:
        if config.frontend not in ("batched", "scalar"):
            raise ValueError(f"unknown frontend {config.frontend!r} "
                             "(expected 'batched' or 'scalar')")
        batched = config.frontend == "batched"
        self.config = config
        self.dram = DRAMSystem(config.dram, audit=audit)
        self.hierarchy = (BatchedHierarchy if batched
                          else MemoryHierarchy)(config, self.dram)
        self.hostmem = HostMemory(mem_bytes)
        self.multicore = (BatchedMulticore if batched
                          else Multicore)(config, self.hierarchy, self.dram)
        self.dx100 = (DX100(config, self.hierarchy, self.dram, self.hostmem)
                      if config.dx100 is not None else None)
        self.dmp = None
        if config.dmp:
            self.dmp = DMPEngine(self.hierarchy)
            # The observer protocol is exactly ``observe``'s signature, so
            # register the bound method itself (one call per demand access).
            self.hierarchy.observers.append(self.dmp.observe)
            # ``observe`` returns without side effects unless the PC has a
            # registered stream and the op carries a loop tag; publish that
            # early-out so the batched walk can skip the call.
            self.hierarchy.observer_pc_filter = self.dmp._lines
        # Observability: an :class:`repro.obs.events.EventBus` (or None).
        # Attached last so the bus sees the fully-built component graph.
        self.obs = obs
        if obs is not None:
            obs.attach(self)

    def set_tenant(self, tenant: int, cores=None) -> None:
        """Tag this system's traffic with ``tenant`` (-1 = untagged).

        Tags the DX100 instance (if any) and either all cores or the given
        subset.  Tags only feed per-tenant accounting — scheduling is
        unchanged, so a ``tenant=0`` run matches an untagged run cycle for
        cycle.
        """
        targets = range(self.config.cores) if cores is None else cores
        for core in targets:
            self.hierarchy.core_tenant[core] = tenant
        if self.dx100 is not None:
            self.dx100.set_tenant(tenant)

    def warm(self, lines) -> None:
        """Pre-load lines into every cache level (the all-hit scenario)."""
        for addr in lines:
            line = self.hierarchy.llc.line_addr(addr)
            self.hierarchy.llc.insert(line)
            for core in range(self.config.cores):
                self.hierarchy.l2[core].insert(line)
                self.hierarchy.l1[core].insert(line)

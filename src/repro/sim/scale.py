"""Multi-instance DX100 scalability runs (Section 6.6, Figure 14).

Implements the paper's *core multiplexing* approach: each group of cores
owns one DX100 instance; instances share the memory system, and exclusive
write access to indirect arrays is maintained through the coarse-grained
region coherence protocol (SWMR).  The workload's tile chunks are dealt
round-robin across instances, so instances execute concurrently on
independent timelines.

Restricted to order-independent (RMW/load) workloads: chunks on different
instances complete out of program order, which is only legal when the
paper's reordering legality condition (commutative, associative updates)
holds — exactly the instructions DX100 permits.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.types import Interval
from repro.dx100.accelerator import DX100
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.coherency import RegionCoherence
from repro.dx100.isa import Instr, Opcode
from repro.sim.metrics import RunResult, collect
from repro.sim.runner import ISSUE_INSTRS, WAIT_BASE_INSTRS
from repro.sim.system import SimSystem
from repro.workloads.base import CoreWork, Workload


def _split_groups(schedule: list) -> list[list]:
    """Split a schedule into chunk groups at WaitTiles(+CoreWork) edges."""
    groups: list[list] = []
    current: list = []
    for item in schedule:
        current.append(item)
        if isinstance(item, (WaitTiles, CoreWork)) and current:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def run_dx100_multi(workload: Workload, cores: int = 8,
                    instances: int = 2, tile_elems: int = 16 * 1024,
                    validate: bool = True) -> RunResult:
    """Run a workload across multiple DX100 instances."""
    config = SystemConfig.dx100_scaled(cores, tile_elems=tile_elems,
                                       instances=instances)
    system = SimSystem(config)
    accels = [system.dx100] + [
        DX100(config, system.hierarchy, system.dram, system.hostmem,
              instance=i)
        for i in range(1, instances)
    ]
    workload.generate(system.hostmem)
    regions = RegionCoherence()
    for name in system.hostmem._segments:
        regions.register(Interval(*_segment_span(system.hostmem, name)))
    for dx in accels:
        dx.preload_pages(system.hostmem.base,
                         system.hostmem.base + system.hostmem.size)

    schedule = workload.dx100_schedule(config.dx100, cores)
    groups = _split_groups(schedule)
    times = [0] * instances
    issue_instrs = 0.0
    for g, group in enumerate(groups):
        # Block (OpenMP-static) assignment: contiguous chunk ranges per
        # instance, so write ownership of each array transfers once rather
        # than ping-ponging every chunk.
        k = min(g * instances // max(len(groups), 1), instances - 1)
        dx = accels[k]
        t = times[k]
        for item in group:
            if isinstance(item, RegWrite):
                dx.write_register(item.reg, item.value)
                t += 1
                issue_instrs += 1
            elif isinstance(item, Instr):
                if item.base is not None and item.opcode in (
                        Opcode.IST, Opcode.IRMW, Opcode.SST):
                    # SWMR: acquire write ownership of the target region.
                    t = regions.acquire(item.base, k, write=True, t=t)
                dx.dispatch(item, t)
                t += ISSUE_INSTRS
                issue_instrs += ISSUE_INSTRS
            elif isinstance(item, WaitTiles):
                t = dx.wait(item.tiles, t)
                issue_instrs += WAIT_BASE_INSTRS
            elif isinstance(item, CoreWork):
                # Residual core work synchronizes with this instance only.
                t = system.multicore.run(item.traces, at=t)
            else:
                raise TypeError(f"unknown schedule item {item!r}")
        times[k] = t
    finish = max(times)
    for dx in accels:
        if dx.records:
            finish = max(finish, max(r.finish for r in dx.records))
    if validate:
        workload.validate(system.hostmem)
    instructions = issue_instrs + system.multicore.total_instructions() \
        + workload.non_roi_instructions()
    extra = {"instances": instances,
             "ownership_transfers": regions.stats.get("ownership_transfers")}
    return collect(system, workload.name, f"dx100x{instances}", finish,
                   instructions, extra)


def _segment_span(hostmem, name: str) -> tuple[int, int]:
    iv = hostmem.interval_of(name)
    return iv.lo, iv.hi

"""Per-run metric extraction — the quantities the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.system import SimSystem


@dataclass
class RunResult:
    """All figure-level metrics for one workload under one configuration."""

    workload: str
    config: str
    cycles: int
    instructions: float
    bandwidth_utilization: float     # Fig. 10(a)
    row_buffer_hit_rate: float       # Fig. 10(b)
    request_buffer_occupancy: float  # Fig. 10(c)
    llc_mpki: float                  # Fig. 11(b)
    dram_bytes: float
    dram_requests: float
    extra: dict = field(default_factory=dict)

    def speedup_over(self, other: "RunResult") -> float:
        if self.cycles <= 0:
            raise ValueError("run has no cycles")
        return other.cycles / self.cycles


def collect(system: SimSystem, workload: str, config_name: str,
            cycles: int, instructions: float,
            extra: dict | None = None) -> RunResult:
    """Harvest metrics from a finished system."""
    system.dram.drain()
    # The run is not over until fire-and-forget write traffic lands.
    cycles = max(int(cycles), system.dram.last_finish())
    extra = dict(extra or {})
    if system.dram.auditor is not None:
        auditor = system.dram.auditor
        extra["audit_commands"] = float(auditor.commands_seen)
        extra["audit_violations"] = float(auditor.violation_count)
        if not auditor.ok:
            extra["audit_report"] = auditor.report()
    dram_stats = system.dram.merged_stats()
    # DRAM command mix (the sweep's BENCH record and Fig. 10 diagnostics).
    extra["dram_reads"] = dram_stats.get("reads")
    extra["dram_writes"] = dram_stats.get("writes")
    extra["dram_row_hits"] = dram_stats.get("row_hits")
    extra["dram_row_conflicts"] = dram_stats.get("row_conflicts")
    extra["dram_row_empty"] = dram_stats.get("row_empty")
    # Far-memory link counters (present only when the remote tier is
    # enabled; RunResult's pinned fields never change, so goldens hold).
    for key in ("far_reads", "far_writes", "far_bytes", "far_serviced",
                "link_out_wait", "link_ret_wait"):
        if key in dram_stats.counters:
            extra[key] = dram_stats.get(key)
    hier_stats = system.hierarchy.stats
    kilo = max(instructions, 1.0) / 1000.0
    # Scratchpad-backed fills are DX100 traffic, not core cache misses.
    misses = hier_stats.get("llc_misses") - hier_stats.get("spd_fills")
    return RunResult(
        workload=workload,
        config=config_name,
        cycles=int(cycles),
        instructions=instructions,
        bandwidth_utilization=system.dram.bandwidth_utilization(cycles),
        row_buffer_hit_rate=system.dram.row_buffer_hit_rate(),
        request_buffer_occupancy=system.dram.mean_occupancy(),
        llc_mpki=misses / kilo,
        dram_bytes=dram_stats.get("bytes"),
        dram_requests=dram_stats.get("requests"),
        extra=extra,
    )

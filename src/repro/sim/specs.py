"""Declarative campaign spec DSL (the spack-style variant grammar).

A campaign spec is a single line of ``key=values`` clauses::

    benchmarks=IS,CG dram=ddr4,ddr5 tile=4k:64k tenants=1:8

Each clause names one *dimension*; the campaign grid is the cartesian
product of every dimension's values, deduplicated (a ``tile`` point only
exists for the dx100 configuration, so baseline/dmp tasks collapse across
the tile axis instead of replicating).  Value lists compose three forms:

* **commas** — ``ddr4,ddr5`` enumerates literal values;
* **ranges** — ``lo:hi`` expands geometrically by doubling from ``lo``
  until ``hi`` (``1:8`` -> 1,2,4,8; a ``hi`` off the doubling chain is
  included as the final point, so ``4k:48k`` -> 4k,8k,16k,32k,48k);
* **suffixes** — integers accept ``k``/``m``/``g`` (powers of 1024);
* **globs** — benchmark names match ``fnmatch`` patterns against the
  registry (``G*`` selects GZZ, GZZI, GZP, GZPI).

Dimensions (all optional; a spec of ``""`` is the full default grid):

===========  ==================================================  =========
key          values                                              default
===========  ==================================================  =========
benchmarks   registry names or globs                             all 12
modes        baseline, dmp, dx100 (alias: ``configs``)           all three
dram         DRAM_PRESETS registry: ddr4, ddr5, cxl              ddr4
tile         DX100 tile elements (dx100 tasks only)              config
cores        core counts                                         4
scale        quick, main                                         main
engine       batched, scalar (DRAM engine override)              config
frontend     batched, scalar (simulation front-end override)     config
sample       timeline sampling period in cycles                  0 (off)
tenants      serving-layer tenant counts (opens the serve axis)  --
aggressor    tenant index flooding the serve runs (-1 = none)    -1
===========  ==================================================  =========

``tenants`` adds *serve tasks* to the campaign — multi-tenant QoS runs
(:func:`repro.serve.serve_run`) expanded over ``tenants x dram x
aggressor``.  The benchmark/tile axes do not apply to synthetic tenant
streams, so a combined spec produces both grids side by side.

This module also owns the :class:`~repro.common.config.SystemConfig`
dict round-trip the on-disk campaign manifest needs: ``asdict`` flattens
the frozen config tree into JSON, :func:`system_config_from_dict`
rebuilds it bitwise (``tests/sim/test_specs.py`` pins the round-trip).
"""

from __future__ import annotations

import fnmatch
from dataclasses import asdict, replace
from typing import Any

from repro.common.config import (
    DRAM_PRESETS, CacheConfig, CoreConfig, DDR4Timing, DRAMConfig,
    DX100Config, RemoteLinkConfig, SystemConfig, dram_preset,
)
from repro.sim.sweep import CONFIG_BUILDERS, MODES, SweepTask


class SpecError(ValueError):
    """A malformed or unsatisfiable campaign spec."""


_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}

#: Dimension keys the grammar accepts (aliases normalized first).
DIMENSIONS = (
    "benchmarks", "modes", "dram", "tile", "cores", "scale",
    "engine", "frontend", "sample", "tenants", "aggressor",
)

_ALIASES = {
    "benchmark": "benchmarks",
    "configs": "modes",
    "config": "modes",
    "mode": "modes",
    "tiles": "tile",
    "tenant": "tenants",
}

_CHOICES = {
    "modes": set(MODES),
    # Derived from the preset registry beside DRAMConfig so a new memory
    # technology (e.g. ``cxl``) is accepted here the moment it exists —
    # the grammar can never lag the config layer.
    "dram": set(DRAM_PRESETS),
    "scale": {"quick", "main"},
    "engine": {"batched", "scalar"},
    "frontend": {"batched", "scalar"},
}

_INT_DIMS = {"tile", "cores", "sample", "tenants", "aggressor"}


# ------------------------------------------------------------------ parsing

def parse_atom(token: str) -> int | str:
    """One literal value: an integer (with optional k/m/g suffix) or a
    bare string."""
    text = token.strip()
    if not text:
        raise SpecError("empty value in spec")
    scale = 1
    if text[-1].lower() in _SUFFIXES and text[:-1].lstrip("-").isdigit():
        scale = _SUFFIXES[text[-1].lower()]
        text = text[:-1]
    if text.lstrip("-").isdigit():
        return int(text) * scale
    return token.strip()


def expand_range(lo: int, hi: int) -> list[int]:
    """Geometric doubling from ``lo`` to ``hi`` inclusive."""
    if lo <= 0:
        raise SpecError(f"range start must be positive, got {lo}")
    if hi < lo:
        raise SpecError(f"empty range {lo}:{hi}")
    values = []
    v = lo
    while v < hi:
        values.append(v)
        v *= 2
    values.append(hi)
    return values


def expand_values(text: str) -> list[int | str]:
    """A clause's right-hand side: comma list of atoms and ``lo:hi``
    geometric ranges."""
    out: list[int | str] = []
    for token in text.split(","):
        if ":" in token:
            lo_s, _, hi_s = token.partition(":")
            lo, hi = parse_atom(lo_s), parse_atom(hi_s)
            if not (isinstance(lo, int) and isinstance(hi, int)):
                raise SpecError(f"range bounds must be integers: {token!r}")
            out.extend(expand_range(lo, hi))
        else:
            out.append(parse_atom(token))
    # Dedupe preserving order (ranges can overlap comma values).
    seen: set[int | str] = set()
    unique = [v for v in out if not (v in seen or seen.add(v))]  # type: ignore[func-returns-value]
    return unique


def parse_spec(text: str) -> dict[str, list[int | str]]:
    """Parse a spec line into ``dimension -> values`` (validated)."""
    spec: dict[str, list[int | str]] = {}
    for clause in text.split():
        key, sep, values = clause.partition("=")
        if not sep or not values:
            raise SpecError(
                f"clause {clause!r} is not key=value,...; dimensions: "
                f"{', '.join(DIMENSIONS)}")
        key = _ALIASES.get(key.lower(), key.lower())
        if key not in DIMENSIONS:
            raise SpecError(
                f"unknown dimension {key!r}; choose from "
                f"{', '.join(DIMENSIONS)}")
        if key in spec:
            raise SpecError(f"dimension {key!r} given twice")
        parsed = expand_values(values)
        if key in _INT_DIMS:
            bad = [v for v in parsed if not isinstance(v, int)]
            if bad:
                raise SpecError(f"{key} takes integers, got {bad}")
        choices = _CHOICES.get(key)
        if choices is not None:
            bad = [v for v in parsed if v not in choices]
            if bad:
                raise SpecError(
                    f"{key} takes {sorted(choices)}, got {bad}")
        spec[key] = parsed
    return spec


def _match_benchmarks(patterns: list[int | str]) -> list[str]:
    """Glob-expand benchmark patterns against the registry, in registry
    order, erroring on patterns that match nothing."""
    from repro.workloads import MAIN_BENCHMARKS
    names = list(MAIN_BENCHMARKS)
    selected: list[str] = []
    for pattern in patterns:
        pat = str(pattern)
        hits = [n for n in names if fnmatch.fnmatchcase(n, pat)]
        if not hits:
            raise SpecError(
                f"benchmark pattern {pat!r} matches nothing "
                f"(registry: {', '.join(names)})")
        selected.extend(h for h in hits if h not in selected)
    return selected


# ---------------------------------------------------------------- expansion

def _dram_preset(name: str) -> DRAMConfig:
    return dram_preset(str(name))


def expand_sweep_tasks(spec: dict[str, list[int | str]]) -> list[SweepTask]:
    """The spec's (workload, config, mode) grid as deduplicated
    :class:`~repro.sim.sweep.SweepTask` items, grouped by benchmark so a
    worker claiming in order runs every mode of one dataset back to back
    (the fabric's generate-reuse window)."""
    benchmarks = _match_benchmarks(spec.get("benchmarks", ["*"]))
    modes = [str(m) for m in spec.get("modes", list(MODES))]
    drams = [str(d) for d in spec.get("dram", ["ddr4"])]
    tiles: list[int | None] = list(spec["tile"]) if "tile" in spec \
        else [None]   # type: ignore[list-item]
    cores = [int(c) for c in spec.get("cores", [4])]
    scales = [str(s) for s in spec.get("scale", ["main"])]
    engine = spec.get("engine", [None])[0]
    frontend = spec.get("frontend", [None])[0]
    sample = int(spec.get("sample", [0])[0])  # type: ignore[arg-type]

    tasks: list[SweepTask] = []
    seen: set[str] = set()
    for scale in scales:
        for name in benchmarks:
            for mode in modes:
                for dram in drams:
                    for tile in tiles:
                        for n_cores in cores:
                            config = CONFIG_BUILDERS[mode](n_cores)
                            dram_cfg = _dram_preset(dram)
                            if engine is not None:
                                dram_cfg = replace(dram_cfg,
                                                   engine=str(engine))
                            config = replace(config, dram=dram_cfg)
                            if tile is not None and config.dx100 is not None:
                                config = replace(
                                    config,
                                    dx100=config.dx100.with_tile(int(tile)))
                            if frontend is not None:
                                config = replace(config,
                                                 frontend=str(frontend))
                            task = SweepTask(
                                benchmark=name, mode=mode,
                                quick=(scale == "quick"), config=config,
                                sample_every=sample)
                            key = task.key()
                            if key not in seen:
                                seen.add(key)
                                tasks.append(task)
    return tasks


def expand_serve_params(spec: dict[str, list[int | str]]) -> list[dict]:
    """The spec's serving-layer grid (``tenants x dram x aggressor``) as
    parameter dicts for :class:`repro.sim.fabric.ServeParams`."""
    if "tenants" not in spec:
        return []
    drams = [str(d) for d in spec.get("dram", ["ddr4"])]
    aggressors = [int(a) for a in spec.get("aggressor", [-1])]
    engine = str(spec.get("engine", ["batched"])[0] or "batched")
    params = []
    for tenants in spec["tenants"]:
        if int(tenants) < 1:
            raise SpecError(f"tenants must be >= 1, got {tenants}")
        for dram in drams:
            for aggressor in aggressors:
                if aggressor >= int(tenants):
                    raise SpecError(
                        f"aggressor index {aggressor} out of range for "
                        f"{tenants} tenant(s)")
                params.append({"tenants": int(tenants), "dram": dram,
                               "aggressor": aggressor, "engine": engine})
    return params


# -------------------------------------------------- config dict round-trip

def system_config_to_dict(config: SystemConfig) -> dict[str, Any]:
    """JSON-ready dict of the whole config tree (plain ``asdict``)."""
    return asdict(config)


def system_config_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` form, bitwise.

    The campaign manifest stores every task's config as JSON so a resumed
    campaign (possibly on another host sharing the results directory)
    re-simulates exactly the grid that was scheduled, not whatever the
    current defaults happen to be.
    """
    d = dict(data)
    dram_d = dict(d["dram"])
    # Every nested frozen dataclass must be rebuilt explicitly — a plain
    # ``DRAMConfig(**dram_d)`` would land raw dicts in the typed fields
    # and silently break hashing/equality (tests/sim/test_cache_key_coverage
    # pins that each nested type survives the round trip).
    dram = DRAMConfig(**{
        **dram_d,
        "timing": DDR4Timing(**dram_d["timing"]),
        "remote": RemoteLinkConfig(**dram_d["remote"]),
    })
    dx100 = DX100Config(**d["dx100"]) if d.get("dx100") else None
    return SystemConfig(**{
        **d,
        "core": CoreConfig(**d["core"]),
        "l1": CacheConfig(**d["l1"]),
        "l2": CacheConfig(**d["l2"]),
        "llc": CacheConfig(**d["llc"]),
        "dram": dram,
        "dx100": dx100,
    })


def sweep_task_to_dict(task: SweepTask) -> dict[str, Any]:
    """Manifest form of one sweep task."""
    return {
        "benchmark": task.benchmark,
        "mode": task.mode,
        "quick": task.quick,
        "warm": task.warm,
        "sample_every": task.sample_every,
        "config": system_config_to_dict(task.config),
    }


def sweep_task_from_dict(data: dict[str, Any]) -> SweepTask:
    return SweepTask(
        benchmark=data["benchmark"], mode=data["mode"],
        quick=data["quick"], warm=data.get("warm", False),
        sample_every=data.get("sample_every", 0),
        config=system_config_from_dict(data["config"]),
    )

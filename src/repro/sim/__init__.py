"""Simulation harness: system assembly, runners, metric collection."""

from repro.sim.corun import CorunResult, NamespacedMemory, run_corun
from repro.sim.metrics import RunResult, collect
from repro.sim.report import bar_chart, comparison_table, to_csv
from repro.sim.runner import (
    compare, run_baseline, run_dmp, run_dx100, software_pipeline,
)
from repro.sim.scale import run_dx100_multi
from repro.sim.statsdump import dump_stats, format_stats, write_stats
from repro.sim.sweep import (
    RunCache, SweepOutcome, SweepTask, main_sweep_tasks, run_main_sweep,
    run_sweep,
)
from repro.sim.system import SimSystem

__all__ = [
    "CorunResult",
    "NamespacedMemory",
    "RunCache",
    "RunResult",
    "SimSystem",
    "SweepOutcome",
    "SweepTask",
    "bar_chart",
    "collect",
    "compare",
    "comparison_table",
    "dump_stats",
    "format_stats",
    "main_sweep_tasks",
    "run_baseline",
    "run_corun",
    "run_dmp",
    "run_dx100",
    "run_dx100_multi",
    "run_main_sweep",
    "run_sweep",
    "software_pipeline",
    "to_csv",
    "write_stats",
]

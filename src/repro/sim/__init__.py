"""Simulation harness: system assembly, runners, metric collection."""

from repro.sim.corun import CorunResult, NamespacedMemory, run_corun
from repro.sim.fabric import (
    Campaign, CampaignTask, RetryPolicy, build_tasks, campaign_status,
    create_campaign, load_campaign, run_campaign, worker_loop,
)
from repro.sim.metrics import RunResult, collect
from repro.sim.report import bar_chart, comparison_table, to_csv
from repro.sim.runner import (
    compare, run_baseline, run_dmp, run_dx100, software_pipeline,
)
from repro.sim.scale import run_dx100_multi
from repro.sim.statsdump import dump_stats, format_stats, write_stats
from repro.sim.specs import expand_sweep_tasks, parse_spec
from repro.sim.sweep import (
    RunCache, SweepOutcome, SweepTask, main_sweep_tasks, run_main_sweep,
    run_sweep,
)
from repro.sim.system import SimSystem

__all__ = [
    "Campaign",
    "CampaignTask",
    "CorunResult",
    "NamespacedMemory",
    "RetryPolicy",
    "RunCache",
    "RunResult",
    "SimSystem",
    "SweepOutcome",
    "SweepTask",
    "bar_chart",
    "build_tasks",
    "campaign_status",
    "collect",
    "compare",
    "comparison_table",
    "create_campaign",
    "dump_stats",
    "expand_sweep_tasks",
    "format_stats",
    "load_campaign",
    "main_sweep_tasks",
    "parse_spec",
    "run_baseline",
    "run_campaign",
    "run_corun",
    "run_dmp",
    "run_dx100",
    "run_dx100_multi",
    "run_main_sweep",
    "run_sweep",
    "software_pipeline",
    "to_csv",
    "worker_loop",
    "write_stats",
]

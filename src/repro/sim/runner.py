"""Experiment runner: execute a workload under each system configuration.

Three run modes mirror the paper's evaluation:

* ``run_baseline``  — the legacy multicore code (Table 3 baseline);
* ``run_dmp``       — baseline plus the DMP indirect prefetcher;
* ``run_dx100``     — the offloaded code: the DX100 program interleaved
  with residual core work, synchronized through scratchpad ready bits.

DX100 runs also *validate*: the host-memory state after the program must
match the workload's NumPy reference.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.dx100.api import RegWrite, WaitTiles
from repro.dx100.isa import Instr
from repro.sim.metrics import RunResult, collect
from repro.sim.profile import NULL_TIMERS, StageTimers
from repro.sim.system import SimSystem
from repro.workloads.base import CoreWork, Workload

# Spin-wait modelling: one poll loop iteration (load + compare + branch)
# every SPIN_PERIOD cycles while blocked on a ready bit, capped per wait.
SPIN_PERIOD = 20
SPIN_CAP = 500
WAIT_BASE_INSTRS = 2
ISSUE_INSTRS = 3  # three 64-bit memory-mapped stores per instruction


def run_baseline(workload: Workload, config: SystemConfig | None = None,
                 warm: bool = True,
                 timers: StageTimers | None = None,
                 obs=None, tenant: int = -1) -> RunResult:
    """Run a workload's legacy multicore code (optionally with DMP).

    ``timers`` (see :mod:`repro.sim.profile`) attributes wall-clock to the
    run's coarse stages — generate, warm, simulate, collect — for the
    profiling harness; the default null timer adds no overhead.  ``obs``
    is an optional :class:`repro.obs.events.EventBus`; its summary lands
    in ``RunResult.extra`` (never in the golden metric fields).
    ``tenant`` (>= 0) tags every DRAM request for per-tenant accounting;
    the tag never changes scheduling, so a tagged run's metrics match the
    untagged ones exactly (the serving layer's degeneracy guarantee).
    """
    timers = timers or NULL_TIMERS
    config = config or SystemConfig.baseline()
    system = SimSystem(config, mem_bytes=workload.mem_bytes, obs=obs)
    if tenant >= 0:
        system.set_tenant(tenant)
    with timers.stage("generate"):
        workload.generate(system.hostmem)
    if warm and hasattr(workload, "warm_lines"):
        with timers.stage("warm"):
            system.warm(workload.warm_lines())
    cores = 1 if workload.single_core_baseline else config.cores
    with timers.stage("trace"):
        traces = workload.baseline_traces(cores)
    if system.dmp is not None:
        for pc, addrs in workload.dmp_streams().items():
            system.dmp.register_stream(pc, addrs)
    with timers.stage("simulate"):
        finish = system.multicore.run(traces)
    instructions = (system.multicore.total_instructions()
                    + workload.non_roi_instructions())
    extra = {}
    if system.dmp is not None:
        extra["dmp_prefetches"] = system.dmp.stats.get("dmp_prefetches")
    if obs is not None:
        # Drain in-flight DRAM traffic first (idempotent; collect() drains
        # too) so the digest reflects the run's final event counts.
        system.dram.drain()
        extra.update(obs.summary())
    with timers.stage("collect"):
        return collect(system, workload.name, config.name, finish,
                       instructions, extra)


def run_dmp(workload: Workload, cores: int = 4,
            warm: bool = True) -> RunResult:
    return run_baseline(workload, SystemConfig.dmp_system(cores), warm)


def software_pipeline(schedule: list) -> list:
    """Reorder a schedule for double buffering: each chunk's instructions
    dispatch *before* the previous chunk's residual core work, so the
    accelerator gathers tile k+1 while the cores consume tile k (the
    overlap the paper's programming model encourages).  The scoreboard's
    tile hazards keep the reordering safe."""
    segments: list[list] = [[]]
    for item in schedule:
        segments[-1].append(item)
        if isinstance(item, CoreWork):
            segments.append([])
    if not segments[-1]:
        segments.pop()
    out: list = []
    pending_tail: list = []       # waits + core work deferred one segment
    for segment in segments:
        issue = [x for x in segment if isinstance(x, (Instr, RegWrite))]
        tail = [x for x in segment if not isinstance(x, (Instr, RegWrite))]
        out.extend(issue)
        out.extend(pending_tail)
        pending_tail = tail
    out.extend(pending_tail)
    return out


def run_dx100(workload: Workload, config: SystemConfig | None = None,
              warm: bool = True, validate: bool = True,
              pipelined: bool = False,
              timers: StageTimers | None = None,
              obs=None, tenant: int = -1) -> RunResult:
    """Run the offloaded code: DX100 schedule + residual core work,
    synchronized through scratchpad ready bits, then validate.

    ``pipelined=True`` applies :func:`software_pipeline` (double
    buffering); the default keeps the workload's own ordering.
    ``timers`` attributes wall-clock to the coarse stages (generate, warm,
    preload, schedule, validate, collect) for the profiling harness.
    ``obs`` is an optional :class:`repro.obs.events.EventBus`; its summary
    lands in ``RunResult.extra`` (never in the golden metric fields).
    ``tenant`` (>= 0) tags every DRAM request for per-tenant accounting
    without altering scheduling (see :func:`run_baseline`)."""
    timers = timers or NULL_TIMERS
    config = config or SystemConfig.dx100_system()
    if config.dx100 is None:
        raise ValueError("run_dx100 needs a DX100 configuration")
    system = SimSystem(config, mem_bytes=workload.mem_bytes, obs=obs)
    if tenant >= 0:
        system.set_tenant(tenant)
    dx = system.dx100
    with timers.stage("generate"):
        workload.generate(system.hostmem)
    if warm and hasattr(workload, "warm_lines"):
        with timers.stage("warm"):
            system.warm(workload.warm_lines())
    # PTE transfer for all touched memory (Section 3.6).
    with timers.stage("preload"):
        dx.preload_pages(system.hostmem.base,
                         system.hostmem.base + system.hostmem.size)

    with timers.stage("schedule"):
        schedule = workload.dx100_schedule(config.dx100, config.cores)
        if pipelined:
            schedule = software_pipeline(schedule)
    t = 0
    issue_instrs = 0.0
    with timers.stage("simulate"):
        for item in schedule:
            if isinstance(item, RegWrite):
                dx.write_register(item.reg, item.value)
                t += 1
                issue_instrs += 1
            elif isinstance(item, Instr):
                dx.dispatch(item, t)
                t += ISSUE_INSTRS
                issue_instrs += ISSUE_INSTRS
            elif isinstance(item, WaitTiles):
                resume = dx.wait(item.tiles, t)
                spins = min((resume - t) // SPIN_PERIOD, SPIN_CAP)
                issue_instrs += WAIT_BASE_INSTRS + spins
                t = resume
                for tile in item.tiles:
                    dx.mark_consumed(tile)
            elif isinstance(item, CoreWork):
                t = system.multicore.run(item.traces, at=t)
            else:
                raise TypeError(f"unknown schedule item {item!r}")
        # The run ends when both the cores and the accelerator are done.
        if dx.records:
            t = max(t, max(r.finish for r in dx.records))
    instructions = (system.multicore.total_instructions() + issue_instrs
                    + workload.non_roi_instructions())
    if validate:
        with timers.stage("validate"):
            workload.validate_dx(dx, system.hostmem)
    extra = {
        "dx100_instructions": dx.stats.get("instructions"),
        "coalescing": _mean_coalescing(dx),
    }
    if obs is not None:
        # Drain first (idempotent) so the digest sees the final counts.
        system.dram.drain()
        extra.update(obs.summary())
    with timers.stage("collect"):
        return collect(system, workload.name, config.name, t, instructions,
                       extra)


def _mean_coalescing(dx) -> float:
    factors = [r.detail.coalescing for r in dx.records
               if r.detail is not None and hasattr(r.detail, "coalescing")]
    if not factors:
        return 1.0
    return sum(factors) / len(factors)


def compare(workload_factory, cores: int = 4, warm: bool = True,
            tile_elems: int = 16 * 1024) -> dict[str, RunResult]:
    """Run one workload in all three configurations (fresh instances)."""
    results = {}
    results["baseline"] = run_baseline(workload_factory(),
                                       SystemConfig.baseline(cores), warm)
    results["dmp"] = run_baseline(workload_factory(),
                                  SystemConfig.dmp_system(cores), warm)
    results["dx100"] = run_dx100(
        workload_factory(),
        SystemConfig.dx100_system(cores, tile_elems=tile_elems), warm)
    return results

"""Co-running workloads on a shared memory system.

The paper motivates DX100 partly through *inter-core interference*:
concurrent request streams from different cores open different rows in the
same banks and destroy each other's locality (Section 1).  This module
runs several workloads simultaneously on disjoint core subsets of one
system, so that interference — shared LLC capacity, row conflicts, shared
request buffers — emerges from the shared component state, and reports
each workload's slowdown against its solo run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.dx100.hostmem import HostMemory
from repro.sim.system import SimSystem
from repro.workloads.base import Workload


class NamespacedMemory:
    """A :class:`HostMemory` view that prefixes segment names, so several
    workloads can allocate their arrays in one shared physical memory."""

    def __init__(self, mem: HostMemory, prefix: str) -> None:
        self._mem = mem
        self._prefix = prefix

    def alloc(self, name, shape, dtype, align: int = 4096) -> int:
        return self._mem.alloc(self._prefix + name, shape, dtype, align)

    def place(self, name, array, align: int = 4096) -> int:
        return self._mem.place(self._prefix + name, array, align)

    def view(self, name):
        return self._mem.view(self._prefix + name)

    def addr_of(self, name) -> int:
        return self._mem.addr_of(self._prefix + name)

    def interval_of(self, name):
        return self._mem.interval_of(self._prefix + name)

    def __getattr__(self, attr):
        return getattr(self._mem, attr)


@dataclass
class CorunResult:
    """Per-workload cycles when co-running vs. running solo.

    ``tenant_dram`` (tenant-tagged co-runs only) holds each workload's
    own DRAM traffic — ``{"serviced", "bytes", "row_hits"}`` — attributed
    through the per-tenant request tags rather than inferred from totals.
    """

    names: list[str]
    solo_cycles: list[int]
    corun_cycles: list[int]
    corun_finish: int
    tenant_dram: list[dict] | None = None

    def slowdown(self, i: int) -> float:
        return self.corun_cycles[i] / self.solo_cycles[i]


def run_corun(factories, config: SystemConfig | None = None,
              tenants: bool = False) -> CorunResult:
    """Run each workload solo, then all of them concurrently on disjoint
    core subsets of a single shared system.

    ``tenants=True`` routes the co-run through the tenant-tagged path:
    workload ``k``'s cores are tagged as tenant ``k``, so the result can
    attribute DRAM traffic per workload (``tenant_dram``).  Tags never
    change scheduling, so cycles and slowdowns are identical either way —
    ``tests/sim/test_corun.py`` asserts exactly that.
    """
    config = config or SystemConfig.baseline_scaled()
    if len(factories) < 2:
        raise ValueError("co-running needs at least two workloads")
    if config.cores % len(factories):
        raise ValueError("core count must divide evenly among workloads")
    per = config.cores // len(factories)

    # Solo runs (each on its own fresh system, using `per` cores).
    names, solo = [], []
    for factory in factories:
        system = SimSystem(config)
        wl = factory()
        wl.generate(system.hostmem)
        traces = wl.baseline_traces(per)
        finish = system.multicore.run(traces)
        names.append(wl.name)
        solo.append(finish)

    # Co-run: one system, all workloads at once.
    system = SimSystem(config)
    all_traces = [None] * config.cores
    workloads: list[Workload] = []
    for k, factory in enumerate(factories):
        wl = factory()
        wl.generate(NamespacedMemory(system.hostmem, f"w{k}:"))
        workloads.append(wl)
        if tenants:
            system.set_tenant(k, cores=range(k * per, (k + 1) * per))
        for j, trace in enumerate(wl.baseline_traces(per)):
            all_traces[k * per + j] = trace
    finish = system.multicore.run(all_traces)
    per_wl = []
    for k in range(len(factories)):
        cores = system.multicore.cores[k * per:(k + 1) * per]
        per_wl.append(max(core._finish for core in cores))
    tenant_dram = None
    if tenants:
        system.dram.drain()
        tenant_dram = [system.dram.tenant_counters(k)
                       for k in range(len(factories))]
    return CorunResult(names=names, solo_cycles=solo,
                       corun_cycles=per_wl, corun_finish=finish,
                       tenant_dram=tenant_dram)

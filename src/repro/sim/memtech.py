"""Memory-technology comparison scenarios (local DDR vs far memory).

The canonical grid behind ``results/memory_technology`` and the
``remote-smoke`` CI job: one quick benchmark under baseline and DX100 on
each memory technology row —

``local``
    plain DDR4-2400, every line in the local pool (the default config);
``ddr5``
    the DDR5-6400 timing preset, still all-local;
``cxl``
    every line behind the modeled far-memory link
    (:mod:`repro.dram.remote`) at its default latency/bandwidth;
``mixed``
    half the lines far by deterministic line-interleave hash — the
    tiered-memory placement where hot and cold data share the footprint.

Each row reports the pinned :data:`~repro.sim.sweep.GOLDEN_FIELDS`
plus the link's ``far_serviced`` counter, and the golden harness pins
them bitwise in ``tests/golden/memory_technology.json`` so a far-tier
regression (or an accidental change to link timing) fails CI the same
way the quick-suite goldens do.  The scalar DRAM engine must reproduce
the file exactly (``--engine scalar`` — the differential guarantee over
the link path).

Run ``python -m repro.sim.memtech --check`` to diff, ``--update-golden``
to regenerate after an intentional model change.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.common.config import (
    DRAMConfig, RemoteLinkConfig, SystemConfig, cxl_remote, ddr5_6400,
)
from repro.sim.runner import run_baseline, run_dx100
from repro.sim.sweep import GOLDEN_FIELDS

MEMTECH_GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / \
    "golden" / "memory_technology.json"

#: Pinned per-run fields: the sweep goldens' eight, plus the far-tier
#: service count (0 on all-local rows — pinning it catches placement
#: regressions that happen not to move the timing).
MEMTECH_FIELDS = GOLDEN_FIELDS + ("far_serviced",)

#: The technology rows, in report order.
MEMTECH_SCENARIOS = ("local", "ddr5", "cxl", "mixed")

_MODES = ("baseline", "dx100")


def memtech_dram(scenario: str) -> DRAMConfig:
    """The DRAM config for one technology row."""
    if scenario == "local":
        return DRAMConfig()
    if scenario == "ddr5":
        return ddr5_6400()
    if scenario == "cxl":
        return cxl_remote()
    if scenario == "mixed":
        return DRAMConfig(remote=RemoteLinkConfig(
            enabled=True, placement="hash", far_fraction=0.5))
    raise ValueError(
        f"unknown memtech scenario {scenario!r}; "
        f"valid: {', '.join(MEMTECH_SCENARIOS)}")


def run_memtech(benchmark: str = "IS", cores: int = 2,
                engine: str | None = None) -> dict:
    """Run the scenario grid on one quick benchmark.

    Returns ``scenario -> mode -> {field: value}`` over
    :data:`MEMTECH_FIELDS`.  ``engine`` forces the DRAM engine
    (``"scalar"`` replays the grid on the per-request oracle; the result
    must be bitwise identical).
    """
    from repro.workloads import QUICK_BENCHMARKS
    snapshot: dict[str, dict[str, dict]] = {}
    for scenario in MEMTECH_SCENARIOS:
        dram = memtech_dram(scenario)
        if engine is not None:
            dram = replace(dram, engine=engine)
        rows: dict[str, dict] = {}
        for mode in _MODES:
            builder = (SystemConfig.dx100_scaled if mode == "dx100"
                       else SystemConfig.baseline_scaled)
            config = replace(builder(cores), dram=dram)
            wl = QUICK_BENCHMARKS[benchmark]()
            run = run_dx100 if mode == "dx100" else run_baseline
            result = run(wl, config, warm=False)
            row = {f: getattr(result, f) for f in GOLDEN_FIELDS}
            row["far_serviced"] = int(result.extra.get("far_serviced", 0))
            rows[mode] = row
        snapshot[scenario] = rows
    return snapshot


# ---------------------------------------------------- golden-pin harness

def diff_memtech_golden(snapshot: dict, golden: dict) -> list[str]:
    """Exact field-by-field diff; empty list means bitwise identical."""
    problems = []
    for scenario in sorted(set(golden) | set(snapshot)):
        if scenario not in snapshot:
            problems.append(f"{scenario}: missing from this run")
            continue
        if scenario not in golden:
            problems.append(f"{scenario}: not in the golden file "
                            f"(run --update-golden)")
            continue
        for mode in sorted(set(golden[scenario]) | set(snapshot[scenario])):
            got = snapshot[scenario].get(mode)
            want = golden[scenario].get(mode)
            if got is None or want is None:
                problems.append(
                    f"{scenario}/{mode}: present in only one side")
                continue
            for fld in MEMTECH_FIELDS:
                if got.get(fld) != want.get(fld):
                    problems.append(
                        f"{scenario}/{mode}.{fld}: got {got.get(fld)!r}, "
                        f"golden {want.get(fld)!r}")
    return problems


def write_memtech_golden(snapshot: dict,
                         path: str | Path | None = None) -> Path:
    """Write a :func:`run_memtech` snapshot as the committed golden file."""
    path = Path(path or MEMTECH_GOLDEN_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": "Golden metrics for the memory-technology scenario "
                    "grid (quick IS under baseline/dx100 on local DDR4, "
                    "DDR5, all-far CXL, and mixed placement).  Regenerate "
                    "with `python -m repro.sim.memtech --update-golden` "
                    "after an intentional model change.",
        "benchmark": "IS",
        "fields": list(MEMTECH_FIELDS),
        "metrics": snapshot,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_memtech_golden(path: str | Path | None = None) -> dict:
    return json.loads(
        Path(path or MEMTECH_GOLDEN_PATH).read_text())["metrics"]


def main(argv=None) -> int:
    """CLI: ``--check`` diffs against the golden, ``--update-golden``
    rewrites it; ``--engine scalar`` replays on the DRAM oracle."""
    import argparse
    import sys
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.memtech",
        description="memory-technology scenario grid (golden harness)")
    parser.add_argument("--check", action="store_true",
                        help="diff against tests/golden/"
                             "memory_technology.json; exit 1 on mismatch")
    parser.add_argument("--update-golden", action="store_true",
                        help="regenerate the golden file")
    parser.add_argument("--engine", choices=["batched", "scalar"],
                        default=None,
                        help="force the DRAM engine (scalar = oracle "
                             "replay; must match the golden bitwise)")
    args = parser.parse_args(argv)
    snapshot = run_memtech(engine=args.engine)
    if args.update_golden:
        path = write_memtech_golden(snapshot)
        print(f"memory-technology golden updated: {path}")
        return 0
    if args.check:
        try:
            golden = load_memtech_golden()
        except FileNotFoundError:
            print(f"no golden file at {MEMTECH_GOLDEN_PATH}; run "
                  f"`python -m repro.sim.memtech --update-golden`",
                  file=sys.stderr)
            return 1
        problems = diff_memtech_golden(snapshot, golden)
        if problems:
            print(f"memory-technology golden check FAILED "
                  f"({len(problems)} mismatch(es)):", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"memory-technology golden check passed (bitwise identical"
              f"{', engine=' + args.engine if args.engine else ''})")
        return 0
    for scenario in MEMTECH_SCENARIOS:
        rows = snapshot[scenario]
        speedup = rows["baseline"]["cycles"] / rows["dx100"]["cycles"]
        print(f"{scenario:>6s}: baseline {rows['baseline']['cycles']:>9d} "
              f"cy, dx100 {rows['dx100']['cycles']:>9d} cy, "
              f"speedup {speedup:5.2f}x, "
              f"far lines {rows['dx100']['far_serviced']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Full component-statistics dump (gem5's ``stats.txt`` analogue).

Collects every counter from every component of a :class:`SimSystem` into a
flat, namespaced mapping — the raw material for debugging a run or for
metrics the packaged :class:`RunResult` does not surface.
"""

from __future__ import annotations

from pathlib import Path

from repro.sim.system import SimSystem


def dump_stats(system: SimSystem) -> dict[str, float]:
    """Flatten all component stats into ``component.counter`` keys.

    Counters keep their bare names; min/max trackers get ``.min`` /
    ``.max`` suffixes (a min and a max may share a name with each other —
    or with a counter — without silently overwriting one another) and
    weighted averages get ``.mean``, all through the ``Stats`` public
    surface.
    """
    out: dict[str, float] = {}

    def put(prefix: str, stats) -> None:
        for name, value in stats.counters.items():
            out[f"{prefix}.{name}"] = float(value)
        for name, value in stats.mins.items():
            out[f"{prefix}.{name}.min"] = float(value)
        for name, value in stats.maxs.items():
            out[f"{prefix}.{name}.max"] = float(value)
        for name in stats.mean_names():
            out[f"{prefix}.{name}.mean"] = stats.mean(name)

    for ctrl in system.dram.controllers:
        put(f"dram.ch{ctrl.channel}", ctrl.stats)
    out["dram.row_buffer_hit_rate"] = system.dram.row_buffer_hit_rate()
    out["dram.mean_occupancy"] = system.dram.mean_occupancy()
    out["dram.total_bytes"] = system.dram.total_bytes()

    put("cache", system.hierarchy.stats)
    for i, core in enumerate(system.multicore.cores):
        put(f"core{i}", core.stats)
    if system.dx100 is not None:
        put("dx100", system.dx100.stats)
        out["dx100.tlb_entries_live"] = float(
            system.dx100.tlb.live_entries)
        out["dx100.spd_tracked_lines"] = float(
            system.dx100.coherency.tracked_lines)
    if system.dmp is not None:
        put("dmp", system.dmp.stats)
    return out


def format_stats(stats: dict[str, float]) -> str:
    """gem5-style two-column text dump, sorted by key."""
    width = max((len(k) for k in stats), default=0)
    lines = [f"{k:<{width}s}  {v:g}" for k, v in sorted(stats.items())]
    return "\n".join(lines)


def write_stats(system: SimSystem, path: str | Path) -> dict[str, float]:
    stats = dump_stats(system)
    Path(path).write_text(format_stats(stats) + "\n")
    return stats

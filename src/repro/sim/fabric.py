"""Resumable work-queue campaign executor (the sweep fabric).

A *campaign* is a persistent on-disk manifest of simulation tasks that N
workers — processes today, multiple hosts sharing the results directory
tomorrow — execute cooperatively, with crash-safe exactly-once claiming,
failure retry, and zero duplicated simulation on resume.  It generalizes
the PR 2 ``multiprocessing`` pool + content-addressed run cache into the
substrate the roadmap's scale items schedule onto.

Manifest layout (``results/.campaigns/<id>/``)::

    campaign.json     immutable: spec text, retry policy, lease TTL, tasks
    queue/<tid>       pending token  {"retries": n, "not_before": wall_ts}
    active/<tid>@<w>  claimed lease; the worker heartbeats its mtime
    done/<tid>.json   result record (metrics, wall, worker, retries)
    failed/<tid>.json terminal failure after the retry budget
    workers/<w>.json  per-worker stats (generate reuse, tasks executed)
    summary.md        human-readable report written at completion

Lease protocol — every transition is a single atomic ``os.rename``:

* **claim**: ``queue/<tid>`` -> ``active/<tid>@<worker>``.  Exactly one
  of any number of racing workers wins; the losers see ``FileNotFoundError``.
* **heartbeat**: the claiming worker touches the lease's mtime every
  ``lease_ttl / 4`` seconds from a daemon thread, so a *live* worker's
  lease never expires no matter how long the simulation runs.
* **reclaim**: a lease whose mtime is older than ``lease_ttl`` belongs to
  a dead worker (SIGKILL takes the heartbeat thread with it); any worker
  may rename it back to ``queue/<tid>``.  Racing reclaimers are serialized
  by the same rename atomicity, so a task is reclaimed exactly once.
* **complete**: write ``done/<tid>.json`` (tmp + rename), then drop the
  lease.  A crash between the two leaves a stale lease next to a done
  record; reclaim checks ``done/`` first and simply drops such leases.
* **fail**: re-enqueue with ``retries+1`` and a capped-exponential
  ``not_before`` backoff, or write ``failed/<tid>.json`` once the budget
  is exhausted.  The queue token is written *before* the lease is
  dropped, so a crash mid-failure can never lose the task (the benign
  residue — token plus stale lease — resolves at the next reclaim).

Workers claim with **workload affinity**: pending tasks are ordered so
every mode (baseline/dmp/dx100) of one dataset is claimed by the same
worker back to back, and a per-worker :class:`GenerateCache` snapshots
the dataset after its first ``generate`` and restores it into each
subsequent run's memory instead of regenerating — bitwise identical by
construction (deterministic seeds + bump-pointer allocation; pinned by
``tests/sim/test_fabric.py``), and measurably faster cold
(``BENCH_mainsweep.json`` records the A/B).

Progress streams through the :mod:`repro.obs` event bus: the monitor
publishes ``campaign_progress`` marks (pending/active/done/failed,
cache hits, ETA) that the CLI renders live.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable

from repro.dx100.hostmem import HostMemory
from repro.sim.metrics import RunResult
from repro.sim.specs import (
    expand_serve_params, expand_sweep_tasks, parse_spec,
    sweep_task_from_dict, sweep_task_to_dict,
)
from repro.sim.sweep import (
    RunCache, SweepTask, execute_task, model_version, result_to_dict,
    workload_fingerprint,
)

FABRIC_SCHEMA = 1

DEFAULT_CAMPAIGN_ROOT = Path("results") / ".campaigns"

QUEUE, ACTIVE, DONE, FAILED, WORKERS = (
    "queue", "active", "done", "failed", "workers")

#: Test-only injection hooks (documented for the chaos suite / CI smoke):
#: ``REPRO_FABRIC_TEST_SLEEP="tid:seconds,..."`` sleeps after claiming
#: ``tid`` (a kill window); ``REPRO_FABRIC_INJECT_FAIL="tid:n,..."``
#: raises on the first ``n`` attempts of ``tid`` (a retry exerciser).
ENV_TEST_SLEEP = "REPRO_FABRIC_TEST_SLEEP"
ENV_INJECT_FAIL = "REPRO_FABRIC_INJECT_FAIL"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed tasks."""

    max_retries: int = 2
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0

    def backoff(self, retries: int) -> float:
        return min(self.backoff_base_s * (2 ** retries), self.backoff_cap_s)


@dataclass(frozen=True)
class ServeParams:
    """One serving-layer campaign task (multi-tenant QoS run)."""

    tenants: int
    tiles: int = 4
    tile_lines: int = 96
    seed: int = 0
    aggressor: int = -1
    dram: str = "ddr4"
    engine: str = "batched"
    borrow: bool = True


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable unit: a sweep run or a serve run.

    ``group`` is the workload-affinity key: tasks sharing a group share a
    generated dataset, so the claim order keeps them on one worker and the
    :class:`GenerateCache` restores instead of regenerating.
    """

    tid: str
    kind: str                      # "sweep" | "serve"
    group: str
    sweep: SweepTask | None = None
    serve: ServeParams | None = None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"tid": self.tid, "kind": self.kind,
                             "group": self.group}
        if self.sweep is not None:
            d["sweep"] = sweep_task_to_dict(self.sweep)
        if self.serve is not None:
            d["serve"] = vars(self.serve).copy()
        return d

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "CampaignTask":
        return CampaignTask(
            tid=d["tid"], kind=d["kind"], group=d["group"],
            sweep=(sweep_task_from_dict(d["sweep"])
                   if d.get("sweep") else None),
            serve=ServeParams(**d["serve"]) if d.get("serve") else None,
        )


# ------------------------------------------------------------ task building

def _unique_tid(base: str, taken: set[str]) -> str:
    tid = base
    n = 2
    while tid in taken:
        tid = f"{base}.{n}"
        n += 1
    taken.add(tid)
    return tid


def build_tasks(spec_text: str) -> list[CampaignTask]:
    """Expand a spec line into campaign tasks with stable, readable ids.

    Ids are deterministic in expansion order (``IS.quick.dx100``,
    ``serve.t4.ddr5``, with ``.2``/``.3`` suffixes on axis collisions), so
    CI and the chaos tests can name tasks without hashing.
    """
    spec = parse_spec(spec_text)
    tasks: list[CampaignTask] = []
    taken: set[str] = set()
    for sweep in expand_sweep_tasks(spec):
        scale = "quick" if sweep.quick else "main"
        tid = _unique_tid(f"{sweep.benchmark}.{scale}.{sweep.mode}", taken)
        tasks.append(CampaignTask(
            tid=tid, kind="sweep", group=f"{sweep.benchmark}.{scale}",
            sweep=sweep))
    for params in expand_serve_params(spec):
        base = f"serve.t{params['tenants']}.{params['dram']}"
        if params["aggressor"] >= 0:
            base += f".a{params['aggressor']}"
        tid = _unique_tid(base, taken)
        tasks.append(CampaignTask(tid=tid, kind="serve", group="serve",
                                  serve=ServeParams(**params)))
    return tasks


# --------------------------------------------------------------- the manifest

@dataclass
class Campaign:
    """A loaded campaign manifest."""

    path: Path
    cid: str
    spec: str
    retry: RetryPolicy
    lease_ttl_s: float
    tasks: dict[str, CampaignTask]

    def dir(self, name: str) -> Path:
        return self.path / name


def campaign_dir(cid: str, root: str | Path | None = None) -> Path:
    return Path(root or DEFAULT_CAMPAIGN_ROOT) / cid


def _write_json(path: Path, payload: dict) -> None:
    """Crash-safe write: stage to a per-pid temp name, rename into place."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def create_campaign(tasks: list[CampaignTask], cid: str,
                    root: str | Path | None = None,
                    spec_text: str = "",
                    retry: RetryPolicy | None = None,
                    lease_ttl_s: float = 30.0,
                    cache: bool = True,
                    cache_dir: str | Path | None = None) -> Path:
    """Materialize a campaign on disk, deduplicating against the run cache.

    Sweep tasks whose content-addressed key is already in the run cache
    land directly in ``done/`` (``cached: true``) and are never scheduled;
    everything else gets a queue token.  ``campaign.json`` is written
    last, so a half-created directory is never a loadable campaign.
    """
    retry = retry or RetryPolicy()
    path = campaign_dir(cid, root)
    if (path / "campaign.json").exists():
        raise FileExistsError(f"campaign {cid!r} already exists at {path}")
    for sub in (QUEUE, ACTIVE, DONE, FAILED, WORKERS):
        (path / sub).mkdir(parents=True, exist_ok=True)

    store = RunCache(cache_dir) if cache else None
    now = time.time()
    for task in tasks:
        hit: RunResult | None = None
        key = ""
        if task.kind == "sweep" and store is not None:
            assert task.sweep is not None
            key = task.sweep.key()
            hit = store.load(key)
        if hit is not None:
            _write_json(path / DONE / f"{task.tid}.json", {
                "tid": task.tid, "kind": task.kind, "worker": "",
                "retries": 0, "cached": True, "wall_s": 0.0, "key": key,
                "result": result_to_dict(hit),
            })
        else:
            _write_json(path / QUEUE / task.tid,
                        {"retries": 0, "not_before": now})

    _write_json(path / "campaign.json", {
        "schema": FABRIC_SCHEMA,
        "id": cid,
        "spec": spec_text,
        "model_version": model_version(),
        "created": now,
        "lease_ttl_s": lease_ttl_s,
        "retry": vars(retry).copy(),
        "tasks": [task.to_dict() for task in tasks],
    })
    return path


def load_campaign(path: str | Path) -> Campaign:
    """Rebuild a :class:`Campaign` from its on-disk manifest."""
    path = Path(path)
    meta = json.loads((path / "campaign.json").read_text())
    if meta.get("schema") != FABRIC_SCHEMA:
        raise ValueError(
            f"campaign schema {meta.get('schema')} != {FABRIC_SCHEMA}")
    tasks = [CampaignTask.from_dict(d) for d in meta["tasks"]]
    return Campaign(
        path=path, cid=meta["id"], spec=meta.get("spec", ""),
        retry=RetryPolicy(**meta["retry"]),
        lease_ttl_s=float(meta["lease_ttl_s"]),
        tasks={t.tid: t for t in tasks},
    )


# ------------------------------------------------------------- lease protocol

def claim_task(path: Path, tid: str, worker: str) -> dict | None:
    """Atomically claim ``tid``; returns its queue token, or ``None`` if
    another worker won (or the token vanished)."""
    lease = path / ACTIVE / f"{tid}@{worker}"
    try:
        os.rename(path / QUEUE / tid, lease)
    except FileNotFoundError:
        return None
    try:
        token = json.loads(lease.read_text())
    except (json.JSONDecodeError, OSError):
        token = {"retries": 0, "not_before": 0.0}
    os.utime(lease)   # the claim itself is the first heartbeat
    return token


def complete_task(path: Path, tid: str, worker: str, record: dict) -> None:
    """Write the done record, then release the lease (in that order, so a
    crash in between can only leave a stale lease next to a done record —
    which :func:`reclaim_expired` resolves by dropping the lease)."""
    _write_json(path / DONE / f"{tid}.json", record)
    (path / ACTIVE / f"{tid}@{worker}").unlink(missing_ok=True)


def fail_task(path: Path, tid: str, worker: str, token: dict,
              error: str, retry: RetryPolicy) -> bool:
    """Handle a task failure; returns ``True`` if it will be retried.

    The queue token (or terminal ``failed/`` record) is written *before*
    the lease is dropped so the task can never be lost mid-transition.
    """
    retries = int(token.get("retries", 0))
    will_retry = retries < retry.max_retries
    if will_retry:
        _write_json(path / QUEUE / tid, {
            "retries": retries + 1,
            "not_before": time.time() + retry.backoff(retries),
            "error": error,
        })
    else:
        _write_json(path / FAILED / f"{tid}.json", {
            "tid": tid, "worker": worker, "retries": retries,
            "error": error,
        })
    (path / ACTIVE / f"{tid}@{worker}").unlink(missing_ok=True)
    return will_retry


def reclaim_expired(path: Path, lease_ttl_s: float,
                    now: float | None = None) -> list[str]:
    """Re-enqueue tasks whose lease stopped heartbeating (dead worker).

    Returns the tids this call actually reclaimed.  Any number of workers
    may scan concurrently: the queue-ward rename is atomic, so each
    expired lease is converted back into exactly one queue token.
    """
    now = time.time() if now is None else now
    reclaimed = []
    active = path / ACTIVE
    if not active.exists():
        return []
    for lease in sorted(active.iterdir()):
        tid, _, _worker = lease.name.rpartition("@")
        if not tid:
            continue
        if (path / DONE / f"{tid}.json").exists():
            lease.unlink(missing_ok=True)   # crashed after completing
            continue
        try:
            age = now - lease.stat().st_mtime
        except FileNotFoundError:
            continue                        # settled under our feet
        if age <= lease_ttl_s:
            continue
        if (path / QUEUE / tid).exists():
            lease.unlink(missing_ok=True)   # crashed mid-fail: token exists
            continue
        try:
            os.rename(lease, path / QUEUE / tid)
            reclaimed.append(tid)
        except FileNotFoundError:
            pass                            # a racing reclaimer won
    return reclaimed


class _Heartbeat:
    """Daemon thread refreshing a lease's mtime every ``ttl / 4``."""

    def __init__(self, lease: Path, ttl_s: float) -> None:
        self.lease = lease
        self.period = max(0.05, ttl_s / 4.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.period):
            try:
                os.utime(self.lease)
            except FileNotFoundError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


# -------------------------------------------------------- generate-stage reuse

def dataset_key(workload: Any) -> str:
    """Identity of a workload's generated dataset: class + constructor
    params + memory footprint.  Two tasks with equal keys would generate
    bit-identical memory (fixed seeds), so one snapshot serves both."""
    fp = workload_fingerprint(workload)
    return json.dumps({"fp": fp, "mem_bytes": workload.mem_bytes},
                      sort_keys=True)


class GenerateCache:
    """Per-worker memo of the last generated dataset.

    ``prepared(task)`` returns a fresh workload instance whose ``generate``
    restores the snapshot into the run's memory instead of recomputing it.
    The snapshot pair (pristine post-generate workload + its scratch
    memory) is never mutated: every run gets a deep copy of the workload
    (schedule building and validation may advance its state) and restores
    the scratch bytes through
    :meth:`~repro.dx100.hostmem.HostMemory.clone_state_from`.

    Bitwise equivalence to a fresh ``generate`` holds by construction —
    generation is deterministic (fixed seed) and allocation is a bump
    pointer, so snapshot-restore reproduces the exact addresses, contents,
    and workload state a regeneration would; the fabric's differential
    tests pin this across the whole quick grid.

    Baseline traces are memoized the same way: trace emission is a pure
    function of the restored dataset (no ``baseline_traces`` mutates its
    workload — the fabric tests enforce that with an AST scan), so the
    baseline and DMP runs of one dataset can share a single build.  The
    core models scribble per-run timing into each op (``issue`` /
    ``complete`` / ``level``), so a reused trace is first swept back to
    its built state — an attribute reset, far cheaper than re-emitting.
    """

    def __init__(self) -> None:
        self._key: str | None = None
        self._workload: Any = None
        self._scratch: HostMemory | None = None
        self._traces: dict[int, list] = {}
        self.generates = 0
        self.reuses = 0
        self.generate_wall_s = 0.0
        self.trace_builds = 0
        self.trace_reuses = 0
        self.trace_wall_s = 0.0

    def prepared(self, task: SweepTask) -> Any:
        workload = task.factory()()
        key = dataset_key(workload)
        if key != self._key:
            scratch = HostMemory(workload.mem_bytes)
            t0 = perf_counter()
            workload.generate(scratch)
            self.generate_wall_s += perf_counter() - t0
            self.generates += 1
            self._key, self._workload, self._scratch = key, workload, scratch
            self._traces = {}
        else:
            self.reuses += 1
        pristine, scratch = self._workload, self._scratch
        saved_mem = pristine.mem
        pristine.mem = None        # keep the 64 MiB scratch out of the copy
        try:
            clone = copy.deepcopy(pristine)
        finally:
            pristine.mem = saved_mem

        def restore(mem: HostMemory) -> None:
            assert scratch is not None
            mem.clone_state_from(scratch)
            clone.mem = mem        # what generate's _remember would do

        traces_memo = self._traces

        def traces(cores: int) -> list:
            cached = traces_memo.get(cores)
            if cached is None:
                t0 = perf_counter()
                cached = type(clone).baseline_traces(clone, cores)
                self.trace_wall_s += perf_counter() - t0
                self.trace_builds += 1
                traces_memo[cores] = cached
                return cached
            self.trace_reuses += 1
            for trace in cached:
                for op in trace.ops:
                    op.issue = -1
                    op.complete = -1
                    op.level = None
            return cached

        # Shadow the bound methods on this instance only: the runner's
        # `workload.generate(system.hostmem)` call becomes the restore,
        # and `workload.baseline_traces(cores)` the memo lookup.
        setattr(clone, "generate", restore)
        setattr(clone, "baseline_traces", traces)
        return clone

    def stats(self) -> dict[str, Any]:
        return {"generates": self.generates, "reuses": self.reuses,
                "generate_wall_s": round(self.generate_wall_s, 3),
                "trace_builds": self.trace_builds,
                "trace_reuses": self.trace_reuses,
                "trace_wall_s": round(self.trace_wall_s, 3)}


# ------------------------------------------------------------ task execution

def _test_hooks(tid: str, attempt: int) -> None:
    """Apply the documented chaos/CI injection hooks for ``tid``."""
    for part in os.environ.get(ENV_TEST_SLEEP, "").split(","):
        name, _, seconds = part.partition(":")
        if name == tid and seconds:
            time.sleep(float(seconds))
    for part in os.environ.get(ENV_INJECT_FAIL, "").split(","):
        name, _, count = part.partition(":")
        if name == tid and count and attempt < int(count):
            raise RuntimeError(
                f"injected failure for {tid} (attempt {attempt})")


def execute_campaign_task(task: CampaignTask, gen: GenerateCache,
                          cache: bool = True,
                          cache_dir: str | Path | None = None,
                          ) -> dict[str, Any]:
    """Run one campaign task to a done-record dict (no state transitions)."""
    if task.kind == "sweep":
        assert task.sweep is not None
        store = RunCache(cache_dir) if cache else None
        # The content-addressed key costs a workload construction + a
        # config hash; without a cache there is nothing to address.
        key = task.sweep.key() if store is not None else ""
        hit = store.load(key) if store is not None else None
        if hit is not None:
            return {"tid": task.tid, "kind": "sweep", "cached": True,
                    "wall_s": 0.0, "key": key, "result": result_to_dict(hit)}
        workload = gen.prepared(task.sweep)
        result, wall = execute_task(task.sweep, workload=workload)
        if store is not None:
            store.store(key, task.sweep, result)
        return {"tid": task.tid, "kind": "sweep", "cached": False,
                "wall_s": round(wall, 3), "key": key,
                "result": result_to_dict(result)}
    if task.kind == "serve":
        assert task.serve is not None
        from dataclasses import replace as _replace

        from repro.common.config import dram_preset
        from repro.serve import make_tenants, serve_run
        p = task.serve
        config = dram_preset(p.dram)
        config = _replace(config, engine=p.engine)
        t0 = perf_counter()
        specs = make_tenants(p.tenants, tiles=p.tiles,
                             tile_lines=p.tile_lines, seed=p.seed,
                             aggressor=p.aggressor)
        report = serve_run(specs, config=config, borrow=p.borrow)
        return {"tid": task.tid, "kind": "serve", "cached": False,
                "wall_s": round(perf_counter() - t0, 3), "key": "",
                "result": report.golden_snapshot()}
    raise ValueError(f"unknown task kind {task.kind!r}")


# ---------------------------------------------------------------- the worker

def _pending_tids(path: Path) -> list[str]:
    """Names of queued tokens — a racy snapshot; the atomic claim is what
    decides ownership.  Deliberately does NOT read the token bodies: the
    common round has no backing-off tasks, and the claimer checks
    ``not_before`` *after* winning (pushing the token back if it is still
    cooling off), so the steady state is one listdir per round instead of
    O(queue) JSON parses."""
    try:
        return os.listdir(path / QUEUE)
    except FileNotFoundError:
        return []


def _claim_order(campaign: Campaign, tids: list[str],
                 prefer_group: str | None, path: Path) -> list[str]:
    """Workload-affinity claim order: own group first, then groups nobody
    is working on (each worker drifts to its own dataset), then the rest —
    each bucket sorted so modes of one dataset stay adjacent."""
    active_groups = set()
    active = path / ACTIVE
    if active.exists():
        for lease in active.iterdir():
            tid = lease.name.rpartition("@")[0]
            task = campaign.tasks.get(tid)
            if task is not None:
                active_groups.add(task.group)

    def rank(tid: str) -> tuple:
        group = campaign.tasks[tid].group if tid in campaign.tasks else tid
        mine = 0 if (prefer_group is not None and group == prefer_group) \
            else 1
        contended = 1 if group in active_groups else 0
        return (mine, contended, group, tid)

    return sorted(tids, key=rank)


@dataclass
class WorkerOutcome:
    """What one worker loop did (also persisted to ``workers/<id>.json``)."""

    worker: str
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    reclaims: int = 0
    generate: dict = field(default_factory=dict)


def worker_loop(path: str | Path, worker: str | None = None,
                cache: bool = True,
                cache_dir: str | Path | None = None,
                poll_s: float = 0.2,
                progress: Callable[[dict], None] | None = None,
                ) -> WorkerOutcome:
    """Claim and execute tasks until the campaign has none left.

    Runs until ``queue/`` and ``active/`` are both empty — i.e. every task
    is done or terminally failed — so a worker also babysits its peers:
    if one dies, this loop reclaims the expired lease and finishes the
    task.  Safe to run any number of these concurrently (processes or
    hosts sharing the directory).
    """
    import gc

    path = Path(path)
    campaign = load_campaign(path)
    worker = worker or f"{socket.gethostname()}-{os.getpid()}"
    out = WorkerOutcome(worker=worker)
    gen = GenerateCache()
    last_group: str | None = None

    # Keep the cyclic GC off for the worker's whole lifetime, not just per
    # task (execute_task sees it already disabled and leaves it alone):
    # the simulators' object graphs are acyclic, so refcounting reclaims
    # each run's garbage, and the per-task re-enable would otherwise pay
    # full-heap generation scans between every pair of runs.  One explicit
    # collect at each dataset switch bounds whatever does accumulate —
    # and freezing the pre-loop heap keeps those collects proportional to
    # per-dataset allocation instead of rescanning the interpreter + the
    # imported model every time.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    gc.collect()
    gc.freeze()
    try:
        _worker_drain(path, campaign, worker, out, gen, cache, cache_dir,
                      poll_s, progress, gc)
    finally:
        gc.unfreeze()
        if gc_was_enabled:
            gc.enable()
        gc.collect()

    out.generate = gen.stats()
    _write_json(path / WORKERS / f"{worker}.json", {
        "worker": worker, "executed": out.executed,
        "cache_hits": out.cache_hits, "failures": out.failures,
        "reclaims": out.reclaims, **out.generate,
    })
    return out


def _worker_drain(path: Path, campaign: Campaign, worker: str,
                  out: "WorkerOutcome", gen: GenerateCache, cache: bool,
                  cache_dir: str | Path | None, poll_s: float,
                  progress: Callable[[dict], None] | None, gc) -> None:
    last_group: str | None = None
    while True:
        out.reclaims += len(reclaim_expired(path, campaign.lease_ttl_s))
        now = time.time()
        claimable = _pending_tids(path)
        token: dict | None = None
        tid = ""
        backing_off = False
        for candidate in _claim_order(campaign, claimable, last_group, path):
            token = claim_task(path, candidate, worker)
            if token is None:
                continue
            if float(token.get("not_before", 0.0)) > now:
                # Still cooling off after a failure: push the token back
                # (rename preserves its retry count) and keep looking.
                os.rename(path / ACTIVE / f"{candidate}@{worker}",
                          path / QUEUE / candidate)
                backing_off = True
                token = None
                continue
            tid = candidate
            break
        if token is None:
            active_dir = path / ACTIVE
            busy = any(active_dir.iterdir()) if active_dir.exists() else False
            if not claimable and not backing_off and not busy:
                break               # nothing pending anywhere: campaign over
            time.sleep(poll_s)
            continue

        task = campaign.tasks.get(tid)
        if task is None:
            # A token that matches no manifest task (manual tampering):
            # fail it terminally rather than spinning on it forever.
            fail_task(path, tid, worker, token, "task not in manifest",
                      RetryPolicy(max_retries=0))
            continue
        if last_group is not None and task.group != last_group:
            gc.collect()           # dataset switch: drop the old snapshot's
        last_group = task.group    # cycles before the 64 MiB refill
        lease = path / ACTIVE / f"{tid}@{worker}"
        attempt = int(token.get("retries", 0))
        try:
            with _Heartbeat(lease, campaign.lease_ttl_s):
                _test_hooks(tid, attempt)
                record = execute_campaign_task(task, gen, cache=cache,
                                               cache_dir=cache_dir)
            record.update({"worker": worker, "retries": attempt})
            complete_task(path, tid, worker, record)
            out.executed += 1
            out.cache_hits += 1 if record.get("cached") else 0
            if progress is not None:
                progress(record)
        except Exception as exc:   # noqa: BLE001 — any failure retries
            out.failures += 1
            fail_task(path, tid, worker, token,
                      f"{type(exc).__name__}: {exc}", campaign.retry)


def _worker_entry(path: str, worker: str, cache: bool,
                  cache_dir: str | None) -> None:
    """Process target for :func:`run_campaign`'s worker fleet."""
    worker_loop(path, worker=worker, cache=cache, cache_dir=cache_dir)


# ----------------------------------------------------------------- monitoring

@dataclass
class CampaignStatus:
    """One snapshot of a campaign's task states."""

    total: int
    pending: int
    active: int
    done: int
    failed: int

    @property
    def settled(self) -> int:
        return self.done + self.failed

    @property
    def finished(self) -> bool:
        return self.pending == 0 and self.active == 0


def campaign_status(path: str | Path) -> CampaignStatus:
    """Count a campaign's tasks by state from the manifest directories."""
    path = Path(path)

    def count(sub: str, suffix: str = "") -> int:
        d = path / sub
        if not d.exists():
            return 0
        return sum(1 for p in d.iterdir() if p.name.endswith(suffix))

    total = len(json.loads(
        (path / "campaign.json").read_text())["tasks"])
    return CampaignStatus(total=total, pending=count(QUEUE),
                          active=count(ACTIVE),
                          done=count(DONE, ".json"),
                          failed=count(FAILED, ".json"))


def run_campaign(path: str | Path, workers: int = 1,
                 cache: bool = True,
                 cache_dir: str | Path | None = None,
                 bus: Any = None,
                 poll_s: float = 0.5) -> dict[str, Any]:
    """Execute a campaign with ``workers`` processes and return the final
    summary (also written to ``summary.md``).

    ``workers=1`` runs the loop in-process (strictly serial — the
    determinism-test twin of ``run_sweep(jobs=1)``); more workers fork a
    fleet and the parent monitors the manifest, publishing
    ``campaign_progress`` marks on ``bus`` (a
    :class:`repro.obs.events.EventBus`) as tasks settle.
    """
    if workers < 1:
        raise ValueError(f"campaign needs at least one worker, got {workers}")
    path = Path(path)
    t0 = perf_counter()
    started = time.time()
    baseline_done = campaign_status(path).done   # cache-dedupe prefills

    def publish(status: CampaignStatus) -> None:
        if bus is None:
            return
        fresh = status.done - baseline_done
        elapsed = time.time() - started
        rate = fresh / elapsed if elapsed > 0 and fresh else 0.0
        remaining = status.pending + status.active
        eta = remaining / rate if rate > 0 else None
        bus.campaign_progress(status.pending, status.active, status.done,
                              status.failed, cache_hits=baseline_done,
                              eta_s=eta)

    if workers == 1:
        worker_loop(path, cache=cache, cache_dir=cache_dir,
                    progress=(lambda record: publish(campaign_status(path)))
                    if bus is not None else None)
    else:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        procs = [
            ctx.Process(target=_worker_entry,
                        args=(str(path), f"w{i}", cache,
                              str(cache_dir) if cache_dir else None),
                        daemon=False)
            for i in range(workers)
        ]
        for proc in procs:
            proc.start()
        try:
            while any(proc.is_alive() for proc in procs):
                publish(campaign_status(path))
                time.sleep(poll_s)
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
    final = campaign_status(path)
    publish(final)
    return finalize_campaign(path, wall_s=perf_counter() - t0,
                             workers=workers)


# ------------------------------------------------------------------ reporting

def _load_records(path: Path, sub: str) -> list[dict]:
    out = []
    d = path / sub
    if not d.exists():
        return out
    for p in sorted(d.glob("*.json")):
        try:
            out.append(json.loads(p.read_text()))
        except json.JSONDecodeError:
            continue
    return out


def finalize_campaign(path: str | Path, wall_s: float | None = None,
                      workers: int | None = None) -> dict[str, Any]:
    """Collect every record into a summary dict and write ``summary.md``."""
    path = Path(path)
    campaign = load_campaign(path)
    done = _load_records(path, DONE)
    failed = _load_records(path, FAILED)
    worker_stats = _load_records(path, WORKERS)
    status = campaign_status(path)

    cache_hits = sum(1 for r in done if r.get("cached"))
    sim_wall = sum(float(r.get("wall_s", 0.0)) for r in done)
    retried = sum(1 for r in done if int(r.get("retries", 0)) > 0)
    wall_by_group: dict[str, float] = {}
    for r in done:
        task = campaign.tasks.get(r["tid"])
        group = task.group if task is not None else "?"
        wall_by_group[group] = (wall_by_group.get(group, 0.0)
                                + float(r.get("wall_s", 0.0)))
    generates = sum(int(w.get("generates", 0)) for w in worker_stats)
    reuses = sum(int(w.get("reuses", 0)) for w in worker_stats)
    generate_wall = sum(float(w.get("generate_wall_s", 0.0))
                        for w in worker_stats)
    trace_builds = sum(int(w.get("trace_builds", 0)) for w in worker_stats)
    trace_reuses = sum(int(w.get("trace_reuses", 0)) for w in worker_stats)
    trace_wall = sum(float(w.get("trace_wall_s", 0.0))
                     for w in worker_stats)

    summary: dict[str, Any] = {
        "id": campaign.cid,
        "spec": campaign.spec,
        "model_version": model_version(),
        "total": status.total,
        "done": status.done,
        "failed": status.failed,
        "pending": status.pending,
        "cache_hits": cache_hits,
        "cache_hit_ratio": round(cache_hits / status.total, 4)
        if status.total else 0.0,
        "retried": retried,
        "sim_wall_s": round(sim_wall, 3),
        "wall_by_group": {g: round(w, 3)
                          for g, w in sorted(wall_by_group.items())},
        "generate": {"generates": generates, "reuses": reuses,
                     "generate_wall_s": round(generate_wall, 3),
                     "trace_builds": trace_builds,
                     "trace_reuses": trace_reuses,
                     "trace_wall_s": round(trace_wall, 3)},
    }
    if wall_s is not None:
        summary["wall_s"] = round(wall_s, 3)
    if workers is not None:
        summary["workers"] = workers

    (path / "summary.md").write_text(render_summary(campaign, summary,
                                                    done, failed))
    return summary


def render_summary(campaign: Campaign, summary: dict,
                   done: list[dict], failed: list[dict]) -> str:
    """The campaign's ``summary.md``: header stats, per-workload wall,
    per-task status table."""
    lines = [
        f"# Campaign `{campaign.cid}`",
        "",
        f"- spec: `{campaign.spec or '(explicit task list)'}`",
        f"- model: `{summary['model_version']}`",
        f"- tasks: {summary['total']} total — {summary['done']} done, "
        f"{summary['failed']} failed, {summary['pending']} pending",
        f"- run-cache hits: {summary['cache_hits']} "
        f"({100.0 * summary['cache_hit_ratio']:.0f}%)",
        f"- retried tasks that eventually succeeded: {summary['retried']}",
        f"- simulation wall: {summary['sim_wall_s']}s"
        + (f" (campaign wall {summary['wall_s']}s, "
           f"{summary.get('workers', 1)} worker(s))"
           if "wall_s" in summary else ""),
        f"- generate stage: {summary['generate']['generates']} generated, "
        f"{summary['generate']['reuses']} reused from snapshot "
        f"({summary['generate']['generate_wall_s']}s generating)",
        f"- trace stage: {summary['generate'].get('trace_builds', 0)} "
        f"built, {summary['generate'].get('trace_reuses', 0)} reused from "
        f"memo ({summary['generate'].get('trace_wall_s', 0.0)}s building)",
        "",
        "## Wall per workload",
        "",
        "| group | simulation wall (s) |",
        "|---|---:|",
    ]
    for group, wall in summary["wall_by_group"].items():
        lines.append(f"| {group} | {wall} |")
    lines += ["", "## Tasks", "",
              "| task | kind | status | retries | cached | wall (s) |",
              "|---|---|---|---:|---|---:|"]
    by_tid = {r["tid"]: ("done", r) for r in done}
    by_tid.update({r["tid"]: ("failed", r) for r in failed})
    for tid, task in sorted(campaign.tasks.items()):
        state, record = by_tid.get(tid, ("pending", {}))
        lines.append(
            f"| {tid} | {task.kind} | {state} "
            f"| {record.get('retries', 0)} "
            f"| {'yes' if record.get('cached') else 'no'} "
            f"| {record.get('wall_s', '')} |")
    if failed:
        lines += ["", "## Failures", ""]
        for r in failed:
            lines.append(f"- `{r['tid']}`: {r.get('error', '?')} "
                         f"(after {r.get('retries', 0)} retries)")
    return "\n".join(lines) + "\n"


def merge_bench_record(summary: dict[str, Any],
                       bench_path: str | Path = "BENCH_mainsweep.json",
                       ) -> None:
    """Fold a campaign summary into the perf-trajectory record under the
    ``campaign`` key (read-modify-write; the sweep's own record fields are
    left untouched)."""
    bench_path = Path(bench_path)
    try:
        record = json.loads(bench_path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        record = {"bench": "mainsweep"}
    record["campaign"] = {
        k: summary[k] for k in
        ("id", "spec", "total", "done", "failed", "cache_hits",
         "sim_wall_s", "generate")
        if k in summary
    }
    if "wall_s" in summary:
        record["campaign"]["wall_s"] = summary["wall_s"]
    if "workers" in summary:
        record["campaign"]["workers"] = summary["workers"]
    bench_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------- sweep-executor delegation

def run_grouped(indexed_tasks: list[tuple[int, SweepTask]], jobs: int,
                ) -> list[tuple[int, RunResult, float]]:
    """Execute (index, task) pairs with workload-affinity grouping and
    generate-stage reuse — the in-process twin of the campaign workers
    that ``run_sweep(affinity=True)`` delegates to.

    Tasks are bucketed by dataset (benchmark + scale); ``jobs=1`` runs
    every bucket serially through one :class:`GenerateCache`, and a pool
    maps whole buckets to workers so reuse never crosses a process
    boundary.  Results are keyed by the caller's indices, so task order —
    and therefore every metric — is bitwise identical to the ungrouped
    path.
    """
    groups: dict[str, list[tuple[int, SweepTask]]] = {}
    for index, task in indexed_tasks:
        label = f"{task.benchmark}.{'quick' if task.quick else 'main'}"
        groups.setdefault(label, []).append((index, task))
    buckets = list(groups.values())
    if jobs == 1 or len(buckets) == 1:
        out = []
        for bucket in buckets:
            out.extend(_grouped_bucket(bucket))
        return out
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    with ctx.Pool(processes=min(jobs, len(buckets))) as pool:
        chunks = pool.map(_grouped_bucket, buckets)
    return [item for chunk in chunks for item in chunk]


def _grouped_bucket(bucket: list[tuple[int, SweepTask]],
                    ) -> list[tuple[int, RunResult, float]]:
    """One dataset's tasks through one GenerateCache, with the cyclic GC
    off for the whole bucket (same rationale as the campaign worker)."""
    import gc
    gen = GenerateCache()
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    gc.collect()
    gc.freeze()
    try:
        return [(index, *execute_task(task, workload=gen.prepared(task)))
                for index, task in bucket]
    finally:
        gc.unfreeze()
        if gc_was_enabled:
            gc.enable()
        gc.collect()

"""Profiling harness: where does a simulated run spend its wall-clock?

Perf work on the simulator needs a measurement loop, not guesses.  This
module provides the two complementary views ``python -m repro profile``
reports:

* **Stage timers** — coarse wall-clock per pipeline stage (generate, warm,
  simulate, collect; plus preload/schedule/validate for DX100 runs),
  accumulated by :class:`StageTimers` context managers threaded through
  :mod:`repro.sim.runner`.  Passing no timers costs nothing: the runner
  defaults to a shared null object whose ``stage`` returns a reusable
  no-op context.
* **Component attribution** — cProfile's per-function ``tottime`` folded
  up to the ``repro`` subpackage that owns the function (dram, cache,
  core, dx100, ...), so a run answers "the DRAM model is 40% of wall"
  directly, plus the raw top-N hotspot list for drilling in.

:func:`profile_run` produces a schema-versioned report dict; the CLI
pretty-prints it and can write it as JSON for tracking perf trajectories
alongside ``BENCH_mainsweep.json``.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager, nullcontext
from pathlib import Path
from time import perf_counter

#: Bump when the report dict's shape changes incompatibly.
PROFILE_SCHEMA = 1

_SRC_ROOT = str(Path(__file__).resolve().parents[1])  # .../src/repro


class StageTimers:
    """Named wall-clock accumulators for coarse pipeline stages."""

    __slots__ = ("totals",)

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        """Context manager accumulating the block's wall time under ``name``."""
        t0 = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def as_dict(self) -> dict[str, float]:
        return {name: round(total, 6) for name, total in self.totals.items()}


class _NullTimers:
    """Zero-overhead stand-in used when no profiling was requested."""

    __slots__ = ()
    totals: dict[str, float] = {}

    _CTX = nullcontext()

    def stage(self, name: str):
        return self._CTX

    def as_dict(self) -> dict[str, float]:
        return {}


#: Shared do-nothing timer the runner defaults to.
NULL_TIMERS = _NullTimers()


def _component_of(filename: str) -> str:
    """Map a profiled function's file to the repro subpackage owning it."""
    if filename.startswith(_SRC_ROOT):
        rel = filename[len(_SRC_ROOT):].lstrip("/")
        head = rel.split("/", 1)[0]
        if head.endswith(".py"):
            return head[:-3] or "repro"
        return head
    return "stdlib/other"


#: (module-basename, function-name) -> pipeline stage.  Function names win
#: over the per-file fallbacks below so fused batched kernels and their
#: scalar twins land in the same row.
_STAGE_FUNCS = {
    # Tag-array interrogation (scalar Cache methods).
    ("cache.py", "hit"): "cache:tag-lookup",
    ("cache.py", "lookup"): "cache:tag-lookup",
    ("cache.py", "touch"): "cache:tag-lookup",
    ("cache.py", "line_addr"): "cache:tag-lookup",
    # Fills and evictions.
    ("cache.py", "insert"): "cache:fill",
    ("cache.py", "invalidate"): "cache:fill",
    ("hierarchy.py", "_fill"): "cache:fill",
    ("hierarchy.py", "_prefetch_fill"): "cache:fill",
    ("hierarchy.py", "prefetch_into"): "cache:fill",
    ("batched.py", "_prefetch_fill"): "cache:fill",
    ("batched.py", "prefetch_into"): "cache:fill",
    # MSHR adjudication.
    ("hierarchy.py", "_stall_for_mshr"): "cache:mshr",
    # ROB drain: retirement and completion on both front-ends.
    ("ooo.py", "_retire_oldest"): "core:rob-drain",
    ("ooo.py", "_drain_iq"): "core:rob-drain",
    ("ooo.py", "_complete"): "core:rob-drain",
    ("ooo.py", "drain"): "core:rob-drain",
    ("batched.py", "_drain_iq"): "core:rob-drain",
    ("batched.py", "_complete"): "core:rob-drain",
    ("batched.py", "drain"): "core:rob-drain",
}

#: subpackage-or-module fallback -> stage, applied when no function rule
#: matched.  ``cache/batched.py``'s fused walk deliberately lands in
#: ``cache:walk``: it *is* tag lookup + MSHR + fill in one body, and
#: splitting it would require instrumentation the un-instrumented sweep
#: must not carry.
_STAGE_FILES = {
    ("cache", "mshr.py"): "cache:mshr",
    ("cache", "prefetcher.py"): "cache:prefetch",
    ("prefetch", None): "cache:prefetch",
    ("cache", None): "cache:walk",
    ("core", "trace.py"): "core:trace",
    ("core", None): "core:dispatch",
    ("dram", "address.py"): "dram:decode",
    ("dram", None): "dram:engine",
    ("dx100", None): "dx100",
    ("workloads", None): "workloads:gen",
}


def _stage_of(filename: str, func: str) -> str:
    """Pipeline-stage attribution for one profiled function."""
    if not filename.startswith(_SRC_ROOT):
        return "other"
    rel = filename[len(_SRC_ROOT):].lstrip("/")
    parts = rel.split("/")
    base = parts[-1]
    head = parts[0]
    stage = _STAGE_FUNCS.get((base, func))
    if stage is not None and (head in ("cache", "core", "prefetch")):
        return stage
    stage = _STAGE_FILES.get((head, base))
    if stage is not None:
        return stage
    stage = _STAGE_FILES.get((head, None))
    if stage is not None:
        return stage
    return "sim:other"


def stage_breakdown(stats: pstats.Stats) -> dict[str, float]:
    """Fold cProfile ``tottime`` into pipeline-stage rows.

    The rows answer the perf questions the sweep record tracks over time:
    how much wall goes to tag lookup, MSHR adjudication, fills, prefetch
    engines, ROB drain, dispatch, trace construction, and the DRAM
    engine — independent of which front-end or engine produced them.
    """
    stages: dict[str, float] = {}
    for (filename, _line, func), entry in stats.stats.items():
        tottime = entry[2]
        stage = _stage_of(filename, func)
        stages[stage] = stages.get(stage, 0.0) + tottime
    return {k: round(v, 6) for k, v in
            sorted(stages.items(), key=lambda kv: -kv[1])}


def _relative(filename: str) -> str:
    root = str(Path(_SRC_ROOT).parents[1])  # the repo root
    if filename.startswith(root):
        return filename[len(root):].lstrip("/")
    return filename


def summarize_profile(stats: pstats.Stats, top: int = 25,
                      ) -> tuple[list[dict], dict[str, float]]:
    """Fold raw cProfile stats into (top-N hotspots, per-component seconds).

    Hotspots are ranked by ``tottime`` (time inside the function itself,
    excluding callees) because that is what an optimization can actually
    remove; ``cumtime`` is reported alongside for context.  Component
    seconds sum each function's tottime into the ``repro`` subpackage that
    owns its source file, with everything outside the package pooled under
    ``stdlib/other``.
    """
    rows = []
    components: dict[str, float] = {}
    for (filename, line, func), entry in stats.stats.items():
        cc, ncalls, tottime, cumtime = entry[0], entry[1], entry[2], entry[3]
        components[_component_of(filename)] = (
            components.get(_component_of(filename), 0.0) + tottime)
        rows.append({
            "function": func,
            "file": _relative(filename),
            "line": line,
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    components = {k: round(v, 6) for k, v in
                  sorted(components.items(), key=lambda kv: -kv[1])}
    return rows[:top], components


def profile_run(benchmark: str = "IS", mode: str = "baseline",
                quick: bool = True, top: int = 25,
                frontend: str | None = None) -> dict:
    """Profile one (benchmark, mode) run; returns the structured report.

    The run itself is a plain :func:`repro.sim.runner.run_baseline` /
    ``run_dx100`` call — same configs the sweep uses — executed under
    cProfile with a :class:`StageTimers` threaded through, so the report's
    numbers describe exactly the code the sweep exercises.  ``frontend``
    overrides :attr:`SystemConfig.frontend` (profile the scalar oracle
    against the batched engine on identical work).
    """
    # Imported here so that `import repro.sim.profile` stays dependency-free
    # for the runner (which imports NULL_TIMERS from this module).
    from dataclasses import replace

    from repro.common.config import SystemConfig
    from repro.sim.runner import run_baseline, run_dx100
    from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS

    registry = QUICK_BENCHMARKS if quick else MAIN_BENCHMARKS
    if benchmark not in registry:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    builders = {
        "baseline": SystemConfig.baseline_scaled,
        "dmp": SystemConfig.dmp_scaled,
        "dx100": SystemConfig.dx100_scaled,
    }
    if mode not in builders:
        raise ValueError(f"unknown mode {mode!r} (want {sorted(builders)})")
    workload = registry[benchmark]()
    config = builders[mode](4)
    if frontend is not None:
        config = replace(config, frontend=frontend)

    timers = StageTimers()
    profiler = cProfile.Profile()
    t0 = perf_counter()
    profiler.enable()
    if mode == "dx100":
        result = run_dx100(workload, config, warm=False, timers=timers)
    else:
        result = run_baseline(workload, config, warm=False, timers=timers)
    profiler.disable()
    wall = perf_counter() - t0

    stats = pstats.Stats(profiler)
    hotspots, components = summarize_profile(stats, top)
    return {
        "schema": PROFILE_SCHEMA,
        "benchmark": benchmark,
        "mode": mode,
        "quick": quick,
        "frontend": frontend or config.frontend,
        "wall_s": round(wall, 6),
        "stages_s": timers.as_dict(),
        "components_s": components,
        "pipeline_stages_s": stage_breakdown(stats),
        "hotspots": hotspots,
        "result": {
            "cycles": result.cycles,
            "instructions": result.instructions,
            "dram_requests": result.dram_requests,
            "dram_bytes": result.dram_bytes,
            "bandwidth_utilization": result.bandwidth_utilization,
            "row_buffer_hit_rate": result.row_buffer_hit_rate,
        },
    }


def profile_tasks(tasks) -> dict:
    """Profile a list of :class:`~repro.sim.sweep.SweepTask` serially.

    One cProfile session accumulates across every task, so the folded
    components and pipeline-stage rows describe the *whole grid* the way
    ``BENCH_mainsweep.json`` tracks it.  Runs everything in-process with
    no cache — this is the instrumented second pass behind
    ``python -m repro sweep --profile``; the un-instrumented wall-clock is
    measured separately by the sweep itself.
    """
    from repro.sim.sweep import execute_task

    profiler = cProfile.Profile()
    t0 = perf_counter()
    profiler.enable()
    for task in tasks:
        execute_task(task)
    profiler.disable()
    wall = perf_counter() - t0
    stats = pstats.Stats(profiler)
    _, components = summarize_profile(stats, top=0)
    return {
        "profile_wall_s": round(wall, 3),
        "profile_components_s": components,
        "profile_stages_s": stage_breakdown(stats),
    }


def format_report(report: dict) -> str:
    """Human-readable rendering of a :func:`profile_run` report."""
    lines = [
        f"profile: {report['benchmark']} [{report['mode']}]"
        f"{' (quick)' if report['quick'] else ''} — "
        f"{report['wall_s']:.3f}s wall, "
        f"{report['result']['cycles']} cycles",
        "",
        "stages (wall seconds):",
    ]
    for name, secs in report["stages_s"].items():
        lines.append(f"  {name:<10s} {secs:9.3f}")
    lines.append("")
    lines.append("components (cProfile tottime, seconds):")
    for name, secs in report["components_s"].items():
        lines.append(f"  {name:<14s} {secs:9.3f}")
    lines.append("")
    lines.append("pipeline stages (cProfile tottime, seconds):")
    for name, secs in report.get("pipeline_stages_s", {}).items():
        lines.append(f"  {name:<18s} {secs:9.3f}")
    lines.append("")
    lines.append(f"top {len(report['hotspots'])} hotspots by tottime:")
    lines.append(f"  {'tottime':>9s} {'cumtime':>9s} {'ncalls':>9s}  function")
    for h in report["hotspots"]:
        lines.append(
            f"  {h['tottime_s']:9.3f} {h['cumtime_s']:9.3f} "
            f"{h['ncalls']:>9d}  {h['function']} "
            f"({h['file']}:{h['line']})")
    return "\n".join(lines)

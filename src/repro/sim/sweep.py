"""Process-parallel experiment executor with a content-addressed run cache.

The paper's evaluation is a sweep: 12 benchmarks x {baseline, DMP, DX100}
(Figures 9-12) plus ablations — dozens of fully independent simulations.
This module fans (workload, config, mode) triples out over
``multiprocessing`` workers and memoizes every finished run in an on-disk
cache keyed by *content*:

    key = sha256(workload name + constructor params,
                 every SystemConfig field,
                 model-version stamp)

where the model-version stamp is a hash of the ``repro`` package's own
source tree, so any model change invalidates exactly the runs it could
affect and an unchanged run is loaded instead of re-simulated.  Execution
is bitwise-deterministic: each run builds a fresh workload from the
registry with its fixed seed, so a parallel sweep returns ``RunResult``
metrics identical to a serial one (``tests/sim/test_sweep.py`` asserts
this, and the golden-metrics harness pins the quick suite's numbers).

Entry points:

* :func:`run_sweep` — execute a list of :class:`SweepTask`;
* :func:`main_sweep_tasks` / :func:`run_main_sweep` — the Figure 9-12
  benchmark x configuration grid (``benchmarks/mainsweep.py`` delegates
  here, and ``python -m repro sweep`` exposes it on the command line);
* :func:`golden_snapshot` / :func:`diff_golden` — the golden-metrics
  regression harness (``tests/golden/quick_suite.json``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.common.config import SystemConfig
from repro.common.stats import geomean
from repro.sim.metrics import RunResult

MODES = ("baseline", "dmp", "dx100")

#: Bump when the metric *semantics* change without a source change that the
#: model-version hash would see (e.g. an external data file).  Part of every
#: cache key.
CACHE_SCHEMA = 1

DEFAULT_CACHE_DIR = Path("results") / ".runcache"

#: RunResult fields pinned by the golden-metrics harness.  ``extra`` is
#: excluded: it carries run-mode-dependent annotations (audit reports,
#: wall-clock) alongside the deterministic counters.
GOLDEN_FIELDS = (
    "cycles", "instructions", "bandwidth_utilization",
    "row_buffer_hit_rate", "request_buffer_occupancy", "llc_mpki",
    "dram_bytes", "dram_requests",
)

GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / "golden" / \
    "quick_suite.json"


# --------------------------------------------------------------------- keys

def model_version() -> str:
    """Hash of the ``repro`` package's source tree (the model itself).

    Any edit to any ``.py`` file under ``src/repro`` yields a new stamp, so
    cached results can never outlive the model that produced them.
    """
    global _MODEL_VERSION
    if _MODEL_VERSION is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _MODEL_VERSION = h.hexdigest()[:16]
    return _MODEL_VERSION


_MODEL_VERSION: str | None = None


def workload_fingerprint(workload) -> dict:
    """Name + constructor-visible parameters of a workload instance.

    Only scalar attributes participate: derived state (rng, generated
    arrays, memory handles) is a function of those scalars plus the model
    version, both already in the key.
    """
    params = {
        k: v for k, v in sorted(vars(workload).items())
        if k != "mem"
        and (isinstance(v, (int, float, str, bool)) or v is None)
    }
    return {
        "class": type(workload).__qualname__,
        "name": workload.name,
        "params": params,
    }


@dataclass(frozen=True)
class SweepTask:
    """One independent simulation: a (workload, config, mode) triple."""

    benchmark: str            # registry name, e.g. "IS"
    mode: str                 # baseline | dmp | dx100
    quick: bool               # QUICK_BENCHMARKS vs MAIN_BENCHMARKS sizes
    config: SystemConfig
    warm: bool = False
    #: Observability sampling period in cycles (0 = off).  When nonzero the
    #: run attaches a trace-less :class:`repro.obs.events.EventBus` and the
    #: timeline summary lands in ``RunResult.extra`` — so it participates
    #: in the cache key but never in the golden fields.
    sample_every: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r} (want {MODES})")

    def factory(self):
        from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS
        registry = QUICK_BENCHMARKS if self.quick else MAIN_BENCHMARKS
        if self.benchmark not in registry:
            raise KeyError(f"unknown benchmark {self.benchmark!r}")
        return registry[self.benchmark]

    def key(self) -> str:
        """Content-addressed cache key for this task.

        ``frontend`` and ``scale`` are named explicitly even though both
        are derivable (``config.frontend`` rides in via ``asdict``, and
        ``quick`` implies the registry): the simulation front-end and the
        dataset scale each select a different engine/workload pairing, and
        an aliased cache hit across either would silently replay the wrong
        run.  Keeping them as top-level key fields makes that impossible
        to regress by refactoring the config dict.
        """
        payload = {
            "schema": CACHE_SCHEMA,
            "model": model_version(),
            "workload": workload_fingerprint(self.factory()()),
            "mode": self.mode,
            "warm": self.warm,
            "sample_every": self.sample_every,
            "frontend": self.config.frontend,
            "scale": "quick" if self.quick else "main",
            "config": asdict(self.config),
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()


def result_to_dict(result: RunResult) -> dict:
    return asdict(result)


def result_from_dict(d: dict) -> RunResult:
    return RunResult(**d)


# -------------------------------------------------------------------- cache

class RunCache:
    """Content-addressed on-disk store of finished ``RunResult``s.

    One JSON file per key.  Keys embed the model-version stamp, so
    invalidation is automatic — stale entries are simply never addressed
    again (``prune`` deletes them).
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        env = os.environ.get("REPRO_CACHE_DIR")
        self.directory = Path(directory or env or DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> RunResult | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            return result_from_dict(payload["result"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return None   # corrupt entry: fall through to a re-run

    def store(self, key: str, task: SweepTask, result: RunResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "model": model_version(),
            "benchmark": task.benchmark,
            "mode": task.mode,
            "quick": task.quick,
            "result": result_to_dict(result),
        }
        # Per-process temp name: concurrent sweeps (or a sweep racing a
        # test run) may store the same key at once, and a shared tmp file
        # would let one writer rename the other's half-written payload.
        tmp = self.directory / f"{key}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(self._path(key))   # atomic vs concurrent sweeps
        finally:
            tmp.unlink(missing_ok=True)    # only if the rename never ran

    def prune(self) -> int:
        """Delete stale entries (older model versions, corrupt files left
        by killed writers, orphaned temp files); returns the number
        removed."""
        current = model_version()
        removed = 0
        if not self.directory.exists():
            return 0
        for path in self.directory.glob("*.json"):
            try:
                if json.loads(path.read_text()).get("model") != current:
                    path.unlink()
                    removed += 1
            except Exception:
                # Unreadable, unparseable, or parseable-but-not-a-record
                # (a killed worker can leave literally anything): all are
                # equally dead entries.
                path.unlink(missing_ok=True)
                removed += 1
        for path in self.directory.glob("*.tmp"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------- execution

def execute_task(task: SweepTask,
                 workload=None) -> tuple[RunResult, float]:
    """Run one task from scratch; returns (result, wall seconds).

    ``workload`` lets the campaign fabric pass a prepared instance (with
    the generate stage snapshotted by its :class:`GenerateCache`); the
    default builds a fresh one from the registry, which is the path every
    golden metric is pinned against.

    The cyclic GC is paused for the duration of the run: the simulators
    allocate millions of short-lived records (ops, results, heap nodes)
    whose generation scans cost several percent of wall time, and the
    object graph is acyclic by construction, so deferring collection to
    the gaps between tasks loses nothing.
    """
    import gc
    from repro.sim.runner import run_baseline, run_dx100
    t0 = time.perf_counter()
    if workload is None:
        workload = task.factory()()
    obs = None
    if task.sample_every:
        from repro.obs.events import EventBus
        obs = EventBus(trace=False, sample_every=task.sample_every)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if task.mode == "dx100":
            result = run_dx100(workload, task.config, warm=task.warm, obs=obs)
        else:
            result = run_baseline(workload, task.config, warm=task.warm,
                                  obs=obs)
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, time.perf_counter() - t0


def _worker(payload: tuple[int, SweepTask]) -> tuple[int, RunResult, float]:
    index, task = payload
    result, wall = execute_task(task)
    return index, result, wall


@dataclass
class TaskRun:
    """One task's outcome inside a sweep."""

    task: SweepTask
    result: RunResult
    wall: float               # seconds simulating (0.0 for a cache hit)
    cached: bool
    key: str


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in task order."""

    runs: list[TaskRun]
    jobs: int
    wall: float
    cache_hits: int = 0
    cache_misses: int = 0
    extras: dict = field(default_factory=dict)

    def nested(self) -> dict[str, dict[str, RunResult]]:
        """benchmark -> mode -> RunResult (the mainsweep shape)."""
        out: dict[str, dict[str, RunResult]] = {}
        for run in self.runs:
            out.setdefault(run.task.benchmark, {})[run.task.mode] = run.result
        return out

    def wall_by_benchmark(self) -> dict[str, dict[str, float]]:
        """benchmark -> mode -> simulation wall seconds (0.0 = cache hit).

        The per-(workload, config) wall-clock view both JSON records carry,
        so perf regressions can be pinned to the workload that slowed down
        rather than inferred from the grid total.
        """
        out: dict[str, dict[str, float]] = {}
        for run in self.runs:
            out.setdefault(run.task.benchmark, {})[run.task.mode] = round(
                run.wall, 3)
        return out

    def speedups(self, over: str = "baseline",
                 of: str = "dx100") -> dict[str, float]:
        table = self.nested()
        out = {}
        for name, runs in table.items():
            if over in runs and of in runs:
                out[name] = runs[of].speedup_over(runs[over])
        return out

    # ------------------------------------------------------- serialization

    def to_json_dict(self) -> dict:
        return {
            "model_version": model_version(),
            "jobs": self.jobs,
            "wall_s": round(self.wall, 3),
            "wall_by_benchmark": self.wall_by_benchmark(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "runs": [
                {
                    "benchmark": r.task.benchmark,
                    "mode": r.task.mode,
                    "quick": r.task.quick,
                    "key": r.key,
                    "cached": r.cached,
                    "wall_s": round(r.wall, 3),
                    "result": result_to_dict(r.result),
                }
                for r in self.runs
            ],
        }

    def bench_record(self) -> dict:
        """Perf-trajectory record (``BENCH_mainsweep.json``): wall-clock,
        cycles, speedups, row-buffer hit rates, DRAM command counts."""
        speedups = self.speedups()
        dmp_speedups = self.speedups(of="dmp")
        runs = []
        for r in self.runs:
            res = r.result
            runs.append({
                "benchmark": r.task.benchmark,
                "mode": r.task.mode,
                "cached": r.cached,
                "wall_s": round(r.wall, 3),
                "cycles": res.cycles,
                "row_buffer_hit_rate": res.row_buffer_hit_rate,
                "bandwidth_utilization": res.bandwidth_utilization,
                "dram_requests": res.dram_requests,
                "dram_commands": {
                    k: res.extra[k] for k in
                    ("dram_reads", "dram_writes", "dram_row_hits",
                     "dram_row_conflicts", "dram_row_empty")
                    if k in res.extra
                },
            })
        record = {
            "bench": "mainsweep",
            "model_version": model_version(),
            "jobs": self.jobs,
            "wall_s": round(self.wall, 3),
            "wall_by_benchmark": self.wall_by_benchmark(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "speedups_dx100": {k: round(v, 4) for k, v in speedups.items()},
            "speedups_dmp": {k: round(v, 4) for k, v in dmp_speedups.items()},
            "runs": runs,
        }
        if speedups:
            record["geomean_speedup_dx100"] = round(
                geomean(list(speedups.values())), 4)
        record.update(self.extras)
        return record


def default_jobs() -> int:
    """Worker count for the sweep pool: ``REPRO_JOBS`` env override, else
    the scheduling-affinity CPU count (container-aware), else
    ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer (got {env!r})"
            ) from None
        if jobs < 1:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer (got {env!r})")
        return jobs
    # Prefer the scheduling affinity mask: in a container/cgroup the
    # process may be pinned to far fewer CPUs than the host exposes, and
    # os.cpu_count() reports the host, oversubscribing the pool.
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):   # non-Linux platforms
        return os.cpu_count() or 1


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sweep(tasks: list[SweepTask], jobs: int | None = None,
              cache: bool = True,
              cache_dir: str | Path | None = None,
              progress=None, affinity: bool = False) -> SweepOutcome:
    """Execute ``tasks``, fanning cache misses out over worker processes.

    ``jobs=None`` uses ``REPRO_JOBS`` or the CPU count; ``jobs=1`` runs
    strictly serially in-process (no pool), which the determinism tests
    compare against the parallel path.  ``progress`` is an optional
    ``callable(TaskRun)`` invoked as each task settles.  ``affinity``
    delegates miss execution to the campaign fabric's workload-affinity
    executor (:func:`repro.sim.fabric.run_grouped`): tasks sharing a
    dataset run on one worker with the generate stage snapshotted once
    and restored per run — bitwise identical results, less cold wall.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(
            f"sweep needs at least one job, got {jobs} "
            f"(use jobs=None for the REPRO_JOBS/CPU-count default)")
    jobs = default_jobs() if jobs is None else jobs
    store = RunCache(cache_dir) if cache else None
    t0 = time.perf_counter()

    keys = [task.key() for task in tasks]
    settled: list[TaskRun | None] = [None] * len(tasks)
    misses: list[int] = []
    hits = 0
    for i, (task, key) in enumerate(zip(tasks, keys)):
        found = store.load(key) if store is not None else None
        if found is not None:
            settled[i] = TaskRun(task, found, 0.0, True, key)
            hits += 1
        else:
            misses.append(i)

    if misses:
        if affinity:
            from repro.sim.fabric import run_grouped
            fresh = run_grouped([(i, tasks[i]) for i in misses], jobs)
        elif jobs == 1 or len(misses) == 1:
            fresh = [_worker((i, tasks[i])) for i in misses]
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(misses))) as pool:
                fresh = pool.map(_worker, [(i, tasks[i]) for i in misses])
        for index, result, wall in fresh:
            run = TaskRun(tasks[index], result, wall, False, keys[index])
            settled[index] = run
            if store is not None:
                store.store(keys[index], tasks[index], result)

    runs = [r for r in settled if r is not None]
    if progress is not None:
        for run in runs:
            progress(run)
    return SweepOutcome(runs=runs, jobs=jobs,
                        wall=time.perf_counter() - t0,
                        cache_hits=hits, cache_misses=len(misses))


# ------------------------------------------------------- the main-eval grid

CONFIG_BUILDERS = {
    "baseline": SystemConfig.baseline_scaled,
    "dmp": SystemConfig.dmp_scaled,
    "dx100": SystemConfig.dx100_scaled,
}


def main_sweep_tasks(quick: bool = False, benchmarks: list[str] | None = None,
                     modes: tuple[str, ...] = MODES, cores: int = 4,
                     audit: bool = False,
                     sample_every: int = 0,
                     engine: str | None = None,
                     frontend: str | None = None,
                     dram: str | None = None) -> list[SweepTask]:
    """The Figure 9-12 grid: every benchmark under every configuration.

    ``engine`` overrides :attr:`DRAMConfig.engine` for every task
    (``"scalar"`` runs the whole grid on the per-request oracle — the CI
    differential check that the goldens hold on both engines).  It is part
    of each task's cache key, so oracle runs never alias batched ones.
    ``frontend`` does the same for :attr:`SystemConfig.frontend`
    (``"scalar"`` replays the grid on the per-op cache/core oracle — the
    front-end half of the differential check).  ``dram`` swaps the whole
    memory technology via :data:`repro.common.config.DRAM_PRESETS`
    (``"cxl"`` puts the pool behind the modeled far-memory link); it is
    applied *before* the audit/engine overrides so those compose on top.
    """
    from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS
    registry = QUICK_BENCHMARKS if quick else MAIN_BENCHMARKS
    names = list(registry) if benchmarks is None else list(benchmarks)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")
    tasks = []
    for name in names:
        for mode in modes:
            config = CONFIG_BUILDERS[mode](cores)
            if dram is not None:
                from repro.common.config import dram_preset
                config = replace(config, dram=dram_preset(dram))
            if audit:
                config = replace(config,
                                 dram=replace(config.dram, audit=True))
            if engine is not None:
                config = replace(config,
                                 dram=replace(config.dram, engine=engine))
            if frontend is not None:
                config = replace(config, frontend=frontend)
            tasks.append(SweepTask(benchmark=name, mode=mode, quick=quick,
                                   config=config,
                                   sample_every=sample_every))
    return tasks


def run_main_sweep(quick: bool = False,
                   benchmarks: list[str] | None = None,
                   modes: tuple[str, ...] = MODES,
                   jobs: int | None = None, cache: bool = True,
                   cache_dir: str | Path | None = None,
                   results_dir: str | Path | None = None,
                   sample_every: int = 0,
                   engine: str | None = None,
                   frontend: str | None = None,
                   dram: str | None = None,
                   affinity: bool = False) -> SweepOutcome:
    """Run the main-evaluation grid and emit the structured JSON records
    (``results/sweep.json`` + ``BENCH_mainsweep.json``)."""
    tasks = main_sweep_tasks(quick=quick, benchmarks=benchmarks, modes=modes,
                             sample_every=sample_every, engine=engine,
                             frontend=frontend, dram=dram)
    outcome = run_sweep(tasks, jobs=jobs, cache=cache, cache_dir=cache_dir,
                        affinity=affinity)
    outcome.extras["quick"] = quick
    if results_dir is not None:
        write_sweep_records(outcome, results_dir)
    return outcome


def write_sweep_records(outcome: SweepOutcome,
                        results_dir: str | Path,
                        sweep_json: str | Path | None = None) -> None:
    """Write ``sweep.json`` into ``results_dir`` and the perf-trajectory
    record ``BENCH_mainsweep.json`` next to it (one level up when
    ``results_dir`` is the conventional ``results/``)."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    sweep_path = Path(sweep_json) if sweep_json else results_dir / "sweep.json"
    sweep_path.parent.mkdir(parents=True, exist_ok=True)
    sweep_path.write_text(json.dumps(outcome.to_json_dict(), indent=2,
                                     sort_keys=True) + "\n")
    bench_path = results_dir.parent / "BENCH_mainsweep.json"
    record = outcome.bench_record()
    # The campaign fabric folds its own A/B block into this file under
    # "campaign" (see repro.sim.fabric.merge_bench_record); a plain sweep
    # re-recording the grid must not erase it.
    try:
        previous = json.loads(bench_path.read_text())
        if "campaign" in previous and "campaign" not in record:
            record["campaign"] = previous["campaign"]
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    bench_path.write_text(json.dumps(record, indent=2,
                                     sort_keys=True) + "\n")


# ---------------------------------------------------- golden-metrics harness

def golden_snapshot(outcome: SweepOutcome) -> dict:
    """``benchmark -> mode -> {field: value}`` for the pinned fields."""
    snapshot: dict[str, dict[str, dict]] = {}
    for name, runs in outcome.nested().items():
        snapshot[name] = {
            mode: {f: getattr(r, f) for f in GOLDEN_FIELDS}
            for mode, r in runs.items()
        }
    return snapshot


def diff_golden(snapshot: dict, golden: dict) -> list[str]:
    """Exact field-by-field diff; empty list means bitwise identical."""
    problems = []
    for name in sorted(set(golden) | set(snapshot)):
        if name not in snapshot:
            problems.append(f"{name}: missing from this run")
            continue
        if name not in golden:
            problems.append(f"{name}: not in the golden file "
                            f"(run --update-golden)")
            continue
        for mode in sorted(set(golden[name]) | set(snapshot[name])):
            got = snapshot[name].get(mode)
            want = golden[name].get(mode)
            if got is None or want is None:
                problems.append(f"{name}/{mode}: present in only one side")
                continue
            for fld in GOLDEN_FIELDS:
                if got.get(fld) != want.get(fld):
                    problems.append(
                        f"{name}/{mode}.{fld}: got {got.get(fld)!r}, "
                        f"golden {want.get(fld)!r}")
    return problems


def write_golden(outcome: SweepOutcome,
                 path: str | Path | None = None) -> Path:
    """Rewrite the golden-metrics file from a finished quick-suite sweep
    (the documented ``--update-golden`` path for intentional changes)."""
    path = Path(path or GOLDEN_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": "Golden RunResult metrics for the REPRO_QUICK suite "
                    "under baseline/dmp/dx100.  Regenerate with "
                    "`python -m repro sweep --update-golden` after an "
                    "intentional model change.",
        "fields": list(GOLDEN_FIELDS),
        "metrics": golden_snapshot(outcome),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(path: str | Path | None = None) -> dict:
    return json.loads(Path(path or GOLDEN_PATH).read_text())["metrics"]

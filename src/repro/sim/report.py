"""Result formatting: ASCII tables and CSV, in the spirit of the paper
artifact's ``results/results.csv`` + plotting scripts."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.common.stats import geomean
from repro.sim.metrics import RunResult

CSV_FIELDS = [
    "workload", "config", "cycles", "instructions",
    "bandwidth_utilization", "row_buffer_hit_rate",
    "request_buffer_occupancy", "llc_mpki", "dram_bytes", "dram_requests",
]


def to_csv(results: list[RunResult], path: str | Path | None = None) -> str:
    """Serialize runs to CSV; optionally write to ``path``."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS, lineterminator="\n")
    writer.writeheader()
    for r in results:
        writer.writerow({field: getattr(r, field) for field in CSV_FIELDS})
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


# ``comparison_table`` cell geometry: a populated metrics cell is
# "{cycles:12d} {bw:5.2f} {rbh:5.2f}" = CELL_WIDTH characters, and every
# non-baseline column group carries a " {speedup:7.2f}x" = SPEEDUP_WIDTH
# suffix.  Blank cells pad to exactly the same widths so the "|" column
# separators stay aligned down every row.
CELL_WIDTH = 12 + 1 + 5 + 1 + 5
SPEEDUP_WIDTH = 1 + 7 + 1


def comparison_table(results: dict[str, dict[str, RunResult]]) -> str:
    """Figure 9/10-style table: one row per workload, one column group per
    configuration, with speedups against the baseline."""
    configs = sorted({c for runs in results.values() for c in runs})
    if "baseline" in configs:
        configs.remove("baseline")
        configs.insert(0, "baseline")
    lines = []
    header = f"{'workload':10s}"
    for c in configs:
        header += f" | {c:>8s} cyc {'BW':>5s} {'RBH':>5s}"
        if c != "baseline":
            header += f" {'speedup':>8s}"
    lines.append(header)
    lines.append("-" * len(header))
    speedups: dict[str, list[float]] = {c: [] for c in configs}
    for name, runs in results.items():
        row = f"{name:10s}"
        base = runs.get("baseline")
        for c in configs:
            group = CELL_WIDTH + (SPEEDUP_WIDTH if c != "baseline" else 0)
            r = runs.get(c)
            if r is None:
                row += " | " + " " * group
                continue
            row += (f" | {r.cycles:12d} {r.bandwidth_utilization:5.2f} "
                    f"{r.row_buffer_hit_rate:5.2f}")
            if c != "baseline":
                if base is not None:
                    s = base.cycles / r.cycles
                    speedups[c].append(s)
                    row += f" {s:7.2f}x"
                else:
                    row += " " * SPEEDUP_WIDTH
        lines.append(row)
    for c in configs:
        if c != "baseline" and speedups[c]:
            lines.append(f"geomean speedup ({c}): "
                         f"{geomean(speedups[c]):.2f}x")
    return "\n".join(lines)


def bar_chart(values: dict[str, float], width: int = 40,
              unit: str = "x") -> str:
    """ASCII horizontal bar chart (the artifact plots PNGs; we plot text).

    Zero values render a zero-width bar (an honest nothing, not a
    one-glyph sliver); negative values are rejected — a length cannot
    encode a sign.
    """
    if not values:
        return "(no data)"
    negative = [k for k, v in values.items() if v < 0]
    if negative:
        raise ValueError(f"bar chart values must be >= 0, got negative: "
                         f"{', '.join(sorted(negative))}")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar chart needs at least one positive value")
    lines = []
    for label, value in values.items():
        # A positive value always shows at least one glyph; exactly zero
        # shows none.
        glyphs = max(1, round(width * value / peak)) if value > 0 else 0
        lines.append(f"{label:>10s} | {'#' * glyphs} {value:.2f}{unit}")
    return "\n".join(lines)


def single_run_summary(result: RunResult) -> str:
    """One-line human summary of a run's headline metrics."""
    return (
        f"{result.workload} [{result.config}]: {result.cycles} cycles, "
        f"{result.instructions:.0f} instructions, "
        f"BW {result.bandwidth_utilization:.2f}, "
        f"RBH {result.row_buffer_hit_rate:.2f}, "
        f"occupancy {result.request_buffer_occupancy:.1f}, "
        f"LLC MPKI {result.llc_mpki:.1f}"
    )

"""Behavioural model of DMP, the differential-matching indirect prefetcher
(Fu et al., HPCA 2024) the paper compares against in Figure 12.

The real DMP watches the core's load stream, differentially matches index
loads (B[i]) against dependent loads (A[B[i]]) to recover base and scale,
then prefetches A[B[i+d]].  At trace granularity we model the *behavioural
consequences* the comparison rests on:

* prefetches target the unconditional future index stream — for kernels
  with conditional accesses (Table 1), untaken iterations are prefetched
  anyway, polluting the cache and spending DRAM bandwidth (Section 6.3);
* coverage is bounded (training misses, page boundaries, late prefetches):
  only ``coverage`` of candidates are issued and timely;
* prefetched lines land in L2/LLC in request order: DMP raises the memory
  access *rate* but leaves request ordering to the memory controller, so
  the row-buffer hit rate stays baseline-like;
* the core's instruction footprint is unchanged.

Workloads register the per-PC unconditional target-address stream (exactly
the information DMP recovers from the B-stream at runtime), and each demand
op carries its loop-iteration ``tag``.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import Stats
from repro.cache.hierarchy import MemoryHierarchy


class DMPEngine:
    """Indirect prefetch engine attached to the cache hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy, distance: int = 64,
                 degree: int = 2, coverage: float = 0.7,
                 train_iters: int = 16) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        self.hierarchy = hierarchy
        self.distance = distance
        self.degree = degree
        self.coverage = coverage
        self.train_iters = train_iters
        self.stats = Stats()
        self._streams: dict[int, np.ndarray] = {}
        #: Per-PC target stream pre-masked to line addresses and converted
        #: to plain ints once at registration — ``observe`` runs on every
        #: demand access and must not touch numpy scalars there.
        self._lines: dict[int, list[int]] = {}
        self._issued: dict[int, set[int]] = {}
        self._stride = max(1, round(1.0 / coverage)) if coverage > 0 else 0

    def register_stream(self, pc: int, target_addrs) -> None:
        """Declare the unconditional indirect target stream for a load PC."""
        arr = np.asarray(target_addrs, dtype=np.int64)
        self._streams[pc] = arr
        self._lines[pc] = (arr & ~63).tolist()
        self._issued[pc] = set()

    def observe(self, core: int, addr: int, pc: int, tag: int,
                t: int) -> None:
        """Called on every demand access; issues lookahead prefetches."""
        lines = self._lines.get(pc)
        if lines is None or tag < 0:
            return
        if tag < self.train_iters:
            return  # differential matching still training
        stride = self._stride
        if stride == 0:
            return
        start = tag + self.distance
        n = len(lines)
        issued = self._issued[pc]
        counters = self.stats.counters
        partial = self.coverage < 1.0
        for k in range(self.degree):
            it = start + k
            if it >= n:
                continue
            # Deterministic coverage striping instead of RNG.
            if partial and it % stride:
                counters["dmp_dropped"] += 1.0
                continue
            if it in issued:
                continue
            issued.add(it)
            counters["dmp_prefetches"] += 1.0
            self.hierarchy.prefetch_into(core, lines[it], t)

    def accuracy_against(self, taken_tags: dict[int, set[int]]) -> float:
        """Fraction of issued prefetches whose iteration was actually taken
        (diagnostic for the conditional-access pollution effect)."""
        issued = useful = 0
        for pc, its in self._issued.items():
            taken = taken_tags.get(pc, set())
            issued += len(its)
            useful += len(its & taken)
        return useful / issued if issued else 1.0

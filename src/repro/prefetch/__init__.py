"""Indirect-prefetcher baseline (DMP, Fu et al. HPCA 2024)."""

from repro.prefetch.dmp import DMPEngine

__all__ = ["DMPEngine"]

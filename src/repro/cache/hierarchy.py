"""Three-level cache hierarchy with MSHR-bounded parallelism.

Private L1/L2 per core, shared LLC, stride prefetchers at L1 and L2, and a
demand-driven DRAM back end.  An access returns an :class:`AccessResult`
whose completion is either known immediately (cache hit) or resolved later
from the owning DRAM request — this two-phase protocol is what lets the
memory controller accumulate a window of outstanding requests to reorder,
rather than being forced to service each miss as it is issued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.common.types import DRAMRequest, HitLevel
from repro.cache.cache import Cache
from repro.cache.mshr import MSHRFile
from repro.cache.prefetcher import StridePrefetcher
from repro.dram.system import DRAMSystem


@dataclass(slots=True)
class AccessResult:
    """Outcome of a hierarchy access.

    ``complete`` is set for hits; for DRAM fills it stays -1 until
    :meth:`resolve` services the controller.  ``issue`` may be later than the
    requested time if an MSHR-full stall delayed the access.
    """

    level: HitLevel
    issue: int
    complete: int = -1
    request: DRAMRequest | None = None
    return_latency: int = 0

    def resolve(self, dram: DRAMSystem) -> int:
        if self.complete < 0:
            request = self.request
            if request.finish < 0:
                dram.complete(request)
            self.complete = request.finish + self.return_latency
        return self.complete


class MemoryHierarchy:
    """L1 -> L2 -> LLC -> DRAM, with per-level MSHRs and prefetchers."""

    def __init__(self, config: SystemConfig, dram: DRAMSystem) -> None:
        self.config = config
        self.dram = dram
        self.stats = Stats()
        self.line = config.llc.line_bytes
        self.l1 = [Cache(config.l1, self.stats) for _ in range(config.cores)]
        self.l2 = [Cache(config.l2, self.stats) for _ in range(config.cores)]
        self.llc = Cache(config.llc, self.stats)
        self.l1_mshr = [MSHRFile(config.l1.mshrs, self.stats, "l1_mshr")
                        for _ in range(config.cores)]
        self.l2_mshr = [MSHRFile(config.l2.mshrs, self.stats, "l2_mshr")
                        for _ in range(config.cores)]
        self.llc_mshr = MSHRFile(config.llc.mshrs, self.stats, "llc_mshr")
        self.l1_pf = [
            StridePrefetcher(config.l1.prefetch_degree, stats=self.stats)
            if config.l1.prefetcher else None
            for _ in range(config.cores)
        ]
        self.l2_pf = [
            StridePrefetcher(config.l2.prefetch_degree, stats=self.stats)
            if config.l2.prefetcher else None
            for _ in range(config.cores)
        ]
        # DX100 scratchpad windows: cacheable regions backed by the
        # accelerator instead of DRAM (Section 3.6).
        self._spd_regions: list[tuple[int, int, int]] = []  # (lo, hi, latency)
        # Demand-access observers (the DMP engine registers one).
        self.observers: list = []
        # Optional PC filter for the observers: when every observer is
        # known to ignore accesses whose PC is not a key of this dict (or
        # whose tag is negative), the batched walk skips the calls
        # entirely.  ``None`` = no such guarantee, call observers always.
        self.observer_pc_filter: dict | None = None
        # Owning tenant per core (-1 = untagged).  Consulted on every demand
        # access so the serving layer (:mod:`repro.serve`) and the tenant
        # co-run path can attribute DRAM traffic without touching the core
        # model; tags never change scheduling.
        self.core_tenant: list[int] = [-1] * config.cores
        # Observability bus (:class:`repro.obs.events.EventBus`); None when
        # observability is off, so the hot paths pay one branch only.
        self.obs: Any = None
        # Per-level latencies, hoisted off the config dataclasses for the
        # per-access walk.
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        self._llc_latency = config.llc.latency

    def register_spd_region(self, lo: int, hi: int, latency: int) -> None:
        """Declare [lo, hi) as scratchpad-backed with the given fill latency."""
        if hi <= lo:
            raise ValueError("empty scratchpad region")
        self._spd_regions.append((lo, hi, latency))

    def _spd_latency(self, line: int) -> int | None:
        for lo, hi, latency in self._spd_regions:
            if lo <= line < hi:
                return latency
        return None

    # --------------------------------------------------------------- helpers

    def _stall_for_mshr(self, mshr: MSHRFile, t: int) -> int:
        """If the MSHR file is full, wait for its oldest fill to complete.

        Resolved entries are released lazily (see :meth:`MSHRFile.lookup`),
        so the apparent occupancy may include already-finished fills; the
        sweep to drop them runs only when the file looks full, which keeps
        the common (non-full) miss path free of the scan.
        """
        if len(mshr) >= mshr.capacity:
            mshr.release_resolved()
            while mshr.full:
                oldest = mshr.oldest()
                if oldest.ready < 0 and oldest.request is not None:
                    oldest.ready = self.dram.complete(oldest.request)
                t = max(t, oldest.ready)
                mshr.release(oldest.line_addr)
                self.stats.add(f"{mshr.name}_stalls")
        return t

    def _release_resolved(self, mshr: MSHRFile) -> None:
        mshr.release_resolved()

    # --------------------------------------------------------------- demand

    def access(self, core: int, addr: int, is_write: bool, t: int,
               pc: int = 0, tag: int = -1,
               prefetch: bool = True) -> AccessResult:
        """A demand access from ``core`` at cycle ``t``."""
        line = self.llc.line_addr(addr)
        self.stats.counters["l1_accesses"] += 1
        result = self._access_line(core, line, is_write, t,
                                   self.core_tenant[core])
        prefetcher = self.l1_pf[core]
        if prefetch and prefetcher is not None:
            for pf_line in prefetcher.observe(pc, addr):
                self._prefetch_fill(core, pf_line, result.issue)
        if self.observers:
            for observer in self.observers:
                observer(core, addr, pc, tag, result.issue)
        if self.obs is not None and result.request is not None:
            self.obs.core_miss(core, result.issue)
        return result

    def prefetch_into(self, core: int, line: int, t: int) -> None:
        """Prefetch entry for external engines (DMP).

        Unlike the stride prefetchers' optimistic fills, these prefetches
        pay real latency: the line is fetched through an LLC MSHR entry and
        a DRAM request issued at ``t``; a later demand access coalesces
        onto the fill and waits for its actual completion.  The benefit is
        the head start (the prefetch distance), not a free hit — matching
        DMP's measured ~1.4x average-latency reduction (Section 6.3).
        """
        line = self.llc.line_addr(line)
        if self.llc.lookup(line, update_lru=False):
            return
        self._release_resolved(self.llc_mshr)
        if line in self.llc_mshr._entries or self.llc_mshr.full:
            self.stats.add("dmp_prefetch_dropped")
            return
        entry = self.llc_mshr.allocate(line, t)
        entry.prefetch = True
        entry.request = self.dram.access(line, is_write=False,
                                         arrival=t + self.config.llc.latency)
        # The tag is installed now (pollution); demand accesses coalesce on
        # the MSHR entry until the fill lands.
        self._fill(self.llc, line, dirty=False, to_dram=True)
        self.stats.add("dmp_prefetch_issued")

    def _access_line(self, core: int, line: int, is_write: bool,
                     t: int, tenant: int = -1) -> AccessResult:
        # L1: coalesce onto outstanding fills (resolved ones release
        # lazily inside lookup), then tag probe.
        mshr = self.l1_mshr[core]
        pending = mshr.lookup(line)
        if pending is not None:
            return self._pending_result(pending, HitLevel.L1,
                                        self._l1_latency, t)
        counters = self.stats.counters
        l1 = self.l1[core]
        if l1.hit(line, is_write):
            counters["l1_hits"] += 1
            return AccessResult(HitLevel.L1, issue=t,
                                complete=t + self._l1_latency)
        counters["l1_misses"] += 1
        t = self._stall_for_mshr(mshr, t)
        l1_entry = mshr.allocate(line, t)

        t_l2 = t + self._l1_latency
        counters["l2_accesses"] += 1
        result = self._access_l2(core, line, is_write, t_l2, tenant)
        self._fill(l1, line, is_write)
        if result.complete >= 0:
            l1_entry.ready = result.complete
        else:
            l1_entry.request = result.request
        return result

    def _access_l2(self, core: int, line: int, is_write: bool,
                   t: int, tenant: int = -1) -> AccessResult:
        mshr = self.l2_mshr[core]
        pending = mshr.lookup(line)
        if pending is not None:
            return self._pending_result(pending, HitLevel.L2,
                                        self._l2_latency, t)
        counters = self.stats.counters
        l2 = self.l2[core]
        if l2.hit(line, is_write):
            counters["l2_hits"] += 1
            return AccessResult(HitLevel.L2, issue=t,
                                complete=t + self._l2_latency)
        counters["l2_misses"] += 1
        t = self._stall_for_mshr(mshr, t)
        l2_entry = mshr.allocate(line, t)

        t_llc = t + self._l2_latency
        counters["llc_accesses"] += 1
        result = self._access_llc(line, is_write, t_llc, tenant=tenant)
        self._fill(l2, line, is_write)
        if result.complete >= 0:
            l2_entry.ready = result.complete
        else:
            l2_entry.request = result.request

        prefetcher = self.l2_pf[core]
        if prefetcher is not None:
            for pf_line in prefetcher.observe(0, line):
                self._prefetch_fill(core, pf_line, t, from_level=2)
        return result

    def _access_llc(self, line: int, is_write: bool, t: int,
                    decoded: tuple | None = None,
                    tenant: int = -1) -> AccessResult:
        mshr = self.llc_mshr
        counters = self.stats.counters
        pending = mshr.lookup(line, now=t)
        if pending is not None:
            if pending.prefetch:
                # A demand racing an in-flight prefetch fill: the prefetch
                # absorbed the demand miss, so charge exactly one miss and
                # wait for the *actual* fill (no free hit).
                pending.prefetch = False
                counters["llc_misses"] += 1
                if self.obs is not None:
                    self.obs.llc_miss(t)
            return self._pending_result(pending, HitLevel.LLC,
                                        self._llc_latency, t)
        llc = self.llc
        if llc.hit(line, is_write):
            counters["llc_hits"] += 1
            return AccessResult(HitLevel.LLC, issue=t,
                                complete=t + self._llc_latency)
        counters["llc_misses"] += 1
        if self.obs is not None:
            self.obs.llc_miss(t)
        if self._spd_regions:
            spd_latency = self._spd_latency(line)
            if spd_latency is not None:
                # Scratchpad-backed line: filled by DX100, no DRAM
                # transaction.
                counters["spd_fills"] += 1
                self._fill(llc, line, is_write)
                return AccessResult(
                    HitLevel.SPD, issue=t,
                    complete=t + self._llc_latency + spd_latency,
                )
        t = self._stall_for_mshr(mshr, t)
        entry = mshr.allocate(line, t)
        req = self.dram.access(line, is_write=False,
                               arrival=t + self._llc_latency,
                               decoded=decoded, tenant=tenant)
        entry.request = req
        self._fill(llc, line, is_write, to_dram=True)
        return AccessResult(HitLevel.DRAM, issue=t, request=req,
                            return_latency=self._llc_latency)

    def _pending_result(self, entry, level: HitLevel, latency: int,
                        t: int) -> AccessResult:
        if entry.ready >= 0:
            return AccessResult(level, issue=t,
                                complete=max(entry.ready, t + latency))
        return AccessResult(HitLevel.DRAM, issue=t, request=entry.request,
                            return_latency=latency)

    # --------------------------------------------------------------- fills

    def _fill(self, cache: Cache, line: int, dirty: bool,
              to_dram: bool = False) -> None:
        victim = cache.insert(line, dirty=dirty)
        if victim is not None and victim[1] and to_dram:
            # Dirty LLC eviction: write back to memory (bandwidth only).
            self.dram.access(victim[0], is_write=True,
                             arrival=max(0, self._now_hint()))

    def _now_hint(self) -> int:
        return max((c.time for c in self.dram.controllers), default=0)

    def _prefetch_fill(self, core: int, line: int, t: int,
                       from_level: int = 1) -> None:
        """Bring a prefetched line toward the core (fire and forget)."""
        self.stats.add("prefetch_fills")
        if from_level == 1:
            if self.l1[core].lookup(line, update_lru=False):
                self.stats.add("prefetch_redundant")
                return
            self._fill(self.l1[core], line, dirty=False)
        if self.l2[core].lookup(line, update_lru=False):
            if from_level >= 2:
                self.stats.add("prefetch_redundant")
            return
        self._fill(self.l2[core], line, dirty=False)
        if self.llc.lookup(line, update_lru=False):
            return
        self._fill(self.llc, line, dirty=False, to_dram=True)
        if self._spd_latency(line) is None:
            self.dram.access(line, is_write=False, arrival=t)
            self.stats.add("prefetch_dram")
        else:
            self.stats.add("prefetch_spd")

    # --------------------------------------------------------------- DX100 side

    def llc_access(self, addr: int, is_write: bool, t: int,
                   decoded: tuple | None = None,
                   tenant: int = -1) -> AccessResult:
        """Direct LLC access (DX100's Cache Interface for streaming).

        ``decoded`` is an optional pre-decoded ``(channel, rank, bankgroup,
        bank, row)`` for the line, threaded down to the DRAM enqueue when
        the access misses — DX100 decodes whole tiles through
        :meth:`~repro.dram.address.AddressMapper.map_arrays` and reuses the
        result here instead of re-mapping per line.
        """
        line = self.llc.line_addr(addr)
        self.stats.add("llc_accesses")
        return self._access_llc(line, is_write, t, decoded, tenant)

    def snoop(self, addr: int) -> bool:
        """Directory snoop: is the line cached anywhere? (DX100 H bit)."""
        line = self.llc.line_addr(addr)
        if self.llc.lookup(line, update_lru=False):
            return True
        return any(c.lookup(line, update_lru=False)
                   for c in (*self.l1, *self.l2))

    def invalidate(self, addr: int) -> None:
        """Invalidate a line from every level (DX100 exclusive access)."""
        line = self.llc.line_addr(addr)
        for cache in (*self.l1, *self.l2, self.llc):
            cache.invalidate(line)

    # --------------------------------------------------------------- metrics

    def mpki(self, level: str, kilo_instructions: float) -> float:
        if kilo_instructions <= 0:
            return 0.0
        return self.stats.get(f"{level}_misses") / kilo_instructions

"""A set-associative, write-allocate, LRU cache (tags + dirty bits).

The simulator tracks tag state only; data values flow through NumPy arrays
in the workloads and through the DX100 scratchpad, so caches never hold
payloads.  Timing is attached by :mod:`repro.cache.hierarchy`.

The tag-store operations are on the per-access hot path of every simulated
memory reference (three levels per miss), so the set/line arithmetic is
inlined into each method rather than factored through a helper that would
allocate a tuple per call.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.config import CacheConfig
from repro.common.stats import Stats


class Cache:
    """Tag store for one cache level."""

    __slots__ = ("config", "stats", "_sets", "_line_shift", "_num_sets",
                 "_ways")

    def __init__(self, config: CacheConfig, stats: Stats | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.sets
        self._ways = config.ways

    def _locate(self, addr: int) -> tuple[OrderedDict[int, bool], int]:
        line = addr >> self._line_shift
        return self._sets[line % self._num_sets], line

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """True if the line holding ``addr`` is resident."""
        line = addr >> self._line_shift
        cset = self._sets[line % self._num_sets]
        if line in cset:
            if update_lru:
                cset.move_to_end(line)
            return True
        return False

    def hit(self, addr: int, dirty: bool = False) -> bool:
        """Combined lookup + touch: one set probe for the hit fast path.

        Equivalent to ``lookup(addr) and touch(addr, dirty)`` but with a
        single line/set computation — the common case of every access at
        every level, so the hierarchy walk calls this instead of the pair.
        """
        line = addr >> self._line_shift
        cset = self._sets[line % self._num_sets]
        if line not in cset:
            return False
        cset.move_to_end(line)
        if dirty:
            cset[line] = True
        return True

    def touch(self, addr: int, dirty: bool = False) -> None:
        """Mark an access to a resident line (LRU bump + dirty update)."""
        line = addr >> self._line_shift
        cset = self._sets[line % self._num_sets]
        cset.move_to_end(line)
        if dirty:
            cset[line] = True

    def insert(self, addr: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert the line for ``addr``; returns (victim_addr, was_dirty) if a
        line was evicted."""
        line = addr >> self._line_shift
        cset = self._sets[line % self._num_sets]
        if line in cset:
            cset.move_to_end(line)
            if dirty:
                cset[line] = True
            return None
        victim = None
        if len(cset) >= self._ways:
            victim_line, victim_dirty = cset.popitem(last=False)
            victim = (victim_line << self._line_shift, victim_dirty)
            counters = self.stats.counters
            counters["evictions"] += 1
            if victim_dirty:
                counters["dirty_evictions"] += 1
        cset[line] = dirty
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the line if present; returns whether it was resident."""
        line = addr >> self._line_shift
        cset = self._sets[line % self._num_sets]
        return cset.pop(line, None) is not None

    def line_addr(self, addr: int) -> int:
        return (addr >> self._line_shift) << self._line_shift

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding line fills per cache and
coalesces repeated misses to the same line onto one fill — both effects the
paper identifies as limiting the baseline's memory-level parallelism
(Section 2.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.stats import Stats
from repro.common.types import DRAMRequest


@dataclass
class MSHREntry:
    """One outstanding line fill."""

    line_addr: int
    allocated_at: int
    request: DRAMRequest | None = None   # None when filled from a lower cache
    ready: int = -1                      # known completion, if already resolved
    waiters: int = 0

    def resolve(self, ready: int) -> None:
        self.ready = ready


class MSHRFile:
    """Bounded set of outstanding misses with same-line coalescing."""

    def __init__(self, capacity: int, stats: Stats | None = None,
                 name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self._entries: OrderedDict[int, MSHREntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> MSHREntry | None:
        entry = self._entries.get(line_addr)
        if entry is not None:
            entry.waiters += 1
            self.stats.add(f"{self.name}_coalesced")
        return entry

    def allocate(self, line_addr: int, allocated_at: int) -> MSHREntry:
        if self.full:
            raise RuntimeError(f"{self.name} full; release an entry first")
        if line_addr in self._entries:
            raise ValueError(f"line {line_addr:#x} already outstanding")
        entry = MSHREntry(line_addr=line_addr, allocated_at=allocated_at)
        self._entries[line_addr] = entry
        self.stats.add(f"{self.name}_allocations")
        return entry

    def release(self, line_addr: int) -> MSHREntry:
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise KeyError(f"line {line_addr:#x} not outstanding")
        return entry

    def oldest(self) -> MSHREntry:
        """FIFO-oldest entry — the one a full-MSHR stall waits on."""
        if not self._entries:
            raise RuntimeError("MSHR file is empty")
        return next(iter(self._entries.values()))

    def entries(self) -> list[MSHREntry]:
        return list(self._entries.values())

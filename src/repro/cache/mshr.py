"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding line fills per cache and
coalesces repeated misses to the same line onto one fill — both effects the
paper identifies as limiting the baseline's memory-level parallelism
(Section 2.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.common.stats import Stats
from repro.common.types import DRAMRequest


@dataclass(slots=True)
class MSHREntry:
    """One outstanding line fill."""

    line_addr: int
    allocated_at: int
    request: DRAMRequest | None = None   # None when filled from a lower cache
    ready: int = -1                      # known completion, if already resolved
    waiters: int = 0
    #: Allocated by a prefetch fill rather than a demand miss.  The first
    #: demand that touches the line adjudicates the race (see ``lookup``):
    #: a timely fill is a plain hit, an in-flight fill is *one* miss.
    prefetch: bool = False

    def resolve(self, ready: int) -> None:
        self.ready = ready


class MSHRFile:
    """Bounded set of outstanding misses with same-line coalescing."""

    __slots__ = ("capacity", "name", "stats", "obs", "_entries", "_counters",
                 "_key_coalesced", "_key_allocations")

    def __init__(self, capacity: int, stats: Stats | None = None,
                 name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = stats if stats is not None else Stats()
        # Observability bus; None (one branch on allocate) unless attached.
        self.obs: Any = None
        self._entries: OrderedDict[int, MSHREntry] = OrderedDict()
        # Hot-path counter access: the counters dict is a defaultdict and
        # its identity is stable, so bump it directly with precomputed keys
        # instead of formatting the stat name on every lookup/allocate.
        self._counters = self.stats.counters
        self._key_coalesced = f"{name}_coalesced"
        self._key_allocations = f"{name}_allocations"

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int, now: int = -1) -> MSHREntry | None:
        """Return the outstanding entry for ``line_addr``, if any.

        Entries are released *lazily*: a resolved entry (fill completed)
        encountered here is dropped and reported absent, exactly as if it
        had been pruned eagerly at the start of the access — so callers
        never need a full :meth:`release_resolved` sweep on the hot path.

        Prefetch entries are the exception: their fill was speculative, so
        a resolved entry is released only when the fill landed at or before
        ``now`` (the demand's arrival) — a *timely* prefetch the demand
        simply hits.  A fill still in flight (or landing after ``now``) is
        returned with ``prefetch`` still set so the caller can charge the
        demand miss the prefetch merely absorbed.
        """
        entry = self._entries.get(line_addr)
        if entry is None:
            return None
        if entry.prefetch:
            ready = entry.ready
            if ready < 0 and entry.request is not None:
                ready = entry.request.finish
            if 0 <= ready <= now:
                del self._entries[line_addr]
                return None
            entry.waiters += 1
            self._counters[self._key_coalesced] += 1.0
            return entry
        if entry.ready >= 0 or (entry.request is not None
                                and entry.request.finish >= 0):
            del self._entries[line_addr]
            return None
        entry.waiters += 1
        self._counters[self._key_coalesced] += 1.0
        return entry

    def allocate(self, line_addr: int, allocated_at: int) -> MSHREntry:
        entries = self._entries
        if len(entries) >= self.capacity:
            raise RuntimeError(f"{self.name} full; release an entry first")
        if line_addr in entries:
            raise ValueError(f"line {line_addr:#x} already outstanding")
        entry = MSHREntry(line_addr=line_addr, allocated_at=allocated_at)
        entries[line_addr] = entry
        self._counters[self._key_allocations] += 1.0
        if self.obs is not None:
            self.obs.mshr_occupancy(self.name, allocated_at, len(entries),
                                    self.capacity)
        return entry

    def release(self, line_addr: int) -> MSHREntry:
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise KeyError(f"line {line_addr:#x} not outstanding")
        return entry

    def release_resolved(self) -> None:
        """Free every entry whose fill has completed.

        The access path relies on :meth:`lookup`'s lazy per-line release
        instead; this wholesale sweep runs only under capacity pressure
        (:meth:`MemoryHierarchy._stall_for_mshr`) and before external
        prefetch admission, where an exact occupancy count matters.
        """
        entries = self._entries
        if not entries:
            return
        stale = None
        for line_addr, entry in entries.items():
            if entry.ready >= 0 or (entry.request is not None
                                    and entry.request.finish >= 0):
                if stale is None:
                    stale = [line_addr]
                else:
                    stale.append(line_addr)
        if stale is not None:
            for line_addr in stale:
                del entries[line_addr]

    def oldest(self) -> MSHREntry:
        """FIFO-oldest entry — the one a full-MSHR stall waits on."""
        if not self._entries:
            raise RuntimeError("MSHR file is empty")
        return next(iter(self._entries.values()))

    def entries(self) -> list[MSHREntry]:
        return list(self._entries.values())

"""Per-PC stride prefetcher (the L1/L2 prefetchers of Table 3).

Classic reference-prediction-table design: each PC entry remembers the last
address and the last observed stride; two consecutive matching strides make
the entry confident, after which accesses emit prefetch candidates
``degree`` strides ahead.  Streaming accesses (B[i], scratchpad reads) train
it immediately; random indirect accesses never confirm a stride, which is
exactly why the baseline gains nothing on them (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import Stats


@dataclass(slots=True)
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference prediction table keyed by PC."""

    __slots__ = ("degree", "table_size", "line_bytes", "stats", "_table",
                 "_counters", "_line_mask")

    def __init__(self, degree: int = 2, table_size: int = 64,
                 line_bytes: int = 64, stats: Stats | None = None) -> None:
        self.degree = degree
        self.table_size = table_size
        self.line_bytes = line_bytes
        self.stats = stats if stats is not None else Stats()
        self._table: dict[int, _StrideEntry] = {}
        # ``observe`` runs once per demand access; keep the counter dict and
        # the line mask at hand rather than re-deriving them every call.
        self._counters = self.stats.counters
        self._line_mask = ~(line_bytes - 1)

    def observe(self, pc: int, addr: int) -> list[int] | tuple[int, ...]:
        """Record a demand access; returns line addresses to prefetch.

        The no-candidate paths (cold entry, unconfirmed stride) return an
        empty tuple — callers only iterate the result.
        """
        table = self._table
        entry = table.get(pc)
        if entry is None:
            if len(table) >= self.table_size:
                table.pop(next(iter(table)))
            table[pc] = _StrideEntry(last_addr=addr)
            return ()
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            confidence = entry.confidence + 1
            if confidence > 3:
                confidence = 3
            entry.confidence = confidence
        else:
            entry.stride = stride
            entry.confidence = confidence = 0
        entry.last_addr = addr
        if confidence < 2:
            return ()
        counters = self._counters
        counters["prefetch_trains"] += 1.0
        mask = self._line_mask
        out = []
        last_line = -1
        for k in range(1, self.degree + 1):
            line = (addr + k * stride) & mask
            if line != last_line and line >= 0:
                out.append(line)
                last_line = line
        counters["prefetches_issued"] += float(len(out))
        return out

"""Per-PC stride prefetcher (the L1/L2 prefetchers of Table 3).

Classic reference-prediction-table design: each PC entry remembers the last
address and the last observed stride; two consecutive matching strides make
the entry confident, after which accesses emit prefetch candidates
``degree`` strides ahead.  Streaming accesses (B[i], scratchpad reads) train
it immediately; random indirect accesses never confirm a stride, which is
exactly why the baseline gains nothing on them (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import Stats


@dataclass(slots=True)
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference prediction table keyed by PC."""

    __slots__ = ("degree", "table_size", "line_bytes", "stats", "_table")

    def __init__(self, degree: int = 2, table_size: int = 64,
                 line_bytes: int = 64, stats: Stats | None = None) -> None:
        self.degree = degree
        self.table_size = table_size
        self.line_bytes = line_bytes
        self.stats = stats if stats is not None else Stats()
        self._table: dict[int, _StrideEntry] = {}

    def observe(self, pc: int, addr: int) -> list[int]:
        """Record a demand access; returns line addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            confidence = entry.confidence + 1
            if confidence > 3:
                confidence = 3
            entry.confidence = confidence
        else:
            entry.stride = stride
            entry.confidence = confidence = 0
        entry.last_addr = addr
        if confidence < 2:
            return []
        self.stats.add("prefetch_trains")
        out = []
        last_line = -1
        for k in range(1, self.degree + 1):
            line = (addr + k * entry.stride) & ~(self.line_bytes - 1)
            if line != last_line and line >= 0:
                out.append(line)
                last_line = line
        self.stats.add("prefetches_issued", len(out))
        return out

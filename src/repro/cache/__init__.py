"""Cache substrate: set-associative caches, MSHRs, prefetchers, hierarchy."""

from repro.cache.cache import Cache
from repro.cache.hierarchy import AccessResult, MemoryHierarchy
from repro.cache.mshr import MSHREntry, MSHRFile
from repro.cache.prefetcher import StridePrefetcher

__all__ = [
    "AccessResult",
    "Cache",
    "MemoryHierarchy",
    "MSHREntry",
    "MSHRFile",
    "StridePrefetcher",
]

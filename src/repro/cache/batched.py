"""Batched front-end: the fused cache-hierarchy walk.

This is the cache half of the ``SystemConfig.frontend = "batched"`` engine
split (mirroring :mod:`repro.dram.batched`): the same L1 -> L2 -> LLC walk
as :class:`~repro.cache.hierarchy.MemoryHierarchy`, but with the per-level
``Cache.hit`` / ``MSHRFile.lookup`` / ``MSHRFile.allocate`` calls fused
into one function body, and a whole-tile :meth:`BatchedHierarchy.access_lines`
path for the DX100 stream units that decodes a tile once through
``AddressMapper.map_arrays`` and hands every miss to the DRAM system
already-decoded.

Bitwise equivalence with the scalar oracle is the contract, and it is what
shapes the design: LRU victim choice, MSHR coalescing/capacity stalls, and
DRAM enqueue order are all order-dependent, so the "batching" here is
call-graph fusion over the *same* tag/MSHR state (OrderedDict sets, entry
dicts) rather than data-parallel classification — the profile shows the
scalar walk's cost is call dispatch spread over ten small functions, not
arithmetic.  The differential suite in ``tests/sim`` replays whole systems
under both front-ends and asserts identical cycles, counters, and DRAM
command streams.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.types import HitLevel
from repro.cache.hierarchy import AccessResult, MemoryHierarchy
from repro.cache.mshr import MSHREntry
from repro.cache.prefetcher import _StrideEntry
from repro.dram.system import DRAMSystem

_L1 = HitLevel.L1
_L2 = HitLevel.L2
_LLC = HitLevel.LLC
_SPD = HitLevel.SPD
_DRAM = HitLevel.DRAM


class BatchedHierarchy(MemoryHierarchy):
    """The fused-walk twin of :class:`MemoryHierarchy`.

    Every method here must stay line-for-line equivalent to the scalar
    walk it replaces; comments mark the scalar method each block mirrors.
    """

    def __init__(self, config: SystemConfig, dram: DRAMSystem) -> None:
        super().__init__(config, dram)
        # All levels share one line size (asserted rather than assumed: the
        # fused walk computes the line index once for all three levels).
        shifts = {self.llc._line_shift}
        shifts.update(c._line_shift for c in (*self.l1, *self.l2))
        if len(shifts) != 1:
            raise ValueError("batched frontend needs one line size "
                             "across all cache levels")
        self._line_shift = self.llc._line_shift
        # Per-access hoists: the walk indexes seven per-core structures on
        # every call, and all of them are identity-stable after construction
        # (tag sets and MSHR entry dicts are mutated in place, never
        # rebound), so one tuple unpack replaces the attribute/index chain.
        self._counters = self.stats.counters
        self._per_core = [
            (self.l1_mshr[c], self.l1_mshr[c]._entries,
             self.l1[c], self.l1[c]._sets, self.l1[c]._num_sets,
             self.l2_mshr[c], self.l2_mshr[c]._entries,
             self.l2[c], self.l2[c]._sets, self.l2[c]._num_sets,
             self.l1_pf[c], self.l2_pf[c],
             self.l1[c]._ways, self.l2[c]._ways)
            for c in range(config.cores)
        ]
        self._llc_sets = self.llc._sets
        self._llc_nsets = self.llc._num_sets
        self._llc_ways = self.llc._ways
        self._llc_entries = self.llc_mshr._entries
        # LLC MSHR entries only become releasable when a DRAM request
        # finishes, and both engines bump their controller's "serviced"
        # counter in the same frame that sets ``request.finish``.  Snapshot
        # those counter dicts so ``prefetch_into`` can skip its occupancy
        # sweep when no request completed since the last one (the sweep
        # would provably be a no-op).
        self._ctrl_counters = [c.stats.counters for c in dram.controllers]
        self._llc_sweep_stamp = -1.0

    # ------------------------------------------------------------ demand walk

    def access(self, core: int, addr: int, is_write: bool, t: int,
               pc: int = 0, tag: int = -1,
               prefetch: bool = True) -> tuple:
        """Fused ``access`` + ``_access_line`` + ``_access_l2`` walk.

        Returns ``(level, issue, complete, request, return_latency)`` — the
        fields of the scalar :class:`AccessResult`, as a plain tuple.  The
        batched core folds them straight into its in-flight record, so the
        per-access result object (and its attribute traffic) disappears.
        """
        counters = self._counters
        shift = self._line_shift
        li = addr >> shift
        line = li << shift
        counters["l1_accesses"] += 1
        tenant = self.core_tenant[core]
        lat1 = self._l1_latency

        # ---- L1 (mirrors _access_line) ----
        (mshr, entries, l1, l1_sets, l1_nsets,
         mshr2, entries2, l2, l2_sets, l2_nsets,
         prefetcher, prefetcher2, l1_ways, l2_ways) = self._per_core[core]
        entry = entries.get(line)
        if entry is not None:
            if not entry.prefetch and (
                    entry.ready >= 0 or (entry.request is not None
                                         and entry.request.finish >= 0)):
                del entries[line]
                entry = None
            else:
                entry.waiters += 1
                counters[mshr._key_coalesced] += 1.0
        if entry is not None:
            # _pending_result(entry, L1)
            if entry.ready >= 0:
                floor = t + lat1
                ready = entry.ready
                result = (_L1, t, ready if ready > floor else floor,
                          None, 0)
            else:
                result = (_DRAM, t, -1, entry.request, lat1)
        else:
            cset = l1_sets[li % l1_nsets]
            if li in cset:
                cset.move_to_end(li)
                if is_write:
                    cset[li] = True
                counters["l1_hits"] += 1
                result = (_L1, t, t + lat1, None, 0)
            else:
                counters["l1_misses"] += 1
                if len(entries) >= mshr.capacity:
                    t = self._stall_for_mshr(mshr, t)
                l1_entry = MSHREntry(line, t)
                entries[line] = l1_entry
                counters[mshr._key_allocations] += 1.0
                if mshr.obs is not None:
                    mshr.obs.mshr_occupancy(mshr.name, t, len(entries),
                                            mshr.capacity)

                # ---- L2 (mirrors _access_l2) ----
                t_l2 = t + lat1
                lat2 = self._l2_latency
                counters["l2_accesses"] += 1
                entry2 = entries2.get(line)
                if entry2 is not None:
                    if not entry2.prefetch and (
                            entry2.ready >= 0 or
                            (entry2.request is not None
                             and entry2.request.finish >= 0)):
                        del entries2[line]
                        entry2 = None
                    else:
                        entry2.waiters += 1
                        counters[mshr2._key_coalesced] += 1.0
                if entry2 is not None:
                    if entry2.ready >= 0:
                        floor = t_l2 + lat2
                        ready = entry2.ready
                        result = (_L2, t_l2,
                                  ready if ready > floor else floor,
                                  None, 0)
                    else:
                        result = (_DRAM, t_l2, -1, entry2.request, lat2)
                else:
                    cset2 = l2_sets[li % l2_nsets]
                    if li in cset2:
                        cset2.move_to_end(li)
                        if is_write:
                            cset2[li] = True
                        counters["l2_hits"] += 1
                        result = (_L2, t_l2, t_l2 + lat2, None, 0)
                    else:
                        counters["l2_misses"] += 1
                        if len(entries2) >= mshr2.capacity:
                            t_l2 = self._stall_for_mshr(mshr2, t_l2)
                        l2_entry = MSHREntry(line, t_l2)
                        entries2[line] = l2_entry
                        counters[mshr2._key_allocations] += 1.0
                        if mshr2.obs is not None:
                            mshr2.obs.mshr_occupancy(mshr2.name, t_l2,
                                                     len(entries2),
                                                     mshr2.capacity)
                        t_llc = t_l2 + lat2
                        counters["llc_accesses"] += 1
                        result = self._access_llc(line, is_write, t_llc,
                                                  tenant=tenant)
                        # l2.insert(line, is_write) inlined: the probe
                        # above missed and nothing between it and this
                        # fill touches the L2 tag store.
                        if len(cset2) >= l2_ways:
                            _, vdirty = cset2.popitem(last=False)
                            counters["evictions"] += 1
                            if vdirty:
                                counters["dirty_evictions"] += 1
                        cset2[li] = is_write
                        rc = result[2]
                        if rc >= 0:
                            l2_entry.ready = rc
                        else:
                            l2_entry.request = result[3]
                        # L2 stride prefetcher (trained on line addresses
                        # under PC 0), ``observe`` inlined as above.
                        if prefetcher2 is not None:
                            table2 = prefetcher2._table
                            entry_pf = table2.get(0)
                            if entry_pf is None:
                                if len(table2) >= prefetcher2.table_size:
                                    table2.pop(next(iter(table2)))
                                table2[0] = _StrideEntry(line)
                            else:
                                stride = line - entry_pf.last_addr
                                if stride == entry_pf.stride and stride != 0:
                                    confidence = entry_pf.confidence + 1
                                    if confidence > 3:
                                        confidence = 3
                                    entry_pf.confidence = confidence
                                else:
                                    entry_pf.stride = stride
                                    entry_pf.confidence = confidence = 0
                                entry_pf.last_addr = line
                                if confidence >= 2:
                                    counters["prefetch_trains"] += 1.0
                                    mask = prefetcher2._line_mask
                                    issued = 0.0
                                    last_line = -1
                                    for k in range(
                                            1, prefetcher2.degree + 1):
                                        pf_line = (line + k * stride) & mask
                                        if (pf_line != last_line
                                                and pf_line >= 0):
                                            self._prefetch_fill(
                                                core, pf_line, t_l2,
                                                from_level=2)
                                            issued += 1.0
                                            last_line = pf_line
                                    counters["prefetches_issued"] += issued

                # back in _access_line: fill L1, publish the entry.
                # l1.insert(line, is_write) inlined: the L1 probe missed
                # and the L2-level prefetcher only fills L2/LLC.
                if len(cset) >= l1_ways:
                    _, vdirty = cset.popitem(last=False)
                    counters["evictions"] += 1
                    if vdirty:
                        counters["dirty_evictions"] += 1
                cset[li] = is_write
                rc = result[2]
                if rc >= 0:
                    l1_entry.ready = rc
                else:
                    l1_entry.request = result[3]

        # ---- tail of access() ----
        # L1 stride prefetcher, ``observe`` inlined (it runs per access and
        # usually returns no candidates).
        if prefetch and prefetcher is not None:
            table = prefetcher._table
            entry = table.get(pc)
            if entry is None:
                if len(table) >= prefetcher.table_size:
                    table.pop(next(iter(table)))
                table[pc] = _StrideEntry(addr)
            else:
                stride = addr - entry.last_addr
                if stride == entry.stride and stride != 0:
                    confidence = entry.confidence + 1
                    if confidence > 3:
                        confidence = 3
                    entry.confidence = confidence
                else:
                    entry.stride = stride
                    entry.confidence = confidence = 0
                entry.last_addr = addr
                if confidence >= 2:
                    counters["prefetch_trains"] += 1.0
                    mask = prefetcher._line_mask
                    issue = result[1]
                    issued = 0.0
                    last_line = -1
                    for k in range(1, prefetcher.degree + 1):
                        pf_line = (addr + k * stride) & mask
                        if pf_line != last_line and pf_line >= 0:
                            self._prefetch_fill(core, pf_line, issue)
                            issued += 1.0
                            last_line = pf_line
                    counters["prefetches_issued"] += issued
        if self.observers:
            pc_filter = self.observer_pc_filter
            if pc_filter is None or (tag >= 0 and pc in pc_filter):
                for observer in self.observers:
                    observer(core, addr, pc, tag, result[1])
        if self.obs is not None and result[3] is not None:
            self.obs.core_miss(core, result[1])
        return result

    # -------------------------------------------------------------- LLC level

    def _access_llc(self, line: int, is_write: bool, t: int,
                    decoded: tuple | None = None,
                    tenant: int = -1) -> tuple:
        """Fused LLC level: MSHR adjudication + tag probe + miss path.

        Returns the same ``(level, issue, complete, request, return_latency)``
        tuple as :meth:`access`; :meth:`llc_access` wraps it back into an
        :class:`AccessResult` for the DX100 units.
        """
        counters = self._counters
        llc_latency = self._llc_latency
        mshr = self.llc_mshr
        entries = self._llc_entries
        entry = entries.get(line)
        if entry is not None:
            # mirrors MSHRFile.lookup(line, now=t)
            if entry.prefetch:
                ready = entry.ready
                if ready < 0 and entry.request is not None:
                    ready = entry.request.finish
                if 0 <= ready <= t:
                    del entries[line]
                    entry = None
                else:
                    entry.waiters += 1
                    counters[mshr._key_coalesced] += 1.0
            elif entry.ready >= 0 or (entry.request is not None
                                      and entry.request.finish >= 0):
                del entries[line]
                entry = None
            else:
                entry.waiters += 1
                counters[mshr._key_coalesced] += 1.0
        if entry is not None:
            if entry.prefetch:
                # Demand racing an in-flight prefetch fill: one miss.
                entry.prefetch = False
                counters["llc_misses"] += 1
                if self.obs is not None:
                    self.obs.llc_miss(t)
            if entry.ready >= 0:
                floor = t + llc_latency
                ready = entry.ready
                return (_LLC, t, ready if ready > floor else floor,
                        None, 0)
            return (_DRAM, t, -1, entry.request, llc_latency)
        llc = self.llc
        li = line >> self._line_shift
        cset = self._llc_sets[li % self._llc_nsets]
        if li in cset:
            cset.move_to_end(li)
            if is_write:
                cset[li] = True
            counters["llc_hits"] += 1
            return (_LLC, t, t + llc_latency, None, 0)
        counters["llc_misses"] += 1
        if self.obs is not None:
            self.obs.llc_miss(t)
        if self._spd_regions:
            spd_latency = self._spd_latency(line)
            if spd_latency is not None:
                counters["spd_fills"] += 1
                llc.insert(line, is_write)
                return (_SPD, t, t + llc_latency + spd_latency, None, 0)
        if len(entries) >= mshr.capacity:
            t = self._stall_for_mshr(mshr, t)
        entry = MSHREntry(line, t)
        entries[line] = entry
        counters[mshr._key_allocations] += 1.0
        if mshr.obs is not None:
            mshr.obs.mshr_occupancy(mshr.name, t, len(entries),
                                    mshr.capacity)
        req = self.dram.access(line, is_write=False,
                               arrival=t + llc_latency,
                               decoded=decoded, tenant=tenant)
        entry.request = req
        # llc.insert(line, is_write) inlined (the probe above missed);
        # dirty victims write back to memory (bandwidth only).
        if len(cset) >= self._llc_ways:
            victim_line, vdirty = cset.popitem(last=False)
            counters["evictions"] += 1
            if vdirty:
                counters["dirty_evictions"] += 1
                self.dram.access(victim_line << self._line_shift,
                                 is_write=True,
                                 arrival=max(0, self._now_hint()))
        cset[li] = is_write
        return (_DRAM, t, -1, req, llc_latency)

    def llc_access(self, addr: int, is_write: bool, t: int,
                   decoded: tuple | None = None,
                   tenant: int = -1) -> AccessResult:
        shift = self._line_shift
        self.stats.counters["llc_accesses"] += 1
        level, issue, complete, request, ret_lat = self._access_llc(
            (addr >> shift) << shift, is_write, t, decoded, tenant)
        return AccessResult(level, issue, complete, request, ret_lat)

    # ------------------------------------------------------------- prefetches

    def _prefetch_fill(self, core: int, line: int, t: int,
                       from_level: int = 1) -> None:
        """Scalar ``_prefetch_fill`` with the per-level ``lookup``/``_fill``
        pairs inlined into direct set probes (the lines arrive aligned)."""
        counters = self._counters
        counters["prefetch_fills"] += 1.0
        li = line >> self._line_shift
        if from_level == 1:
            l1 = self.l1[core]
            cset1 = l1._sets[li % l1._num_sets]
            if li in cset1:
                counters["prefetch_redundant"] += 1.0
                return
            # l1.insert(line, False) inlined on the missing-line path.
            if len(cset1) >= l1._ways:
                _, vdirty = cset1.popitem(last=False)
                counters["evictions"] += 1
                if vdirty:
                    counters["dirty_evictions"] += 1
            cset1[li] = False
        l2 = self.l2[core]
        cset2 = l2._sets[li % l2._num_sets]
        if li in cset2:
            if from_level >= 2:
                counters["prefetch_redundant"] += 1.0
            return
        # l2.insert(line, False) inlined on the missing-line path.
        if len(cset2) >= l2._ways:
            _, vdirty = cset2.popitem(last=False)
            counters["evictions"] += 1
            if vdirty:
                counters["dirty_evictions"] += 1
        cset2[li] = False
        cset = self._llc_sets[li % self._llc_nsets]
        if li in cset:
            return
        # llc.insert(line, False) inlined; dirty victims write back.
        if len(cset) >= self._llc_ways:
            victim_line, vdirty = cset.popitem(last=False)
            counters["evictions"] += 1
            if vdirty:
                counters["dirty_evictions"] += 1
                self.dram.access(victim_line << self._line_shift,
                                 is_write=True,
                                 arrival=max(0, self._now_hint()))
        cset[li] = False
        if self._spd_latency(line) is None:
            self.dram.access(line, is_write=False, arrival=t)
            counters["prefetch_dram"] += 1.0
        else:
            counters["prefetch_spd"] += 1.0

    def prefetch_into(self, core: int, line: int, t: int) -> None:
        """Scalar ``prefetch_into`` (the DMP admission path) fused: one LLC
        set probe, direct MSHR-dict admission, inlined LLC fill."""
        shift = self._line_shift
        li = line >> shift
        line = li << shift
        counters = self._counters
        cset = self._llc_sets[li % self._llc_nsets]
        if li in cset:
            return
        mshr = self.llc_mshr
        # The scalar path sweeps resolved entries on every admission; the
        # sweep can only find work after a DRAM completion, so gate it on
        # the controllers' monotone "serviced" counters.
        stamp = 0.0
        for cc in self._ctrl_counters:
            stamp += cc.get("serviced", 0.0)
        if stamp != self._llc_sweep_stamp:
            mshr.release_resolved()
            self._llc_sweep_stamp = stamp
        entries = self._llc_entries
        if line in entries or len(entries) >= mshr.capacity:
            counters["dmp_prefetch_dropped"] += 1.0
            return
        entry = MSHREntry(line, t)
        entries[line] = entry
        counters[mshr._key_allocations] += 1.0
        if mshr.obs is not None:
            mshr.obs.mshr_occupancy(mshr.name, t, len(entries),
                                    mshr.capacity)
        entry.prefetch = True
        entry.request = self.dram.access(line, is_write=False,
                                         arrival=t + self._llc_latency)
        # Tag installed now (pollution); dirty victims write back, as in the
        # scalar ``_fill(..., to_dram=True)`` — ``llc.insert`` inlined on
        # the missing-line path.
        if len(cset) >= self._llc_ways:
            victim_line, vdirty = cset.popitem(last=False)
            counters["evictions"] += 1
            if vdirty:
                counters["dirty_evictions"] += 1
                self.dram.access(victim_line << self._line_shift,
                                 is_write=True,
                                 arrival=max(0, self._now_hint()))
        cset[li] = False
        counters["dmp_prefetch_issued"] += 1.0

    # --------------------------------------------------------------- snooping

    def snoop(self, addr: int) -> bool:
        """Directory snoop as direct set probes, LLC -> L1s -> L2s (same
        short-circuit order as the scalar generator expression)."""
        li = addr >> self._line_shift
        if li in self._llc_sets[li % self._llc_nsets]:
            return True
        for c in self.l1:
            if li in c._sets[li % c._num_sets]:
                return True
        for c in self.l2:
            if li in c._sets[li % c._num_sets]:
                return True
        return False

    # ----------------------------------------------------------- tile streams

    def access_lines(self, lines, is_write: bool, t_start: int,
                     window: int, rate: int,
                     avail: tuple[int, float] | None = None,
                     elems_per_line: float = 1.0,
                     tenant: int = -1) -> tuple[int, int]:
        """Whole-tile stream issue: the scalar ``StreamUnit._issue_lines``
        loop fused with the LLC walk.

        One ``map_arrays`` call decodes the tile; each line then runs the
        fused LLC level above with its pre-decoded coordinates, under the
        same Request-Table back-pressure recurrence as the scalar unit
        (resolve the fill ``window`` lines back before issuing).  Returns
        ``(first_completion, last_completion)``.
        """
        line_list = lines.tolist() if hasattr(lines, "tolist") else list(lines)
        if not line_list:
            return t_start, t_start
        fields = self.dram.mapper.map_arrays(lines)
        chans = fields["channel"].tolist()
        ranks = fields["rank"].tolist()
        bgs = fields["bankgroup"].tolist()
        banks = fields["bank"].tolist()
        rows = fields["row"].tolist()
        counters = self.stats.counters
        dram = self.dram
        access_llc = self._access_llc
        # Per-line [complete, request, ret_lat] triples; index 0 is
        # memoized in place once a pending fill is resolved.
        results: list[list] = []
        append = results.append
        t = t_start
        if avail is not None:
            avail_t0, avail_rate = avail
        for j, line in enumerate(line_list):
            if j >= window:
                # Request-table back-pressure: wait for an older fill.
                res = results[j - window]
                complete = res[0]
                if complete < 0:
                    request = res[1]
                    if request.finish < 0:
                        dram.complete(request)
                    complete = request.finish + res[2]
                    res[0] = complete
                wait = complete - window
                if wait > t:
                    t = wait
            arrival = t_start + j // rate
            if t > arrival:
                arrival = t
            if avail is not None:
                gated = int(avail_t0 + j * elems_per_line / avail_rate)
                if gated > arrival:
                    arrival = gated
            counters["llc_accesses"] += 1
            _, _, complete, request, ret_lat = access_llc(
                line, is_write, arrival,
                (chans[j], ranks[j], bgs[j], banks[j], rows[j]), tenant)
            append([complete, request, ret_lat])
            t += 1
        first = last = -1
        for res in results:
            c = res[0]
            if c < 0:
                request = res[1]
                if request.finish < 0:
                    dram.complete(request)
                c = request.finish + res[2]
                res[0] = c
            if first < 0 or c < first:
                first = c
            if c > last:
                last = c
        return first, last

"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Converts an :class:`~repro.obs.events.EventBus` recording into the Trace
Event Format's JSON object form: ``{"traceEvents": [...]}`` with metadata
(``M``) events naming processes and threads, complete (``X``) events for
spans, instant (``i``) events for point occurrences, and counter (``C``)
events for the sampled timeline.  Timestamps are simulated cycles written
as microseconds (1 cycle == 1 us in the viewer; absolute wall time is
meaningless for a simulation, relative spans are what matter).

Track layout (one Perfetto process group per hardware entity):

* pid 100+c — ``DRAM ch<c>``: one thread per bank showing row-open spans
  (``row <r>`` from ACT to PRE, annotated with the read/write count it
  served), a ``scheduler`` thread with age-cap override instants, and
  per-channel counter tracks (``rbh``, ``bw_util``, ``occupancy``,
  ``open_banks``) from the timeline sampler.
* pid 2 — ``cores``: one thread per core with ``rob-blocked`` spans
  (head-of-line stalls) and ``dram-miss`` instants.
* pid 3 — ``cache``: ``llc-miss`` instants plus MSHR occupancy counters.
* pid 4 — ``DX100 tiles``: one thread per scratchpad tile with lifecycle
  phase spans (fill, drain, response, writeback, stream-in/out, alu).
* pid 5 — ``DX100 units``: one thread per functional unit with
  instruction spans, plus a Row Table fill counter.

Events are emitted sorted by (pid, tid, ts) so every track's timestamps
are monotonic — the property :mod:`repro.obs.validate` (and the CI trace
smoke job) checks.
"""

from __future__ import annotations

import json
from pathlib import Path

PID_CORES = 2
PID_CACHE = 3
PID_TILES = 4
PID_UNITS = 5
PID_DRAM_BASE = 100

#: tid used for the per-channel scheduler instants.
TID_SCHEDULER = 999

_UNIT_TIDS = {"stream": 0, "indirect": 1, "alu": 2, "rng": 3}


def _meta(pid: int, name: str, tid: int | None = None,
          thread_name: str | None = None) -> list[dict]:
    events = [{"ph": "M", "pid": pid, "tid": 0, "ts": 0,
               "name": "process_name", "args": {"name": name}}]
    if tid is not None:
        events.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                       "name": "thread_name",
                       "args": {"name": thread_name or name}})
    return events


def _span(pid: int, tid: int, name: str, start: float, end: float,
          args: dict | None = None) -> dict:
    event = {"ph": "X", "pid": pid, "tid": tid, "name": name,
             "ts": float(start), "dur": max(0.0, float(end) - float(start))}
    if args:
        event["args"] = args
    return event


def _instant(pid: int, tid: int, name: str, ts: float,
             args: dict | None = None) -> dict:
    event = {"ph": "i", "s": "t", "pid": pid, "tid": tid, "name": name,
             "ts": float(ts)}
    if args:
        event["args"] = args
    return event


def _counter(pid: int, name: str, ts: float, value: float) -> dict:
    return {"ph": "C", "pid": pid, "tid": 0, "name": name,
            "ts": float(ts), "args": {"value": round(float(value), 4)}}


def _dram_tracks(bus, meta: list[dict], data: list[dict]) -> None:
    """Row-open spans per bank plus scheduler instants, per channel."""
    channels: dict[int, dict[tuple, int]] = {}
    open_rows: dict[tuple, list] = {}   # flat_bank -> [row, t_act, rd, wr]
    last_cycle: dict[tuple, float] = {}

    def tid_of(channel: int, flat_bank: tuple) -> int:
        banks = channels.setdefault(channel, {})
        tid = banks.get(flat_bank)
        if tid is None:
            tid = banks[flat_bank] = len(banks)
            _, rank, bankgroup, bank = flat_bank
            meta.extend(_meta(PID_DRAM_BASE + channel,
                              f"DRAM ch{channel}", tid,
                              f"r{rank} bg{bankgroup} b{bank}")[1:])
        return tid

    def close(channel: int, flat_bank: tuple, end: float) -> None:
        entry = open_rows.pop(flat_bank, None)
        if entry is None:
            return
        row, t_act, reads, writes = entry
        data.append(_span(PID_DRAM_BASE + channel, tid_of(channel, flat_bank),
                          f"row {row}", t_act, max(t_act, end),
                          {"reads": reads, "writes": writes}))

    seen_channels = set()
    for channel, kind, cycle, flat_bank, row in bus.dram_events:
        if channel not in seen_channels:
            seen_channels.add(channel)
            meta.extend(_meta(PID_DRAM_BASE + channel, f"DRAM ch{channel}"))
            meta.extend(_meta(PID_DRAM_BASE + channel, f"DRAM ch{channel}",
                              TID_SCHEDULER, "scheduler")[1:])
        tid_of(channel, flat_bank)
        last_cycle[flat_bank] = max(last_cycle.get(flat_bank, 0), cycle)
        if kind == "ACT":
            # A dangling open row (shouldn't happen: PRE precedes ACT on a
            # conflict) is closed defensively rather than dropped.
            close(channel, flat_bank, cycle)
            open_rows[flat_bank] = [row, float(cycle), 0, 0]
        elif kind == "PRE":
            close(channel, flat_bank, cycle)
        elif kind in ("RD", "WR"):
            entry = open_rows.get(flat_bank)
            if entry is not None:
                entry[2 if kind == "RD" else 3] += 1
    for flat_bank in list(open_rows):
        close(flat_bank[0], flat_bank, last_cycle.get(flat_bank, 0.0))
    for channel, cycle in bus.starvations:
        data.append(_instant(PID_DRAM_BASE + channel, TID_SCHEDULER,
                             "age-cap override", cycle))


def chrome_trace(bus) -> dict:
    """Build the Chrome trace-event JSON object from a bus recording."""
    meta: list[dict] = []
    data: list[dict] = []

    _dram_tracks(bus, meta, data)

    core_tids = set()
    for core, name, start, end in bus.core_spans:
        core_tids.add(core)
        data.append(_span(PID_CORES, core, name, start, end))
    for core, cycle in bus.core_misses:
        core_tids.add(core)
        data.append(_instant(PID_CORES, core, "dram-miss", cycle))
    if core_tids:
        meta.extend(_meta(PID_CORES, "cores"))
        for core in sorted(core_tids):
            meta.extend(_meta(PID_CORES, "cores", core, f"core {core}")[1:])

    if bus.llc_misses or bus.mshr_marks:
        meta.extend(_meta(PID_CACHE, "cache", 0, "llc"))
        for (cycle,) in bus.llc_misses:
            data.append(_instant(PID_CACHE, 0, "llc-miss", cycle))
        for name, cycle, occupancy, _capacity in bus.mshr_marks:
            data.append(_counter(PID_CACHE, name, cycle, occupancy))

    tile_tids = set()
    for tile, phase, start, end, lines in bus.tile_phases:
        tile_tids.add(tile)
        data.append(_span(PID_TILES, tile, phase, start, end,
                          {"lines": lines} if lines else None))
    if tile_tids:
        meta.extend(_meta(PID_TILES, "DX100 tiles"))
        for tile in sorted(tile_tids):
            meta.extend(_meta(PID_TILES, "DX100 tiles", tile,
                              f"tile {tile}")[1:])

    unit_tids = set()
    for unit, name, start, end in bus.dx_spans:
        tid = _UNIT_TIDS.get(unit, len(_UNIT_TIDS))
        unit_tids.add((tid, unit))
        data.append(_span(PID_UNITS, tid, name, start, end))
    for cycle, entries, lines in bus.rt_fills:
        data.append(_counter(PID_UNITS, "row_table_fill", cycle, entries))
    if unit_tids or bus.rt_fills:
        meta.extend(_meta(PID_UNITS, "DX100 units"))
        for tid, unit in sorted(unit_tids):
            meta.extend(_meta(PID_UNITS, "DX100 units", tid, unit)[1:])

    timeline = bus.timeline
    if timeline is not None:
        for channel, samples in timeline.channels.items():
            pid = PID_DRAM_BASE + channel
            for s in samples:
                ts = s["cycle"]
                data.append(_counter(pid, "rbh", ts, s["rbh"]))
                data.append(_counter(pid, "bw_util", ts, s["bw_util"]))
                data.append(_counter(pid, "occupancy", ts, s["occupancy"]))
                data.append(_counter(pid, "open_banks", ts, s["open_banks"]))

    data.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": meta + data,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs (DX100 reproduction)",
            "time_unit": "1 trace us == 1 simulated cycle",
            "sample_every": bus.sample_every,
        },
    }


def write_chrome_trace(bus, path: str | Path) -> Path:
    """Serialize the bus recording to ``path`` as Chrome trace JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(bus)) + "\n")
    return path

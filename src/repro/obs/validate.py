"""Well-formedness checker for emitted Chrome trace-event JSON.

The CI trace smoke job runs the quick suite with ``--trace`` and then
``python -m repro.obs.validate results/trace-*.json`` to assert the files
load in Perfetto-compatible form:

* top level is an object with a non-empty ``traceEvents`` list;
* every event is an object carrying ``ph``, ``pid``, ``tid``, ``name``;
* every non-metadata event has a numeric, non-negative ``ts``;
* complete (``X``) events carry a non-negative ``dur``;
* counter (``C``) events carry numeric ``args.value``;
* per (pid, tid) track, timestamps are monotonically non-decreasing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED_KEYS = ("ph", "pid", "tid", "name")


def validate_events(events) -> list[str]:
    """Check a ``traceEvents`` list; returns human-readable problems."""
    problems: list[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        return ["traceEvents is empty"]
    last_ts: dict[tuple, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} ({event['name']!r}): bad ts {ts!r}")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({event['name']!r}): bad dur {dur!r}")
        if ph == "C":
            value = (event.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(
                    f"event {i} ({event['name']!r}): counter without "
                    f"numeric args.value")
        track = (event["pid"], event["tid"])
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            problems.append(
                f"event {i} ({event['name']!r}): ts {ts} goes backwards on "
                f"track pid={track[0]} tid={track[1]} (prev {prev})")
        last_ts[track] = ts
    return problems


def validate_trace(payload) -> list[str]:
    """Check one parsed trace JSON object; returns problems (empty = ok)."""
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    if "traceEvents" not in payload:
        return ["missing traceEvents key"]
    return validate_events(payload["traceEvents"])


def validate_file(path: str | Path) -> list[str]:
    """Load and check one trace file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"]
    return validate_trace(payload)


def main(argv: list[str] | None = None) -> int:
    """CLI: validate each given trace file; exit 1 on any problem."""
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    failed = 0
    for arg in argv:
        problems = validate_file(arg)
        if problems:
            failed += 1
            print(f"{arg}: INVALID ({len(problems)} problem(s))")
            for p in problems[:20]:
                print(f"  {p}")
        else:
            events = json.loads(Path(arg).read_text())["traceEvents"]
            print(f"{arg}: ok ({len(events)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Periodic timeline samplers over the simulated system.

The simulation is event-driven — there is no global clock tick to hang a
sampler on — so the :class:`Timeline` piggybacks on the event streams:
every DRAM command carries its channel's current cycle, and whenever a
channel's cycle crosses an ``every``-cycle boundary the sampler snapshots
that channel's live state (cumulative counters deltas for windowed rates,
instantaneous buffer/bank state) into one compact sample row.  MSHR
occupancy and Row Table fill are sampled the same way from their own
events.

The result is Figure-10-as-a-time-series: row-buffer hit rate, bandwidth
utilization, request-buffer occupancy, and open banks per channel per
window, alignable against DX100 tile drain windows — the view that shows
RBH *spiking* while a tile drains and collapsing between drains, which
end-of-run aggregates average away.

:func:`render_timeline` turns the series into a pure-ASCII report for the
``python -m repro timeline`` subcommand; :meth:`Timeline.summary`
produces the compact JSON digest carried in ``RunResult.extra``.
"""

from __future__ import annotations

#: ASCII intensity ramp for the sparkline rows (space = no data).
GLYPHS = " .:-=+*#%@"


class Timeline:
    """Windowed time series of system state, sampled every N cycles."""

    def __init__(self, every: int) -> None:
        if every <= 0:
            raise ValueError("sample period must be positive")
        self.every = int(every)
        #: channel -> list of sample dicts, in time order.
        self.channels: dict[int, list[dict]] = {}
        #: MSHR file name -> {bucket: max occupancy seen in that window}.
        self.mshr: dict[str, dict[int, int]] = {}
        #: Row Table fill at each drain: (cycle, BCAM entries, lines).
        self.rt_fills: list[tuple[int, int, int]] = []
        #: DX100 tile drain windows: (tile, start, end, lines).
        self.drains: list[tuple[int, int, int, int]] = []
        #: Far-memory link: {bucket: max return-ring occupancy seen}.
        self.link: dict[int, int] = {}
        #: Far-memory link: {bucket: total return-queue wait cycles}.
        self.link_wait: dict[int, int] = {}
        self._controllers: dict[int, object] = {}
        self._buffer_cap = 32
        self._peak_channel_gbps = 0.0
        self._cycle_ns = 1.0
        self._prev: dict[int, dict] = {}
        self._last_bucket: dict[int, int] = {}

    # ------------------------------------------------------------ attachment

    def watch(self, system) -> None:
        """Bind the sampler to a built system's live DRAM controllers."""
        from repro.common.config import CYCLE_NS
        config = system.dram.config
        self._cycle_ns = CYCLE_NS
        self._peak_channel_gbps = config.peak_bw_gbps / max(1, config.channels)
        self._buffer_cap = config.request_buffer
        for ctrl in system.dram.controllers:
            self._controllers[ctrl.channel] = ctrl

    # -------------------------------------------------------------- feeding

    def _snap(self, ctrl, cycle: int) -> dict:
        counters = ctrl.stats.counters
        return {
            "cycle": cycle,
            "row_hits": counters["row_hits"],
            "serviced": counters["serviced"],
            "bytes": counters["bytes"],
        }

    def on_dram(self, channel: int, kind: str, cycle: int, flat_bank: tuple,
                row: int) -> None:
        """Advance the channel's sampling window with one command event."""
        ctrl = self._controllers.get(channel)
        if ctrl is None:
            return
        bucket = cycle // self.every
        last = self._last_bucket.get(channel)
        if last is None:
            self._last_bucket[channel] = bucket
            self._prev[channel] = self._snap(ctrl, cycle)
            self.channels[channel] = []
            return
        if bucket <= last:
            return
        prev = self._prev[channel]
        cur = self._snap(ctrl, cycle)
        d_serviced = cur["serviced"] - prev["serviced"]
        d_hits = cur["row_hits"] - prev["row_hits"]
        d_bytes = cur["bytes"] - prev["bytes"]
        dt = max(1, cur["cycle"] - prev["cycle"])
        seconds = dt * self._cycle_ns * 1e-9
        gbps = d_bytes / seconds / 1e9
        util = gbps / self._peak_channel_gbps if self._peak_channel_gbps else 0.0
        open_banks = sum(1 for b in ctrl.banks.values()
                         if b.open_row is not None)
        self.channels[channel].append({
            "bucket": bucket,
            "cycle": cycle,
            "rbh": (d_hits / d_serviced) if d_serviced else 0.0,
            "bw_util": util,
            "occupancy": len(ctrl.buffer),
            "open_banks": open_banks,
            "serviced": d_serviced,
        })
        self._last_bucket[channel] = bucket
        self._prev[channel] = cur

    def on_mshr(self, name: str, cycle: int, occupancy: int,
                capacity: int) -> None:
        """Track per-window MSHR occupancy high-water marks."""
        bucket = cycle // self.every
        series = self.mshr.setdefault(name, {})
        if occupancy > series.get(bucket, -1):
            series[bucket] = occupancy

    def on_link(self, cycle: int, inflight: int, wait: int) -> None:
        """Track far-memory link occupancy high-water marks and queueing
        wait per window."""
        bucket = cycle // self.every
        if inflight > self.link.get(bucket, -1):
            self.link[bucket] = inflight
        self.link_wait[bucket] = self.link_wait.get(bucket, 0) + int(wait)

    def on_rt_fill(self, cycle: int, entries: int, lines: int) -> None:
        """Record Row Table occupancy at a drain point."""
        self.rt_fills.append((int(cycle), int(entries), int(lines)))

    def on_drain(self, tile: int, start: int, end: int, lines: int) -> None:
        """Record one DX100 tile drain window."""
        self.drains.append((int(tile), int(start), int(end), int(lines)))

    # -------------------------------------------------------------- summary

    def sample_count(self) -> int:
        """Total channel samples recorded."""
        return sum(len(s) for s in self.channels.values())

    def summary(self) -> dict:
        """Compact JSON-serializable digest (``RunResult.extra`` payload)."""
        out: dict = {
            "timeline_every": self.every,
            "timeline_samples": self.sample_count(),
            "timeline_drains": len(self.drains),
        }
        weighted = 0.0
        serviced = 0
        rbh_max = 0.0
        occ_max = 0
        bw_max = 0.0
        for samples in self.channels.values():
            for s in samples:
                weighted += s["rbh"] * s["serviced"]
                serviced += s["serviced"]
                rbh_max = max(rbh_max, s["rbh"])
                occ_max = max(occ_max, s["occupancy"])
                bw_max = max(bw_max, s["bw_util"])
        if serviced:
            out["timeline_rbh_mean"] = round(weighted / serviced, 6)
            out["timeline_rbh_max"] = round(rbh_max, 6)
            out["timeline_occupancy_max"] = occ_max
            out["timeline_bw_util_max"] = round(bw_max, 6)
        if self.rt_fills:
            out["timeline_row_table_fill_max"] = max(
                e for _, e, _ in self.rt_fills)
        llc = self.mshr.get("llc_mshr")
        if llc:
            out["timeline_llc_mshr_max"] = max(llc.values())
        if self.link:
            out["timeline_link_inflight_max"] = max(self.link.values())
            out["timeline_link_wait_cycles"] = sum(self.link_wait.values())
        return out


# ------------------------------------------------------------- ASCII report

def _sparkline(values: list[float | None], lo: float, hi: float) -> str:
    """Map a row of values onto the ASCII intensity ramp (None = gap)."""
    span = hi - lo
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(GLYPHS[1] if v <= lo else GLYPHS[-1])
            continue
        frac = (v - lo) / span
        idx = 1 + int(frac * (len(GLYPHS) - 2) + 0.5)
        chars.append(GLYPHS[max(1, min(len(GLYPHS) - 1, idx))])
    return "".join(chars)


def _bucket_rows(samples: list[dict], key: str,
                 lo_bucket: int, n: int) -> list[float | None]:
    row: list[float | None] = [None] * n
    for s in samples:
        i = s["bucket"] - lo_bucket
        if 0 <= i < n:
            row[i] = float(s[key])
    return row


def _downsample(row: list[float | None], width: int) -> list[float | None]:
    if len(row) <= width:
        return row
    out: list[float | None] = []
    per = len(row) / width
    for i in range(width):
        chunk = [v for v in row[int(i * per):int((i + 1) * per) or 1]
                 if v is not None]
        out.append(sum(chunk) / len(chunk) if chunk else None)
    return out


def render_timeline(timeline: Timeline, width: int = 72) -> str:
    """Pure-ASCII timeline report: one block per channel with sparkline
    rows for windowed RBH, bandwidth utilization, request-buffer
    occupancy, and open banks, plus a tile-drain marker row (``#`` where
    any DX100 tile was draining) so drain windows can be read against the
    RBH spikes they cause."""
    if timeline.sample_count() == 0:
        return "(no timeline samples; is --sample-every set and > 0?)"
    every = timeline.every
    buckets = [s["bucket"] for samples in timeline.channels.values()
               for s in samples]
    lo_b, hi_b = min(buckets), max(buckets)
    n = hi_b - lo_b + 1
    drain_row: list[float | None] = [None] * n
    for _tile, start, end, _lines in timeline.drains:
        for b in range(max(lo_b, start // every),
                       min(hi_b, max(start, end - 1) // every) + 1):
            drain_row[b - lo_b] = 1.0
    rows = [
        ("rbh", 0.0, 1.0),
        ("bw_util", 0.0, 1.0),
        ("occupancy", 0.0, float(timeline._buffer_cap)),
        ("open_banks", 0.0, None),
    ]
    lines = [
        f"timeline: {n} windows x {every} cycles "
        f"(cycles {lo_b * every}..{(hi_b + 1) * every})",
        f"scale: '{GLYPHS[1]}' = low .. '{GLYPHS[-1]}' = high, "
        "' ' = no traffic in window",
    ]
    for channel in sorted(timeline.channels):
        samples = timeline.channels[channel]
        lines.append(f"channel {channel}:")
        for key, lo, hi in rows:
            row = _bucket_rows(samples, key, lo_b, n)
            if hi is None:
                present = [v for v in row if v is not None]
                hi = max(present) if present else 1.0
            row = _downsample(row, width)
            lines.append(f"  {key:>10s} |{_sparkline(row, lo, hi)}|")
    if timeline.drains:
        marker = _downsample(drain_row, width)
        lines.append(f"  {'tile drain':>10s} "
                     f"|{''.join('#' if v else ' ' for v in marker)}|")
        lines.append(f"  ({len(timeline.drains)} drain window(s); RBH should "
                     "spike inside '#' windows)")
    if timeline.rt_fills:
        peak = max(e for _, e, _ in timeline.rt_fills)
        lines.append(f"row table fill at drain: peak {peak} BCAM entries "
                     f"over {len(timeline.rt_fills)} drain(s)")
    llc = timeline.mshr.get("llc_mshr")
    if llc:
        lines.append(f"llc mshr occupancy: peak {max(llc.values())}")
    if timeline.link:
        link_row: list[float | None] = [None] * n
        for b, occ in timeline.link.items():
            if lo_b <= b <= hi_b:
                link_row[b - lo_b] = float(occ)
        present = [v for v in link_row if v is not None]
        hi = max(present) if present else 1.0
        lines.append(f"  {'link queue':>10s} "
                     f"|{_sparkline(_downsample(link_row, width), 0.0, hi)}|")
        lines.append(f"far-memory link: peak {int(hi)} return transfer(s) "
                     f"in flight, "
                     f"{sum(timeline.link_wait.values())} queue-wait cycles")
    return "\n".join(lines)

"""Time-resolved observability for the simulated system (``repro.obs``).

PR 4's profiling harness answers "where does the *simulator* spend wall
clock"; this package answers "what is the *simulated system* doing over
simulated time" — the view the paper uses to explain DX100 mechanistically
(row-buffer hits collapsing when a tile drains, banks idling under
inter-core interference, request buffers filling and draining).

Three pieces, all off by default and near-zero-overhead when off:

* :class:`~repro.obs.events.EventBus` — a lightweight publish point every
  component carries as an ``obs`` attribute (``None`` unless attached).
  The DRAM controllers publish their command streams through the existing
  ``command_observers`` hook; the FR-FCFS scheduler publishes age-cap
  (starvation) overrides; the cache hierarchy publishes LLC misses and
  MSHR occupancy marks; cores publish head-of-line ROB-blocked windows;
  the DX100 accelerator publishes instruction spans and tile lifecycle
  phases (fill -> drain -> response -> writeback).
* :class:`~repro.obs.timeline.Timeline` — a periodic sampler fed by the
  bus that snapshots per-channel row-buffer hit rate, bandwidth
  utilization, request-buffer occupancy, and open banks every N cycles,
  plus MSHR occupancy and Row/Word-table fill, into a compact time
  series with an ASCII renderer.
* :mod:`~repro.obs.trace` — Chrome trace-event JSON export (loadable in
  Perfetto): one process per DRAM channel with a track per bank showing
  row-open spans, per-core tracks, DX100 tile-phase spans, and counter
  tracks from the sampled timeline.  :mod:`~repro.obs.validate` checks an
  emitted file is well-formed (CI's trace smoke job).

Wired as ``python -m repro run --trace out.json --sample-every N`` and
``python -m repro timeline``; sweeps carry summary timeline stats in
``RunResult.extra`` via ``SweepTask(sample_every=N)``.
"""

from repro.obs.events import EventBus
from repro.obs.timeline import Timeline

__all__ = ["EventBus", "Timeline"]

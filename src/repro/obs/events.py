"""The observability event bus.

Components never import this module on their hot paths: each carries an
``obs`` attribute that defaults to ``None``, and every publish site is
guarded by ``if self.obs is not None`` — one attribute load and one branch
when observability is off, which is what keeps the golden quick-suite
metrics bitwise identical and the wall clock within noise of an
un-instrumented run.

With a bus attached (:meth:`EventBus.attach`), events are normalized into
flat tuples (cheap to append, trivially serializable) and optionally fed
to a :class:`~repro.obs.timeline.Timeline` sampler.  The bus records
*simulated* time exclusively: every timestamp is a core/DRAM cycle, never
wall clock.

Event streams recorded when ``trace=True``:

``dram_events``
    ``(channel, kind, cycle, flat_bank, row)`` — every ACT/PRE/RD/WR, via
    the memory controller's ``command_observers`` hook (the same hook the
    JEDEC auditor uses, now generalized to carry any observer).
``core_spans`` / ``core_misses``
    ``(core, name, start, end)`` head-of-line ROB-blocked windows and
    ``(core, cycle)`` DRAM-bound demand misses.
``llc_misses`` / ``mshr_marks``
    ``(cycle,)`` LLC demand misses and ``(name, cycle, occupancy,
    capacity)`` MSHR allocation high-water marks.
``starvations``
    ``(channel, cycle)`` FR-FCFS age-cap overrides (a starving request
    forced ahead of row hits).
``dx_spans`` / ``tile_phases`` / ``rt_fills``
    ``(unit, name, start, end)`` DX100 instruction spans; ``(tile, phase,
    start, end, lines)`` tile lifecycle phases (fill, drain, response,
    writeback, stream-in, stream-out, alu); ``(cycle, entries, lines)``
    Row Table occupancy at each drain.
``link_marks``
    ``(cycle, inflight, wait)`` far-memory link return-path deliveries:
    the delivery cycle, the read-return ring occupancy at grant time, and
    the cycles the response waited for the link (queueing, not
    propagation).
``campaign_marks``
    ``(pending, active, done, failed, cache_hits, eta_s)`` campaign-fabric
    progress snapshots.  The one documented exception to the
    simulated-time rule: campaign progress is a statement about the
    *executor*, not the model, so ``eta_s`` is wall-clock seconds.  The
    stream is excluded from :meth:`event_count` (it would perturb the
    trace-event totals runs record) and fans out to ``campaign_listeners``
    for live CLI rendering.
"""

from __future__ import annotations


class _SchedulerProbe:
    """Adapter giving a per-channel scheduler a channel-stamped publish
    point (the scheduler itself does not know which channel it serves)."""

    __slots__ = ("bus", "channel")

    def __init__(self, bus: "EventBus", channel: int) -> None:
        self.bus = bus
        self.channel = channel

    def starvation(self, cycle: int) -> None:
        """Publish one age-cap override at ``cycle``."""
        self.bus.starvation(self.channel, cycle)


class EventBus:
    """Collects time-stamped events from every simulated component.

    ``trace=True`` records full event streams for Chrome-trace export;
    ``sample_every=N`` (N > 0) additionally builds and drives a
    :class:`~repro.obs.timeline.Timeline`.  Either works without the
    other; a bus with both off is legal but pointless.

    Attach with :meth:`attach` *after* the system is fully built — it
    hooks the DRAM controllers' ``command_observers``, wraps each
    channel's scheduler with a :class:`_SchedulerProbe`, and installs
    itself as the ``obs`` attribute of the hierarchy, MSHR files, cores,
    and the DX100 accelerator/indirect unit.
    """

    def __init__(self, trace: bool = True, sample_every: int = 0) -> None:
        self.trace = bool(trace)
        self.sample_every = int(sample_every)
        self.timeline = None
        if self.sample_every > 0:
            from repro.obs.timeline import Timeline
            self.timeline = Timeline(self.sample_every)
        self.dram_events: list[tuple] = []
        self.core_spans: list[tuple] = []
        self.core_misses: list[tuple] = []
        self.llc_misses: list[tuple] = []
        self.mshr_marks: list[tuple] = []
        self.starvations: list[tuple] = []
        self.dx_spans: list[tuple] = []
        self.tile_phases: list[tuple] = []
        self.rt_fills: list[tuple] = []
        self.link_marks: list[tuple] = []
        self.campaign_marks: list[tuple] = []
        #: Callables invoked with each progress mark tuple as it lands —
        #: the campaign CLI hangs its live status line here.
        self.campaign_listeners: list = []

    # ------------------------------------------------------------ attachment

    def attach(self, system) -> None:
        """Wire this bus into every component of a built ``SimSystem``."""
        for ctrl in system.dram.controllers:
            ctrl.command_observers.append(self.dram_command)
            scheduler = ctrl.scheduler
            if hasattr(scheduler, "obs"):
                scheduler.obs = _SchedulerProbe(self, ctrl.channel)
        if self.timeline is not None:
            self.timeline.watch(system)
        if system.dram.remote is not None:
            system.dram.remote.obs = self
        hierarchy = system.hierarchy
        hierarchy.obs = self
        for mshr in (*hierarchy.l1_mshr, *hierarchy.l2_mshr,
                     hierarchy.llc_mshr):
            mshr.obs = self
        for core in system.multicore.cores:
            core.obs = self
        if system.dx100 is not None:
            system.dx100.obs = self
            system.dx100.indirect.obs = self

    # -------------------------------------------------------------- publish

    def dram_command(self, kind: str, cycle: int, flat_bank: tuple,
                     row: int) -> None:
        """One DRAM command (the ``command_observers`` callback shape)."""
        channel = flat_bank[0]
        if self.trace:
            self.dram_events.append((channel, kind, cycle, flat_bank, row))
        if self.timeline is not None:
            self.timeline.on_dram(channel, kind, cycle, flat_bank, row)

    def starvation(self, channel: int, cycle: int) -> None:
        """FR-FCFS age-cap override on ``channel`` at ``cycle``."""
        if self.trace:
            self.starvations.append((channel, cycle))

    def core_span(self, core: int, name: str, start: float,
                  end: float) -> None:
        """A per-core blocked window (e.g. ``rob-blocked``)."""
        if self.trace:
            self.core_spans.append((core, name, float(start), float(end)))

    def core_miss(self, core: int, cycle: int) -> None:
        """A demand access from ``core`` that went all the way to DRAM."""
        if self.trace:
            self.core_misses.append((core, cycle))

    def llc_miss(self, cycle: int) -> None:
        """One shared-LLC demand miss."""
        if self.trace:
            self.llc_misses.append((cycle,))

    def mshr_occupancy(self, name: str, cycle: int, occupancy: int,
                       capacity: int) -> None:
        """MSHR occupancy after an allocation (``name`` is the file)."""
        if self.trace:
            self.mshr_marks.append((name, cycle, occupancy, capacity))
        if self.timeline is not None:
            self.timeline.on_mshr(name, cycle, occupancy, capacity)

    def dx_span(self, unit: str, name: str, start: int, end: int) -> None:
        """One DX100 instruction occupying ``unit`` for [start, end)."""
        if self.trace:
            self.dx_spans.append((unit, name, start, end))

    def tile_phase(self, tile: int, phase: str, start: int, end: int,
                   lines: int = 0) -> None:
        """One tile lifecycle phase span (``lines`` = requests/elements)."""
        if self.trace:
            self.tile_phases.append((tile, phase, start, end, lines))
        if self.timeline is not None and phase == "drain":
            self.timeline.on_drain(tile, start, end, lines)

    def rt_fill(self, cycle: int, entries: int, lines: int) -> None:
        """Row Table occupancy (BCAM ``entries``) at a drain issuing
        ``lines`` unique-line requests."""
        if self.trace:
            self.rt_fills.append((cycle, entries, lines))
        if self.timeline is not None:
            self.timeline.on_rt_fill(cycle, entries, lines)

    def link_transfer(self, cycle: int, inflight: int, wait: int) -> None:
        """One far-memory link return delivery at ``cycle`` (``inflight``
        = read-return ring occupancy at grant, ``wait`` = cycles queued
        for the link beyond the far-side DRAM finish)."""
        if self.trace:
            self.link_marks.append((cycle, inflight, wait))
        if self.timeline is not None:
            self.timeline.on_link(cycle, inflight, wait)

    def campaign_progress(self, pending: int, active: int, done: int,
                          failed: int, cache_hits: int = 0,
                          eta_s: float | None = None) -> None:
        """One campaign-fabric progress snapshot (wall-clock ``eta_s``)."""
        mark = (pending, active, done, failed, cache_hits, eta_s)
        self.campaign_marks.append(mark)
        for listener in self.campaign_listeners:
            listener(mark)

    # -------------------------------------------------------------- summary

    def event_count(self) -> int:
        """Total recorded trace events across all streams."""
        return (len(self.dram_events) + len(self.core_spans)
                + len(self.core_misses) + len(self.llc_misses)
                + len(self.mshr_marks) + len(self.starvations)
                + len(self.dx_spans) + len(self.tile_phases)
                + len(self.rt_fills) + len(self.link_marks))

    def summary(self) -> dict:
        """JSON-serializable digest for ``RunResult.extra``.

        Keys are ``obs_``/``timeline_``-prefixed so they can never collide
        with the deterministic metric counters the golden harness pins.
        """
        out: dict = {}
        if self.trace:
            out["obs_trace_events"] = self.event_count()
            out["obs_starvations"] = len(self.starvations)
            if self.link_marks:
                out["obs_link_transfers"] = len(self.link_marks)
        if self.timeline is not None:
            out.update(self.timeline.summary())
        return out

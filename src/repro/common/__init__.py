"""Shared types, configuration presets, and statistics."""

from repro.common.config import (
    CACHE_LINE,
    CacheConfig,
    CoreConfig,
    DDR4Timing,
    DRAMConfig,
    DX100Config,
    RemoteLinkConfig,
    SystemConfig,
    ns_to_cycles,
)
from repro.common.stats import Stats, geomean
from repro.common.types import (
    AccessType,
    AluOp,
    DRAMCoord,
    DRAMRequest,
    DType,
    HitLevel,
    Interval,
    MemOp,
)

__all__ = [
    "CACHE_LINE",
    "AccessType",
    "AluOp",
    "CacheConfig",
    "CoreConfig",
    "DDR4Timing",
    "DRAMConfig",
    "DRAMCoord",
    "DRAMRequest",
    "DType",
    "DX100Config",
    "HitLevel",
    "Interval",
    "MemOp",
    "RemoteLinkConfig",
    "Stats",
    "SystemConfig",
    "geomean",
    "ns_to_cycles",
]

"""System configuration tree (the paper's Table 3).

All timing is expressed in CPU cycles at 3.2 GHz (one cycle = 0.3125 ns).
DDR4-3200's tCK of 625 ps is therefore exactly 2 CPU cycles, which keeps the
DRAM timing integral without a separate clock domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

CPU_GHZ = 3.2
CYCLE_NS = 1.0 / CPU_GHZ
CACHE_LINE = 64


def ns_to_cycles(ns: float) -> int:
    """Convert nanoseconds to (rounded) CPU cycles at 3.2 GHz."""
    return round(ns * CPU_GHZ)


@dataclass(frozen=True)
class CoreConfig:
    """An out-of-order core modelled after Skylake (Table 3)."""

    width: int = 8
    rob_size: int = 224
    lq_size: int = 72
    sq_size: int = 56
    iq_size: int = 50
    freq_ghz: float = CPU_GHZ
    # Atomic RMWs serialize per core: the next atomic issues only after the
    # previous one completes plus this fence/store-buffer-drain cost.
    # Calibrated so cached atomics run ~4-5x slower than plain RMWs (the
    # Free Atomics measurement the paper cites), while atomics that miss to
    # DRAM serialize on the full memory latency.
    atomic_fence_cycles: int = 4


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    mshrs: int
    line_bytes: int = CACHE_LINE
    prefetcher: bool = False
    prefetch_degree: int = 2

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )


@dataclass(frozen=True)
class DDR4Timing:
    """JEDEC DDR4-3200 timing constraints, in CPU cycles (Table 3 values).

    tCK = 625 ps = 2 CPU cycles.  tCCD_S/L = 2.5/5.0 ns, tRP = tRCD =
    12.5 ns, tRTP = 7.5 ns, tRAS = 32.5 ns, per the paper; the remaining
    parameters use standard DDR4-3200AA values.
    """

    tCK: int = 2
    tRP: int = ns_to_cycles(12.5)     # 40
    tRCD: int = ns_to_cycles(12.5)    # 40
    tCCD_S: int = ns_to_cycles(2.5)   # 8
    tCCD_L: int = ns_to_cycles(5.0)   # 16
    tRTP: int = ns_to_cycles(7.5)     # 24
    tRAS: int = ns_to_cycles(32.5)    # 104
    tCL: int = ns_to_cycles(13.75)    # 44  (CL22)
    tCWL: int = ns_to_cycles(10.0)    # 32  (CWL16)
    tWR: int = ns_to_cycles(15.0)     # 48
    tRRD_S: int = ns_to_cycles(2.5)   # 8
    tRRD_L: int = ns_to_cycles(5.0)   # 16
    tFAW: int = ns_to_cycles(25.0)    # 80
    tBL: int = 8                      # BL8 burst = 4 tCK = 8 CPU cycles
    # Refresh: one all-bank REF per rank every tREFI, blocking the rank for
    # tRFC.  JEDEC DDR4-3200 (8 Gb devices): tREFI = 7.8 us, tRFC = 350 ns.
    tREFI: int = ns_to_cycles(7800.0)  # 24960
    tRFC: int = ns_to_cycles(350.0)    # 1120

    @property
    def tRC(self) -> int:
        return self.tRAS + self.tRP


@dataclass(frozen=True)
class RemoteLinkConfig:
    """A far-memory (CXL/RDMA-style) link in front of part of the pool.

    Disabled by default: every address is local DDR and nothing in either
    DRAM engine changes.  When ``enabled``, addresses selected by
    ``placement`` live in a far pool reached through a serial link that
    adds one-way ``latency`` each direction, serializes 64B payloads at
    ``gbps``, and allows at most ``queue_depth`` line transfers in flight
    on the return path (a read-return buffer).  The far pool itself reuses
    the local DRAM timing model — the link is purely additive, which keeps
    the scalar oracle and the batched engine bitwise identical (they share
    one link state object and service requests in the same order).

    ``placement`` selects which lines are far:

    * ``"all"`` — the whole pool is far (the headline ``cxl`` preset);
    * ``"range"`` — far iff ``addr >= far_base`` (per-array placement:
      workloads allocate arrays contiguously from the heap base);
    * ``"hash"`` — a deterministic per-line hash sends ``far_fraction``
      of lines far (interleaved local/far, no layout knowledge needed).
    """

    enabled: bool = False
    latency: int = 400        # one-way propagation, CPU cycles (~125 ns)
    gbps: float = 32.0        # per-direction payload bandwidth (GB/s)
    queue_depth: int = 64     # in-flight line transfers on the return path
    congestion: bool = False  # occupancy-proportional extra queueing delay
    placement: str = "all"    # all | range | hash
    far_base: int = 0         # placement="range": far iff addr >= far_base
    far_fraction: float = 1.0  # placement="hash": fraction of lines far


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM organization (Table 3: 2 channels of DDR4-3200, 51.2 GB/s)."""

    channels: int = 2
    ranks: int = 1
    bankgroups: int = 4
    banks_per_group: int = 4
    rows: int = 1 << 16
    columns: int = 128            # cache lines per row (8 KiB row)
    line_bytes: int = CACHE_LINE
    request_buffer: int = 32      # per channel (Table 3)
    scheduler: str = "frfcfs"     # or "fcfs"
    page_policy: str = "open"     # or "closed" (auto-precharge)
    audit: bool = False           # attach a JEDEC CommandAuditor per channel
    refresh: bool = True          # per-rank all-bank REF every tREFI
    #: Inner simulation engine: ``"batched"`` (structure-of-arrays request
    #: buffer, dense bank-state arrays, whole-batch decode — the production
    #: engine) or ``"scalar"`` (the per-request object-dispatch oracle the
    #: differential tests compare against).  Both produce bitwise-identical
    #: command streams and metrics.
    engine: str = "batched"
    timing: DDR4Timing = field(default_factory=DDR4Timing)
    #: Far-memory tier: when ``remote.enabled``, addresses selected by its
    #: placement rule pay link latency/serialization on top of the (shared)
    #: DRAM timing model.  Off by default — a disabled link is bitwise
    #: invisible to both engines.
    remote: RemoteLinkConfig = field(default_factory=RemoteLinkConfig)

    @property
    def banks_total(self) -> int:
        return self.channels * self.ranks * self.bankgroups * self.banks_per_group

    @property
    def row_bytes(self) -> int:
        return self.columns * self.line_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.banks_total * self.rows * self.row_bytes

    @property
    def peak_bw_gbps(self) -> float:
        """Peak bandwidth in GB/s: one 64B burst per tBL per channel."""
        per_channel = self.line_bytes / (self.timing.tBL * CYCLE_NS)
        return per_channel * self.channels


def ddr5_6400() -> "DRAMConfig":
    """An approximate DDR5-6400 configuration (sensitivity studies).

    Modelled as four independent 32-bit subchannels (two DIMM channels),
    eight bank groups, BL16 bursts delivering a 64B line in 2.5 ns per
    subchannel — 102.4 GB/s peak.  Timings use typical DDR5-6400 values
    converted to 3.2 GHz CPU cycles (tCK = 1 cycle exactly).
    """
    timing = DDR4Timing(
        tCK=1,
        tRP=ns_to_cycles(16.0),
        tRCD=ns_to_cycles(16.0),
        tCCD_S=8,                  # 8 tCK
        tCCD_L=ns_to_cycles(5.0),
        tRTP=ns_to_cycles(7.5),
        tRAS=ns_to_cycles(32.0),
        tCL=ns_to_cycles(16.0),
        tCWL=ns_to_cycles(14.0),
        tWR=ns_to_cycles(30.0),
        tRRD_S=8,
        tRRD_L=ns_to_cycles(5.0),
        tFAW=ns_to_cycles(13.333),
        tBL=8,                     # BL16 on a 32-bit subchannel
        # DDR5 halves the refresh interval and shortens the recovery:
        # tREFI1 = 3.9 us, tRFC1 = 295 ns (16 Gb devices).
        tREFI=ns_to_cycles(3900.0),
        tRFC=ns_to_cycles(295.0),
    )
    return DRAMConfig(channels=4, bankgroups=8, banks_per_group=4,
                      timing=timing)


def cxl_remote(latency: int = 400, gbps: float = 32.0,
               queue_depth: int = 64) -> "DRAMConfig":
    """A DDR4 pool entirely behind a CXL-style expander link.

    The defaults model a CXL 2.0 x8 port: ~125 ns one-way propagation
    (400 CPU cycles), 32 GB/s per direction, and a 64-entry read-return
    buffer.  The device-side media keeps the local DDR4-3200 timing; the
    link costs are purely additive (see :class:`RemoteLinkConfig`).
    """
    return DRAMConfig(remote=RemoteLinkConfig(
        enabled=True, latency=latency, gbps=gbps, queue_depth=queue_depth))


#: The single registry of DRAM backend presets.  Everything that accepts a
#: ``dram=`` name — the spec DSL (:mod:`repro.sim.specs`), the sweep/run
#: CLI, the serve fabric — resolves through here, so adding a backend is
#: one entry and every error message enumerates the same set.
DRAM_PRESETS = {
    "ddr4": DRAMConfig,
    "ddr5": ddr5_6400,
    "cxl": cxl_remote,
}


def dram_preset(name: str) -> "DRAMConfig":
    """Build the named DRAM backend preset, erroring with the valid set."""
    try:
        builder = DRAM_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown DRAM preset {name!r}; valid presets: "
            f"{', '.join(sorted(DRAM_PRESETS))}") from None
    return builder()


@dataclass(frozen=True)
class DX100Config:
    """DX100 accelerator parameters (Table 3)."""

    tile_elems: int = 16 * 1024
    num_tiles: int = 32
    num_registers: int = 32
    row_table_rows: int = 64          # BCAM entries per slice
    row_table_cols: int = 8           # SRAM column entries per row
    request_table: int = 128          # stream-unit outstanding lines
    alu_lanes: int = 16
    tlb_entries: int = 256
    fill_rate: int = 16               # indices decoded per cycle (the BCAM
                                      # slices accept inserts in parallel)
    spd_read_latency: int = 20        # core load from scratchpad over NoC
    noc_latency: int = 24             # core -> DX100 instruction delivery
    drain_rate: int = 2               # requests handed to Interface per cycle
    stream_issue_rate: int = 2        # stream-unit line requests per cycle
    tlb_miss_penalty: int = 100

    @property
    def spd_bytes(self) -> int:
        return self.tile_elems * self.num_tiles * 4

    def with_tile(self, tile_elems: int) -> "DX100Config":
        return replace(self, tile_elems=tile_elems)


@dataclass(frozen=True)
class SystemConfig:
    """The full simulated system.

    ``baseline()`` / ``dx100()`` / ``dmp()`` build the three configurations
    evaluated in the paper; the LLC of the baseline and DMP systems is 2 MB
    larger to compensate for DX100's scratchpad area (Section 5).
    """

    name: str = "baseline"
    cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L1D", 32 * 1024, 8, latency=4, mshrs=16, prefetcher=True
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L2", 256 * 1024, 4, latency=12, mshrs=32, prefetcher=True
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "LLC", 10 * 1024 * 1024, 20, latency=42, mshrs=256
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    dx100: DX100Config | None = None
    dx100_instances: int = 1
    dmp: bool = False
    #: Simulation front-end: ``"batched"`` (fused cache-walk/tile kernels and
    #: an event-skip multicore loop — the production front-end) or
    #: ``"scalar"`` (the per-access oracle the differential tests compare
    #: against).  Mirrors ``DRAMConfig.engine``; both front-ends produce
    #: bitwise-identical metrics and DRAM command streams.
    frontend: str = "batched"

    @staticmethod
    def baseline(cores: int = 4) -> "SystemConfig":
        cfg = SystemConfig(name="baseline", cores=cores)
        if cores > 4:
            cfg = replace(cfg, dram=replace(cfg.dram, channels=4),
                          llc=replace(cfg.llc, size_bytes=20 * 1024 * 1024))
        return cfg

    @staticmethod
    def dx100_system(cores: int = 4, tile_elems: int = 16 * 1024,
                     instances: int = 1) -> "SystemConfig":
        base = SystemConfig.baseline(cores)
        small_llc = replace(
            base.llc,
            size_bytes=base.llc.size_bytes - 2 * 1024 * 1024 * instances,
            ways=base.llc.ways - 4 if base.llc.ways > 4 else base.llc.ways,
        )
        return replace(
            base,
            name="dx100",
            llc=small_llc,
            dx100=DX100Config(tile_elems=tile_elems),
            dx100_instances=instances,
        )

    @staticmethod
    def dmp_system(cores: int = 4) -> "SystemConfig":
        return replace(SystemConfig.baseline(cores), name="dmp", dmp=True)

    # ------------------------------------------------------- scaled presets
    #
    # The paper's workloads use multi-hundred-megabyte footprints against a
    # 10 MB LLC.  Python request-level simulation caps trace lengths around
    # a few hundred thousand operations, so the main-evaluation presets
    # scale the shared LLC down by 8x (10 MB -> 1.25 MB) to preserve the
    # footprint-to-LLC ratio that makes the kernels memory-bound.  The DX100
    # variant gives up the scaled equivalent of its scratchpad area, mirroring
    # the paper's 2 MB LLC handicap (Section 5).

    @staticmethod
    def baseline_scaled(cores: int = 4) -> "SystemConfig":
        cfg = SystemConfig.baseline(cores)
        llc_bytes = (1280 if cores <= 4 else 2560) * 1024
        return replace(cfg, llc=replace(cfg.llc, size_bytes=llc_bytes))

    @staticmethod
    def dx100_scaled(cores: int = 4, tile_elems: int = 16 * 1024,
                     instances: int = 1) -> "SystemConfig":
        cfg = SystemConfig.baseline_scaled(cores)
        llc_bytes = cfg.llc.size_bytes - 256 * 1024 * instances
        return replace(
            cfg, name="dx100",
            llc=replace(cfg.llc, size_bytes=llc_bytes, ways=16),
            dx100=DX100Config(tile_elems=tile_elems),
            dx100_instances=instances,
        )

    @staticmethod
    def dmp_scaled(cores: int = 4) -> "SystemConfig":
        return replace(SystemConfig.baseline_scaled(cores), name="dmp",
                       dmp=True)

"""Core value types shared by every subsystem.

The simulator is request-granular: components exchange :class:`MemOp`
(core-side memory operations) and :class:`DRAMRequest` (controller-side DRAM
transactions) records, each carrying the timing fields the models fill in as
the request moves through the system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Kind of memory operation, as seen by the core or by DX100."""

    LOAD = "load"
    STORE = "store"
    RMW = "rmw"
    PREFETCH = "prefetch"

    @property
    def is_write(self) -> bool:
        return self in (AccessType.STORE, AccessType.RMW)


class HitLevel(enum.Enum):
    """Where in the memory hierarchy an access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    LLC = "llc"
    DRAM = "dram"
    SPD = "spd"  # DX100 scratchpad


class AluOp(enum.Enum):
    """ALU operations supported by the DX100 ISA (Table 2)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHR = "shr"
    SHL = "shl"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_commutative_associative(self) -> bool:
        """Whether the op is legal for IRMW (reorderable updates)."""
        return self in _RMW_SAFE


_COMPARISONS = frozenset(
    {AluOp.LT, AluOp.LE, AluOp.GT, AluOp.GE, AluOp.EQ}
)
_RMW_SAFE = frozenset(
    {AluOp.ADD, AluOp.MIN, AluOp.MAX, AluOp.AND, AluOp.OR, AluOp.XOR}
)


class DType(enum.Enum):
    """Element data types supported by DX100 (Table 2)."""

    U32 = "u32"
    I32 = "i32"
    F32 = "f32"
    U64 = "u64"
    I64 = "i64"
    F64 = "f64"

    @property
    def nbytes(self) -> int:
        return 4 if self in (DType.U32, DType.I32, DType.F32) else 8

    @property
    def numpy_name(self) -> str:
        return {
            DType.U32: "uint32",
            DType.I32: "int32",
            DType.F32: "float32",
            DType.U64: "uint64",
            DType.I64: "int64",
            DType.F64: "float64",
        }[self]


@dataclass(slots=True)
class MemOp:
    """One core-side memory operation in a trace.

    ``deps`` are indices of earlier ops in the same per-core trace whose
    completion this op's address depends on (index loads feeding an indirect
    access).  ``extra_instrs`` is the number of non-memory instructions
    (address arithmetic, loop control) attributed to this op; they consume
    frontend bandwidth and model the paper's instruction-count results.
    """

    kind: AccessType
    addr: int
    size: int = 8
    deps: tuple[int, ...] = ()
    extra_instrs: int = 0
    atomic: bool = False
    pc: int = 0
    tag: int = -1  # loop-iteration id, used by the DMP prefetcher model
    # Timing results, filled by the core model.
    issue: int = -1
    complete: int = -1
    level: HitLevel | None = None


@dataclass(slots=True)
class DRAMRequest:
    """A cache-line transaction presented to a memory controller."""

    addr: int
    is_write: bool
    arrival: int
    meta: object = None
    # Owning channel, stamped at system enqueue (-1 = not yet routed);
    # lets completion find its controller without re-decoding the address.
    channel: int = -1
    # Submitting tenant (-1 = untagged).  The tag never influences
    # scheduling — both engines treat tagged and untagged requests
    # identically — it only feeds per-tenant accounting in the serving
    # layer (:mod:`repro.serve`) and the controllers' tenant counters.
    tenant: int = -1
    # Results, filled by the controller.
    start: int = -1
    finish: int = -1
    row_hit: bool = False
    # Far-memory tier: stamped at system enqueue when the address lives
    # behind the remote link (:mod:`repro.dram.remote`); the servicing
    # engine then routes the completion through the link's return path.
    # False whenever the link is disabled, leaving both engines untouched.
    far: bool = False

    @property
    def done(self) -> bool:
        return self.finish >= 0


@dataclass(slots=True)
class DRAMCoord:
    """Decoded DRAM coordinates of a physical address.

    ``flat_bank`` — the (channel, rank, bankgroup, bank) key every bank-state
    table is indexed by — is precomputed at construction: coordinates are
    decoded once per request but their bank key is consulted on every
    scheduler pick, so deriving it lazily was a measured hot spot.
    """

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int
    flat_bank: tuple[int, int, int, int] = field(
        init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.flat_bank = (self.channel, self.rank, self.bankgroup, self.bank)


@dataclass
class Interval:
    """A half-open address interval [lo, hi), used by alias analysis and the
    DX100 coherence regions."""

    lo: int
    hi: int

    def overlaps(self, other: "Interval") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def contains(self, addr: int) -> bool:
        return self.lo <= addr < self.hi

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi})")

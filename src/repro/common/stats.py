"""Lightweight statistics counters used throughout the simulator.

Every component owns a :class:`Stats` and records named counters, weighted
averages, and histograms; the simulation harness merges them into the
per-run metric set the paper's figures report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Stats:
    """Named counters with a few derived-metric helpers."""

    counters: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    mins: dict[str, float] = field(default_factory=dict)
    maxs: dict[str, float] = field(default_factory=dict)
    _wsum: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    _wweight: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    hists: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def note_min(self, name: str, value: float) -> None:
        """Track a running minimum (e.g. first request arrival).

        Unlike ``add`` counters, min/max trackers merge across components
        by min/max, not by summation.
        """
        cur = self.mins.get(name)
        if cur is None or value < cur:
            self.mins[name] = value

    def note_max(self, name: str, value: float) -> None:
        """Track a running maximum (e.g. last request finish)."""
        cur = self.maxs.get(name)
        if cur is None or value > cur:
            self.maxs[name] = value

    def observe(self, name: str, value: float, weight: float = 1.0) -> None:
        """Accumulate a weighted average (e.g. occupancy over time)."""
        self._wsum[name] += value * weight
        self._wweight[name] += weight

    def bucket(self, name: str, key: int, amount: int = 1) -> None:
        self.hists[name][key] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        if name in self.counters:
            return self.counters[name]
        if name in self.maxs:
            return self.maxs[name]
        if name in self.mins:
            return self.mins[name]
        return default

    def mean(self, name: str, default: float = 0.0) -> float:
        w = self._wweight.get(name, 0.0)
        if w == 0.0:
            return default
        return self._wsum[name] / w

    def mean_names(self) -> tuple[str, ...]:
        """Names of every weighted-average series observed so far (the
        public face of the internal accumulators, for stats dumps)."""
        return tuple(self._wweight)

    def ratio(self, num: str, den: str, default: float = 0.0) -> float:
        d = self.counters.get(den, 0.0)
        if d == 0.0:
            return default
        return self.counters.get(num, 0.0) / d

    def merge(self, other: "Stats") -> None:
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, v in other.mins.items():
            self.note_min(k, v)
        for k, v in other.maxs.items():
            self.note_max(k, v)
        for k in other._wsum:
            self._wsum[k] += other._wsum[k]
            self._wweight[k] += other._wweight[k]
        for name, hist in other.hists.items():
            for key, amount in hist.items():
                self.hists[name][key] += amount

    def as_dict(self) -> dict[str, float]:
        out = dict(self.counters)
        out.update(self.mins)
        out.update(self.maxs)
        for k in self._wweight:
            out[f"{k}:mean"] = self.mean(k)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}={v:g}" for k, v in sorted(self.counters.items()))
        return f"Stats({items})"


def geomean(values: list[float]) -> float:
    """Geometric mean, as used for the paper's headline speedups."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))

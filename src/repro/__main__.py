"""Command-line runner, mirroring the paper artifact's automation scripts.

Usage::

    python -m repro list                      # available benchmarks
    python -m repro run IS PR --configs baseline dx100
    python -m repro run --all --quick --csv results/results.csv
    python -m repro sweep --quick --jobs 4    # parallel + cached grid
    python -m repro sweep --update-golden     # refresh golden metrics
    python -m repro campaign 'benchmarks=IS,CG dram=ddr4,ddr5' --workers 2
    python -m repro campaign --resume 20260808-1200 --workers 4
    python -m repro run IS --quick --trace results/trace.json
    python -m repro timeline IS --quick       # ASCII observability timeline
    python -m repro serve --tenants 2 --aggressor 1   # multi-tenant QoS
    python -m repro serve --check-golden      # pinned tenancy scenarios
    python -m repro area                      # Table 4

Each run prints a comparison table; ``--csv`` additionally writes the raw
metrics, like the artifact's ``results.csv``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.common import SystemConfig
from repro.common.config import DRAM_PRESETS, dram_preset
from repro.dx100.area import area_power
from repro.sim import run_baseline, run_dx100
from repro.sim.report import comparison_table, to_csv
from repro.workloads import MAIN_BENCHMARKS, QUICK_BENCHMARKS

CONFIG_BUILDERS = {
    "baseline": lambda cores: SystemConfig.baseline_scaled(cores),
    "dmp": lambda cores: SystemConfig.dmp_scaled(cores),
    "dx100": lambda cores: SystemConfig.dx100_scaled(cores),
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DX100 reproduction benchmark runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")

    run = sub.add_parser("run", help="run benchmarks")
    run.add_argument("benchmarks", nargs="*",
                     help="benchmark names (see `list`)")
    run.add_argument("--all", action="store_true",
                     help="run all 12 benchmarks")
    run.add_argument("--quick", action="store_true",
                     help="use the reduced dataset sizes")
    run.add_argument("--configs", nargs="+", default=None,
                     choices=sorted(CONFIG_BUILDERS),
                     help="configurations to run (default: baseline dx100; "
                          "--scale full defaults to dx100 alone)")
    run.add_argument("--cores", type=int, default=4)
    run.add_argument("--audit", action="store_true",
                     help="attach the JEDEC command-stream auditor to every "
                          "memory channel and fail if any timing constraint "
                          "is violated")
    run.add_argument("--csv", metavar="PATH",
                     help="also write raw metrics as CSV")
    run.add_argument("--stats-dir", metavar="DIR",
                     help="write a full gem5-style stats dump per run")
    run.add_argument("--trace", metavar="PATH",
                     help="record a Chrome trace-event JSON (load in "
                          "Perfetto / chrome://tracing); with several runs "
                          "the benchmark and config names are inserted "
                          "before the extension")
    run.add_argument("--sample-every", type=int, default=0, metavar="N",
                     help="snapshot the timeline samplers every N cycles "
                          "(0 = off; --trace alone defaults to 1000)")
    run.add_argument("--scale", choices=["main", "quick", "full"],
                     default=None,
                     help="dataset scale: main (default), quick (alias for "
                          "--quick), or full — paper-sized footprints far "
                          "past every cache (2^25-key IS etc.); full "
                          "defaults to the dx100 configuration and writes "
                          "results/full_scale.json")
    run.add_argument("--frontend", choices=["batched", "scalar"],
                     default=None,
                     help="force the simulation front-end for every run "
                          "(default: the config's front-end, i.e. batched; "
                          "scalar replays the per-op cache/core oracle)")
    run.add_argument("--dram", choices=sorted(DRAM_PRESETS), default=None,
                     help="memory technology preset (default: ddr4; cxl "
                          "puts the pool behind the modeled far-memory "
                          "link)")

    sweep = sub.add_parser(
        "sweep",
        help="run the benchmark x configuration grid in parallel, backed "
             "by the content-addressed run cache",
    )
    sweep.add_argument("benchmarks", nargs="*",
                       help="benchmark names (default: all 12)")
    sweep.add_argument("--quick", action="store_true",
                       help="use the reduced dataset sizes")
    sweep.add_argument("--configs", nargs="+",
                       default=["baseline", "dmp", "dx100"],
                       choices=sorted(CONFIG_BUILDERS))
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or the "
                            "CPU count; 1 = strictly serial)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="re-simulate everything, ignoring the run cache")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="run-cache location (default: results/.runcache "
                            "or $REPRO_CACHE_DIR)")
    sweep.add_argument("--json", metavar="PATH",
                       help="where to write the structured sweep record "
                            "(default: results/sweep.json)")
    sweep.add_argument("--prune-cache", action="store_true",
                       help="first delete cache entries from older model "
                            "versions")
    sweep.add_argument("--update-golden", action="store_true",
                       help="re-run the quick suite under all three configs "
                            "and rewrite tests/golden/quick_suite.json "
                            "(after an intentional model change)")
    sweep.add_argument("--check-golden", action="store_true",
                       help="diff the quick suite against "
                            "tests/golden/quick_suite.json; exit 1 on any "
                            "mismatch")
    sweep.add_argument("--sample-every", type=int, default=0, metavar="N",
                       help="attach the timeline samplers to every run "
                            "(period N cycles; summaries land in each "
                            "result's extra fields; 0 = off)")
    sweep.add_argument("--engine", choices=["batched", "scalar"],
                       default=None,
                       help="force the DRAM engine for every run (default: "
                            "the config's engine, i.e. batched; --engine "
                            "scalar runs the oracle — combine with "
                            "--check-golden for a full differential check)")
    sweep.add_argument("--frontend", choices=["batched", "scalar"],
                       default=None,
                       help="force the simulation front-end for every run "
                            "(scalar replays the per-op cache/core oracle — "
                            "combine with --check-golden for the front-end "
                            "differential check)")
    sweep.add_argument("--dram", choices=sorted(DRAM_PRESETS), default=None,
                       help="memory technology preset for every task "
                            "(default: ddr4; cxl puts the pool behind the "
                            "modeled far-memory link; ignored under "
                            "--check-golden/--update-golden, which pin ddr4)")
    sweep.add_argument("--profile", action="store_true",
                       help="after the timed sweep, re-run the grid once "
                            "under cProfile and record per-component and "
                            "pipeline-stage tottimes in "
                            "BENCH_mainsweep.json (the recorded wall_s "
                            "stays un-instrumented)")
    sweep.add_argument("--affinity", action="store_true",
                       help="group cache misses by workload and reuse each "
                            "dataset's generate stage across modes (the "
                            "campaign fabric's executor; results are "
                            "bitwise identical)")

    campaign = sub.add_parser(
        "campaign",
        help="run a resumable multi-worker campaign from a declarative "
             "spec ('benchmarks=IS,CG dram=ddr4,ddr5 tile=4k:64k "
             "tenants=1:8'); state persists in results/.campaigns/<id> "
             "and an interrupted campaign resumes with zero duplicated "
             "simulation",
    )
    campaign.add_argument("spec", nargs="?", default="",
                          help="spec line of key=values clauses (empty = "
                               "the full default grid); see "
                               "EXPERIMENTS.md 'Campaigns'")
    campaign.add_argument("--id", dest="cid", default=None,
                          help="campaign id (default: a timestamp); the "
                               "manifest lives in results/.campaigns/<id>")
    campaign.add_argument("--resume", metavar="ID",
                          help="resume an existing campaign instead of "
                               "creating one (only non-done tasks run)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (default: 1 = in-process "
                               "serial)")
    campaign.add_argument("--root", metavar="DIR", default=None,
                          help="campaign root (default: results/.campaigns)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="ignore the run cache (every task simulates)")
    campaign.add_argument("--cache-dir", metavar="DIR",
                          help="run-cache location (default: "
                               "results/.runcache or $REPRO_CACHE_DIR)")
    campaign.add_argument("--lease-ttl", type=float, default=30.0,
                          metavar="S",
                          help="seconds without a heartbeat before a "
                               "worker's task lease expires and is "
                               "reclaimed (default: 30)")
    campaign.add_argument("--max-retries", type=int, default=2,
                          help="failed-task retry budget with capped "
                               "exponential backoff (default: 2)")
    campaign.add_argument("--dry-run", action="store_true",
                          help="expand and print the task grid, then exit "
                               "without creating a campaign")
    campaign.add_argument("--no-bench", action="store_true",
                          help="don't merge the campaign stats into "
                               "BENCH_mainsweep.json (smoke/CI runs)")

    timeline = sub.add_parser(
        "timeline",
        help="run one benchmark with the observability samplers attached "
             "and print an ASCII timeline (RBH, bandwidth, occupancy, "
             "tile drains) plus the summary statistics",
    )
    timeline.add_argument("benchmark", nargs="?", default="IS",
                          help="benchmark name (default: IS)")
    timeline.add_argument("--mode", default="dx100",
                          choices=sorted(CONFIG_BUILDERS))
    timeline.add_argument("--quick", action="store_true",
                          help="use the reduced dataset sizes")
    timeline.add_argument("--cores", type=int, default=4)
    timeline.add_argument("--dram", choices=sorted(DRAM_PRESETS),
                          default=None,
                          help="DRAM preset (e.g. cxl adds the link-queue "
                               "sparkline; default: the mode's own)")
    timeline.add_argument("--sample-every", type=int, default=1000,
                          metavar="N",
                          help="sampling period in cycles (default: 1000)")
    timeline.add_argument("--width", type=int, default=72,
                          help="sparkline width in characters (default: 72)")
    timeline.add_argument("--trace", metavar="PATH",
                          help="also write the Chrome trace-event JSON")

    prof = sub.add_parser(
        "profile",
        help="profile one benchmark run: cProfile hotspots, per-component "
             "attribution, and coarse stage timers",
    )
    prof.add_argument("benchmark", nargs="?", default="IS",
                      help="benchmark name (default: IS)")
    prof.add_argument("--mode", default="baseline",
                      choices=sorted(CONFIG_BUILDERS))
    prof.add_argument("--quick", action="store_true",
                      help="use the reduced dataset sizes")
    prof.add_argument("--top", type=int, default=25,
                      help="hotspot functions to report (default: 25)")
    prof.add_argument("--frontend", choices=["batched", "scalar"],
                      default=None,
                      help="simulation front-end to profile (default: the "
                           "config's front-end, i.e. batched)")
    prof.add_argument("--json", metavar="PATH",
                      help="also write the structured report as JSON")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant QoS serving layer: N closed-loop "
             "tenant streams over one shared DRAM system, with token-"
             "bucket admission, fair scheduling, and partitioned Row "
             "Table / request buffers; prints per-tenant p50/p99 latency, "
             "throughput, and the Jain fairness index",
    )
    serve.add_argument("--tenants", type=int, default=2,
                       help="concurrent tenant streams (default: 2)")
    serve.add_argument("--tiles", type=int, default=4,
                       help="tiles per tenant (default: 4)")
    serve.add_argument("--tile-lines", type=int, default=96,
                       help="lines per tile (default: 96)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--aggressor", type=int, default=-1, metavar="T",
                       help="mark tenant index T as an interference "
                            "generator (4x token refill; -1 = none)")
    serve.add_argument("--no-borrow", action="store_true",
                       help="disable work-conserving borrow (hard "
                            "partitioning only)")
    serve.add_argument("--engine", choices=["batched", "scalar"],
                       default="batched",
                       help="DRAM engine (scalar = the oracle replay)")
    serve.add_argument("--no-check", action="store_true",
                       help="skip the per-tile QoS invariant checks")
    serve.add_argument("--update-golden", action="store_true",
                       help="re-run the canonical tenancy scenarios and "
                            "rewrite tests/golden/tenancy_quick.json")
    serve.add_argument("--check-golden", action="store_true",
                       help="diff the canonical tenancy scenarios against "
                            "tests/golden/tenancy_quick.json; exit 1 on "
                            "any mismatch")

    sub.add_parser("area", help="print the Table 4 area/power breakdown")
    return parser


def cmd_list() -> int:
    print(f"{'name':8s} {'suite':10s} pattern")
    for name, factory in MAIN_BENCHMARKS.items():
        wl = QUICK_BENCHMARKS[name]()
        print(f"{name:8s} {wl.suite:10s} {wl.pattern}")
    return 0


def cmd_run(args) -> int:
    """Run the selected benchmarks under the selected configurations."""
    from repro.workloads import FULL_BENCHMARKS

    scale = args.scale or ("quick" if args.quick else "main")
    registry = {"main": MAIN_BENCHMARKS, "quick": QUICK_BENCHMARKS,
                "full": FULL_BENCHMARKS}[scale]
    configs = args.configs
    if configs is None:
        # The full-scale footprints are only tractable offloaded: the
        # baseline's per-op trace would be tens of millions of ops.
        configs = ["dx100"] if scale == "full" else ["baseline", "dx100"]
    names = list(registry) if args.all else args.benchmarks
    if not names and scale == "full":
        names = ["IS"]
    if not names:
        print("no benchmarks selected (name them or pass --all)",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}"
              + (f" (at --scale full only {', '.join(registry)} are sized)"
                 if scale == "full" else ""),
              file=sys.stderr)
        return 2

    sample_every = args.sample_every
    if args.trace and not sample_every:
        sample_every = 1000
    multi = len(names) * len(configs) > 1

    results: dict[str, dict] = {}
    flat = []
    for name in names:
        runs = {}
        for config_name in configs:
            config = CONFIG_BUILDERS[config_name](args.cores)
            if args.dram is not None:
                config = replace(config, dram=dram_preset(args.dram))
            if args.audit:
                config = replace(config,
                                 dram=replace(config.dram, audit=True))
            if args.frontend is not None:
                config = replace(config, frontend=args.frontend)
            wl = registry[name]()
            obs = None
            if args.trace or sample_every:
                from repro.obs.events import EventBus
                obs = EventBus(trace=bool(args.trace),
                               sample_every=sample_every)
            if config_name == "dx100":
                runs[config_name] = run_dx100(wl, config, warm=False,
                                              obs=obs)
            else:
                runs[config_name] = run_baseline(wl, config, warm=False,
                                                 obs=obs)
            flat.append(runs[config_name])
            if args.trace:
                from pathlib import Path
                from repro.obs.trace import write_chrome_trace
                path = Path(args.trace)
                if multi:
                    path = path.with_name(
                        f"{path.stem}-{name}-{config_name}{path.suffix}")
                write_chrome_trace(obs, path)
                print(f"  trace written to {path}", file=sys.stderr)
            print(f"  done: {name} [{config_name}]", file=sys.stderr)
        results[name] = runs
    if args.stats_dir:
        # Per-run stats dumps require re-running with a retained system;
        # dump one representative system per (benchmark, config) instead.
        from pathlib import Path
        from repro.sim.statsdump import write_stats
        from repro.sim.system import SimSystem
        out_dir = Path(args.stats_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            config = CONFIG_BUILDERS[configs[0]](args.cores)
            if args.dram is not None:
                config = replace(config, dram=dram_preset(args.dram))
            system = SimSystem(config)
            wl = registry[name]()
            wl.generate(system.hostmem)
            system.multicore.run(wl.baseline_traces(config.cores))
            system.dram.drain()
            write_stats(system, out_dir / f"{name}.stats.txt")
    print(comparison_table(results))
    if scale == "full":
        # Record the paper-scale runs alongside the sweep artifacts so the
        # EXPERIMENTS table can cite committed numbers.
        import json
        from pathlib import Path
        out = Path("results/full_scale.json")
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "scale": "full",
            "frontend": args.frontend or "batched",
            "runs": [
                {
                    "workload": r.workload,
                    "config": r.config,
                    "cycles": r.cycles,
                    "instructions": r.instructions,
                    "dram_bytes": r.dram_bytes,
                    "dram_requests": r.dram_requests,
                    "bandwidth_utilization": r.bandwidth_utilization,
                    "row_buffer_hit_rate": r.row_buffer_hit_rate,
                    "llc_mpki": r.llc_mpki,
                }
                for r in flat
            ],
        }
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nfull-scale metrics written to {out}")
    if args.csv:
        to_csv(flat, args.csv)
        print(f"\nraw metrics written to {args.csv}")
    if args.audit:
        commands = sum(r.extra.get("audit_commands", 0) for r in flat)
        violations = sum(r.extra.get("audit_violations", 0) for r in flat)
        print(f"\naudit: {int(commands)} DRAM commands checked, "
              f"{int(violations)} timing violation(s)")
        if violations:
            for r in flat:
                if r.extra.get("audit_violations"):
                    print(f"--- {r.workload} [{r.config}] ---",
                          file=sys.stderr)
                    print(r.extra.get("audit_report", ""), file=sys.stderr)
            return 1
    return 0


def cmd_sweep(args) -> int:
    """Parallel, cached sweep over the benchmark x configuration grid."""
    from pathlib import Path

    from repro.sim.sweep import (
        GOLDEN_PATH, RunCache, diff_golden, golden_snapshot, load_golden,
        run_main_sweep, write_golden, write_sweep_records,
    )

    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs}); omit it for the "
              f"REPRO_JOBS/CPU-count default", file=sys.stderr)
        return 2

    if args.prune_cache:
        removed = RunCache(args.cache_dir).prune()
        print(f"pruned {removed} stale cache entr"
              f"{'y' if removed == 1 else 'ies'}", file=sys.stderr)

    golden_mode = args.update_golden or args.check_golden
    if golden_mode:
        # The golden suite is pinned: quick sizes, every benchmark, all
        # three configurations — whatever else was on the command line.
        quick, benchmarks, modes = True, None, ("baseline", "dmp", "dx100")
    else:
        quick = args.quick
        benchmarks = args.benchmarks or None
        modes = tuple(args.configs)

    try:
        outcome = run_main_sweep(
            quick=quick, benchmarks=benchmarks, modes=modes, jobs=args.jobs,
            cache=not args.no_cache, cache_dir=args.cache_dir,
            sample_every=0 if golden_mode else args.sample_every,
            engine=args.engine, frontend=args.frontend,
            dram=None if golden_mode else args.dram,
            affinity=args.affinity,
        )
    except ValueError as exc:   # e.g. a bad REPRO_JOBS value
        print(exc, file=sys.stderr)
        return 2
    if args.profile and not golden_mode:
        # Instrumented second pass, strictly serial, AFTER the timed sweep
        # so the recorded wall_s stays un-instrumented.
        from repro.sim.profile import profile_tasks
        from repro.sim.sweep import main_sweep_tasks
        print("profiling pass (serial, instrumented)...", file=sys.stderr)
        tasks = main_sweep_tasks(quick=quick, benchmarks=benchmarks,
                                 modes=modes, engine=args.engine,
                                 frontend=args.frontend, dram=args.dram)
        outcome.extras.update(profile_tasks(tasks))
    write_sweep_records(outcome, Path("results"), sweep_json=args.json)

    print(comparison_table(outcome.nested()))
    fresh_wall = sum(r.wall for r in outcome.runs if not r.cached)
    print(f"\n{len(outcome.runs)} runs in {outcome.wall:.1f}s wall "
          f"({outcome.jobs} job(s)): {outcome.cache_hits} cached, "
          f"{outcome.cache_misses} simulated "
          f"({fresh_wall:.1f}s of simulation)")
    print(f"sweep record: {args.json or 'results/sweep.json'}; "
          f"perf trajectory: BENCH_mainsweep.json")

    if args.update_golden:
        path = write_golden(outcome)
        print(f"golden metrics updated: {path}")
        return 0
    if args.check_golden:
        try:
            golden = load_golden()
        except FileNotFoundError:
            print(f"no golden file at {GOLDEN_PATH}; run "
                  f"`python -m repro sweep --update-golden`",
                  file=sys.stderr)
            return 1
        problems = diff_golden(golden_snapshot(outcome), golden)
        if problems:
            print(f"\ngolden-metrics check FAILED "
                  f"({len(problems)} mismatch(es)):", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            print("if the model change is intentional, regenerate with "
                  "`python -m repro sweep --update-golden`", file=sys.stderr)
            return 1
        print("golden-metrics check passed (bitwise identical)")
    return 0


def cmd_campaign(args) -> int:
    """Create or resume a campaign and drive it to completion."""
    import time as _time
    from pathlib import Path

    from repro.obs.events import EventBus
    from repro.sim.fabric import (
        RetryPolicy, build_tasks, campaign_dir, campaign_status,
        create_campaign, merge_bench_record, run_campaign,
    )
    from repro.sim.specs import SpecError

    if args.workers < 1:
        print(f"--workers must be >= 1 (got {args.workers})",
              file=sys.stderr)
        return 2

    if args.resume:
        path = campaign_dir(args.resume, args.root)
        if not (path / "campaign.json").exists():
            print(f"no campaign at {path}", file=sys.stderr)
            return 2
        status = campaign_status(path)
        print(f"resuming campaign {args.resume}: {status.done} done, "
              f"{status.failed} failed, {status.pending} pending, "
              f"{status.active} leased", file=sys.stderr)
    else:
        try:
            tasks = build_tasks(args.spec)
        except SpecError as exc:
            print(f"bad spec: {exc}", file=sys.stderr)
            return 2
        if not tasks:
            print("spec expands to zero tasks", file=sys.stderr)
            return 2
        if args.dry_run:
            print(f"{len(tasks)} task(s):")
            for task in tasks:
                print(f"  {task.tid:<28s} [{task.kind}] group={task.group}")
            return 0
        cid = args.cid or _time.strftime("%Y%m%d-%H%M%S")
        try:
            path = create_campaign(
                tasks, cid, root=args.root, spec_text=args.spec,
                retry=RetryPolicy(max_retries=args.max_retries),
                lease_ttl_s=args.lease_ttl,
                cache=not args.no_cache, cache_dir=args.cache_dir)
        except FileExistsError as exc:
            print(f"{exc} (use --resume {cid} to continue it)",
                  file=sys.stderr)
            return 2
        status = campaign_status(path)
        print(f"campaign {cid}: {status.total} task(s), "
              f"{status.done} already in the run cache, "
              f"{status.pending} to simulate", file=sys.stderr)

    bus = EventBus(trace=False)

    def render(mark) -> None:
        pending, active, done, failed, cache_hits, eta = mark
        eta_text = f", ~{eta:.0f}s left" if eta is not None else ""
        print(f"  [{done} done | {active} active | {pending} pending | "
              f"{failed} failed] cache hits {cache_hits}{eta_text}",
              file=sys.stderr)

    bus.campaign_listeners.append(render)
    summary = run_campaign(path, workers=args.workers,
                           cache=not args.no_cache,
                           cache_dir=args.cache_dir, bus=bus)
    if not args.no_bench:
        merge_bench_record(summary, Path("BENCH_mainsweep.json"))

    print(f"\ncampaign {summary['id']}: {summary['done']}/{summary['total']} "
          f"done, {summary['failed']} failed "
          f"({summary['cache_hits']} cache hit(s), "
          f"{summary['sim_wall_s']}s simulating, "
          f"{summary.get('wall_s', 0.0)}s wall)")
    print(f"report: {path / 'summary.md'}")
    return 1 if summary["failed"] else 0


def cmd_profile(args) -> int:
    """Profile one benchmark run and report where the wall-clock goes."""
    from repro.sim.profile import format_report, profile_run

    try:
        report = profile_run(benchmark=args.benchmark, mode=args.mode,
                             quick=args.quick, top=args.top,
                             frontend=args.frontend)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(format_report(report))
    if args.json:
        import json
        from pathlib import Path
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"\nstructured report written to {path}")
    return 0


def cmd_timeline(args) -> int:
    """Run one benchmark with samplers on and print the ASCII timeline."""
    from repro.obs.events import EventBus
    from repro.obs.timeline import render_timeline

    registry = QUICK_BENCHMARKS if args.quick else MAIN_BENCHMARKS
    if args.benchmark not in registry:
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    if args.sample_every <= 0:
        print("--sample-every must be positive", file=sys.stderr)
        return 2
    config = CONFIG_BUILDERS[args.mode](args.cores)
    if args.dram is not None:
        config = replace(config, dram=dram_preset(args.dram))
    wl = registry[args.benchmark]()
    obs = EventBus(trace=bool(args.trace), sample_every=args.sample_every)
    if args.mode == "dx100":
        result = run_dx100(wl, config, warm=False, obs=obs)
    else:
        result = run_baseline(wl, config, warm=False, obs=obs)

    print(f"{args.benchmark} [{args.mode}]: {result.cycles} cycles, "
          f"BW {result.bandwidth_utilization:.2f}, "
          f"RBH {result.row_buffer_hit_rate:.2f}")
    print()
    print(render_timeline(obs.timeline, width=args.width))
    summary = obs.summary()
    print()
    for key in sorted(summary):
        value = summary[key]
        shown = f"{value:.4f}" if isinstance(value, float) else value
        print(f"  {key:<28s} {shown}")
    if args.trace:
        from pathlib import Path
        from repro.obs.trace import write_chrome_trace
        path = Path(args.trace)
        write_chrome_trace(obs, path)
        print(f"\ntrace written to {path}")
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant serving layer (or its golden harness)."""
    from repro.common.config import DRAMConfig
    from repro.serve import make_tenants, serve_run, tenancy_scenarios
    from repro.serve.golden import (
        TENANCY_GOLDEN_PATH, diff_tenancy_golden, load_tenancy_golden,
        tenancy_snapshot, write_tenancy_golden,
    )

    if args.update_golden or args.check_golden:
        scenarios = tenancy_scenarios(engine=args.engine)
        if args.update_golden:
            path = write_tenancy_golden(scenarios)
            print(f"tenancy golden metrics updated: {path}")
            return 0
        try:
            golden = load_tenancy_golden()
        except FileNotFoundError:
            print(f"no tenancy golden file at {TENANCY_GOLDEN_PATH}; run "
                  f"`python -m repro serve --update-golden`",
                  file=sys.stderr)
            return 1
        snapshot = tenancy_snapshot(scenarios)
        if args.engine != "batched":
            # The golden file is pinned under the batched engine; the
            # scalar replay must match it everywhere but the engine label.
            for entry in snapshot.values():
                entry["engine"] = "batched"
        problems = diff_tenancy_golden(snapshot, golden)
        if problems:
            print(f"tenancy golden check FAILED "
                  f"({len(problems)} mismatch(es)):", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"tenancy golden check passed (bitwise identical, "
              f"engine={args.engine})")
        return 0

    if args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2
    specs = make_tenants(args.tenants, tiles=args.tiles,
                         tile_lines=args.tile_lines, seed=args.seed,
                         aggressor=args.aggressor)
    config = replace(DRAMConfig(), engine=args.engine)
    report = serve_run(specs, config=config, borrow=not args.no_borrow,
                       check=not args.no_check)
    print(report.render())
    return 0


def cmd_area() -> int:
    """Print the Table 4 area/power breakdown."""
    report = area_power()
    print(f"{'module':<16s} {'area mm2':>9s} {'power mW':>9s}")
    for name, (area, power) in report.modules.items():
        print(f"{name:<16s} {area:9.3f} {power:9.2f}")
    print(f"{'TOTAL (28nm)':<16s} {report.total_area_mm2:9.3f} "
          f"{report.total_power_mw:9.2f}")
    print(f"14nm: {report.area_14nm_mm2:.2f} mm2, "
          f"{report.overhead_percent:.1f}% of a 4-core processor")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "timeline":
        return cmd_timeline(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "area":
        return cmd_area()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""The multi-tenant serve loop: admission -> fair pick -> partition -> DRAM.

``serve_run`` drives N closed-loop tenant streams against one shared
:class:`~repro.dram.system.DRAMSystem`:

1. each tenant submits its next tile when the previous one completes;
2. the :class:`~repro.serve.admission.AdmissionController` token-buckets
   the tile (cost = lines), fixing its earliest scheduling cycle;
3. the :class:`~repro.serve.scheduler.FairScheduler` deficit-round-robins
   across tenants' admitted tiles, with starvation escalation fed from the
   DRAM schedulers via the observability bus;
4. the picked tile fills the tenant's slice of the
   :class:`~repro.serve.partition.PartitionedRowTable` (hard quota +
   work-conserving borrow; refusals force an early drain), drains in the
   row-hit-preserving interleaved order, and issues each line to DRAM
   tagged with the tenant id — paced by the
   :class:`~repro.serve.partition.BufferLedger` in-flight credits;
5. tiles complete out of a two-deep pipeline, so consecutive tiles from
   different tenants genuinely overlap inside the memory controllers and
   interference shows up in the per-tenant latency distributions.

Every decision depends only on request finish cycles, which the batched
engine and the scalar oracle produce identically — so an entire serve run
is engine-differential-testable, and ``tag_requests=False`` replays the
same schedule untagged for the single-tenant degeneracy proof.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common.config import DRAMConfig
from repro.common.types import DRAMCoord, DRAMRequest
from repro.dram.system import DRAMSystem
from repro.obs.events import EventBus, _SchedulerProbe
from repro.serve.admission import AdmissionController, check_buckets
from repro.serve.partition import (BufferLedger, PartitionedRowTable,
                                   check_partition)
from repro.serve.scheduler import FairScheduler
from repro.serve.tenant import TenantSpec, jain_index, make_tenants, percentile

#: Fixed word-modifier-style latency added to every tile's completion.
TILE_EPILOGUE = 16


@dataclass
class _Issued:
    """One in-flight line: request plus its ledger-credit state."""

    tenant: int
    request: DRAMRequest
    released: bool = False


@dataclass
class _InflightTile:
    tenant: int
    index: int              # tenant-local tile number
    submit: int
    admit: int
    entries: list[_Issued]


@dataclass
class TenantReport:
    """Per-tenant outcome of one serve run."""

    tenant_id: int
    tiles: int
    lines: int
    p50: int
    p99: int
    mean_latency: float
    max_admission_delay: int
    span: int                  # first submit -> last completion
    dram_serviced: int
    dram_bytes: int
    dram_row_hits: int
    borrowed_inserts: int
    refused_quota: int
    refused_physical: int
    completions: list[int] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Lines retired per cycle over the tenant's active span."""
        return self.lines / max(1, self.span)


@dataclass
class ServeReport:
    """Everything one serve run produced."""

    engine: str
    tenants: list[TenantReport]
    total_cycles: int
    jain: float
    starvations: int
    escalated_picks: int

    def golden_snapshot(self) -> dict:
        """JSON-stable digest for the tenancy golden file (exact compare)."""
        return {
            "engine": self.engine,
            "total_cycles": int(self.total_cycles),
            "jain": round(self.jain, 6),
            "starvations": int(self.starvations),
            "escalated_picks": int(self.escalated_picks),
            "tenants": {
                str(t.tenant_id): {
                    "tiles": t.tiles,
                    "lines": t.lines,
                    "p50": t.p50,
                    "p99": t.p99,
                    "mean_latency": round(t.mean_latency, 3),
                    "max_admission_delay": t.max_admission_delay,
                    "span": t.span,
                    "dram_serviced": t.dram_serviced,
                    "dram_bytes": t.dram_bytes,
                    "dram_row_hits": t.dram_row_hits,
                    "borrowed_inserts": t.borrowed_inserts,
                    "refused_quota": t.refused_quota,
                    "refused_physical": t.refused_physical,
                }
                for t in self.tenants
            },
        }

    def render(self, width: int = 48) -> str:
        """Human-readable report with a per-tenant completion timeline."""
        from repro.obs.timeline import _sparkline
        lines = [
            f"serve: {len(self.tenants)} tenant(s), engine={self.engine}, "
            f"{self.total_cycles} cycles",
            f"  fairness (Jain over tenant throughput): {self.jain:.4f}   "
            f"dram starvation escalations: {self.starvations} "
            f"(frontend picks escalated: {self.escalated_picks})",
            "  tenant  tiles  lines     p50     p99    mean  adm.max  "
            "borrow  tput(l/kc)",
        ]
        for t in self.tenants:
            lines.append(
                f"  {t.tenant_id:>6}  {t.tiles:>5}  {t.lines:>5}  "
                f"{t.p50:>6}  {t.p99:>6}  {t.mean_latency:>7.1f}  "
                f"{t.max_admission_delay:>7}  {t.borrowed_inserts:>6}  "
                f"{1000.0 * t.throughput:>9.2f}")
        span = max(1, self.total_cycles)
        for t in self.tenants:
            buckets = [0.0] * width
            for cycle in t.completions:
                slot = min(width - 1, cycle * width // span)
                buckets[slot] += 1.0
            lines.append(
                f"  t{t.tenant_id} completions "
                f"|{_sparkline(buckets, 0.0, max(buckets) or 1.0)}|")
        return "\n".join(lines)


def _attach_starvation_probes(dram: DRAMSystem, bus: EventBus) -> None:
    """Wire the per-channel schedulers' starvation hook to ``bus``.

    The full :meth:`EventBus.attach` expects a built ``SimSystem``; serve
    drives a bare ``DRAMSystem``, so only the scheduler probes are wired.
    """
    for ctrl in dram.controllers:
        scheduler = ctrl.scheduler
        if hasattr(scheduler, "obs"):
            setattr(scheduler, "obs", _SchedulerProbe(bus, ctrl.channel))


def serve_run(specs: list[TenantSpec],
              config: DRAMConfig | None = None,
              rows_per_slice: int = 64,
              cols_per_row: int = 8,
              row_quota: int | None = None,
              buffer_quota: int | None = None,
              borrow: bool = True,
              pipeline_depth: int = 2,
              tag_requests: bool = True,
              check: bool = True) -> ServeReport:
    """Run every tenant's tile stream to completion; returns the report.

    ``row_quota`` / ``buffer_quota`` default to an even split of the
    physical capacity (``rows_per_slice`` BCAM units per bank slice; the
    per-channel request buffers summed) across tenants.
    ``tag_requests=False`` issues the identical schedule with untagged
    requests — the degeneracy-test control.  ``check=True`` re-verifies
    every QoS invariant at each tile completion.
    """
    if not specs:
        raise ValueError("serve_run needs at least one tenant")
    ids = [spec.tenant_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate tenant ids")
    config = config or DRAMConfig()
    dram = DRAMSystem(config)
    bus = EventBus(trace=True)
    _attach_starvation_probes(dram, bus)

    n = len(specs)
    rq = row_quota if row_quota is not None else max(1, rows_per_slice // n)
    part = PartitionedRowTable({t: rq for t in ids},
                               rows_per_slice=rows_per_slice,
                               cols_per_row=cols_per_row, borrow=borrow)
    buffer_capacity = config.request_buffer * config.channels
    bq = (buffer_quota if buffer_quota is not None
          else max(1, buffer_capacity // n))
    ledger = BufferLedger({t: bq for t in ids}, capacity=buffer_capacity,
                          borrow=borrow)
    admission = AdmissionController(specs)
    fair = FairScheduler(ids, bus=bus)

    by_id = {spec.tenant_id: spec for spec in specs}
    tiles = {spec.tenant_id: spec.generate_tiles(config.line_bytes)
             for spec in specs}
    next_tile = {t: 0 for t in ids}
    first_submit: dict[int, int] = {}
    latencies: dict[int, list[int]] = {t: [] for t in ids}
    completions: dict[int, list[int]] = {t: [] for t in ids}
    lines_done = {t: 0 for t in ids}
    last_completion = {t: 0 for t in ids}

    outstanding: deque[_Issued] = deque()
    inflight: deque[_InflightTile] = deque()
    no_h_bit = (lambda line_addr: False)

    def submit(tenant: int, cycle: int) -> None:
        """Closed loop: push the tenant's next tile through admission."""
        k = next_tile[tenant]
        if k >= by_id[tenant].tiles:
            return
        next_tile[tenant] = k + 1
        first_submit.setdefault(tenant, cycle)
        tile = tiles[tenant][k]
        admit = admission.admit(tenant, float(len(tile)), cycle)
        fair.push(tenant, admit, (k, tile, cycle, admit))

    def reclaim_one(cursor: int) -> int:
        """Resolve the oldest in-flight line, freeing its buffer credit."""
        while outstanding:
            entry = outstanding.popleft()
            if entry.released:
                continue
            finish = dram.complete(entry.request)
            ledger.release(entry.tenant)
            entry.released = True
            return max(cursor, finish)
        raise RuntimeError("buffer credits exhausted with nothing in flight")

    def flush(tenant: int, cursor: int,
              entries: list[_Issued]) -> int:
        """Drain the tenant's Row Table slice and issue lines to DRAM."""
        if check:
            # Verify at peak occupancy — after a drain the tables are
            # empty and a quota violation would be invisible.
            check_partition(part)
        tag = tenant if tag_requests else -1
        for pline in part.drain(tenant):
            while not ledger.try_acquire(tenant):
                cursor = reclaim_one(cursor)
            req = dram.access(pline.line_addr, is_write=False,
                              arrival=cursor,
                              decoded=pline.coord + (pline.row,),
                              tenant=tag)
            issued = _Issued(tenant=tenant, request=req)
            entries.append(issued)
            outstanding.append(issued)
            cursor += 1
        return cursor

    def issue_tile(tenant: int, tile, cursor: int) -> tuple[list[_Issued],
                                                            int]:
        entries: list[_Issued] = []
        addrs = tile
        fields = dram.mapper.map_arrays(addrs)
        chans = fields["channel"].tolist()
        ranks = fields["rank"].tolist()
        bgs = fields["bankgroup"].tolist()
        banks = fields["bank"].tolist()
        rows = fields["row"].tolist()
        cols = fields["column"].tolist()
        line_list = fields["line"].tolist()
        for e in range(len(line_list)):
            coord = DRAMCoord(channel=chans[e], rank=ranks[e],
                              bankgroup=bgs[e], bank=banks[e],
                              row=rows[e], column=cols[e])
            accepted, _ = part.try_insert(tenant, coord, line_list[e], e,
                                          no_h_bit)
            if not accepted:
                cursor = flush(tenant, cursor, entries)
                accepted, _ = part.try_insert(tenant, coord, line_list[e],
                                              e, no_h_bit)
                if not accepted:
                    raise RuntimeError(
                        "insert refused on a freshly drained slice")
        return entries, flush(tenant, cursor, entries)

    def complete_tile(tile_rec: _InflightTile) -> int:
        finish = tile_rec.admit
        for entry in tile_rec.entries:
            done = dram.complete(entry.request)
            if not entry.released:
                ledger.release(entry.tenant)
                entry.released = True
            if done > finish:
                finish = done
        finish += TILE_EPILOGUE
        tenant = tile_rec.tenant
        latencies[tenant].append(finish - tile_rec.submit)
        completions[tenant].append(finish)
        lines_done[tenant] += len(tile_rec.entries)
        if finish > last_completion[tenant]:
            last_completion[tenant] = finish
        if check:
            check_buckets(admission)
            check_partition(part)
            ledger.check()
        submit(tenant, finish)
        return finish

    for tenant in ids:
        submit(tenant, 0)

    now = 0
    while True:
        picked = fair.pick(now)
        if picked is None:
            ready = fair.next_ready()
            if ready is not None:
                # Nothing eligible yet: the earliest queued admission (or
                # an in-flight completion, which may unblock submissions
                # retroactively paced before it) decides the next cycle.
                if inflight:
                    complete_tile(inflight.popleft())
                else:
                    now = max(now, ready)
                continue
            if inflight:
                complete_tile(inflight.popleft())
                continue
            break
        tenant, (k, tile, submit_cycle, admit) = picked
        start = max(now, admit)
        entries, now = issue_tile(tenant, tile, start)
        inflight.append(_InflightTile(tenant=tenant, index=k,
                                      submit=submit_cycle, admit=admit,
                                      entries=entries))
        while len(inflight) > pipeline_depth:
            complete_tile(inflight.popleft())

    dram.drain()
    total_cycles = max(dram.last_finish(),
                       max(last_completion.values(), default=0))

    reports = []
    for spec in specs:
        t = spec.tenant_id
        samples = latencies[t]
        counters = (dram.tenant_counters(t) if tag_requests
                    else {"serviced": 0, "bytes": 0, "row_hits": 0})
        span = last_completion[t] - first_submit.get(t, 0)
        reports.append(TenantReport(
            tenant_id=t,
            tiles=len(samples),
            lines=lines_done[t],
            p50=percentile(samples, 50.0),
            p99=percentile(samples, 99.0),
            mean_latency=(sum(samples) / len(samples)) if samples else 0.0,
            max_admission_delay=admission.worst_delay(t),
            span=max(1, span),
            dram_serviced=counters["serviced"],
            dram_bytes=counters["bytes"],
            dram_row_hits=counters["row_hits"],
            borrowed_inserts=part.borrowed_inserts[t],
            refused_quota=part.refused_quota[t],
            refused_physical=part.refused_physical[t],
            completions=completions[t],
        ))
    return ServeReport(
        engine=config.engine,
        tenants=reports,
        total_cycles=int(total_cycles),
        jain=jain_index([r.throughput for r in reports]),
        starvations=len(bus.starvations),
        escalated_picks=fair.escalated_picks,
    )


# ------------------------------------------------------- canonical scenarios

def tenancy_scenarios(engine: str = "batched") -> dict[str, ServeReport]:
    """The golden-pinned tenant-count x interference grid.

    Shared by ``python -m repro serve --check-golden`` and the tenancy
    sweep benchmark, so the pinned numbers always describe the same runs.
    """
    from dataclasses import replace
    config = replace(DRAMConfig(), engine=engine)
    out: dict[str, ServeReport] = {}
    out["t1"] = serve_run(
        make_tenants(1, tiles=4, tile_lines=96), config=config)
    out["t2"] = serve_run(
        make_tenants(2, tiles=4, tile_lines=96), config=config)
    out["t2_aggressor"] = serve_run(
        make_tenants(2, tiles=4, tile_lines=96, aggressor=1), config=config)
    out["t4"] = serve_run(
        make_tenants(4, tiles=3, tile_lines=96), config=config)
    return out

"""Golden pinning for the tenancy scenarios (tests/golden/tenancy_quick.json).

Mirrors the quick-suite golden harness in :mod:`repro.sim.sweep`: the
canonical scenario grid is re-run and exact-compared field by field, so
fairness metrics and per-tenant SLOs cannot drift silently.  Regenerate
with ``python -m repro serve --update-golden`` after an intentional model
change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serve.service import ServeReport

TENANCY_GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / \
    "golden" / "tenancy_quick.json"


def tenancy_snapshot(scenarios: dict[str, ServeReport]) -> dict:
    """scenario name -> golden digest (exact-comparable JSON)."""
    return {name: report.golden_snapshot()
            for name, report in scenarios.items()}


def diff_tenancy_golden(snapshot: dict, golden: dict) -> list[str]:
    """Exact scenario-by-scenario diff; empty list = bitwise identical."""
    problems: list[str] = []
    for name in sorted(set(golden) | set(snapshot)):
        if name not in snapshot:
            problems.append(f"{name}: missing from this run")
            continue
        if name not in golden:
            problems.append(f"{name}: not in the golden file "
                            f"(run serve --update-golden)")
            continue
        got, want = snapshot[name], golden[name]
        for key in sorted(set(got) | set(want)):
            if key == "tenants":
                continue
            if got.get(key) != want.get(key):
                problems.append(f"{name}.{key}: got {got.get(key)!r}, "
                                f"golden {want.get(key)!r}")
        got_t = got.get("tenants", {})
        want_t = want.get("tenants", {})
        for tenant in sorted(set(got_t) | set(want_t)):
            gt, wt = got_t.get(tenant), want_t.get(tenant)
            if gt is None or wt is None:
                problems.append(f"{name}.tenants[{tenant}]: present in "
                                f"only one side")
                continue
            for key in sorted(set(gt) | set(wt)):
                if gt.get(key) != wt.get(key):
                    problems.append(
                        f"{name}.tenants[{tenant}].{key}: got "
                        f"{gt.get(key)!r}, golden {wt.get(key)!r}")
    return problems


def write_tenancy_golden(scenarios: dict[str, ServeReport],
                         path: str | Path | None = None) -> Path:
    """Pin the scenario snapshots to the golden JSON file; returns it."""
    path = Path(path or TENANCY_GOLDEN_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": "Golden per-tenant QoS metrics for the canonical "
                    "tenancy scenarios (repro.serve.tenancy_scenarios). "
                    "Regenerate with `python -m repro serve "
                    "--update-golden` after an intentional model change.",
        "scenarios": tenancy_snapshot(scenarios),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_tenancy_golden(path: str | Path | None = None) -> dict:
    raw = json.loads(Path(path or TENANCY_GOLDEN_PATH).read_text())
    return raw["scenarios"]

"""Fairness-aware tile scheduler for the serving frontend.

Deficit round-robin over per-tenant queues of *admitted* tiles: every
scheduling round each backlogged tenant earns one quantum of credit, and
the pick goes to the eligible tenant with the most credit (ties break by
tenant id, keeping runs deterministic).  A tenant that was passed over —
its tile not yet ready, or it lost the credit comparison — keeps its
deficit, so sustained service imbalance is self-correcting.

The shim also *consumes* the DRAM schedulers' starvation-escalation
events: every FR-FCFS age-cap override published on the observability bus
(``EventBus.starvations``, PR 5/6) grants one escalated pick to the
least-served backlogged tenant.  DRAM-level starvation pressure thereby
feeds back into frontend ordering instead of being a log line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class _TenantQueue:
    deficit: float = 0.0
    served: int = 0            # tiles served (for least-served escalation)
    items: list[tuple[int, Any]] = field(default_factory=list)  # (ready, x)

    def ready_head(self, now: int) -> bool:
        return bool(self.items) and self.items[0][0] <= now

    def next_ready(self) -> int | None:
        return self.items[0][0] if self.items else None


class FairScheduler:
    """Deficit round-robin with starvation escalation."""

    def __init__(self, tenants: list[int], quantum: float = 1.0,
                 bus: Any | None = None) -> None:
        self.quantum = float(quantum)
        self.queues: dict[int, _TenantQueue] = {
            t: _TenantQueue() for t in tenants
        }
        self.bus = bus
        self._starv_cursor = 0      # bus.starvations consumed so far
        self.escalated_picks = 0

    def push(self, tenant: int, ready: int, item: Any) -> None:
        """Queue one admitted tile, orderable from cycle ``ready``."""
        queue = self.queues[tenant]
        queue.items.append((ready, item))
        queue.items.sort(key=lambda pair: pair[0])

    def pending(self) -> int:
        return sum(len(q.items) for q in self.queues.values())

    def next_ready(self) -> int | None:
        """Earliest cycle at which any queued tile becomes eligible."""
        heads = [q.next_ready() for q in self.queues.values()]
        ready = [h for h in heads if h is not None]
        return min(ready) if ready else None

    def _consume_starvations(self) -> int:
        """New age-cap overrides on the bus since the last pick."""
        if self.bus is None:
            return 0
        fresh = len(self.bus.starvations) - self._starv_cursor
        self._starv_cursor = len(self.bus.starvations)
        return fresh

    def pick(self, now: int) -> tuple[int, Any] | None:
        """Pop the next tile to serve at ``now`` (None if nothing ready)."""
        eligible = [t for t, q in self.queues.items() if q.ready_head(now)]
        if not eligible:
            return None
        backlogged = [t for t, q in self.queues.items() if q.items]
        for tenant in backlogged:
            self.queues[tenant].deficit += self.quantum
        if self._consume_starvations() > 0:
            # Escalation: service pressure at the DRAM level promotes the
            # least-served eligible tenant ahead of the credit order.
            choice = min(eligible,
                         key=lambda t: (self.queues[t].served, t))
            self.escalated_picks += 1
        else:
            choice = max(eligible,
                         key=lambda t: (self.queues[t].deficit, -t))
        queue = self.queues[choice]
        ready, item = queue.items.pop(0)
        queue.deficit = max(0.0, queue.deficit - self.quantum
                            * max(1, len(self.queues)))
        queue.served += 1
        return choice, item

    def service_counts(self) -> dict[int, int]:
        return {t: q.served for t, q in self.queues.items()}

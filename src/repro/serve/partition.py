"""Per-tenant Row Table and request-buffer partitioning.

Isolation here is *structural*: each tenant owns a private
:class:`~repro.dx100.row_table.RowTable`, so no BCAM entry can ever mix
two tenants' words.  What the tenants share is the physical capacity —
``rows_per_slice`` BCAM entry units per bank slice — which this module
budgets with a hard quota plus a work-conserving borrow rule:

* an insert within the tenant's quota is always granted while physical
  capacity remains (the *reservation* guarantee: nobody can steal capacity
  a tenant is entitled to);
* an insert beyond quota is granted only when ``borrow=True`` and the
  slice retains enough headroom to honor every other tenant's unused
  reservation.

Both clauses collapse into one slice invariant, which
:func:`check_partition` verifies and the hypothesis suite attacks:

    sum over tenants of max(units_t, quota_t)  <=  rows_per_slice

The same max-of-use-and-quota rule governs the request-buffer credits in
:class:`BufferLedger`, which paces each tenant's in-flight lines at the
serving frontend.
"""

from __future__ import annotations

from repro.common.types import DRAMCoord
from repro.dx100.row_table import PendingLine, RowTable
from repro.serve.admission import QoSViolation


class PartitionedRowTable:
    """Per-tenant Row Tables under one shared physical slice budget."""

    def __init__(self, quotas: dict[int, int], rows_per_slice: int = 64,
                 cols_per_row: int = 8, borrow: bool = True) -> None:
        if not quotas:
            raise ValueError("need at least one tenant quota")
        for tenant, quota in quotas.items():
            if quota <= 0:
                raise ValueError(f"tenant {tenant}: quota must be positive")
        if sum(quotas.values()) > rows_per_slice:
            raise ValueError(
                f"quotas sum to {sum(quotas.values())} > physical "
                f"rows_per_slice {rows_per_slice}; reservations would be "
                f"unhonorable")
        self.rows_per_slice = rows_per_slice
        self.cols_per_row = cols_per_row
        self.borrow = borrow
        self.quotas = dict(quotas)
        self.tables: dict[int, RowTable] = {
            tenant: RowTable(rows_per_slice, cols_per_row)
            for tenant in quotas
        }
        # Refusal accounting, per tenant: physical-full vs quota-bound.
        self.refused_physical: dict[int, int] = {t: 0 for t in quotas}
        self.refused_quota: dict[int, int] = {t: 0 for t in quotas}
        self.borrowed_inserts: dict[int, int] = {t: 0 for t in quotas}

    def table(self, tenant: int) -> RowTable:
        return self.tables[tenant]

    def slice_total(self, flat_bank: tuple[int, int, int, int]) -> int:
        """Physical BCAM entry units used across all tenants on one slice."""
        return sum(t.slice_units(flat_bank) for t in self.tables.values())

    def try_insert(self, tenant: int, coord: DRAMCoord, line_addr: int,
                   iteration: int, h_bit_fn) -> tuple[bool, int | None]:
        """Insert one word for ``tenant``; refuse on quota or capacity.

        Returns ``(accepted, previous_tail)`` like
        :meth:`RowTable.insert`; a refusal means the caller must drain
        this tenant's table (quota-bound) or the slice (physical-bound)
        before retrying.
        """
        table = self.tables[tenant]
        cost = table.insert_cost(coord, line_addr)
        if cost:
            flat_bank = coord.flat_bank
            used = table.slice_units(flat_bank)
            total = self.slice_total(flat_bank)
            if total + cost > self.rows_per_slice:
                self.refused_physical[tenant] += 1
                return False, None
            quota = self.quotas[tenant]
            if used + cost > quota:
                if not self.borrow:
                    self.refused_quota[tenant] += 1
                    return False, None
                reserved_others = sum(
                    max(0, self.quotas[other]
                        - self.tables[other].slice_units(flat_bank))
                    for other in self.quotas if other != tenant
                )
                if total + cost + reserved_others > self.rows_per_slice:
                    self.refused_quota[tenant] += 1
                    return False, None
                self.borrowed_inserts[tenant] += 1
        return table.insert(coord, line_addr, iteration, h_bit_fn)

    def drain(self, tenant: int) -> list[PendingLine]:
        """Drain one tenant's table in its interleaved issue order."""
        return self.tables[tenant].drain()

    def occupancy(self, tenant: int) -> int:
        return self.tables[tenant].occupancy


def check_partition(part: PartitionedRowTable) -> None:
    """Verify the slice invariant and structural tenant isolation.

    Raises :class:`QoSViolation` when any slice exceeds physical capacity,
    when a tenant holds more than its quota without borrow headroom (the
    ``sum max(use, quota) <= physical`` inequality), or when one cache
    line is tracked by two tenants at once (an entry "mixing" tenants).
    """
    slices: set[tuple[int, int, int, int]] = set()
    owner: dict[int, int] = {}
    for tenant, table in part.tables.items():
        for flat_bank, _row, line_addr, _words in table.entries():
            slices.add(flat_bank)
            prev = owner.get(line_addr)
            if prev is not None and prev != tenant:
                raise QoSViolation(
                    f"line {line_addr:#x} tracked by tenants {prev} "
                    f"and {tenant}: entry mixes tenants")
            owner[line_addr] = tenant
    for flat_bank in slices:
        budget = 0
        total = 0
        for tenant, table in part.tables.items():
            used = table.slice_units(flat_bank)
            total += used
            budget += max(used, part.quotas[tenant])
        if total > part.rows_per_slice:
            raise QoSViolation(
                f"slice {flat_bank}: {total} entry units exceed physical "
                f"capacity {part.rows_per_slice}")
        if budget > part.rows_per_slice:
            over = {
                t: table.slice_units(flat_bank)
                for t, table in part.tables.items()
                if table.slice_units(flat_bank) > part.quotas[t]
            }
            raise QoSViolation(
                f"slice {flat_bank}: over-quota use {over} leaves "
                f"unhonorable reservations (sum max(use, quota) = "
                f"{budget} > {part.rows_per_slice})")


class BufferLedger:
    """Per-tenant in-flight line credits at the serving frontend.

    A frontend-level pacing mechanism, not a second cycle-accurate request
    buffer: the DRAM model's per-channel buffers stay authoritative for
    timing, while the ledger bounds how many lines a tenant may have
    outstanding, with the same hard-quota + work-conserving-borrow rule as
    the Row Table partition.
    """

    def __init__(self, quotas: dict[int, int], capacity: int,
                 borrow: bool = True) -> None:
        if sum(quotas.values()) > capacity:
            raise ValueError("buffer quotas exceed physical capacity")
        self.quotas = dict(quotas)
        self.capacity = capacity
        self.borrow = borrow
        self.inflight: dict[int, int] = {t: 0 for t in quotas}
        self.peak: dict[int, int] = {t: 0 for t in quotas}

    def try_acquire(self, tenant: int, lines: int = 1) -> bool:
        """Reserve ``lines`` credits for ``tenant`` if the rule allows."""
        used = self.inflight[tenant]
        budget = sum(
            max(self.inflight[t], self.quotas[t])
            for t in self.quotas if t != tenant
        )
        if used + lines > self.quotas[tenant]:
            if not self.borrow:
                return False
            if budget + used + lines > self.capacity:
                return False
        elif budget + max(used + lines, self.quotas[tenant]) > self.capacity:
            return False
        self.inflight[tenant] = used + lines
        if self.inflight[tenant] > self.peak[tenant]:
            self.peak[tenant] = self.inflight[tenant]
        return True

    def release(self, tenant: int, lines: int = 1) -> None:
        self.inflight[tenant] -= lines

    def check(self) -> None:
        """Credits never negative; ``sum max(use, quota)`` within capacity."""
        for tenant, used in self.inflight.items():
            if used < 0:
                raise QoSViolation(
                    f"tenant {tenant}: negative in-flight credit {used}")
        budget = sum(max(self.inflight[t], self.quotas[t])
                     for t in self.quotas)
        if budget > self.capacity:
            raise QoSViolation(
                f"in-flight budget {budget} exceeds buffer capacity "
                f"{self.capacity} (inflight={self.inflight})")

"""Per-tenant token-bucket admission control.

The admission controller is the serving layer's first QoS mechanism: each
tenant's tile requests spend tokens (one per line) from a private bucket
that refills at the tenant's contracted rate.  Because a tile's admission
cycle depends *only* on its own tenant's bucket, a compliant tenant — one
submitting at or below its refill rate — is admitted within a bounded
delay no matter how aggressively other tenants submit.  That bound is the
non-starvation invariant the property tests in
``tests/serve/test_tenancy_invariants.py`` prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.tenant import TenantSpec


class QoSViolation(AssertionError):
    """A machine-checked tenancy invariant failed."""


class TokenBucket:
    """A token bucket over simulated cycles.

    Tokens refill continuously at ``rate`` per cycle up to ``burst``.
    :meth:`spend` only debits when the balance covers the cost, so the
    balance can never go negative through the public API —
    :func:`check_buckets` asserts exactly that, and the mutation test
    drives :meth:`force_spend` (a test-only bypass) to prove the checker
    has teeth.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = 0            # cycle of the last refill

    def refill(self, now: int) -> None:
        """Advance the bucket to cycle ``now``."""
        if now > self.updated:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def ready_at(self, cost: float, now: int) -> int:
        """Earliest cycle at or after ``now`` when ``cost`` is affordable.

        A prior admission may already have advanced ``updated`` past
        ``now`` (its ready cycle lay in the future), so the refill that
        pays for this request can only accrue from ``max(now, updated)``
        — which also makes per-tenant admission cycles monotone by
        construction.
        """
        if cost > self.burst:
            raise QoSViolation(
                f"request cost {cost} exceeds bucket burst {self.burst}")
        base = max(now, self.updated)
        self.refill(base)
        if self.tokens >= cost:
            return base
        deficit = cost - self.tokens
        return base + int(-(-deficit // self.rate))   # ceil division

    def spend(self, cost: float, now: int) -> bool:
        """Refill to ``now`` and debit ``cost`` iff the balance covers it."""
        self.refill(now)
        if self.tokens + 1e-9 < cost:
            return False
        self.tokens = max(0.0, self.tokens - cost)
        return True

    def force_spend(self, cost: float) -> None:
        """Debit unconditionally (test hook: seeds accounting violations)."""
        self.tokens -= cost


@dataclass
class AdmissionRecord:
    """One admitted tile, for the audit trail and the delay invariants."""

    tenant: int
    submit: int        # cycle the client submitted the tile
    admit: int         # cycle admission released it to the scheduler
    cost: float        # tokens spent (lines in the tile)
    seq: int           # global submission order (ties break FIFO)

    @property
    def delay(self) -> int:
        return self.admit - self.submit


class AdmissionController:
    """Token buckets plus a batching queue in (ready, seq) order.

    Admission processes strictly by earliest ready cycle (sequence number
    breaking ties), so one tenant's backlog can never reorder another's
    admitted tiles.
    """

    def __init__(self, specs: list[TenantSpec]) -> None:
        self.buckets: dict[int, TokenBucket] = {
            spec.tenant_id: TokenBucket(spec.refill_rate, spec.burst)
            for spec in specs
        }
        self.log: list[AdmissionRecord] = []
        self._seq = 0

    def admit(self, tenant: int, cost: float, submit: int) -> int:
        """Admit one tile; returns the admission cycle (>= ``submit``)."""
        bucket = self.buckets[tenant]
        ready = bucket.ready_at(cost, submit)
        if not bucket.spend(cost, ready):
            raise QoSViolation(
                f"tenant {tenant}: bucket not affordable at its own "
                f"ready cycle {ready}")
        record = AdmissionRecord(tenant=tenant, submit=submit, admit=ready,
                                 cost=cost, seq=self._seq)
        self._seq += 1
        self.log.append(record)
        return ready

    def worst_delay(self, tenant: int) -> int:
        """Largest admission delay the tenant has seen (0 if none)."""
        return max((r.delay for r in self.log if r.tenant == tenant),
                   default=0)


# ---------------------------------------------------------------- checkers

def check_buckets(controller: AdmissionController) -> None:
    """Token accounting must never go negative (per bucket)."""
    for tenant, bucket in controller.buckets.items():
        if bucket.tokens < 0:
            raise QoSViolation(
                f"tenant {tenant}: token balance {bucket.tokens} < 0")
        if bucket.tokens > bucket.burst + 1e-9:
            raise QoSViolation(
                f"tenant {tenant}: token balance {bucket.tokens} exceeds "
                f"burst {bucket.burst}")


def check_admission_order(controller: AdmissionController) -> None:
    """Per tenant, admission cycles must be monotone in submission order."""
    last: dict[int, int] = {}
    for record in controller.log:
        prev = last.get(record.tenant)
        if prev is not None and record.admit < prev:
            raise QoSViolation(
                f"tenant {record.tenant}: admission went backwards "
                f"({record.admit} after {prev})")
        last[record.tenant] = record.admit


def compliant_delay_bound(spec: TenantSpec) -> int:
    """Worst-case admission delay for a compliant tenant.

    A tenant submitting tiles of ``tile_lines`` cost no faster than its
    refill rate can wait at most the time to refill one tile from an empty
    bucket: ``ceil(tile_lines / refill_rate)`` cycles.  Independent of any
    other tenant — the starvation-freedom guarantee.
    """
    return int(-(-spec.tile_lines // spec.refill_rate))

"""DX100-as-a-service: the multi-tenant QoS serving layer.

Admission (token buckets), fairness (deficit round-robin with DRAM
starvation escalation), and isolation (per-tenant Row Table / request
buffer partitioning with hard quotas and work-conserving borrow), with
machine-checked invariants throughout.  See ``docs/MODEL.md`` and the
"Tenancy sweep" section of ``EXPERIMENTS.md``.
"""

from repro.serve.admission import (AdmissionController, QoSViolation,
                                   TokenBucket, check_admission_order,
                                   check_buckets, compliant_delay_bound)
from repro.serve.partition import (BufferLedger, PartitionedRowTable,
                                   check_partition)
from repro.serve.scheduler import FairScheduler
from repro.serve.service import (ServeReport, TenantReport, serve_run,
                                 tenancy_scenarios)
from repro.serve.tenant import TenantSpec, jain_index, make_tenants, percentile

__all__ = [
    "AdmissionController", "BufferLedger", "FairScheduler",
    "PartitionedRowTable", "QoSViolation", "ServeReport", "TenantReport",
    "TenantSpec", "TokenBucket", "check_admission_order", "check_buckets",
    "check_partition", "compliant_delay_bound", "jain_index", "make_tenants",
    "percentile", "serve_run", "tenancy_scenarios",
]

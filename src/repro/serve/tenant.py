"""Tenant descriptions and fairness/SLO arithmetic for the serving layer.

A *tenant* is one client stream submitting tile requests to a shared DX100
deployment.  Each tenant owns a private address region (so isolation is
checkable structurally), a token-bucket admission contract, and a
deterministic per-tenant workload seed — two serve runs with the same specs
are bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import CACHE_LINE


@dataclass(frozen=True)
class TenantSpec:
    """One client stream's contract with the serving layer.

    ``refill_rate`` / ``burst`` parameterize the admission token bucket
    (tokens are spent one per requested line).  ``hot_fraction`` skews the
    generated indirect accesses: that fraction of lines is drawn from the
    first ``hot_lines`` of the region, modelling the power-law index
    distributions real tenants generate (PAPERS.md, SpMV near-memory
    indexing).
    """

    tenant_id: int
    tiles: int                  # tiles this tenant submits (closed loop)
    tile_lines: int             # lines requested per tile
    region_lo: int              # private physical region [lo, hi)
    region_hi: int
    refill_rate: float = 0.25   # admission tokens (lines) per cycle
    burst: float = 256.0        # bucket capacity, in lines
    hot_fraction: float = 0.5   # fraction of lines drawn from the hot set
    hot_lines: int = 64         # size of the hot set, in lines
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError("tenant_id must be >= 0 (-1 means untagged)")
        if self.region_hi <= self.region_lo:
            raise ValueError("empty tenant region")
        if self.refill_rate <= 0:
            raise ValueError("refill_rate must be positive")
        if self.burst < self.tile_lines:
            raise ValueError(
                "burst smaller than one tile can never admit a tile")

    def generate_tiles(self, line_bytes: int = CACHE_LINE) -> list[np.ndarray]:
        """Deterministic per-tile line-address arrays inside the region."""
        rng = np.random.RandomState(0xD100 + self.seed
                                    + 7919 * self.tenant_id)
        lines_in_region = max(1, (self.region_hi - self.region_lo)
                              // line_bytes)
        hot = min(self.hot_lines, lines_in_region)
        tiles: list[np.ndarray] = []
        for _ in range(self.tiles):
            n_hot = int(round(self.tile_lines * self.hot_fraction))
            picks_hot = rng.randint(0, hot, size=n_hot)
            picks_cold = rng.randint(0, lines_in_region,
                                     size=self.tile_lines - n_hot)
            picks = np.concatenate([picks_hot, picks_cold])
            rng.shuffle(picks)
            tiles.append(self.region_lo
                         + picks.astype(np.int64) * line_bytes)
        return tiles


def make_tenants(count: int, tiles: int = 4, tile_lines: int = 128,
                 region_bytes: int = 1 << 22, seed: int = 0,
                 refill_rate: float = 0.25, burst: float = 512.0,
                 aggressor: int = -1,
                 aggressor_boost: float = 4.0) -> list[TenantSpec]:
    """Build ``count`` tenants over disjoint regions.

    ``aggressor`` (an index, -1 = none) marks one tenant as an interference
    generator: its token refill is ``aggressor_boost`` times everyone
    else's, and its accesses lose all hot-set locality
    (``hot_fraction=0``) — a uniform-random flood over its whole region
    that keeps rows churning in the shared banks, the co-run contention
    pattern the paper's Section 1 motivates.
    """
    if count < 1:
        raise ValueError("need at least one tenant")
    specs = []
    for t in range(count):
        flood = t == aggressor
        rate = refill_rate * (aggressor_boost if flood else 1.0)
        specs.append(TenantSpec(
            tenant_id=t, tiles=tiles, tile_lines=tile_lines,
            region_lo=t * region_bytes, region_hi=(t + 1) * region_bytes,
            refill_rate=rate, burst=max(burst, float(tile_lines)),
            hot_fraction=0.0 if flood else 0.5,
            seed=seed,
        ))
    return specs


# ------------------------------------------------------------- SLO metrics

def percentile(samples: list[int], p: float) -> int:
    """Nearest-rank percentile of integer latency samples (0 if empty).

    Nearest-rank (not interpolated) so pinned golden values stay integral
    and engine-independent.
    """
    if not samples:
        return 0
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile out of range")
    ordered = sorted(samples)
    rank = max(1, int(np.ceil(p / 100.0 * len(ordered))))
    return int(ordered[rank - 1])


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal allocations; 1/n means one tenant got
    everything.  Defined as 1.0 for empty or all-zero inputs.
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("fairness over negative allocations is undefined")
    total = float(sum(values))
    if total == 0.0:
        return 1.0
    squares = float(sum(v * v for v in values))
    return total * total / (len(values) * squares)

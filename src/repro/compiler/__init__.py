"""The DX100 compiler: loop IR, passes, and DX100 code generation."""

from repro.compiler.analysis import (
    IndirectAccess, find_indirect_accesses, is_legal, legal_accesses,
)
from repro.compiler.hoist import (
    DirectStore, OffloadPlan, PackedLoad, PackedStore, hoist,
)
from repro.compiler.interp import Interpreter
from repro.compiler.ir import (
    ArrayDecl, Assign, BinOp, Const, Function, If, Load, Loop, Store, Var,
    loads_in, read_arrays, substitute, vars_in, written_arrays,
)
from repro.compiler.lowering import Binding, LoweringError, lower_chunk
from repro.compiler.pipeline import (
    CompiledKernel, bind_arrays, offload_kernel, offload_range_kernel,
    reference_run,
)
from repro.compiler.tiling import innermost, tile_loop

__all__ = [
    "ArrayDecl", "Assign", "BinOp", "Binding", "CompiledKernel", "Const",
    "DirectStore", "Function", "If", "IndirectAccess", "Interpreter", "Load",
    "Loop", "LoweringError", "OffloadPlan", "PackedLoad", "PackedStore",
    "Store", "Var", "bind_arrays", "find_indirect_accesses", "hoist",
    "innermost", "is_legal", "legal_accesses", "loads_in", "lower_chunk",
    "offload_kernel", "offload_range_kernel", "read_arrays",
    "reference_run", "substitute",
    "tile_loop", "vars_in", "written_arrays",
]

"""Indirect-access detection and legality analysis (Section 4.2).

Detection follows the paper's approach: a DFS from the loop induction
variable over use-def chains, flagging loads whose index expression itself
contains a load (``A[B[i]]``, ``A[B[f(C[i])]]``, ...).

Legality enforces the two paper conditions:

1. no statement in the loop stores to an array the hoisted access reads
   (directly or through its index chain) — the Gauss-Seidel exclusion;
2. the loop is parallel (no loop-carried dependences), required to reorder
   iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import (
    Assign, BinOp, Expr, If, Load, Loop, Stmt, Store,
    loads_in, substitute, vars_in, written_arrays,
)


@dataclass
class IndirectAccess:
    """One detected indirect access within a loop."""

    kind: str                  # "load", "store", or "rmw"
    array: str
    index: Expr                # fully substituted index expression
    value: Expr | None = None  # for store/rmw: fully substituted value
    accum: object = None       # AluOp for rmw
    cond: Expr | None = None   # guarding condition, substituted
    stmt: Stmt | None = None   # the originating statement

    @property
    def depth(self) -> int:
        """Levels of indirection in the index expression."""
        def loads_depth(expr: Expr) -> int:
            if isinstance(expr, Load):
                return 1 + loads_depth(expr.index)
            if isinstance(expr, BinOp):
                return max(loads_depth(expr.lhs), loads_depth(expr.rhs))
            return 0
        return loads_depth(self.index)


def _definitions(stmts: list[Stmt]) -> dict[str, Expr]:
    """Last-write use-def bindings for scalar assignments in a body."""
    defs: dict[str, Expr] = {}
    for stmt in stmts:
        if isinstance(stmt, Assign):
            defs[stmt.var] = stmt.expr
    return defs


def _is_indirect_index(expr: Expr, loop_var: str) -> bool:
    """True when the (substituted) index depends on another load."""
    return bool(loads_in(expr)) and loop_var in vars_in(expr)


def find_indirect_accesses(loop: Loop) -> list[IndirectAccess]:
    """Detect indirect loads/stores/RMWs in a single (innermost) loop."""
    defs = _definitions(loop.body)
    found: list[IndirectAccess] = []

    def scan(stmts: list[Stmt], cond: Expr | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                for load in loads_in(substitute(stmt.expr, defs)):
                    _consider_load(load, cond, stmt)
            elif isinstance(stmt, Store):
                index = substitute(stmt.index, defs)
                value = substitute(stmt.value, defs)
                if _is_indirect_index(index, loop.var):
                    kind = "rmw" if stmt.accum is not None else "store"
                    found.append(IndirectAccess(
                        kind=kind, array=stmt.array, index=index,
                        value=value, accum=stmt.accum, cond=cond, stmt=stmt))
                for load in loads_in(value):
                    _consider_load(load, cond, stmt)
                for load in loads_in(index):
                    _consider_load(load, cond, stmt)
            elif isinstance(stmt, If):
                scan(stmt.body, substitute(stmt.cond, defs))

    def _consider_load(load: Load, cond: Expr | None, stmt: Stmt) -> None:
        if _is_indirect_index(load.index, loop.var):
            found.append(IndirectAccess(kind="load", array=load.array,
                                        index=load.index, cond=cond,
                                        stmt=stmt))

    scan(loop.body, None)
    # Deduplicate identical loads appearing in several statements.
    unique: list[IndirectAccess] = []
    seen = set()
    for acc in found:
        key = (acc.kind, acc.array, repr(acc.index), repr(acc.cond),
               repr(acc.value), acc.accum)
        if key not in seen:
            seen.add(key)
            unique.append(acc)
    # Drop loads nested inside another detected access's index chain: the
    # outer packed op subsumes them (lowering compiles the whole chain).
    def nested(acc: IndirectAccess) -> bool:
        me = repr(Load(acc.array, acc.index))
        return acc.kind == "load" and any(
            other is not acc and me in repr(other.index)
            for other in unique
        )

    return [acc for acc in unique if not nested(acc)]


def arrays_feeding(access: IndirectAccess) -> set[str]:
    """Every array read by the access (its target + index chain + value)."""
    out = {access.array} if access.kind == "load" else set()
    for expr in (access.index, access.value, access.cond):
        if expr is not None:
            out |= {load.array for load in loads_in(expr)}
    return out


def is_legal(loop: Loop, access: IndirectAccess) -> bool:
    """The paper's hoisting legality check."""
    if not loop.parallel:
        return False
    written = written_arrays(loop.body)
    reads = arrays_feeding(access)
    if access.kind == "load":
        # Hoisting a load of an array the loop also writes could read stale
        # data (Gauss-Seidel); same for any array in the index chain.
        return not (reads & written) and access.array not in written
    # Sinking a store/RMW: its target may be written only by itself, and its
    # inputs must not alias anything written.
    other_writes = written - {access.array}
    if reads & written:
        return False
    # Target array written by more than this statement?
    count = _store_count(loop.body, access.array)
    return count == 1 and access.array not in other_writes


def _store_count(stmts: list[Stmt], array: str) -> int:
    count = 0
    for stmt in stmts:
        if isinstance(stmt, Store) and stmt.array == array:
            count += 1
        elif isinstance(stmt, If):
            count += _store_count(stmt.body, array)
        elif isinstance(stmt, Loop):
            count += _store_count(stmt.body, array)
    return count


def legal_accesses(loop: Loop) -> list[IndirectAccess]:
    return [a for a in find_indirect_accesses(loop) if is_legal(loop, a)]

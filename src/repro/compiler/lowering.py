"""Code generation: packed operations -> DX100 API calls (Figure 7 d).

Lowering runs per tile chunk [lo, hi): each index/value/condition expression
compiles to a chain of SLD / ILD / ALU instructions producing a tile, then
the packed access itself becomes ILD / IST / IRMW and sunk direct stores
become SST.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import AluOp, DType
from repro.compiler.hoist import OffloadPlan
from repro.compiler.ir import BinOp, Const, Expr, Load, Var
from repro.dx100.api import ProgramBuilder


@dataclass(frozen=True)
class Binding:
    """Where an IR array lives in simulated memory."""

    base: int
    dtype: DType


class LoweringError(Exception):
    pass


class _ChunkLowerer:
    def __init__(self, plan: OffloadPlan, bindings: dict[str, Binding],
                 pb: ProgramBuilder, lo: int, hi: int,
                 var_tiles: dict[str, int] | None = None) -> None:
        self.plan = plan
        self.bindings = bindings
        self.pb = pb
        self.lo = lo
        self.hi = hi
        self.loop_var = plan.loop.var
        # Induction variables materialized as tiles (range-fused loops):
        # Load(A, Var(v)) for v in var_tiles lowers to ILD through the tile.
        self.var_tiles = var_tiles or {}
        self._tiles: dict[str, int] = {}   # expr repr -> tile id
        self._streams: dict[str, int] = {} # packed stream name -> tile id
        self._index_dtype = DType.I64

    # ------------------------------------------------------------- exprs

    def compile(self, expr: Expr) -> int:
        """Compile an expression to a tile id covering [lo, hi)."""
        key = repr(expr)
        if key in self._tiles:
            return self._tiles[key]
        tile = self._compile(expr)
        self._tiles[key] = tile
        return tile

    def _compile(self, expr: Expr) -> int:
        pb = self.pb
        if isinstance(expr, Var):
            if expr.name in self._streams:
                return self._streams[expr.name]
            if expr.name in self.var_tiles:
                return self.var_tiles[expr.name]
            if expr.name == self.loop_var:
                raise LoweringError(
                    "bare loop-variable tiles are not materializable; "
                    "use a Load or wrap in an array access"
                )
            raise LoweringError(f"unbound variable {expr.name!r}")
        if isinstance(expr, Const):
            return self._const_tile(expr.value)
        if isinstance(expr, Load):
            binding = self._binding(expr.array)
            if (isinstance(expr.index, Var)
                    and expr.index.name in self.var_tiles):
                return pb.ild(binding.dtype, binding.base,
                              self.var_tiles[expr.index.name])
            if expr.index == Var(self.loop_var):
                return pb.sld(binding.dtype, binding.base, self.lo, self.hi)
            index_tile = self.compile(expr.index)
            return pb.ild(binding.dtype, binding.base, index_tile)
        if isinstance(expr, BinOp):
            lhs_const = isinstance(expr.lhs, Const)
            rhs_const = isinstance(expr.rhs, Const)
            if lhs_const and rhs_const:
                raise LoweringError("constant-folding should happen earlier")
            if rhs_const:
                t = self.compile(expr.lhs)
                return pb.alus(self._index_dtype, expr.op, t, expr.rhs.value)
            if lhs_const:
                if expr.op in (AluOp.SUB, AluOp.SHR, AluOp.SHL):
                    raise LoweringError(
                        f"non-commutative op {expr.op} with constant lhs"
                    )
                t = self.compile(expr.rhs)
                return pb.alus(self._index_dtype, expr.op, t, expr.lhs.value)
            t1 = self.compile(expr.lhs)
            t2 = self.compile(expr.rhs)
            return pb.aluv(self._index_dtype, expr.op, t1, t2)
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _const_tile(self, value) -> int:
        """Materialize a constant tile: zero out any existing tile, add c."""
        if not self._tiles:
            raise LoweringError(
                "constant tile requires a prior stream in the chunk"
            )
        some_tile = next(iter(self._tiles.values()))
        zeros = self.pb.alus(self._index_dtype, AluOp.MUL, some_tile, 0)
        return self.pb.alus(self._index_dtype, AluOp.ADD, zeros, value)

    def _binding(self, array: str) -> Binding:
        if array not in self.bindings:
            raise LoweringError(f"array {array!r} has no memory binding")
        return self.bindings[array]

    # -------------------------------------------------------------- plan

    def lower(self) -> dict[str, int]:
        pb = self.pb
        for pload in self.plan.packed_loads:
            cond_tile = (self.compile(pload.cond)
                         if pload.cond is not None else None)
            binding = self._binding(pload.array)
            index_tile = self.compile(pload.index)
            dest = pb.ild(binding.dtype, binding.base, index_tile,
                          tc=cond_tile)
            self._streams[pload.dest] = dest
            self._tiles[repr(Load(pload.array, pload.index))] = dest
        for pstore in self.plan.packed_stores:
            cond_tile = (self.compile(pstore.cond)
                         if pstore.cond is not None else None)
            binding = self._binding(pstore.array)
            index_tile = self.compile(pstore.index)
            value_tile = self.compile(pstore.value)
            if pstore.accum is None:
                pb.ist(binding.dtype, binding.base, index_tile, value_tile,
                       tc=cond_tile)
            else:
                pb.irmw(binding.dtype, binding.base, pstore.accum,
                        index_tile, value_tile, tc=cond_tile)
        for dstore in self.plan.direct_stores:
            cond_tile = (self.compile(dstore.cond)
                         if dstore.cond is not None else None)
            binding = self._binding(dstore.array)
            value_tile = self.compile(dstore.value)
            pb.sst(binding.dtype, binding.base, value_tile,
                   self.lo, self.hi, tc=cond_tile)
        wait_tiles = tuple(self._streams.values())
        if wait_tiles:
            pb.wait(*wait_tiles)
        return dict(self._streams)


def lower_chunk(plan: OffloadPlan, bindings: dict[str, Binding],
                pb: ProgramBuilder, lo: int, hi: int,
                var_tiles: dict[str, int] | None = None) -> dict[str, int]:
    """Lower one tile chunk of an offload plan; returns stream->tile ids.

    ``var_tiles`` binds induction variables to existing scratchpad tiles
    (the Range Fuser outputs) for fused-range kernels.
    """
    return _ChunkLowerer(plan, bindings, pb, lo, hi, var_tiles).lower()

"""Loop tiling (the first compiler transformation, Figure 7 b).

Tiling exposes bulk operations: the tiled inner loop covers one DX100 tile
of iterations, which hoisting then converts into packed operations.
"""

from __future__ import annotations

from repro.common.types import AluOp
from repro.compiler.ir import BinOp, Const, Loop, Var


def tile_loop(loop: Loop, tile: int) -> Loop:
    """``for i in lo..hi`` -> ``for i_t in lo..hi step tile:
    for i in i_t..min(i_t+tile, hi)``."""
    if tile <= 0:
        raise ValueError("tile size must be positive")
    if loop.step != 1:
        raise ValueError("only unit-stride loops are tiled")
    outer_var = loop.var + "_t"
    inner = Loop(
        var=loop.var,
        lo=Var(outer_var),
        hi=BinOp(AluOp.MIN, BinOp(AluOp.ADD, Var(outer_var), Const(tile)),
                 loop.hi),
        body=loop.body,
        parallel=loop.parallel,
    )
    return Loop(var=outer_var, lo=loop.lo, hi=loop.hi, body=[inner],
                step=tile, parallel=loop.parallel)


def innermost(loop: Loop) -> Loop:
    """The innermost loop of a perfectly nested tile structure."""
    current = loop
    while len(current.body) == 1 and isinstance(current.body[0], Loop):
        current = current.body[0]
    return current

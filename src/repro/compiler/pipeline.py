"""The full compiler pipeline: tile -> detect/hoist -> lower (Section 4.2).

:func:`offload_kernel` takes an IR :class:`Function` whose body is a single
parallel loop, and produces a DX100 program covering every tile chunk,
mirroring the paper's three MLIR passes.  The resulting program runs on
either the functional or the timing DX100 model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DX100Config
from repro.compiler.hoist import OffloadPlan, hoist
from repro.compiler.interp import Interpreter
from repro.compiler.ir import Const, Function, Loop
from repro.compiler.lowering import Binding, lower_chunk
from repro.compiler.tiling import tile_loop
from repro.dx100.api import ProgramBuilder
from repro.dx100.hostmem import HostMemory


@dataclass
class CompiledKernel:
    function: Function
    plan: OffloadPlan
    program: list
    chunks: list[tuple[int, int]]
    streams_per_chunk: list[dict[str, int]]


def bind_arrays(function: Function, hostmem: HostMemory,
                arrays) -> dict[str, Binding]:
    """Place the function's arrays into simulated memory."""
    bindings: dict[str, Binding] = {}
    for name, decl in function.arrays.items():
        base = hostmem.place(name, arrays[name])
        bindings[name] = Binding(base=base, dtype=decl.dtype)
    return bindings


def offload_kernel(function: Function, bindings: dict[str, Binding],
                   config: DX100Config | None = None,
                   tile: int | None = None) -> CompiledKernel:
    """Compile a single-loop kernel to a DX100 program."""
    if len(function.body) != 1 or not isinstance(function.body[0], Loop):
        raise ValueError("offload_kernel expects a single top-level loop")
    loop = function.body[0]
    if not isinstance(loop.lo, Const) or not isinstance(loop.hi, Const):
        raise ValueError("loop bounds must be constants at compile time")
    config = config or DX100Config()
    tile = tile or config.tile_elems

    tiled = tile_loop(loop, tile)
    inner = tiled.body[0]
    assert isinstance(inner, Loop)
    plan = hoist(inner)
    if not (plan.packed_loads or plan.packed_stores):
        raise ValueError("kernel has no legal indirect access to offload")

    lo, hi = int(loop.lo.value), int(loop.hi.value)
    chunks = [(start, min(start + tile, hi)) for start in range(lo, hi, tile)]
    streams_per_chunk = []
    program: list = []
    for c_lo, c_hi in chunks:
        pb = ProgramBuilder(config)
        streams = lower_chunk(plan, bindings, pb, c_lo, c_hi)
        streams_per_chunk.append(streams)
        program.extend(pb.build())
    return CompiledKernel(function=function, plan=plan, program=program,
                          chunks=chunks, streams_per_chunk=streams_per_chunk)


def reference_run(function: Function, arrays) -> dict:
    """Interpret the original kernel on copies of the arrays."""
    copies = {name: arr.copy() for name, arr in arrays.items()}
    Interpreter(function, copies).run()
    return copies


def _match_range_nest(function: Function):
    """Recognize ``for i in 0..N: for j in H[i]..H[i+1]: body``.

    Returns (outer, inner, offsets_array_name) or raises ValueError.
    """
    from repro.common.types import AluOp
    from repro.compiler.ir import BinOp, Load, Var

    if len(function.body) != 1 or not isinstance(function.body[0], Loop):
        raise ValueError("expected a single top-level loop")
    outer = function.body[0]
    if len(outer.body) != 1 or not isinstance(outer.body[0], Loop):
        raise ValueError("expected a perfectly nested range loop")
    inner = outer.body[0]
    lo, hi = inner.lo, inner.hi
    if not (isinstance(lo, Load) and isinstance(lo.index, Var)
            and lo.index.name == outer.var):
        raise ValueError("inner lower bound must be H[i]")
    plus_one = BinOp(AluOp.ADD, Var(outer.var), Const(1))
    if not (isinstance(hi, Load) and hi.array == lo.array
            and hi.index == plus_one):
        raise ValueError("inner upper bound must be H[i+1]")
    return outer, inner, lo.array


def offload_range_kernel(function: Function, bindings: dict[str, Binding],
                         offsets, config: DX100Config | None = None,
                         tile: int | None = None) -> CompiledKernel:
    """Compile a direct range-loop kernel (``j = H[i] to H[i+1]``, Table 1)
    through the Range Fuser.

    ``offsets`` is the H array's contents (needed to chunk the fused inner
    index space to tile capacity).  Inside the lowered program the inner
    induction variable ``j`` and outer variable ``i`` become Range Fuser
    output tiles, so ``C[j]`` lowers to an indirect load through the fused
    index tile and ``X[i]`` through the outer tile.
    """
    from repro.dx100.range_fuser import plan_range_chunks
    from repro.common.types import DType

    config = config or DX100Config()
    tile = tile or config.tile_elems
    outer, inner, h_name = _match_range_nest(function)
    if h_name not in bindings:
        raise ValueError(f"offsets array {h_name!r} has no binding")
    plan = hoist(inner)
    if not (plan.packed_loads or plan.packed_stores or plan.direct_stores):
        raise ValueError("kernel has no legal indirect access to offload")

    n = int(outer.hi.value) - int(outer.lo.value)
    lows, highs = offsets[:n], offsets[1:n + 1]
    chunks = [(r0, r1) for r0, r1 in plan_range_chunks(lows, highs, tile)
              if highs[r1 - 1] > lows[r0]]
    h_binding = bindings[h_name]
    program: list = []
    streams_per_chunk = []
    for r0, r1 in chunks:
        pb = ProgramBuilder(config)
        t_lo = pb.sld(h_binding.dtype, h_binding.base, r0, r1)
        t_hi = pb.sld(h_binding.dtype, h_binding.base, r0 + 1, r1 + 1)
        t_outer, t_inner = pb.rng(t_lo, t_hi, outer_base=r0)
        streams = lower_chunk(
            plan, bindings, pb, int(offsets[r0]), int(offsets[r1]),
            var_tiles={outer.var: t_outer, inner.var: t_inner})
        streams_per_chunk.append(streams)
        program.extend(pb.build())
    return CompiledKernel(function=function, plan=plan, program=program,
                          chunks=chunks, streams_per_chunk=streams_per_chunk)

"""Hoisting and sinking of packed operations (Figure 7 c).

Legal indirect loads hoist out of the inner loop into ``PackedLoad``
operations; indirect stores/RMWs sink into ``PackedStore`` operations.
Inside the residual loop body the hoisted load is replaced by a reference
to the packed stream (a plain Var naming it — the ``dequeue`` of the
paper's structured ops).  Direct stores whose value is computable from
packed streams also sink (as streaming stores), which is what makes fully
offloadable kernels like ``C[i] = A[B[i]]`` leave an empty residual loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.analysis import find_indirect_accesses, is_legal
from repro.compiler.ir import (
    Assign, BinOp, Const, Expr, If, Load, Loop, Stmt, Store, Var,
    substitute,
)


@dataclass
class PackedLoad:
    """A hoisted indirect load: one bulk gather per tile chunk."""

    dest: str
    array: str
    index: Expr
    cond: Expr | None = None


@dataclass
class PackedStore:
    """A sunk indirect store / RMW (the paper's packed_store/packed_RMW)."""

    array: str
    index: Expr
    value: Expr
    accum: object = None      # AluOp for RMW
    cond: Expr | None = None


@dataclass
class DirectStore:
    """A sunk streaming store: ``array[i] = value`` over the whole tile."""

    array: str
    value: Expr               # in terms of packed-stream Vars and the loop var
    cond: Expr | None = None


@dataclass
class OffloadPlan:
    """Everything hoisting extracted from one inner loop."""

    loop: Loop
    packed_loads: list[PackedLoad] = field(default_factory=list)
    packed_stores: list[PackedStore] = field(default_factory=list)
    direct_stores: list[DirectStore] = field(default_factory=list)
    residual: list[Stmt] = field(default_factory=list)

    @property
    def full_offload(self) -> bool:
        return not self.residual


def hoist(loop: Loop) -> OffloadPlan:
    """Build an offload plan for one innermost loop."""
    plan = OffloadPlan(loop=loop)
    accesses = find_indirect_accesses(loop)
    legal = [a for a in accesses if is_legal(loop, a)]

    load_map: dict[tuple, str] = {}   # substituted-load key -> stream name
    defs = {s.var: s.expr for s in loop.body if isinstance(s, Assign)}

    for k, acc in enumerate(a for a in legal if a.kind == "load"):
        name = f"_pk{k}"
        load_map[(acc.array, repr(acc.index))] = name
        plan.packed_loads.append(PackedLoad(dest=name, array=acc.array,
                                            index=acc.index, cond=acc.cond))
    sunk_stores = [a for a in legal if a.kind in ("store", "rmw")]
    for acc in sunk_stores:
        plan.packed_stores.append(PackedStore(
            array=acc.array, index=acc.index,
            value=_rewrite_expr(acc.value, defs, load_map),
            accum=acc.accum, cond=acc.cond))

    sunk_stmts = {id(a.stmt) for a in sunk_stores}
    plan.residual = _rewrite_block(loop.body, defs, load_map, sunk_stmts,
                                   plan, loop.var)
    return plan


# ---------------------------------------------------------------- rewriting

def _rewrite_expr(expr: Expr, defs: dict[str, Expr],
                  load_map: dict[tuple, str]) -> Expr:
    """Replace hoisted loads by their packed-stream Vars."""
    substituted = substitute(expr, defs)
    return _replace_loads(substituted, load_map)


def _replace_loads(expr: Expr, load_map: dict[tuple, str]) -> Expr:
    if isinstance(expr, Load):
        name = load_map.get((expr.array, repr(expr.index)))
        if name is not None:
            return Var(name)
        return Load(expr.array, _replace_loads(expr.index, load_map))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _replace_loads(expr.lhs, load_map),
                     _replace_loads(expr.rhs, load_map))
    return expr


def _rewrite_block(stmts: list[Stmt], defs, load_map, sunk_stmts,
                   plan: OffloadPlan, loop_var: str,
                   cond: Expr | None = None) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in stmts:
        if id(stmt) in sunk_stmts:
            continue
        if isinstance(stmt, Assign):
            # Scalar definitions that only fed hoisted accesses disappear if
            # nothing else uses them; conservatively keep those still used.
            continue  # address arithmetic is subsumed by the packed ops
        if isinstance(stmt, If):
            body = _rewrite_block(stmt.body, defs, load_map, sunk_stmts,
                                  plan, loop_var, substitute(stmt.cond, defs))
            if body:
                out.append(If(stmt.cond, body))
            continue
        if isinstance(stmt, Store):
            value = _rewrite_expr(stmt.value, defs, load_map)
            index = substitute(stmt.index, defs)
            if (stmt.accum is None and index == Var(loop_var)
                    and _only_streams(value, load_map, loop_var)):
                plan.direct_stores.append(
                    DirectStore(array=stmt.array, value=value, cond=cond))
                continue
            out.append(Store(stmt.array, stmt.index, stmt.value, stmt.accum))
            continue
        out.append(stmt)
    return out


def _only_streams(expr: Expr, load_map: dict[tuple, str],
                  loop_var: str) -> bool:
    """True when the value is computable tile-wide from packed streams,
    direct loads, and the loop variable."""
    stream_names = set(load_map.values()) | {loop_var}
    if isinstance(expr, Var):
        return expr.name in stream_names
    if isinstance(expr, Const):
        return True
    if isinstance(expr, BinOp):
        return (_only_streams(expr.lhs, load_map, loop_var)
                and _only_streams(expr.rhs, load_map, loop_var))
    if isinstance(expr, Load):
        return expr.index == Var(loop_var)
    return False

"""Reference interpreter for the loop IR.

Defines the semantics every compiler pass must preserve: the test suite
interprets the original kernel and cross-checks it against the transformed
and lowered versions.
"""

from __future__ import annotations

import numpy as np

from repro.common.types import AluOp
from repro.compiler.ir import (
    Assign, BinOp, Const, Expr, Function, If, Load, Loop, Stmt, Store, Var,
)

_SCALAR_OPS = {
    AluOp.ADD: lambda a, b: a + b,
    AluOp.SUB: lambda a, b: a - b,
    AluOp.MUL: lambda a, b: a * b,
    AluOp.MIN: min,
    AluOp.MAX: max,
    AluOp.AND: lambda a, b: int(a) & int(b),
    AluOp.OR: lambda a, b: int(a) | int(b),
    AluOp.XOR: lambda a, b: int(a) ^ int(b),
    AluOp.SHR: lambda a, b: int(a) >> int(b),
    AluOp.SHL: lambda a, b: int(a) << int(b),
    AluOp.LT: lambda a, b: int(a < b),
    AluOp.LE: lambda a, b: int(a <= b),
    AluOp.GT: lambda a, b: int(a > b),
    AluOp.GE: lambda a, b: int(a >= b),
    AluOp.EQ: lambda a, b: int(a == b),
}


class Interpreter:
    """Executes a :class:`Function` over NumPy array storage."""

    def __init__(self, function: Function,
                 arrays: dict[str, np.ndarray]) -> None:
        for name, decl in function.arrays.items():
            if name not in arrays:
                raise KeyError(f"array {name!r} not provided")
            if len(arrays[name]) != decl.length:
                raise ValueError(
                    f"array {name!r}: expected {decl.length} elements, "
                    f"got {len(arrays[name])}"
                )
        self.function = function
        self.arrays = arrays
        self.env: dict[str, int | float] = dict(function.scalars)

    def run(self) -> dict[str, np.ndarray]:
        self._exec_block(self.function.body)
        return self.arrays

    # ------------------------------------------------------------- internals

    def _exec_block(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self.env[stmt.var] = self._eval(stmt.expr)
        elif isinstance(stmt, Store):
            index = int(self._eval(stmt.index))
            value = self._eval(stmt.value)
            array = self.arrays[stmt.array]
            if stmt.accum is None:
                array[index] = value
            else:
                array[index] = _SCALAR_OPS[stmt.accum](
                    array[index].item(), value)
        elif isinstance(stmt, If):
            if self._eval(stmt.cond):
                self._exec_block(stmt.body)
        elif isinstance(stmt, Loop):
            lo = int(self._eval(stmt.lo))
            hi = int(self._eval(stmt.hi))
            for i in range(lo, hi, stmt.step):
                self.env[stmt.var] = i
                self._exec_block(stmt.body)
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    def _eval(self, expr: Expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in self.env:
                raise NameError(f"undefined variable {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, BinOp):
            return _SCALAR_OPS[expr.op](self._eval(expr.lhs),
                                        self._eval(expr.rhs))
        if isinstance(expr, Load):
            index = int(self._eval(expr.index))
            return self.arrays[expr.array][index].item()
        raise TypeError(f"unknown expression {expr!r}")

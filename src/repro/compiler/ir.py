"""A small affine loop IR — the reproduction's stand-in for MLIR.

The paper's compiler raises C to MLIR (affine/scf) with Polygeist, then
tiles, detects, hoists, and lowers (Section 4.2).  Our IR models the same
program shapes (Table 1): single and nested loops, conditional statements,
loads/stores/accumulating stores with arbitrarily nested index expressions.

Expressions are immutable trees; statements are lists.  Loops marked
``parallel`` assert no loop-carried dependences (the OpenMP contract the
paper's legality analysis relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import AluOp, DType


# ------------------------------------------------------------- expressions

@dataclass(frozen=True)
class Const:
    value: int | float


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class BinOp:
    op: AluOp
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Load:
    """``array[index]``."""

    array: str
    index: "Expr"


Expr = Const | Var | BinOp | Load


# -------------------------------------------------------------- statements

@dataclass
class Assign:
    var: str
    expr: Expr


@dataclass
class Store:
    """``array[index] = value`` or, with ``accum``, ``array[index] op= value``."""

    array: str
    index: Expr
    value: Expr
    accum: AluOp | None = None


@dataclass
class If:
    cond: Expr
    body: list["Stmt"]


@dataclass
class Loop:
    """``for var in lo..hi step``; ``parallel`` asserts no loop-carried
    dependences (the OpenMP contract legality relies on)."""

    var: str
    lo: Expr
    hi: Expr
    body: list["Stmt"]
    step: int = 1
    parallel: bool = True


Stmt = Assign | Store | If | Loop


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    dtype: DType
    length: int


@dataclass
class Function:
    """A kernel: declared arrays, scalar parameters, and a body."""

    name: str
    arrays: dict[str, ArrayDecl]
    body: list[Stmt]
    scalars: dict[str, int | float] = field(default_factory=dict)

    def array(self, name: str) -> ArrayDecl:
        return self.arrays[name]


# ------------------------------------------------------------------ helpers

def loads_in(expr: Expr) -> list[Load]:
    """All Load nodes in an expression tree, outermost first."""
    out: list[Load] = []
    _collect_loads(expr, out)
    return out


def _collect_loads(expr: Expr, out: list[Load]) -> None:
    if isinstance(expr, Load):
        out.append(expr)
        _collect_loads(expr.index, out)
    elif isinstance(expr, BinOp):
        _collect_loads(expr.lhs, out)
        _collect_loads(expr.rhs, out)


def vars_in(expr: Expr) -> set[str]:
    """All variable names appearing in an expression tree."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, BinOp):
        return vars_in(expr.lhs) | vars_in(expr.rhs)
    if isinstance(expr, Load):
        return vars_in(expr.index)
    return set()


def substitute(expr: Expr, bindings: dict[str, Expr]) -> Expr:
    """Replace Vars by their defining expressions (use-def chasing)."""
    if isinstance(expr, Var):
        replacement = bindings.get(expr.name)
        if replacement is None:
            return expr
        return substitute(replacement, bindings)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.lhs, bindings),
                     substitute(expr.rhs, bindings))
    if isinstance(expr, Load):
        return Load(expr.array, substitute(expr.index, bindings))
    return expr


def written_arrays(stmts: list[Stmt]) -> set[str]:
    """Names of every array any statement in ``stmts`` stores to."""
    out: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Store):
            out.add(stmt.array)
        elif isinstance(stmt, If):
            out |= written_arrays(stmt.body)
        elif isinstance(stmt, Loop):
            out |= written_arrays(stmt.body)
    return out


def read_arrays(stmts: list[Stmt]) -> set[str]:
    """Names of every array any statement in ``stmts`` loads from."""
    out: set[str] = set()

    def expr_arrays(expr: Expr) -> None:
        for load in loads_in(expr):
            out.add(load.array)

    for stmt in stmts:
        if isinstance(stmt, Assign):
            expr_arrays(stmt.expr)
        elif isinstance(stmt, Store):
            expr_arrays(stmt.index)
            expr_arrays(stmt.value)
        elif isinstance(stmt, If):
            expr_arrays(stmt.cond)
            out |= read_arrays(stmt.body)
        elif isinstance(stmt, Loop):
            expr_arrays(stmt.lo)
            expr_arrays(stmt.hi)
            out |= read_arrays(stmt.body)
    return out

"""Batched front-end: fused OoO stepping and the event-skip multicore loop.

The core half of the ``SystemConfig.frontend = "batched"`` split.  Two
ideas, both bitwise-neutral by construction:

* :class:`BatchedCoreModel.run_until` is ``CoreModel.step`` unrolled into a
  loop — the per-op function dispatch (``step`` itself, the ``done``
  property, the heap push/pop in the multicore driver) disappears, but the
  op-by-op semantics (frontend bandwidth, ROB/IQ/LQ/SQ stalls, dependence
  resolution, atomics serialization) are copied line for line.

* :class:`BatchedMulticore.run` advances the *popped* core until its next
  dispatch time would no longer be the global minimum, instead of
  re-inserting it into the heap after every op.  The scalar driver pops
  ``(next_time, i)``, steps once, pushes, and pops again; whenever the
  same core remains the minimum this is a pointless heap round-trip.  Ties
  between distinct cores are broken by the core index in the tuple, so
  "strictly less than the next heap entry" reproduces the scalar pop
  order exactly — the event-skip is over driver overhead, never over
  simulated work.
"""

from __future__ import annotations

import heapq

from repro.common.types import AccessType
from repro.core.multicore import Multicore
from repro.core.ooo import CoreModel
from repro.core.trace import Trace


class _Flight:
    """In-flight record for the batched core: the scalar ``_InFlight``
    with the ``AccessResult`` fields folded in.  The batched hierarchy
    returns ``(level, issue, complete, request, ret_lat)`` as a tuple,
    and those fields land directly here — no intermediate result object
    is ever built on the batched path."""

    __slots__ = ("op", "instrs", "done", "request", "ret_lat",
                 "in_iq", "iq_instrs")

    def __init__(self, op, instrs, done, request, ret_lat):
        self.op = op
        self.instrs = instrs
        self.done = done          # completion time, -1 while pending
        self.request = request
        self.ret_lat = ret_lat
        self.in_iq = False
        self.iq_instrs = 0


class BatchedCoreModel(CoreModel):
    """`CoreModel` with the per-op loop fused into one frame."""

    def start(self, trace: Trace, at: int = 0) -> None:
        super().start(trace, at)
        # Op index -> in-flight record, so dependence resolution is a dict
        # probe instead of the scalar engine's ROB-window scan.  Entries
        # are only consulted while the producer's ``op.complete`` is still
        # -1 (a retired flight has published its completion time), so
        # nothing needs to be evicted before the next trace resets it.
        self._unresolved: dict[int, _Flight] = {}

    def _complete(self, flight) -> int:
        # Scalar ``_complete`` over the folded flight fields.
        done = flight.done
        if done < 0:
            request = flight.request
            if request.finish < 0:
                self.dram.complete(request)
            done = request.finish + flight.ret_lat
            flight.done = done
        flight.op.complete = done
        return done

    def _drain_iq(self, now: float) -> None:
        # Scalar ``_drain_iq`` over the folded flight fields.
        if not self._iq_used:
            if self._iq_flights:
                self._iq_flights.clear()
            return
        flights = self._iq_flights
        kept: list[_Flight] = []
        keep = kept.append
        iq_used = self._iq_used
        for flight in flights:
            if not flight.in_iq:
                continue
            complete = flight.done
            if 0 <= complete <= now:
                flight.in_iq = False
                iq_used -= flight.iq_instrs
            else:
                keep(flight)
        self._iq_used = iq_used
        flights.clear()
        flights.extend(kept)

    def run_until(self, i_key: int, bound: tuple[float, int] | None) -> None:
        """Execute ops until the trace ends or ``(next_time, i_key)`` is no
        longer strictly the earliest entry (``bound`` = the driver heap's
        current minimum, or None to run the trace out)."""
        trace = self._trace
        if trace is None:
            raise RuntimeError("trace exhausted")
        ops = trace.ops
        n = len(ops)
        next_i = self._next
        cfg = self.config
        width = cfg.width
        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lq_size = cfg.lq_size
        sq_size = cfg.sq_size
        counters = self.stats.counters
        window = self._window
        unresolved = self._unresolved
        iq_flights = self._iq_flights   # never rebound, only mutated
        hierarchy_access = self.hierarchy.access
        atomics = self.atomics
        core_id = self.core_id
        obs = self.obs
        dram_complete = self.dram.complete
        load_kind = AccessType.LOAD
        store_kind = AccessType.STORE
        rmw_kind = AccessType.RMW
        ops_run = 0
        instr_run = 0
        # Occupancy, fetch, and finish state live in locals for the duration
        # of the loop; the forced-retire bodies are inlined below
        # (``_retire_oldest(forced=True)`` line for line), so only
        # ``_drain_iq`` still needs its slice of state synced — and
        # everything is written back unconditionally on exit.
        fetch_time = self._fetch_time
        rob_used = self._rob_used
        iq_used = self._iq_used
        lq_used = self._lq_used
        sq_used = self._sq_used
        finish = self._finish
        if bound is None:
            b_time = b_key = None
        else:
            b_time, b_key = bound
        while True:
            op = ops[next_i]
            next_i += 1
            instrs = 1 + op.extra_instrs
            kind = op.kind
            is_load = kind is load_kind

            # Frontend: fetch/decode bandwidth.
            fetch_time += instrs / width
            dispatch = fetch_time

            # Structural stalls (ROB / IQ / LQ / SQ), as in CoreModel.step.
            while window and rob_used + instrs > rob_size:
                counters["rob_stalls"] += 1
                # ---- _retire_oldest(forced=True), inlined ----
                flight = window.popleft()
                done = flight.done
                if done < 0:
                    request = flight.request
                    if request.finish < 0:
                        dram_complete(request)
                    done = request.finish + flight.ret_lat
                    flight.done = done
                flight.op.complete = done
                rob_used -= flight.instrs
                if flight.in_iq:
                    iq_used -= flight.iq_instrs
                    flight.in_iq = False
                if flight.op.kind is load_kind:
                    lq_used -= 1
                else:
                    sq_used -= 1
                if done > finish:
                    finish = done
                if done > fetch_time:
                    if obs is not None:
                        obs.core_span(core_id, "rob-blocked", fetch_time,
                                      done)
                    fetch_time = float(done)
            if iq_used + instrs > iq_size:
                self._iq_used = iq_used
                self._drain_iq(fetch_time)
                iq_used = self._iq_used
                while iq_used + instrs > iq_size:
                    while iq_flights and not iq_flights[0].in_iq:
                        iq_flights.popleft()
                    if not iq_flights:
                        break
                    counters["iq_stalls"] += 1
                    done = self._complete(iq_flights[0])
                    if done > fetch_time:
                        fetch_time = float(done)
                    self._drain_iq(fetch_time)
                    iq_used = self._iq_used
            if is_load:
                while window and lq_used >= lq_size:
                    counters["lq_stalls"] += 1
                    # ---- _retire_oldest(forced=True), inlined ----
                    flight = window.popleft()
                    done = flight.done
                    if done < 0:
                        request = flight.request
                        if request.finish < 0:
                            dram_complete(request)
                        done = request.finish + flight.ret_lat
                        flight.done = done
                    flight.op.complete = done
                    rob_used -= flight.instrs
                    if flight.in_iq:
                        iq_used -= flight.iq_instrs
                        flight.in_iq = False
                    if flight.op.kind is load_kind:
                        lq_used -= 1
                    else:
                        sq_used -= 1
                    if done > finish:
                        finish = done
                    if done > fetch_time:
                        if obs is not None:
                            obs.core_span(core_id, "rob-blocked", fetch_time,
                                          done)
                        fetch_time = float(done)
            else:
                while window and sq_used >= sq_size:
                    counters["sq_stalls"] += 1
                    # ---- _retire_oldest(forced=True), inlined ----
                    flight = window.popleft()
                    done = flight.done
                    if done < 0:
                        request = flight.request
                        if request.finish < 0:
                            dram_complete(request)
                        done = request.finish + flight.ret_lat
                        flight.done = done
                    flight.op.complete = done
                    rob_used -= flight.instrs
                    if flight.in_iq:
                        iq_used -= flight.iq_instrs
                        flight.in_iq = False
                    if flight.op.kind is load_kind:
                        lq_used -= 1
                    else:
                        sq_used -= 1
                    if done > finish:
                        finish = done
                    if done > fetch_time:
                        if obs is not None:
                            obs.core_span(core_id, "rob-blocked", fetch_time,
                                          done)
                        fetch_time = float(done)
            if fetch_time > dispatch:
                dispatch = fetch_time

            # Data dependences.
            issue = int(dispatch)
            deps = op.deps
            if deps:
                ready = 0
                for dep_idx in deps:
                    dep_op = ops[dep_idx]
                    complete = dep_op.complete
                    if complete < 0:
                        dep_flight = unresolved.get(dep_idx)
                        if dep_flight is None:
                            raise RuntimeError(
                                f"dependence on op {dep_idx} which never "
                                f"executed")
                        # ---- self._complete(dep_flight), inlined ----
                        complete = dep_flight.done
                        if complete < 0:
                            request = dep_flight.request
                            if request.finish < 0:
                                dram_complete(request)
                            complete = (request.finish
                                        + dep_flight.ret_lat)
                            dep_flight.done = complete
                        dep_op.complete = complete
                    if complete > ready:
                        ready = complete
                if ready > issue:
                    issue = ready

            if op.atomic:
                issue = atomics.acquire(core_id, issue)
                counters["atomics"] += 1

            # ``kind.is_write`` spelled as two identity checks (the enum
            # property builds a membership tuple per call); positional
            # arguments on the per-op hierarchy call.
            (level, r_issue, complete, request,
             ret_lat) = hierarchy_access(core_id, op.addr,
                                         kind is store_kind
                                         or kind is rmw_kind,
                                         issue, op.pc, op.tag)
            op.issue = r_issue
            op.level = level
            if complete >= 0:
                op.complete = complete

            if op.atomic:
                # ``AccessResult.resolve`` over the tuple fields.
                if complete < 0:
                    if request.finish < 0:
                        dram_complete(request)
                    complete = request.finish + ret_lat
                op.complete = complete
                atomics.release(core_id, issue, complete)

            flight = _Flight(op, instrs, complete, request, ret_lat)
            if complete < 0:
                unresolved[next_i - 1] = flight
                flight.iq_instrs = 1 + op.extra_instrs // 2
                flight.in_iq = True
                iq_used += flight.iq_instrs
                iq_flights.append(flight)
            window.append(flight)
            rob_used += instrs
            if is_load:
                lq_used += 1
            else:
                sq_used += 1
            ops_run += 1
            instr_run += instrs

            if next_i >= n:
                break
            # ``(fetch_time, i_key) >= bound`` without the per-op tuple.
            if b_time is not None and (
                    fetch_time > b_time
                    or (fetch_time == b_time and i_key >= b_key)):
                break
        self._next = next_i
        self._fetch_time = fetch_time
        self._rob_used = rob_used
        self._iq_used = iq_used
        self._lq_used = lq_used
        self._sq_used = sq_used
        self._finish = finish
        counters["ops"] += ops_run
        counters["instructions"] += instr_run

    def drain(self) -> int:
        """`CoreModel.drain` with the per-flight retire inlined."""
        window = self._window
        dram_complete = self.dram.complete
        load_kind = AccessType.LOAD
        width = self.config.width
        rob_used = self._rob_used
        iq_used = self._iq_used
        lq_used = self._lq_used
        sq_used = self._sq_used
        fetch_time = self._fetch_time
        finish = self._finish
        while window:
            # ---- _retire_oldest(forced=False), inlined ----
            flight = window.popleft()
            done = flight.done
            if done < 0:
                request = flight.request
                if request.finish < 0:
                    dram_complete(request)
                done = request.finish + flight.ret_lat
                flight.done = done
            flight.op.complete = done
            rob_used -= flight.instrs
            if flight.in_iq:
                iq_used -= flight.iq_instrs
                flight.in_iq = False
            if flight.op.kind is load_kind:
                lq_used -= 1
            else:
                sq_used -= 1
            if done > finish:
                finish = done
            refill = done - rob_used / width
            if refill > fetch_time:
                fetch_time = refill
        self._iq_flights.clear()   # all retired above; drop stale refs
        tail = self._trace.tail_instrs if self._trace else 0
        if tail:
            self.stats.counters["instructions"] += tail
            fetch_time += tail / width
        if int(fetch_time) > finish:
            finish = int(fetch_time)
        self._rob_used = rob_used
        self._iq_used = iq_used
        self._lq_used = lq_used
        self._sq_used = sq_used
        self._fetch_time = fetch_time
        self._finish = finish
        return finish

    def run(self, trace: Trace, at: int = 0) -> int:
        self.start(trace, at)
        if not self.done:
            self.run_until(self.core_id, None)
        return self.drain()


class BatchedMulticore(Multicore):
    """`Multicore` with the event-skip driver loop."""

    core_cls = BatchedCoreModel

    def run(self, traces: list[Trace], at: int = 0) -> int:
        if len(traces) > len(self.cores):
            raise ValueError(
                f"{len(traces)} traces for {len(self.cores)} cores"
            )
        cores = self.cores
        active = []
        for i, trace in enumerate(traces):
            core = cores[i]
            core.start(trace, at)
            if not core.done:
                active.append((core.next_time, i))
        heapq.heapify(active)
        heappop = heapq.heappop
        heappush = heapq.heappush
        while active:
            _, i = heappop(active)
            core = cores[i]
            core.run_until(i, active[0] if active else None)
            if not core.done:
                heappush(active, (core.next_time, i))
        finish = at
        for i in range(len(traces)):
            finish = max(finish, cores[i].drain())
        return finish
